// Ablation: throughput under injected network faults. Sweeps fault
// intensity from a clean network (which must reproduce the no-injector
// baseline — the injector's RNG is untouched when no faults are armed) to
// heavy loss + duplication + jitter + a mid-run peer crash, for vanilla
// Fabric and Fabric++. Shows how much successful throughput each pipeline
// retains when the network misbehaves, and what the client's timeout +
// backoff resubmission loop recovers.

#include <cstdio>

#include "harness.h"
#include "sim/fault_injector.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

struct FaultLevel {
  const char* label;
  double loss_prob;
  double duplicate_prob;
  sim::SimTime max_extra_delay;
  bool crash_peer;  ///< Crash peer 1 for the middle 20% of the run.
};

constexpr FaultLevel kLevels[] = {
    {"none (baseline)", 0.0, 0.0, 0, false},
    {"2% loss", 0.02, 0.01, 200, false},
    {"5% loss", 0.05, 0.02, 500, false},
    {"10% loss + peer crash", 0.10, 0.02, 1000, true},
};

fabric::RunReport RunWithFaults(fabric::FabricConfig config,
                                const workload::Workload& workload,
                                const FaultLevel& level) {
  // Offered load below the clean pipeline's capacity: fault response is
  // about what survives the network, not queueing at saturation — at
  // saturation the commit latency alone exceeds any sane timeout and the
  // timeout aborts would dominate every row, faults armed or not.
  config.client_fire_rate_tps = 100;
  // Retry timeouts sized to the virtual run so lost work is actually
  // retried within the measurement window.
  config.client_endorsement_timeout = 500 * sim::kMillisecond;
  config.client_commit_timeout = 2 * sim::kSecond;
  config.client_max_retries = 5;

  fabric::FabricNetwork network(config, &workload);
  const auto duration = static_cast<sim::SimTime>(MeasureSeconds() * 1e6);
  const auto warmup = static_cast<sim::SimTime>(WarmupSeconds() * 1e6);

  sim::LinkFaults faults;
  faults.loss_prob = level.loss_prob;
  faults.duplicate_prob = level.duplicate_prob;
  faults.max_extra_delay = level.max_extra_delay;
  network.fault_injector().SetDefaultLinkFaults(faults);
  if (level.crash_peer) {
    network.SchedulePeerCrash(1, duration * 2 / 5, duration * 3 / 5);
  }
  return network.RunFor(duration, warmup);
}

void Run() {
  PrintHeader("Ablation — fault tolerance: throughput under network faults",
              "extension (robustness; the paper assumes a clean network)");

  workload::SmallbankConfig wl;
  wl.num_users = 10000;
  wl.prob_write = 0.95;
  wl.zipf_s = 0.5;
  const workload::SmallbankWorkload workload(wl);

  std::printf("\n%-24s %-10s %14s %14s %10s %10s %9s\n", "fault level",
              "pipeline", "success [tps]", "failed [tps]", "timeouts",
              "dropped", "dups");
  for (const FaultLevel& level : kLevels) {
    for (const bool plusplus : {false, true}) {
      const fabric::FabricConfig config =
          plusplus ? fabric::FabricConfig::FabricPlusPlus()
                   : fabric::FabricConfig::Vanilla();
      const fabric::RunReport r = RunWithFaults(config, workload, level);
      const uint64_t timeouts =
          r.aborts[static_cast<size_t>(
              fabric::TxOutcome::kAbortEndorsementTimeout)] +
          r.aborts[static_cast<size_t>(fabric::TxOutcome::kAbortCommitTimeout)];
      std::printf("%-24s %-10s %14.1f %14.1f %10lu %10lu %9lu\n", level.label,
                  plusplus ? "fabric++" : "fabric", r.successful_tps,
                  r.failed_tps, static_cast<unsigned long>(timeouts),
                  static_cast<unsigned long>(r.net_messages_dropped),
                  static_cast<unsigned long>(r.net_messages_duplicated));
      if (r.peer_recoveries > 0) {
        std::printf("%-24s %-10s   peer recoveries: %lu, avg %.1f ms\n", "",
                    "", static_cast<unsigned long>(r.peer_recoveries),
                    r.recovery_avg_ms);
      }
    }
  }
  std::printf(
      "\nExpected: the zero-fault rows sustain essentially the whole "
      "offered load with zero timeout aborts — and since the idle injector "
      "consumes no randomness, they are bit-identical to runs without the "
      "fault layer. Under faults, successful throughput degrades gracefully "
      "with intensity; timeout aborts plus backoff resubmission absorb the "
      "losses, and crashed peers catch back up from the orderer.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
