// Ablation: solo ordering service (the paper's deployment) vs a
// crash-fault-tolerant Raft ordering cluster (Fabric >= 1.4's etcdraft).
// Measures what consensus replication costs the pipeline in throughput and
// latency — a design-space point DESIGN.md §5 calls out; not part of the
// paper's evaluation.

#include <cstdio>

#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Ablation — ordering backend: solo vs Raft cluster",
              "extension (paper §2.1 treats the orderer as a black box)");

  workload::SmallbankConfig wl;
  wl.num_users = 10000;
  wl.prob_write = 0.95;
  wl.zipf_s = 0.5;
  const workload::SmallbankWorkload workload(wl);

  std::printf("\n%-26s %14s %14s %12s\n", "configuration", "success [tps]",
              "failed [tps]", "avg lat");
  for (const bool plusplus : {false, true}) {
    for (const uint32_t raft_nodes : {0u, 3u, 5u}) {
      fabric::FabricConfig config =
          plusplus ? fabric::FabricConfig::FabricPlusPlus()
                   : fabric::FabricConfig::Vanilla();
      if (raft_nodes > 0) {
        config.ordering_backend = fabric::OrderingBackend::kRaft;
        config.raft_cluster_size = raft_nodes;
      }
      const fabric::RunReport report = RunExperiment(config, workload);
      char label[64];
      std::snprintf(label, sizeof(label), "%s / %s",
                    plusplus ? "fabric++" : "fabric",
                    raft_nodes == 0
                        ? "solo"
                        : (raft_nodes == 3 ? "raft-3" : "raft-5"));
      std::printf("%-26s %14.1f %14.1f %9.1f ms\n", label,
                  report.successful_tps, report.failed_tps,
                  report.latency_avg_ms);
    }
  }
  std::printf("\nExpected: Raft adds per-block replication latency (one "
              "round trip to a majority) with little throughput cost at "
              "these block sizes.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
