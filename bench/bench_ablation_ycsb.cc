// Ablation: YCSB core mixes (A/B/C/F) under vanilla Fabric vs Fabric++ —
// an extension placing the system on the standard KV-store benchmark the
// paper's §6.2 names alongside Smallbank. Mix F (read-modify-write) is
// where MVCC conflicts appear and the Fabric++ optimizations matter.

#include <cstdio>

#include "harness.h"
#include "workload/ycsb.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Ablation — YCSB core mixes", "extension (paper §6.2)");

  std::printf("\n%-16s %18s %18s %10s\n", "mix", "fabric [tps]",
              "fabric++ [tps]", "factor");
  for (const auto mix : {workload::YcsbMix::kA, workload::YcsbMix::kB,
                         workload::YcsbMix::kC, workload::YcsbMix::kF}) {
    workload::YcsbConfig wl;
    wl.mix = mix;
    wl.num_records = 10000;
    wl.zipf_s = 0.99;
    const workload::YcsbWorkload workload(wl);
    const fabric::RunReport v =
        RunExperiment(fabric::FabricConfig::Vanilla(), workload);
    const fabric::RunReport p =
        RunExperiment(fabric::FabricConfig::FabricPlusPlus(), workload);
    std::printf("%-16s %18.1f %18.1f %9.2fx\n",
                std::string(workload::YcsbMixToString(mix)).c_str(),
                v.successful_tps, p.successful_tps,
                v.successful_tps > 0 ? p.successful_tps / v.successful_tps
                                     : 0.0);
  }
  std::printf("\nExpected: A/B/C are conflict-free in Fabric semantics "
              "(updates are blind writes) so the systems tie; F's "
              "read-modify-writes conflict under the zipfian hot keys and "
              "Fabric++ pulls ahead.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
