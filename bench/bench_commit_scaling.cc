// Commit-stage scaling bench: the dependency-aware parallel commit
// (DESIGN.md §13) swept over commit worker counts on two block shapes —
// conflict-free (every transaction touches its own key: one wave, maximal
// fan-out) and hot-key (every transaction reads and writes one key: one
// wave per transaction, the schedule degenerates to the sequential loop).
// Not a paper figure: the SIGMOD'19 paper parallelizes validation
// (Figure 11) but leaves commit sequential; this certifies the stage we
// parallelized beyond it.
//
// Measures Validator::ValidateAndCommit's commit wall-clock (verify is
// timed separately by the validator and excluded). Every worker count must
// produce byte-identical verdicts and state versions — the bench exits
// non-zero on any divergence, making it a determinism gate first and a
// throughput report second. Speedup is only meaningful on multi-core
// hosts; on a single hardware thread the expected result is ~1.0x with
// the determinism gate still binding (EXPERIMENTS.md records the caveat).
//
// Emits BENCH_commit.json. `--smoke` shrinks the block and repetitions.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "ledger/ledger.h"
#include "peer/validator.h"
#include "proto/block.h"
#include "statedb/state_db.h"

namespace fabricpp::bench {
namespace {

constexpr uint64_t kSeed = 42;

struct Workload {
  std::string name;
  proto::Block block;
  std::vector<std::string> keys;
};

proto::Transaction PlainTx(uint64_t id, const std::string& read_key,
                           const std::string& write_key) {
  proto::Transaction tx;
  tx.tx_id = "tx" + std::to_string(id);
  tx.policy_id = "ANY";
  tx.rwset.reads.push_back({read_key, proto::kNilVersion});
  tx.rwset.writes.push_back({write_key, "v" + std::to_string(id), false});
  return tx;
}

Workload MakeWorkload(const std::string& name, size_t num_txs, bool hot) {
  Workload w;
  w.name = name;
  for (size_t i = 0; i < num_txs; ++i) {
    const std::string key = hot ? "hot" : "k" + std::to_string(i);
    w.block.transactions.push_back(PlainTx(i, key, key));
    if (!hot || i == 0) w.keys.push_back(key);
  }
  w.block.header.number = 1;  // First post-genesis block.
  w.block.SealDataHash();
  return w;
}

struct Outcome {
  std::vector<proto::TxValidationCode> codes;
  std::vector<proto::Version> versions;
  crypto::Digest chain_tip;
  uint32_t waves = 0;
  uint64_t commit_ns = 0;

  bool SameStateAs(const Outcome& other) const {
    return codes == other.codes && versions == other.versions &&
           chain_tip == other.chain_tip;
  }
};

/// One full validate-and-commit on fresh stores; `workers` counts the
/// committing thread, so workers == 1 exercises the sequential path.
Outcome RunOnce(const Workload& w, uint32_t workers,
                const peer::PolicyRegistry& policies) {
  statedb::StateDb db;
  ledger::Ledger ledger;
  proto::Block block = w.block;
  block.header.previous_hash = ledger.LastHash();

  peer::Validator validator(kSeed, &policies);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) {
    pool = std::make_unique<ThreadPool>(workers - 1);
    validator.set_commit_pool(pool.get());
  }
  const peer::BlockValidationResult result =
      validator.ValidateAndCommit(block, &db, &ledger);

  Outcome out;
  out.codes = result.codes;
  for (const std::string& key : w.keys) out.versions.push_back(db.GetVersion(key));
  out.chain_tip = ledger.LastHash();
  out.waves = result.commit_waves;
  out.commit_ns = result.commit_wall_ns;
  return out;
}

struct Row {
  std::string workload;
  uint32_t workers = 0;
  size_t txs = 0;
  uint32_t waves = 0;
  double median_commit_ms = 0;
  double txs_per_sec = 0;
  double speedup = 1.0;
};

int Run(bool smoke) {
  const size_t num_txs = smoke ? 2000 : 10000;
  const int reps = smoke ? 3 : 5;
  const std::vector<uint32_t> worker_counts = {1, 2, 4, 8};

  peer::PolicyRegistry policies;
  peer::EndorsementPolicy any;
  any.id = "ANY";  // No required orgs: verify is trivially cheap, so the
  (void)policies.Register(std::move(any));  // bench isolates the commit stage.

  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload("conflict_free", num_txs, /*hot=*/false));
  workloads.push_back(MakeWorkload("hot_key", smoke ? 500 : 2000, true));

  std::printf("commit scaling: %zu-tx conflict-free block, host threads=%u\n",
              num_txs, std::thread::hardware_concurrency());

  std::vector<Row> rows;
  bool deterministic = true;
  for (const Workload& w : workloads) {
    Outcome baseline;
    double baseline_ms = 0;
    for (const uint32_t workers : worker_counts) {
      std::vector<uint64_t> samples;
      Outcome last;
      for (int r = 0; r < reps; ++r) {
        last = RunOnce(w, workers, policies);
        samples.push_back(last.commit_ns);
      }
      std::sort(samples.begin(), samples.end());
      const double median_ms =
          static_cast<double>(samples[samples.size() / 2]) / 1e6;

      if (workers == 1) {
        baseline = last;
        baseline_ms = median_ms;
      } else if (!last.SameStateAs(baseline)) {
        deterministic = false;
        std::fprintf(stderr,
                     "FAIL: %s diverges at %u workers (verdicts or state "
                     "differ from the sequential run)\n",
                     w.name.c_str(), workers);
      }

      Row row;
      row.workload = w.name;
      row.workers = workers;
      row.txs = w.block.transactions.size();
      row.waves = last.waves;
      row.median_commit_ms = median_ms;
      row.txs_per_sec = median_ms > 0
                            ? static_cast<double>(row.txs) / (median_ms / 1e3)
                            : 0;
      row.speedup = median_ms > 0 ? baseline_ms / median_ms : 0;
      rows.push_back(row);
      std::printf("  %-14s workers=%u waves=%u commit=%8.3fms  %10.0f tx/s"
                  "  speedup=%.2fx\n",
                  w.name.c_str(), workers, row.waves, median_ms,
                  row.txs_per_sec, row.speedup);
    }
  }

  std::FILE* out = std::fopen("BENCH_commit.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_commit.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"commit_scaling\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"host_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"workers\": %u, \"txs\": %zu, "
                 "\"waves\": %u, \"median_commit_ms\": %.3f, "
                 "\"txs_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 r.workload.c_str(), r.workers, r.txs, r.waves,
                 r.median_commit_ms, r.txs_per_sec, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  if (!deterministic) return 1;
  // Throughput is advisory: a 1-thread host legitimately reports ~1x. On
  // clearly multi-core hosts a conflict-free block that fails to speed up
  // at all is worth a loud warning, but not a CI failure (shared runners).
  for (const Row& r : rows) {
    if (r.workload == "conflict_free" && r.workers == 8 && r.speedup < 1.5 &&
        std::thread::hardware_concurrency() >= 8) {
      std::fprintf(stderr,
                   "WARN: conflict-free speedup at 8 workers is %.2fx "
                   "(< 1.5x) on a %u-thread host\n",
                   r.speedup, std::thread::hardware_concurrency());
    }
  }
  std::printf("OK: all worker counts byte-identical\n");
  return 0;
}

}  // namespace
}  // namespace fabricpp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return fabricpp::bench::Run(smoke);
}
