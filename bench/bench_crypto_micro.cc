// google-benchmark timings of the crypto substrate: SHA-256 throughput,
// HMAC signing/verification, Merkle roots, and full transaction hashing —
// the operations whose real-world (ECDSA-era) costs the simulation's
// CostModel `sign`/`verify`/`hash_per_kb` knobs represent.

#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/identity.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "proto/transaction.h"

namespace fabricpp::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSign(benchmark::State& state) {
  const Identity identity(42, "A1");
  const std::string payload(static_cast<size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    benchmark::DoNotOptimize(identity.Sign(payload));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HmacSign)->Arg(256)->Arg(4096);

void BM_HmacVerify(benchmark::State& state) {
  const Identity identity(42, "A1");
  const std::string payload(512, 'p');
  const Signature signature = identity.Sign(payload);
  const Bytes message(payload.begin(), payload.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(identity.Verify(message, signature));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HmacVerify);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Digest> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::Hash("tx" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleRoot(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024);

void BM_TransactionHash(benchmark::State& state) {
  proto::Transaction tx;
  tx.client = "client_c0_0";
  tx.channel = "ch0";
  tx.chaincode = "smallbank";
  tx.policy_id = "AND(all-orgs)";
  for (int i = 0; i < 8; ++i) {
    tx.rwset.reads.push_back(
        {"acc_" + std::to_string(i), proto::Version{3, 1}});
    tx.rwset.writes.push_back(
        {"acc_" + std::to_string(i), "123456", false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.ContentDigest());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionHash);

}  // namespace
}  // namespace fabricpp::crypto

BENCHMARK_MAIN();
