// Reproduces Figure 1 of the paper: vanilla Fabric firing *meaningful*
// transactions (custom workload, BS=1024, RW=8, HR=40%, HW=10%, HSS=1%)
// shows a large aborted fraction; firing *blank* transactions yields
// roughly the same total throughput, proving the ceiling is crypto +
// networking, not transaction logic.

#include <cstdio>

#include "harness.h"
#include "workload/custom.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 1 — Motivation: aborted vs successful, blank vs "
              "meaningful (vanilla Fabric)",
              "Figure 1, Section 1.1");

  fabric::FabricConfig config = fabric::FabricConfig::Vanilla();
  config.block.max_transactions = 1024;
  // Figure 1 decomposes the raw pipeline capacity; client resubmission
  // would asymmetrically inflate the meaningful run (blank never aborts).
  config.client_resubmit = false;

  workload::CustomConfig custom;
  custom.num_accounts = 10000;
  custom.rw_ops = 8;
  custom.hot_read_prob = 0.4;
  custom.hot_write_prob = 0.1;
  custom.hot_set_fraction = 0.01;
  const workload::CustomWorkload meaningful(custom);
  const workload::BlankWorkload blank;

  const fabric::RunReport m = RunExperiment(config, meaningful);
  const fabric::RunReport b = RunExperiment(config, blank);

  std::printf("\n%-24s %12s %12s %12s\n", "workload", "success tps",
              "aborted tps", "total tps");
  std::printf("%-24s %12.1f %12.1f %12.1f\n", "meaningful (custom)",
              m.successful_tps, m.failed_tps, m.successful_tps + m.failed_tps);
  std::printf("%-24s %12.1f %12.1f %12.1f\n", "blank", b.successful_tps,
              b.failed_tps, b.successful_tps + b.failed_tps);
  std::printf("\nmeaningful abort breakdown: %s\n", m.ToString().c_str());
  const double ratio = (b.successful_tps + b.failed_tps) /
                       (m.successful_tps + m.failed_tps);
  std::printf("\nblank/meaningful total throughput ratio: %.2f "
              "(paper: ~1.0 — \"the total throughput of blank and "
              "meaningful transactions essentially equals\")\n",
              ratio);
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
