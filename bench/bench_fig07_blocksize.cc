// Reproduces Figure 7: successful transactions per second as a function of
// the block size (16..2048 transactions), Fabric vs Fabric++, under
// Smallbank with Pw=95%, uniform account selection (s=0), 100k users.

#include <cstdio>

#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 7 — Impact of the blocksize", "Figure 7, Section 6.3");

  workload::SmallbankConfig wl;
  wl.num_users = 100000;
  wl.prob_write = 0.95;
  wl.zipf_s = 0.0;
  const workload::SmallbankWorkload workload(wl);

  std::printf("\n%-10s %18s %18s\n", "blocksize", "fabric [tps]",
              "fabric++ [tps]");
  for (uint32_t bs = 16; bs <= 2048; bs *= 2) {
    fabric::FabricConfig vanilla = fabric::FabricConfig::Vanilla();
    vanilla.block.max_transactions = bs;
    fabric::FabricConfig plusplus = fabric::FabricConfig::FabricPlusPlus();
    plusplus.block.max_transactions = bs;

    const fabric::RunReport v = RunExperiment(vanilla, workload);
    const fabric::RunReport p = RunExperiment(plusplus, workload);
    std::printf("%-10u %18.1f %18.1f\n", bs, v.successful_tps,
                p.successful_tps);
  }
  std::printf("\nPaper shape: throughput grows with blocksize for both "
              "systems; Fabric++ gains more at larger blocks (more "
              "reordering opportunity per block).\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
