// Reproduces Figure 8 (a-c): successful transactions per second under the
// Smallbank workload while sweeping the Zipf skew (s-value 0.0 .. 2.0) for
// the read-heavy (Pw=5%), balanced (Pw=50%) and write-heavy (Pw=95%) mixes.

#include <cstdio>
#include <cstdlib>

#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 8 — Smallbank throughput vs Zipf skew",
              "Figure 8 (a-c), Section 6.4.1, Table 6");

  // A coarser grid by default; FABRICPP_BENCH_FULL=1 uses the paper's 0.2
  // steps.
  const bool full = std::getenv("FABRICPP_BENCH_FULL") != nullptr;
  std::vector<double> s_values;
  for (double s = 0.0; s <= 2.001; s += full ? 0.2 : 0.5) {
    s_values.push_back(s);
  }

  for (const double pw : {0.05, 0.50, 0.95}) {
    std::printf("\n--- Pw = %.0f%% (%s) ---\n", pw * 100,
                pw < 0.1   ? "read-heavy"
                : pw < 0.9 ? "balanced"
                           : "write-heavy");
    std::printf("%-8s %18s %18s %10s\n", "s-value", "fabric [tps]",
                "fabric++ [tps]", "factor");
    for (const double s : s_values) {
      workload::SmallbankConfig wl;
      wl.num_users = 100000;
      wl.prob_write = pw;
      wl.zipf_s = s;
      const workload::SmallbankWorkload workload(wl);
      const fabric::RunReport v =
          RunExperiment(fabric::FabricConfig::Vanilla(), workload);
      const fabric::RunReport p =
          RunExperiment(fabric::FabricConfig::FabricPlusPlus(), workload);
      std::printf("%-8.1f %18.1f %18.1f %9.2fx\n", s, v.successful_tps,
                  p.successful_tps,
                  v.successful_tps > 0 ? p.successful_tps / v.successful_tps
                                       : 0.0);
    }
  }
  std::printf(
      "\nPaper shape: both systems are high and close for s <= 0.6; for "
      "s >= 1.0 Fabric collapses under contention while Fabric++ retains "
      "throughput (paper: 1.15-1.37x at s=1.0, 2.68-12.61x at s=2.0, "
      "largest for write-heavy).\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
