// Reproduces Figure 9: the 36-configuration sweep of the custom workload —
// RW in {4, 8} x HR in {10%, 20%, 40%} x HW in {5%, 10%} x HSS in
// {1%, 2%, 4%} — comparing successful throughput of Fabric and Fabric++.

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "harness.h"
#include "workload/custom.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 9 — Custom workload, 36 configurations",
              "Figure 9, Section 6.4.2, Table 7");

  // The full 36-configuration sweep takes a while; the default trims HSS to
  // the paper's 1% rows. FABRICPP_BENCH_FULL=1 runs all 36.
  const bool full = std::getenv("FABRICPP_BENCH_FULL") != nullptr;
  const std::vector<double> hss_values =
      full ? std::vector<double>{0.01, 0.02, 0.04}
           : std::vector<double>{0.01, 0.04};

  double max_factor = 0;
  std::string max_label;
  std::printf("\n");
  for (const uint32_t rw : {4u, 8u}) {
    for (const double hr : {0.1, 0.2, 0.4}) {
      for (const double hw : {0.05, 0.10}) {
        for (const double hss : hss_values) {
          workload::CustomConfig wl;
          wl.num_accounts = 10000;
          wl.rw_ops = rw;
          wl.hot_read_prob = hr;
          wl.hot_write_prob = hw;
          wl.hot_set_fraction = hss;
          const workload::CustomWorkload workload(wl);
          fabric::FabricConfig vanilla = fabric::FabricConfig::Vanilla();
          fabric::FabricConfig plusplus =
              fabric::FabricConfig::FabricPlusPlus();
          const fabric::RunReport v = RunExperiment(vanilla, workload);
          const fabric::RunReport p = RunExperiment(plusplus, workload);
          const std::string label =
              StrFormat("RW=%u HR=%.0f%% HW=%.0f%% HSS=%.0f%%", rw, hr * 100,
                        hw * 100, hss * 100);
          PrintComparisonRow(label, v, p);
          if (v.successful_tps > 0 &&
              p.successful_tps / v.successful_tps > max_factor) {
            max_factor = p.successful_tps / v.successful_tps;
            max_label = label;
          }
        }
      }
    }
  }
  std::printf(
      "\nLargest improvement: x%.2f at %s (paper: ~3x at BS=1024, RW=8, "
      "HR=40%%, HW=10%%, HSS=1%%).\n",
      max_factor, max_label.c_str());
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
