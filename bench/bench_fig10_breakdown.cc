// Reproduces Figure 10: breakdown of the individual impact of the two
// Fabric++ optimizations (reordering, early abort) on the throughput of
// successful transactions, for the configuration BS=1024, RW=8, HR=40%,
// HW=10%, HSS=1%.

#include <cstdio>

#include "harness.h"
#include "workload/custom.h"

namespace fabricpp::bench {
namespace {

fabric::RunReport RunVariant(bool reordering, bool early_abort,
                             const workload::Workload& workload) {
  fabric::FabricConfig config = fabric::FabricConfig::Vanilla();
  config.block.max_transactions = 1024;
  if (reordering) {
    config.enable_reordering = true;
    config.block.max_unique_keys = 16384;
  }
  if (early_abort) {
    // Early abort needs the fine-grained concurrency control (§5.2.1).
    config.enable_early_abort_sim = true;
    config.enable_early_abort_ordering = true;
    config.concurrency = fabric::ConcurrencyMode::kFineGrained;
  }
  return RunExperiment(config, workload);
}

void Run() {
  PrintHeader("Figure 10 — Optimization breakdown (BS=1024, RW=8, HR=40%, "
              "HW=10%, HSS=1%)",
              "Figure 10, Section 6.5");

  workload::CustomConfig custom;
  custom.num_accounts = 10000;
  custom.rw_ops = 8;
  custom.hot_read_prob = 0.4;
  custom.hot_write_prob = 0.1;
  custom.hot_set_fraction = 0.01;
  const workload::CustomWorkload workload(custom);

  struct Variant {
    const char* label;
    bool reordering;
    bool early_abort;
  };
  const Variant variants[] = {
      {"Fabric (vanilla)", false, false},
      {"Fabric++ (only reordering)", true, false},
      {"Fabric++ (only early abort)", false, true},
      {"Fabric++ (reordering & early abort)", true, true},
  };

  std::printf("\n%-40s %16s %16s\n", "variant", "success [tps]",
              "failed [tps]");
  double base = 0;
  for (const Variant& v : variants) {
    const fabric::RunReport report =
        RunVariant(v.reordering, v.early_abort, workload);
    if (base == 0) base = report.successful_tps;
    std::printf("%-40s %16.1f %16.1f   (x%.2f vs vanilla)\n", v.label,
                report.successful_tps, report.failed_tps,
                base > 0 ? report.successful_tps / base : 0.0);
  }
  std::printf(
      "\nPaper shape: each optimization alone improves over vanilla "
      "(~1.5x each) and the combination is the best configuration "
      "(~2.2x). Reordering removes within-block conflicts; early abort "
      "keeps doomed transactions out of blocks and lets clients resubmit "
      "without delay.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
