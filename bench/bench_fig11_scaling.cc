// Reproduces Figure 11: throughput scaling with (a) the number of channels
// (2 clients each) and (b) the number of clients on a single channel, for
// the configuration BS=1024, RW=8, HR=40%, HW=10%, HSS=1%.

#include <cstdio>

#include "harness.h"
#include "workload/custom.h"

namespace fabricpp::bench {
namespace {

workload::CustomConfig PaperCustomConfig() {
  workload::CustomConfig wl;
  wl.num_accounts = 10000;
  wl.rw_ops = 8;
  wl.hot_read_prob = 0.4;
  wl.hot_write_prob = 0.1;
  wl.hot_set_fraction = 0.01;
  return wl;
}

void Run() {
  PrintHeader("Figure 11 — Scaling channels and clients",
              "Figure 11 (a, b), Section 6.6");

  const workload::CustomWorkload workload(PaperCustomConfig());

  std::printf("\n(a) Varying channels, 2 clients per channel:\n");
  std::printf("%-10s | %28s | %28s\n", "channels", "fabric succ/fail [tps]",
              "fabric++ succ/fail [tps]");
  for (const uint32_t channels : {1u, 2u, 4u, 8u}) {
    fabric::FabricConfig vanilla = fabric::FabricConfig::Vanilla();
    vanilla.num_channels = channels;
    vanilla.clients_per_channel = 2;
    fabric::FabricConfig plusplus = fabric::FabricConfig::FabricPlusPlus();
    plusplus.num_channels = channels;
    plusplus.clients_per_channel = 2;
    const fabric::RunReport v = RunExperiment(vanilla, workload);
    const fabric::RunReport p = RunExperiment(plusplus, workload);
    std::printf("%-10u | %13.1f / %12.1f | %13.1f / %12.1f\n", channels,
                v.successful_tps, v.failed_tps, p.successful_tps,
                p.failed_tps);
  }
  std::printf("Paper shape: throughput rises up to 4 channels, then drops "
              "at 8 as channels compete for peer resources; failed tps "
              "rises with channel count.\n");

  std::printf("\n(b) Varying clients on a single channel:\n");
  std::printf("%-10s | %28s | %28s\n", "clients", "fabric succ/fail [tps]",
              "fabric++ succ/fail [tps]");
  for (const uint32_t clients : {1u, 2u, 4u, 8u}) {
    fabric::FabricConfig vanilla = fabric::FabricConfig::Vanilla();
    vanilla.clients_per_channel = clients;
    fabric::FabricConfig plusplus = fabric::FabricConfig::FabricPlusPlus();
    plusplus.clients_per_channel = clients;
    const fabric::RunReport v = RunExperiment(vanilla, workload);
    const fabric::RunReport p = RunExperiment(plusplus, workload);
    std::printf("%-10u | %13.1f / %12.1f | %13.1f / %12.1f\n", clients,
                v.successful_tps, v.failed_tps, p.successful_tps,
                p.failed_tps);
  }
  std::printf("Paper shape: Fabric grows gently with clients; Fabric++ "
              "peaks early (2-4 clients) and degrades toward Fabric at 8 "
              "clients as the firing clients compete for resources; failed "
              "tps rises steeply with client count.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
