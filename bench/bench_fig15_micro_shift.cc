// Reproduces Figure 15 (Appendix B.1): the stand-alone reordering
// micro-benchmark on the shifted read/write sequence — number of valid
// transactions under the arrival order vs the reordered schedule, plus the
// time to compute the reordering, for shift = 0..512 over 1024 txns.

#include <cstdio>

#include "harness.h"
#include "ordering/reorderer.h"
#include "peer/validator.h"
#include "workload/micro_sequences.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 15 — Micro: shifted reads/writes (1024 transactions)",
              "Figure 15, Appendix B.1");

  std::printf("\n%-8s %16s %16s %16s\n", "shift", "arrival valid",
              "reordered valid", "reorder time");
  for (uint32_t shift = 0; shift <= 512; shift += 64) {
    const auto sets = workload::MakeShiftedReadWriteSequence(1024, shift);
    const auto rwsets = workload::AsPointers(sets);
    std::vector<uint32_t> arrival(sets.size());
    for (uint32_t i = 0; i < sets.size(); ++i) arrival[i] = i;
    const uint32_t arrival_valid =
        peer::CountValidUnderCommonSnapshot(rwsets, arrival);
    const ordering::ReorderResult result =
        ordering::ReorderTransactions(rwsets);
    const uint32_t reordered_valid =
        peer::CountValidUnderCommonSnapshot(rwsets, result.order);
    std::printf("%-8u %16u %16u %13llu us\n", shift, arrival_valid,
                reordered_valid,
                static_cast<unsigned long long>(result.elapsed_wall_us));
  }
  std::printf(
      "\nPaper shape: the reordered schedule keeps all 1024 transactions "
      "valid for every shift (paper: reordering takes ~1-2 ms); the arrival "
      "order loses every reader that follows its writer.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
