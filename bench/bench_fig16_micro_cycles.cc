// Reproduces Figure 16 (Appendix B.2): the stand-alone reordering
// micro-benchmark on conflict-cycle chains — valid transactions under the
// arrival order vs the reordered schedule, and the reordering time, as the
// cycle length grows (1024 transactions total).

#include <cstdio>

#include "harness.h"
#include "ordering/reorderer.h"
#include "peer/validator.h"
#include "workload/micro_sequences.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 16 — Micro: conflict cycles (1024 transactions)",
              "Figure 16, Appendix B.2");

  std::printf("\n%-12s %16s %16s %16s\n", "cycle_len", "arrival valid",
              "reordered valid", "reorder time");
  for (const uint32_t cycle_len :
       {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto sets = workload::MakeCycleSequence(1024, cycle_len);
    const auto rwsets = workload::AsPointers(sets);
    std::vector<uint32_t> arrival(sets.size());
    for (uint32_t i = 0; i < sets.size(); ++i) arrival[i] = i;
    const uint32_t arrival_valid =
        peer::CountValidUnderCommonSnapshot(rwsets, arrival);
    const ordering::ReorderResult result =
        ordering::ReorderTransactions(rwsets);
    const uint32_t reordered_valid =
        peer::CountValidUnderCommonSnapshot(rwsets, result.order);
    std::printf("%-12u %16u %16u %13llu us\n", cycle_len, arrival_valid,
                reordered_valid,
                static_cast<unsigned long long>(result.elapsed_wall_us));
  }
  std::printf(
      "\nPaper shape: the arrival order commits exactly half of the "
      "transactions regardless of cycle length (aborting every second "
      "transaction breaks the cycles); the reorderer aborts ~one "
      "transaction per cycle, so its valid count approaches 1024 as cycles "
      "get longer, at increasing reordering cost.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
