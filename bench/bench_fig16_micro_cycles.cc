// Reproduces Figure 16 (Appendix B.2): the stand-alone reordering
// micro-benchmark on conflict-cycle chains — valid transactions under the
// arrival order vs the reordered schedule, and the reordering time, as the
// cycle length grows (1024 transactions total). A second scenario measures
// what taking the reorder stage off the orderer's critical path buys:
// block inter-arrival gap and cut-queue stalls, inline (pipeline depth 1)
// vs pipelined (depth 4).

#include <cstdio>

#include "fabric/network.h"
#include "harness.h"
#include "ordering/reorderer.h"
#include "peer/validator.h"
#include "workload/micro_sequences.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Figure 16 — Micro: conflict cycles (1024 transactions)",
              "Figure 16, Appendix B.2");

  std::printf("\n%-12s %16s %16s %16s\n", "cycle_len", "arrival valid",
              "reordered valid", "reorder time");
  for (const uint32_t cycle_len :
       {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto sets = workload::MakeCycleSequence(1024, cycle_len);
    const auto rwsets = workload::AsPointers(sets);
    std::vector<uint32_t> arrival(sets.size());
    for (uint32_t i = 0; i < sets.size(); ++i) arrival[i] = i;
    const uint32_t arrival_valid =
        peer::CountValidUnderCommonSnapshot(rwsets, arrival);
    const ordering::ReorderResult result =
        ordering::ReorderTransactions(rwsets);
    const uint32_t reordered_valid =
        peer::CountValidUnderCommonSnapshot(rwsets, result.order);
    std::printf("%-12u %16u %16u %13llu us\n", cycle_len, arrival_valid,
                reordered_valid,
                static_cast<unsigned long long>(result.elapsed_wall_us));
  }
  std::printf(
      "\nPaper shape: the arrival order commits exactly half of the "
      "transactions regardless of cycle length (aborting every second "
      "transaction breaks the cycles); the reorderer aborts ~one "
      "transaction per cycle, so its valid count approaches 1024 as cycles "
      "get longer, at increasing reordering cost.\n");
}

/// One saturated Fabric++ run at the given pipeline depth. Small blocks at a
/// high fire rate keep a batch waiting in the cut queue whenever the
/// reorder/ordering stage is busy, so the inline configuration (depth 1)
/// accumulates stall time that the pipelined one overlaps away.
fabric::RunReport RunPipelineDepth(uint32_t depth) {
  workload::SmallbankConfig wl_config;
  wl_config.num_users = 1000;
  workload::SmallbankWorkload workload(wl_config);

  fabric::FabricConfig config = fabric::FabricConfig::FabricPlusPlus();
  config.block.max_transactions = 32;
  config.client_fire_rate_tps = 400;
  config.seed = 7;
  config.ordering_pipeline_depth = depth;
  // Price the reorder pass like the cycle-heavy Figure 16 worst cases
  // (~80 ms per 32-transaction block), making it the stage the pipeline
  // must take off the critical path.
  config.cost.reorder_per_tx = 2500;

  fabric::FabricNetwork network(config, &workload);
  return network.RunFor(10 * sim::kSecond, 2 * sim::kSecond);
}

void RunPipelineComparison() {
  PrintHeader(
      "Ordering pipeline — reordering off the critical path "
      "(32-tx blocks, saturated orderer)",
      "DESIGN.md §10");

  std::printf("\n%-10s %8s %8s %12s %14s %14s %10s\n", "pipeline", "blocks",
              "stalls", "stall total", "block gap avg", "block gap p95",
              "tps");
  for (const uint32_t depth : {1u, 4u}) {
    const fabric::RunReport report = RunPipelineDepth(depth);
    std::printf("depth %-4u %8llu %8llu %9.1f ms %11.2f ms %11.2f ms %10.1f\n",
                depth,
                static_cast<unsigned long long>(report.blocks_committed),
                static_cast<unsigned long long>(report.ordering_stalls),
                report.ordering_stall_ms, report.block_gap_avg_ms,
                report.block_gap_p95_ms, report.successful_tps);
  }
  std::printf(
      "\nWith depth 1 every batch waits out the previous block's full "
      "ordering cost (reorder included) before it may even be admitted; "
      "deeper pipelines admit the next batch while earlier blocks are "
      "still in the reorder stage, shrinking the cut-queue stall total "
      "and the commit-to-commit gap. Blocks still reach consensus in "
      "chain order through the in-order drain.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  fabricpp::bench::RunPipelineComparison();
  return 0;
}
