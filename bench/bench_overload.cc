// Overload survival bench: offered load swept to 1x / 10x / 100x of the
// ordering capacity with the graceful-degradation layer on (bounded
// admission queues, BUSY backpressure, DRR fair scheduling). Not a paper
// figure — the SIGMOD'19 paper never drives Fabric(++) past saturation —
// but the property it certifies is the one Section 5's pipeline implicitly
// assumes: goodput holds near capacity instead of collapsing when the
// offered load keeps climbing.
//
// Scenarios, all on the deterministic simulation runtime unless noted:
//   - saturation sweep: every client's rate scaled by the multiplier
//     (smoke mode runs 1x + 10x; full mode adds 100x, where the endorser
//     admission bound engages in front of the orderer's)
//   - spammer: one client at 20x while the rest stay polite (fairness row)
//   - thread: the spammer scenario on the thread runtime with tiny
//     mailboxes, proving the shed accounting end-to-end on real threads
//
// Emits BENCH_overload.json and exits non-zero if goodput at 10x drops
// below 70% of the 1x goodput, if any simulated fired proposal ends the
// run unresolved (a silent drop), or if any scenario commits nothing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

double OverloadSeconds() {
  if (const char* env = std::getenv("FABRICPP_BENCH_OVERLOAD_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) return seconds;
  }
  return 3.0;
}

fabric::FabricConfig OverloadBenchConfig(double rate_multiplier) {
  fabric::FabricConfig config = fabric::FabricConfig::FabricPlusPlus();
  config.clients_per_channel = 4;
  // 4 x 50 tps against a single-core orderer (~275 tps for the 3.6 ms
  // verify + order charge): 1x sits just under capacity, so every higher
  // multiplier is real saturation, not spare headroom.
  config.client_fire_rate_tps = 50.0 * rate_multiplier;
  config.orderer_cores = 1;
  // The shared client machine signs at 1.6 ms a proposal; at 100x that is
  // the spammers' problem, not the system under test's — model an
  // adversarial client fleet with plenty of CPU.
  config.client_machine_cores = 64;
  config.client_max_inflight = 256;
  config.client_max_retries = 5;
  config.client_endorsement_timeout = 500 * sim::kMillisecond;
  config.client_commit_timeout = 3 * sim::kSecond;
  config.block.max_transactions = 64;
  config.block.batch_timeout = 250 * sim::kMillisecond;
  // The graceful-degradation layer under test.
  config.admission_queue_depth = 64;
  config.fair_sched_quantum = 4;
  config.fair_conflict_penalty = 4;
  config.busy_retry_hint = 20 * sim::kMillisecond;
  return config;
}

struct Row {
  std::string scenario;
  std::string runtime = "sim";
  double multiplier = 1.0;
  double offered_tps = 0;
  fabric::RunReport report;
  uint64_t unresolved = 0;
};

/// Runs one simulated scenario: fire for `duration`, then drain until every
/// in-flight proposal has committed, aborted, or timed out, so the
/// zero-silent-drops check covers the whole run, not just the window.
Row RunSimScenario(const std::string& scenario, double multiplier,
                   double spammer_multiplier,
                   const workload::Workload& workload) {
  const fabric::FabricConfig config = OverloadBenchConfig(multiplier);
  const double seconds = OverloadSeconds();
  const auto duration = static_cast<sim::SimTime>(seconds * sim::kSecond);
  const auto warmup = static_cast<sim::SimTime>(0.2 * seconds * sim::kSecond);

  fabric::FabricNetwork network(config, &workload);
  if (spammer_multiplier > 1.0) {
    network.client(0).set_fire_rate_multiplier(spammer_multiplier);
  }
  network.RunFor(duration, warmup);
  network.env().RunUntil(duration + 5 * sim::kSecond);

  Row row;
  row.scenario = scenario;
  row.multiplier = multiplier;
  row.offered_tps = config.client_fire_rate_tps * config.clients_per_channel +
                    config.client_fire_rate_tps * (spammer_multiplier - 1.0);
  row.report = network.metrics().Report();
  row.unresolved = network.metrics().unresolved_fired();
  return row;
}

Row RunThreadScenario(const workload::Workload& workload) {
  fabric::FabricConfig config = OverloadBenchConfig(1.0);
  config.runtime_mode = "thread";
  config.orderer_cores = 8;  // Thread time is wall-clock, not cost-modeled.
  config.client_fire_rate_tps = 400.0;
  config.mailbox_capacity = 64;  // Tiny: force the bounded-mailbox path.
  config.admission_queue_depth = 32;
  config.busy_retry_hint = 10 * sim::kMillisecond;
  config.client_endorsement_timeout = 300 * sim::kMillisecond;
  config.client_commit_timeout = 800 * sim::kMillisecond;

  fabric::FabricNetwork network(config, &workload);
  network.client(0).set_fire_rate_multiplier(25.0);

  Row row;
  row.scenario = "spammer_thread";
  row.runtime = "thread";
  row.offered_tps = 400.0 * (4 - 1 + 25.0);
  row.report = network.RunFor(1500 * sim::kMillisecond,
                              300 * sim::kMillisecond);
  return row;
}

void PrintRow(const Row& row) {
  std::printf(
      "  %-16s offered %8.0f tps -> goodput %7.1f tps  p99 %8.2f ms  "
      "jain %.3f  busy e/o %llu/%llu  shed %llu  unresolved %llu\n",
      row.scenario.c_str(), row.offered_tps, row.report.successful_tps,
      row.report.latency_p99_ms, row.report.jain_fairness,
      static_cast<unsigned long long>(row.report.endorser_busy),
      static_cast<unsigned long long>(row.report.orderer_busy),
      static_cast<unsigned long long>(row.report.mailbox_shed_total),
      static_cast<unsigned long long>(row.unresolved));
}

int Run(bool smoke) {
  PrintHeader("Overload survival — admission control + DRR under saturation",
              "beyond-paper robustness: Section 5 pipeline at 1x/10x/100x");
  std::printf(
      "Each simulated scenario: %.1f virtual s (+20%% warmup), then a 5 s "
      "drain;\nFABRICPP_BENCH_OVERLOAD_SECONDS overrides.\n",
      OverloadSeconds());

  workload::SmallbankConfig wl;
  wl.num_users = 10000;
  wl.prob_write = 0.95;
  wl.zipf_s = 1.0;
  workload::SmallbankWorkload workload(wl);

  std::vector<Row> rows;
  rows.push_back(RunSimScenario("saturation_1x", 1.0, 1.0, workload));
  rows.push_back(RunSimScenario("saturation_10x", 10.0, 1.0, workload));
  if (!smoke) {
    rows.push_back(RunSimScenario("saturation_100x", 100.0, 1.0, workload));
  }
  rows.push_back(RunSimScenario("spammer_20x", 1.0, 20.0, workload));
  rows.push_back(RunThreadScenario(workload));

  std::printf("\n");
  for (const Row& row : rows) PrintRow(row);

  std::FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"overload_survival\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n  \"rows\": [\n", smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const fabric::RunReport& r = row.report;
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"runtime\": \"%s\", "
        "\"multiplier\": %.0f, \"offered_tps\": %.0f, "
        "\"goodput_tps\": %.2f, \"latency_p99_ms\": %.3f, "
        "\"jain_fairness\": %.4f, \"endorser_busy\": %llu, "
        "\"orderer_busy\": %llu, \"abort_busy\": %llu, "
        "\"mailbox_shed\": %llu, \"unresolved\": %llu}%s\n",
        row.scenario.c_str(), row.runtime.c_str(), row.multiplier,
        row.offered_tps, r.successful_tps, r.latency_p99_ms, r.jain_fairness,
        static_cast<unsigned long long>(r.endorser_busy),
        static_cast<unsigned long long>(r.orderer_busy),
        static_cast<unsigned long long>(
            r.aborts[static_cast<size_t>(fabric::TxOutcome::kAbortBusy)]),
        static_cast<unsigned long long>(r.mailbox_shed_total),
        static_cast<unsigned long long>(row.unresolved),
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_overload.json\n");

  // --- Acceptance gates ---
  int failures = 0;
  const double goodput_1x = rows[0].report.successful_tps;
  const double goodput_10x = rows[1].report.successful_tps;
  if (goodput_10x < 0.7 * goodput_1x) {
    std::fprintf(stderr,
                 "FAIL: goodput collapsed under 10x overload "
                 "(%.1f tps vs %.1f tps at 1x)\n",
                 goodput_10x, goodput_1x);
    ++failures;
  }
  for (const Row& row : rows) {
    if (row.runtime == "sim" && row.unresolved != 0) {
      std::fprintf(stderr,
                   "FAIL: %s left %llu fired proposals unresolved "
                   "(silent drop)\n",
                   row.scenario.c_str(),
                   static_cast<unsigned long long>(row.unresolved));
      ++failures;
    }
    if (row.report.successful == 0) {
      std::fprintf(stderr, "FAIL: %s committed nothing\n",
                   row.scenario.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fabricpp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return fabricpp::bench::Run(smoke);
}
