// Raft ordering + per-channel lane scale-out: the Smallbank workload with
// the Raft ordering backend, once on the deterministic simulation runtime
// (virtual time, byte-reproducible) and then on the thread runtime with
// 1/2/4/8 channels — each channel a tenant with its own user shard
// (SmallbankConfig::channel_shards) and, under the thread runtime, its own
// orderer/peer pipeline lane (FabricConfig::channel_lanes, DESIGN.md §16).
// A final leg kills the Raft leader mid-run on the thread runtime and
// checks that ordering fails over without dropping a committed block.
//
// Publishes BENCH_raft.json. With --smoke the run becomes a CI gate:
//  - every leg must commit blocks and every peer must converge (identical
//    height + tip hash per channel);
//  - the leader-kill leg must keep committing across the failover;
//  - on a multi-core host (>= 4 hardware threads) the 4-channel thread leg
//    must reach FABRICPP_BENCH_RAFT_MIN_SPEEDUP (default 1.5) times the
//    1-channel throughput. On smaller hosts the lanes cannot run in
//    parallel, so the speedup gate is skipped (documented fallback) and
//    only the correctness checks apply.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

double RaftBenchSeconds(bool smoke) {
  if (const char* env = std::getenv("FABRICPP_BENCH_RAFT_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) return seconds;
  }
  return smoke ? 1.5 : 4.0;  // Thread legs are wall-clock: keep smoke short.
}

double MinSpeedup() {
  if (const char* env = std::getenv("FABRICPP_BENCH_RAFT_MIN_SPEEDUP")) {
    return std::atof(env);  // 0 disables the speedup gate.
  }
  return 1.5;
}

fabric::FabricConfig RaftConfig(const std::string& runtime_mode,
                                uint32_t num_channels) {
  fabric::FabricConfig config = fabric::FabricConfig::FabricPlusPlus();
  config.runtime_mode = runtime_mode;
  config.ordering_backend = fabric::OrderingBackend::kRaft;
  config.num_channels = num_channels;
  config.clients_per_channel = 4;
  config.client_fire_rate_tps = 600.0;
  config.client_max_inflight = 128;
  config.block.max_transactions = 128;
  config.block.batch_timeout = 100 * sim::kMillisecond;
  config.peer_fetch_retry_interval = 100 * sim::kMillisecond;
  return config;
}

struct Leg {
  std::string label;
  std::string runtime;
  uint32_t channels = 1;
  bool leader_kill = false;
  fabric::RunReport report;
  bool converged = true;
  uint64_t min_height = 0;
};

/// Every peer committed the identical chain on every channel — same height,
/// same tip hash. Because block delivery is gapless per channel (the Raft
/// path holds back out-of-order commits), identical non-zero heights also
/// mean no committed block was dropped.
void CheckConvergence(fabric::FabricNetwork& network, Leg* leg) {
  leg->converged = true;
  leg->min_height = ~0ull;
  for (uint32_t c = 0; c < network.config().num_channels; ++c) {
    const uint64_t height = network.peer(0).ledger(c).Height();
    const auto tip = network.peer(0).ledger(c).LastHash();
    if (height < leg->min_height) leg->min_height = height;
    for (uint32_t p = 1; p < network.num_peers(); ++p) {
      if (network.peer(p).ledger(c).Height() != height ||
          network.peer(p).ledger(c).LastHash() != tip) {
        leg->converged = false;
        std::fprintf(stderr, "[%s] peer %u diverged on channel %u\n",
                     leg->label.c_str(), p, c);
      }
    }
  }
}

void RunLeg(Leg* leg, double seconds) {
  workload::SmallbankConfig wl;
  wl.num_users = 10000;
  wl.zipf_s = 1.0;
  wl.channel_shards = leg->channels;  // One tenant shard per channel.
  workload::SmallbankWorkload workload(wl);

  const auto duration = static_cast<sim::SimTime>(seconds * sim::kSecond);
  const auto warmup = static_cast<sim::SimTime>(0.2 * seconds * sim::kSecond);

  fabric::FabricNetwork network(RaftConfig(leg->runtime, leg->channels),
                                &workload);
  if (leg->leader_kill) {
    // Kill whichever replica leads at 30% of the run and bring it back
    // 600 ms later: long enough for a full election (timeout 150-300 ms),
    // short enough that the run measures recovery, not the outage.
    network.ScheduleRaftLeaderCrash(
        static_cast<sim::SimTime>(0.3 * duration), 600 * sim::kMillisecond);
  }
  leg->report = network.RunFor(duration, warmup);
  CheckConvergence(network, leg);
  std::printf("\n[%s] %s\n", leg->label.c_str(),
              leg->report.ToString().c_str());
}

void Run(bool smoke) {
  PrintHeader("Raft ordering + channel lanes — sim vs thread, 1..8 channels",
              "Section 4.2 ordering service; Raft backend on real threads");

  const double seconds = RaftBenchSeconds(smoke);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("measure: %.1f s/leg, %u hardware threads\n", seconds, cores);

  std::vector<Leg> legs;
  legs.push_back({"sim-raft-1ch", "sim", 1});
  for (uint32_t channels : {1u, 2u, 4u, 8u}) {
    legs.push_back({"thread-raft-" + std::to_string(channels) + "ch",
                    "thread", channels});
  }
  legs.push_back({"thread-raft-4ch-leaderkill", "thread", 4, true});

  for (Leg& leg : legs) RunLeg(&leg, seconds);

  double tps_1ch = 0, tps_4ch = 0;
  const Leg* kill_leg = nullptr;
  for (const Leg& leg : legs) {
    if (leg.label == "thread-raft-1ch") tps_1ch = leg.report.successful_tps;
    if (leg.label == "thread-raft-4ch") tps_4ch = leg.report.successful_tps;
    if (leg.leader_kill) kill_leg = &leg;
  }
  const double speedup = tps_1ch > 0 ? tps_4ch / tps_1ch : 0.0;
  std::printf("\n4-channel vs 1-channel thread speedup: %.2fx\n", speedup);

  std::FILE* out = std::fopen("BENCH_raft.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_raft.json\n");
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"benchmark\": \"raft_channel_lanes\",\n");
  std::fprintf(out, "  \"seconds\": %.3f,\n", seconds);
  std::fprintf(out, "  \"hardware_threads\": %u,\n", cores);
  std::fprintf(out, "  \"speedup_4ch_vs_1ch\": %.3f,\n", speedup);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    const fabric::RunReport& r = leg.report;
    std::fprintf(out,
                 "    {\"label\": \"%s\", \"runtime\": \"%s\", "
                 "\"channels\": %u, \"leader_kill\": %s, "
                 "\"successful\": %llu, \"failed\": %llu, "
                 "\"successful_tps\": %.2f, \"blocks_committed\": %llu, "
                 "\"latency_p50_ms\": %.3f, \"latency_p95_ms\": %.3f, "
                 "\"converged\": %s, \"min_height\": %llu}%s\n",
                 leg.label.c_str(), leg.runtime.c_str(), leg.channels,
                 leg.leader_kill ? "true" : "false",
                 static_cast<unsigned long long>(r.successful),
                 static_cast<unsigned long long>(r.failed), r.successful_tps,
                 static_cast<unsigned long long>(r.blocks_committed),
                 r.latency_p50_ms, r.latency_p95_ms,
                 leg.converged ? "true" : "false",
                 static_cast<unsigned long long>(leg.min_height),
                 i + 1 == legs.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_raft.json\n");

  if (!smoke) return;

  // --- CI gate ---
  bool ok = true;
  for (const Leg& leg : legs) {
    if (leg.report.successful == 0 || leg.report.blocks_committed == 0) {
      std::fprintf(stderr, "SMOKE FAIL: %s committed nothing\n",
                   leg.label.c_str());
      ok = false;
    }
    if (!leg.converged) {
      std::fprintf(stderr, "SMOKE FAIL: %s peers diverged\n",
                   leg.label.c_str());
      ok = false;
    }
  }
  if (kill_leg != nullptr && kill_leg->min_height == 0) {
    std::fprintf(stderr,
                 "SMOKE FAIL: leader-kill leg lost a channel's chain\n");
    ok = false;
  }
  const double min_speedup = MinSpeedup();
  if (cores >= 4) {
    if (min_speedup > 0 && speedup < min_speedup) {
      std::fprintf(stderr,
                   "SMOKE FAIL: 4-channel speedup %.2fx below %.2fx\n",
                   speedup, min_speedup);
      ok = false;
    }
  } else {
    // Documented fallback: with fewer than 4 hardware threads the lanes
    // time-share cores, so parallel speedup is not expected; correctness
    // gates above still ran.
    std::printf("single/dual-core host: lane speedup gate skipped\n");
  }
  if (!ok) std::exit(1);
  std::printf("smoke gate passed\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  fabricpp::bench::Run(smoke);
  return 0;
}
