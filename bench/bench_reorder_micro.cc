// google-benchmark timings of the reordering pipeline's stages (ablation of
// the design choices in DESIGN.md §5 and §10): conflict-graph construction
// (sparse inverted-index vs the paper's dense bit-vector build, serial vs
// sharded-parallel), Tarjan SCC decomposition, Johnson cycle enumeration,
// schedule generation (including the 10k-transaction regression guards for
// the linear-time rewrite), and the end-to-end reorder pass at worker
// counts 1/2/4.
//
// `--smoke` (used by CI) shortens every measurement to 0.05s so the binary
// doubles as a build-and-run sanity check emitting BENCH_reorder.json.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "ordering/conflict_graph.h"
#include "ordering/johnson.h"
#include "ordering/reorderer.h"
#include "ordering/tarjan.h"
#include "workload/micro_sequences.h"

namespace fabricpp::ordering {
namespace {

std::vector<proto::ReadWriteSet> MakeBatch(uint32_t n, uint32_t num_keys,
                                           uint32_t accesses) {
  Rng rng(0xbe9c4);
  std::vector<proto::ReadWriteSet> sets(n);
  for (auto& set : sets) {
    for (uint32_t i = 0; i < accesses; ++i) {
      set.reads.push_back(
          {StrFormat("k%llu", static_cast<unsigned long long>(
                                  rng.NextUint64(num_keys))),
           proto::kNilVersion});
      set.writes.push_back(
          {StrFormat("k%llu", static_cast<unsigned long long>(
                                  rng.NextUint64(num_keys))),
           "v", false});
    }
  }
  return sets;
}

void BM_ConflictGraphSparse(benchmark::State& state) {
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConflictGraph::Build(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConflictGraphSparse)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ConflictGraphDense(benchmark::State& state) {
  // The paper's n^2 bit-vector construction, for comparison.
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConflictGraph::BuildDense(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConflictGraphDense)->Arg(128)->Arg(512)->Arg(1024);

void BM_TarjanScc(benchmark::State& state) {
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 1024, 4);
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StronglyConnectedComponents(
        static_cast<uint32_t>(graph.num_nodes()),
        [&](uint32_t v) -> const std::vector<uint32_t>& {
          return graph.Children(v);
        }));
  }
}
BENCHMARK(BM_TarjanScc)->Arg(512)->Arg(1024)->Arg(2048);

void BM_JohnsonBudgeted(benchmark::State& state) {
  const auto sets = MakeBatch(256, static_cast<uint32_t>(state.range(0)), 2);
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  std::vector<std::vector<uint32_t>> adj(graph.num_nodes());
  std::vector<uint32_t> nodes(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    adj[i] = graph.Children(i);
    nodes[i] = i;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindElementaryCycles(adj, nodes, 4096));
  }
}
BENCHMARK(BM_JohnsonBudgeted)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReorderEndToEnd(benchmark::State& state) {
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReorderTransactions(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderEndToEnd)->Arg(128)->Arg(512)->Arg(1024);

void BM_ReorderPaperMicroShift(benchmark::State& state) {
  // The Figure 15 input at full shift (conflict-free after reordering).
  const auto sets = workload::MakeShiftedReadWriteSequence(1024, 0);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReorderTransactions(rwsets));
  }
}
BENCHMARK(BM_ReorderPaperMicroShift);

void BM_ScheduleAcyclic(benchmark::State& state) {
  const auto sets = workload::MakeShiftedReadWriteSequence(
      static_cast<uint32_t>(state.range(0)), 0);
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  std::vector<uint32_t> alive(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) alive[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleAcyclic(graph, alive));
  }
}
BENCHMARK(BM_ScheduleAcyclic)->Arg(256)->Arg(1024);

// --- Parallel reorder engine (DESIGN.md §10) ---

void BM_ConflictGraphParallel(benchmark::State& state) {
  // Sharded parallel build at `range(1)`-way parallelism; range(1) == 1
  // is the serial baseline for the scaling table in EXPERIMENTS.md.
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  const uint32_t workers = static_cast<uint32_t>(state.range(1));
  ThreadPool pool(workers - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ConflictGraph::Build(rwsets, workers > 1 ? &pool : nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConflictGraphParallel)
    ->ArgsProduct({{512, 2048}, {1, 2, 4}});

void BM_ReorderEndToEndParallel(benchmark::State& state) {
  // Full pass (graph build + SCC enumeration fan-out) at range(1)-way
  // parallelism over a cycle-heavy batch, so the per-SCC enumeration
  // tasks dominate and actually exercise the worker pool.
  const auto sets = workload::MakeCycleSequence(
      static_cast<uint32_t>(state.range(0)), 16);
  const auto rwsets = workload::AsPointers(sets);
  const uint32_t workers = static_cast<uint32_t>(state.range(1));
  ThreadPool pool(workers - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReorderTransactions(rwsets, {}, workers > 1 ? &pool : nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderEndToEndParallel)
    ->ArgsProduct({{512, 2048}, {1, 2, 4}});

// --- ScheduleAcyclic linear-time regression guards ---
//
// Both graphs made the paper's parent-chasing traversal quadratic: the seed
// implementation re-scanned parent lists from index 0 on every visit. With
// the monotonic scan positions these complete in O(V + E); a regression to
// the quadratic scan makes the 10k-transaction runs ~1000x slower and is
// unmissable in the committed BENCH_reorder.json.

void BM_ScheduleAcyclicChain10k(benchmark::State& state) {
  // tx i reads k_{i-1} and writes k_i: one 10k-deep dependency chain.
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<proto::ReadWriteSet> sets(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (i > 0) {
      sets[i].reads.push_back(
          {StrFormat("k%u", i - 1), proto::kNilVersion});
    }
    sets[i].writes.push_back({StrFormat("k%u", i), "v", false});
  }
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  std::vector<uint32_t> alive(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) alive[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleAcyclic(graph, alive));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleAcyclicChain10k)->Arg(10000);

void BM_ScheduleAcyclicHotReader10k(benchmark::State& state) {
  // One reader of n-1 disjoint writers' keys, *first* in batch order: the
  // traversal starts there, schedules one writer per return to the start
  // node, and the seed re-scanned the reader's n-1 parents from the front
  // on every return — the measured quadratic case (~2.6 s at n=10k vs
  // ~0.2 ms for the monotonic-position rewrite).
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<proto::ReadWriteSet> sets(n);
  for (uint32_t i = 1; i < n; ++i) {
    sets[i].writes.push_back({StrFormat("k%u", i), "v", false});
    sets[0].reads.push_back({StrFormat("k%u", i), proto::kNilVersion});
  }
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  std::vector<uint32_t> alive(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) alive[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleAcyclic(graph, alive));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleAcyclicHotReader10k)->Arg(10000);

}  // namespace
}  // namespace fabricpp::ordering

// Custom main so CI can pass `--smoke`: expands to a 0.05s minimum
// measurement time per benchmark (libbenchmark 1.7 takes a plain double),
// keeping the full matrix runnable as a fast sanity pass that still emits
// a complete BENCH_reorder.json via --benchmark_out.
int main(int argc, char** argv) {
  static char min_time_arg[] = "--benchmark_min_time=0.05";
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.push_back(min_time_arg);
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
