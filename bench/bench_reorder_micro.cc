// google-benchmark timings of the reordering pipeline's stages (ablation of
// the design choices in DESIGN.md §5): conflict-graph construction (sparse
// inverted-index vs the paper's dense bit-vector build), Tarjan SCC
// decomposition, Johnson cycle enumeration, schedule generation, and the
// end-to-end reorder pass.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/strings.h"
#include "ordering/conflict_graph.h"
#include "ordering/johnson.h"
#include "ordering/reorderer.h"
#include "ordering/tarjan.h"
#include "workload/micro_sequences.h"

namespace fabricpp::ordering {
namespace {

std::vector<proto::ReadWriteSet> MakeBatch(uint32_t n, uint32_t num_keys,
                                           uint32_t accesses) {
  Rng rng(0xbe9c4);
  std::vector<proto::ReadWriteSet> sets(n);
  for (auto& set : sets) {
    for (uint32_t i = 0; i < accesses; ++i) {
      set.reads.push_back(
          {StrFormat("k%llu", static_cast<unsigned long long>(
                                  rng.NextUint64(num_keys))),
           proto::kNilVersion});
      set.writes.push_back(
          {StrFormat("k%llu", static_cast<unsigned long long>(
                                  rng.NextUint64(num_keys))),
           "v", false});
    }
  }
  return sets;
}

void BM_ConflictGraphSparse(benchmark::State& state) {
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConflictGraph::Build(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConflictGraphSparse)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ConflictGraphDense(benchmark::State& state) {
  // The paper's n^2 bit-vector construction, for comparison.
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConflictGraph::BuildDense(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConflictGraphDense)->Arg(128)->Arg(512)->Arg(1024);

void BM_TarjanScc(benchmark::State& state) {
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 1024, 4);
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StronglyConnectedComponents(
        static_cast<uint32_t>(graph.num_nodes()),
        [&](uint32_t v) -> const std::vector<uint32_t>& {
          return graph.Children(v);
        }));
  }
}
BENCHMARK(BM_TarjanScc)->Arg(512)->Arg(1024)->Arg(2048);

void BM_JohnsonBudgeted(benchmark::State& state) {
  const auto sets = MakeBatch(256, static_cast<uint32_t>(state.range(0)), 2);
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  std::vector<std::vector<uint32_t>> adj(graph.num_nodes());
  std::vector<uint32_t> nodes(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    adj[i] = graph.Children(i);
    nodes[i] = i;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindElementaryCycles(adj, nodes, 4096));
  }
}
BENCHMARK(BM_JohnsonBudgeted)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReorderEndToEnd(benchmark::State& state) {
  const auto sets =
      MakeBatch(static_cast<uint32_t>(state.range(0)), 4096, 4);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReorderTransactions(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderEndToEnd)->Arg(128)->Arg(512)->Arg(1024);

void BM_ReorderPaperMicroShift(benchmark::State& state) {
  // The Figure 15 input at full shift (conflict-free after reordering).
  const auto sets = workload::MakeShiftedReadWriteSequence(1024, 0);
  const auto rwsets = workload::AsPointers(sets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReorderTransactions(rwsets));
  }
}
BENCHMARK(BM_ReorderPaperMicroShift);

void BM_ScheduleAcyclic(benchmark::State& state) {
  const auto sets = workload::MakeShiftedReadWriteSequence(
      static_cast<uint32_t>(state.range(0)), 0);
  const ConflictGraph graph = ConflictGraph::Build(workload::AsPointers(sets));
  std::vector<uint32_t> alive(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) alive[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScheduleAcyclic(graph, alive));
  }
}
BENCHMARK(BM_ScheduleAcyclic)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace fabricpp::ordering

BENCHMARK_MAIN();
