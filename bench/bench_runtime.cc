// Runtime smoke comparison: the Figure 8 Smallbank workload (write-heavy,
// contended) executed once on the deterministic simulation runtime and once
// on the thread runtime. Not a like-for-like perf race — sim seconds are
// virtual and cost-modeled, thread seconds are wall-clock with no virtual
// CPU charges — but it proves both substrates drive the identical node
// state machines end-to-end and publishes the numbers as BENCH_runtime.json.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

double RuntimeBenchSeconds() {
  if (const char* env = std::getenv("FABRICPP_BENCH_RUNTIME_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) return seconds;
  }
  return 2.0;  // Wall-clock for the thread run — keep the smoke short.
}

fabric::FabricConfig BenchConfig(const std::string& runtime_mode) {
  fabric::FabricConfig config = fabric::FabricConfig::FabricPlusPlus();
  config.runtime_mode = runtime_mode;
  config.client_fire_rate_tps = 512.0;
  config.block.max_transactions = 256;
  config.block.batch_timeout = 250 * sim::kMillisecond;
  return config;
}

struct Row {
  std::string mode;
  fabric::RunReport report;
};

void Run() {
  PrintHeader("Runtime smoke — sim vs thread on Smallbank (Fig. 8 workload)",
              "Figure 8, Section 6.4.1 workload; runtime abstraction check");

  workload::SmallbankConfig wl;
  wl.num_users = 10000;
  wl.prob_write = 0.95;
  wl.zipf_s = 1.0;
  workload::SmallbankWorkload workload(wl);

  const double seconds = RuntimeBenchSeconds();
  const auto duration = static_cast<sim::SimTime>(seconds * sim::kSecond);
  const auto warmup = static_cast<sim::SimTime>(0.2 * seconds * sim::kSecond);

  Row rows[2] = {{"sim", {}}, {"thread", {}}};
  for (Row& row : rows) {
    fabric::FabricNetwork network(BenchConfig(row.mode), &workload);
    row.report = network.RunFor(duration, warmup);
    std::printf("\n[%s] %s\n", row.mode.c_str(),
                row.report.ToString().c_str());
  }

  std::FILE* out = std::fopen("BENCH_runtime.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"runtime_smoke_smallbank\",\n");
  std::fprintf(out, "  \"seconds\": %.3f,\n", seconds);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < 2; ++i) {
    const fabric::RunReport& r = rows[i].report;
    std::fprintf(out,
                 "    {\"runtime\": \"%s\", \"successful\": %llu, "
                 "\"failed\": %llu, \"successful_tps\": %.2f, "
                 "\"blocks_committed\": %llu, \"latency_p50_ms\": %.3f, "
                 "\"latency_p95_ms\": %.3f}%s\n",
                 rows[i].mode.c_str(),
                 static_cast<unsigned long long>(r.successful),
                 static_cast<unsigned long long>(r.failed), r.successful_tps,
                 static_cast<unsigned long long>(r.blocks_committed),
                 r.latency_p50_ms, r.latency_p95_ms, i == 0 ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_runtime.json\n");

  if (rows[0].report.successful == 0 || rows[1].report.successful == 0) {
    std::fprintf(stderr, "runtime smoke: a substrate committed nothing\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
