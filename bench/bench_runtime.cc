// Runtime smoke comparison: the Figure 8 Smallbank workload (write-heavy,
// contended) executed once on the deterministic simulation runtime, once on
// the thread runtime, and once on the socket runtime (an in-process
// LocalSocketCluster — separate hosts joined by loopback TCP). Not a
// like-for-like perf race — sim seconds are virtual and cost-modeled,
// thread/socket seconds are wall-clock — but it proves all three substrates
// drive the identical node state machines end-to-end. Publishes
// BENCH_runtime.json (sim + thread, schema unchanged) and
// BENCH_socket.json (socket leg + the socket/thread throughput ratio; the
// run fails below FABRICPP_BENCH_SOCKET_MIN_RATIO, default 0.5).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fabric/socket_host.h"
#include "harness.h"
#include "workload/smallbank.h"

namespace fabricpp::bench {
namespace {

double RuntimeBenchSeconds() {
  if (const char* env = std::getenv("FABRICPP_BENCH_RUNTIME_SECONDS")) {
    const double seconds = std::atof(env);
    if (seconds > 0) return seconds;
  }
  return 2.0;  // Wall-clock for the thread run — keep the smoke short.
}

double SocketMinRatio() {
  if (const char* env = std::getenv("FABRICPP_BENCH_SOCKET_MIN_RATIO")) {
    return std::atof(env);  // 0 disables the gate.
  }
  return 0.5;
}

fabric::FabricConfig BenchConfig(const std::string& runtime_mode) {
  fabric::FabricConfig config = fabric::FabricConfig::FabricPlusPlus();
  config.runtime_mode = runtime_mode;
  config.client_fire_rate_tps = 512.0;
  config.block.max_transactions = 256;
  config.block.batch_timeout = 250 * sim::kMillisecond;
  return config;
}

struct Row {
  std::string mode;
  fabric::RunReport report;
};

void Run() {
  PrintHeader("Runtime smoke — sim vs thread on Smallbank (Fig. 8 workload)",
              "Figure 8, Section 6.4.1 workload; runtime abstraction check");

  workload::SmallbankConfig wl;
  wl.num_users = 10000;
  wl.prob_write = 0.95;
  wl.zipf_s = 1.0;
  workload::SmallbankWorkload workload(wl);

  const double seconds = RuntimeBenchSeconds();
  const auto duration = static_cast<sim::SimTime>(seconds * sim::kSecond);
  const auto warmup = static_cast<sim::SimTime>(0.2 * seconds * sim::kSecond);

  Row rows[2] = {{"sim", {}}, {"thread", {}}};
  for (Row& row : rows) {
    fabric::FabricNetwork network(BenchConfig(row.mode), &workload);
    row.report = network.RunFor(duration, warmup);
    std::printf("\n[%s] %s\n", row.mode.c_str(),
                row.report.ToString().c_str());
  }

  std::FILE* out = std::fopen("BENCH_runtime.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"runtime_smoke_smallbank\",\n");
  std::fprintf(out, "  \"seconds\": %.3f,\n", seconds);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < 2; ++i) {
    const fabric::RunReport& r = rows[i].report;
    std::fprintf(out,
                 "    {\"runtime\": \"%s\", \"successful\": %llu, "
                 "\"failed\": %llu, \"successful_tps\": %.2f, "
                 "\"blocks_committed\": %llu, \"latency_p50_ms\": %.3f, "
                 "\"latency_p95_ms\": %.3f}%s\n",
                 rows[i].mode.c_str(),
                 static_cast<unsigned long long>(r.successful),
                 static_cast<unsigned long long>(r.failed), r.successful_tps,
                 static_cast<unsigned long long>(r.blocks_committed),
                 r.latency_p50_ms, r.latency_p95_ms, i == 0 ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_runtime.json\n");

  if (rows[0].report.successful == 0 || rows[1].report.successful == 0) {
    std::fprintf(stderr, "runtime smoke: a substrate committed nothing\n");
    std::exit(1);
  }

  // --- Socket leg: the same workload against an in-process TCP cluster ---
  fabric::RunReport socket_report;
  uint64_t chain_height = 0;
  fabric::TransportCounters transport;
  {
    fabric::LocalSocketCluster cluster(BenchConfig("socket"), &workload);
    if (!cluster.clients().WaitForCluster(15000)) {
      std::fprintf(stderr, "socket leg: cluster never connected\n");
      std::exit(1);
    }
    socket_report = cluster.clients().RunClients(duration, warmup);
    // Blocks commit on the peer hosts; chain height comes from the
    // convergence poll, not the local report.
    for (const auto& pr : cluster.clients().CollectPeerReports(15000)) {
      for (const auto& info : pr.channels) {
        if (info.height > chain_height) chain_height = info.height;
      }
    }
    transport = cluster.clients().metrics().transport_counters();
  }
  std::printf("\n[socket] %s\n", socket_report.ToString().c_str());
  std::printf("[socket] %s\n", transport.ToString().c_str());

  const double ratio =
      rows[1].report.successful_tps > 0
          ? socket_report.successful_tps / rows[1].report.successful_tps
          : 0.0;
  std::printf("\nsocket/thread throughput ratio: %.2f\n", ratio);

  out = std::fopen("BENCH_socket.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_socket.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"runtime_smoke_socket\",\n");
  std::fprintf(out, "  \"seconds\": %.3f,\n", seconds);
  std::fprintf(out, "  \"successful\": %llu,\n",
               static_cast<unsigned long long>(socket_report.successful));
  std::fprintf(out, "  \"failed\": %llu,\n",
               static_cast<unsigned long long>(socket_report.failed));
  std::fprintf(out, "  \"successful_tps\": %.2f,\n",
               socket_report.successful_tps);
  std::fprintf(out, "  \"thread_successful_tps\": %.2f,\n",
               rows[1].report.successful_tps);
  std::fprintf(out, "  \"socket_vs_thread_ratio\": %.3f,\n", ratio);
  std::fprintf(out, "  \"chain_height\": %llu,\n",
               static_cast<unsigned long long>(chain_height));
  std::fprintf(out, "  \"latency_p50_ms\": %.3f,\n",
               socket_report.latency_p50_ms);
  std::fprintf(out, "  \"latency_p95_ms\": %.3f,\n",
               socket_report.latency_p95_ms);
  std::fprintf(out, "  \"socket_frames_sent\": %llu,\n",
               static_cast<unsigned long long>(transport.socket_frames_sent));
  std::fprintf(out, "  \"socket_bytes_sent\": %llu,\n",
               static_cast<unsigned long long>(transport.socket_bytes_sent));
  std::fprintf(out, "  \"framed_bytes\": %llu,\n",
               static_cast<unsigned long long>(transport.framed_bytes));
  std::fprintf(out, "  \"modeled_bytes\": %llu\n",
               static_cast<unsigned long long>(transport.modeled_bytes));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_socket.json\n");

  if (socket_report.successful == 0 || chain_height <= 1) {
    std::fprintf(stderr, "socket leg committed nothing\n");
    std::exit(1);
  }
  const double min_ratio = SocketMinRatio();
  if (min_ratio > 0 && ratio < min_ratio) {
    std::fprintf(stderr, "socket leg below %.0f%% of thread throughput\n",
                 min_ratio * 100);
    std::exit(1);
  }
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
