// google-benchmark timings of the storage-engine substrate: skip list,
// bloom filter, WAL append, SSTable build/lookup, end-to-end Db operations,
// sustained ingest under leveled compaction, block-cache point reads, and
// crash-restart time vs chain length (full WAL replay vs checkpoint +
// WAL-tail recovery). Establishes the per-operation costs that the
// simulation's CostModel abstracts (per_read / per_write /
// commit_per_write).
//
// `--smoke` (used by CI) shortens every measurement to 0.05s AND runs the
// restart-recovery gate afterwards: checkpointed restart must be strictly
// faster than full replay and yield a byte-identical state fingerprint, or
// the binary exits non-zero.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "statedb/persistent_state_db.h"
#include "storage/bloom.h"
#include "storage/db.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace fabricpp::storage {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("fabricpp_bench_" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void BM_SkipListInsert(benchmark::State& state) {
  Rng rng(1);
  SkipList<std::string> list;
  for (auto _ : state) {
    list.Insert(StrFormat("key%llu", static_cast<unsigned long long>(
                                         rng.NextUint64(1 << 20))),
                "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListInsert);

void BM_SkipListLookup(benchmark::State& state) {
  Rng rng(2);
  SkipList<std::string> list;
  for (int i = 0; i < 100000; ++i) {
    list.Insert(StrFormat("key%d", i), "value");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.Find(StrFormat(
        "key%llu", static_cast<unsigned long long>(rng.NextUint64(100000)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListLookup);

void BM_BloomAddAndQuery(benchmark::State& state) {
  BloomFilter filter(100000, 10);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) filter.Add(StrFormat("key%d", i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(StrFormat(
        "key%llu", static_cast<unsigned long long>(rng.NextUint64(200000)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAddAndQuery);

void BM_WalAppend(benchmark::State& state) {
  const std::string dir = ScratchDir("wal");
  WalWriter writer;
  (void)writer.Open(dir + "/wal.log");
  const Bytes payload(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    (void)writer.Append(payload, false);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  writer.Close();
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(1024);

void BM_SstableGet(benchmark::State& state) {
  const std::string dir = ScratchDir("sst");
  SstableBuilder builder;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    builder.Add(StrFormat("key%08d", i), EntryType::kPut, "value");
  }
  (void)builder.Finish(dir + "/t.sst");
  const auto table = Sstable::Open(dir + "/t.sst");
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Get(StrFormat(
        "key%08llu", static_cast<unsigned long long>(rng.NextUint64(n)))));
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_SstableGet)->Arg(1000)->Arg(100000);

void BM_DbPut(benchmark::State& state) {
  const std::string dir = ScratchDir("dbput");
  auto db = Db::Open(dir);
  Rng rng(5);
  for (auto _ : state) {
    (void)(*db)->Put(StrFormat("key%llu", static_cast<unsigned long long>(
                                              rng.NextUint64(1 << 18))),
                     "value-of-moderate-size-for-state-db");
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_DbPut);

void BM_DbGetMixed(benchmark::State& state) {
  const std::string dir = ScratchDir("dbget");
  auto db = Db::Open(dir);
  for (int i = 0; i < 50000; ++i) {
    (void)(*db)->Put(StrFormat("key%d", i), "value");
    if (i % 20000 == 19999) (void)(*db)->Flush();
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(StrFormat(
        "key%llu", static_cast<unsigned long long>(rng.NextUint64(50000)))));
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_DbGetMixed);

// --- Block commit: group commit (one batch WAL record per block) vs the
// per-key sync path (one synced WAL record per write + a separate height
// write). Reports appends/fsyncs per block alongside commit latency —
// the numbers behind DESIGN.md's commit-path atomicity section.

void BM_BlockCommitGroup(benchmark::State& state) {
  const std::string dir = ScratchDir("commit_group");
  DbOptions options;
  options.sync_mode = WalSyncMode::kBlock;
  auto db = Db::Open(dir, options);
  const int writes_per_block = static_cast<int>(state.range(0));
  uint64_t block = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int i = 0; i < writes_per_block; ++i) {
      batch.Put(StrFormat("key%06d", i),
                "value-of-moderate-size-for-state-db");
    }
    batch.Put("height", std::to_string(++block));
    (void)(*db)->ApplyBatch(batch);
  }
  state.SetItemsProcessed(state.iterations() * writes_per_block);
  state.counters["wal_appends_per_block"] =
      static_cast<double>((*db)->wal_appends()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["wal_syncs_per_block"] =
      static_cast<double>((*db)->wal_syncs()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_BlockCommitGroup)->Arg(64)->Arg(256)->Arg(1024);

void BM_BlockCommitPerKeySync(benchmark::State& state) {
  const std::string dir = ScratchDir("commit_perkey");
  DbOptions options;
  options.sync_mode = WalSyncMode::kEveryWrite;
  auto db = Db::Open(dir, options);
  const int writes_per_block = static_cast<int>(state.range(0));
  uint64_t block = 0;
  for (auto _ : state) {
    for (int i = 0; i < writes_per_block; ++i) {
      (void)(*db)->Put(StrFormat("key%06d", i),
                       "value-of-moderate-size-for-state-db");
    }
    (void)(*db)->Put("height", std::to_string(++block));
  }
  state.SetItemsProcessed(state.iterations() * writes_per_block);
  state.counters["wal_appends_per_block"] =
      static_cast<double>((*db)->wal_appends()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["wal_syncs_per_block"] =
      static_cast<double>((*db)->wal_syncs()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_BlockCommitPerKeySync)->Arg(64)->Arg(256)->Arg(1024);

// --- Sustained ingest under leveled compaction ---

void BM_SustainedIngest(benchmark::State& state) {
  const std::string dir = ScratchDir("ingest");
  DbOptions options;
  options.memtable_max_bytes = 64 << 10;  // force steady flush/compact churn
  options.level_base_bytes = 512 << 10;
  options.target_file_bytes = 128 << 10;
  options.sync_mode = WalSyncMode::kNone;
  auto db = Db::Open(dir, options);
  Rng rng(0x1a6e57);
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    (void)(*db)->Put(
        StrFormat("key%08llu",
                  static_cast<unsigned long long>(rng.NextUint64(1 << 18))),
        value);
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) + 11));
  state.counters["flushes"] = static_cast<double>((*db)->stats().flushes);
  state.counters["compactions"] =
      static_cast<double>((*db)->stats().compactions);
  state.counters["compaction_mb"] =
      static_cast<double>((*db)->stats().compaction_bytes_written) / 1e6;
  state.counters["levels"] = static_cast<double>((*db)->num_levels());
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_SustainedIngest)->Arg(64)->Arg(512);

// --- Block-cache point reads (Arg: cache bytes; 0 = disabled) ---

void BM_PointReadWithCache(benchmark::State& state) {
  const std::string dir = ScratchDir("cache_read");
  DbOptions options;
  options.block_cache_bytes = static_cast<size_t>(state.range(0));
  options.sync_mode = WalSyncMode::kNone;
  auto db = Db::Open(dir, options);
  for (int i = 0; i < 50000; ++i) {
    (void)(*db)->Put(StrFormat("key%06d", i), "value-of-moderate-size");
  }
  (void)(*db)->CompactAll();
  Rng rng(0xcac4e);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(StrFormat(
        "key%06llu",
        static_cast<unsigned long long>(rng.NextUint64(50000)))));
  }
  state.SetItemsProcessed(state.iterations());
  const uint64_t hits = (*db)->block_cache_hits();
  const uint64_t misses = (*db)->block_cache_misses();
  state.counters["hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_PointReadWithCache)->Arg(0)->Arg(4 << 20);

// --- Crash-restart time vs chain length ---

/// Applies `blocks` small blocks through the atomic commit path.
void ApplyChain(statedb::PersistentStateDb* db, uint64_t blocks,
                uint64_t start = 1) {
  for (uint64_t h = start; h <= blocks; ++h) {
    std::vector<proto::WriteItem> writes;
    for (int k = 0; k < 4; ++k) {
      writes.push_back({StrFormat("acct%05llu",
                            static_cast<unsigned long long>(
                                (h * 17 + k * 7) % 4096)),
                        StrFormat("bal-%llu-%d",
                            static_cast<unsigned long long>(h), k),
                        false});
    }
    (void)db->ApplyBlock(writes, proto::Version{h, 0}, h);
  }
}

/// Removes the live table set (MANIFEST + *.sst), keeping WAL+checkpoints —
/// the crash the snapshot recovery path exists for.
void DropLiveTables(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename() == "MANIFEST" ||
        entry.path().extension() == ".sst") {
      fs::remove(entry.path());
    }
  }
}

void BM_RestartFullReplay(benchmark::State& state) {
  const std::string dir = ScratchDir("restart_replay");
  const uint64_t blocks = static_cast<uint64_t>(state.range(0));
  DbOptions options;
  options.sync_mode = WalSyncMode::kNone;
  // A large memtable keeps the whole chain in the WAL: restart must replay
  // every block ever committed.
  options.memtable_max_bytes = 256 << 20;
  {
    auto db = statedb::PersistentStateDb::Open(dir, options);
    ApplyChain(db->get(), blocks);
  }
  for (auto _ : state) {
    auto db = statedb::PersistentStateDb::Open(dir, options);
    benchmark::DoNotOptimize((*db)->last_committed_block());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(blocks));
  fs::remove_all(dir);
}
BENCHMARK(BM_RestartFullReplay)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_RestartFromCheckpoint(benchmark::State& state) {
  const std::string dir = ScratchDir("restart_ckpt");
  const uint64_t blocks = static_cast<uint64_t>(state.range(0));
  DbOptions options;
  options.sync_mode = WalSyncMode::kNone;
  options.memtable_max_bytes = 256 << 20;
  options.checkpoint_dir = dir + "-ckpts";
  options.checkpoint_interval_blocks = static_cast<uint32_t>(blocks);
  fs::remove_all(options.checkpoint_dir);
  {
    auto db = statedb::PersistentStateDb::Open(dir, options);
    ApplyChain(db->get(), blocks);
  }
  for (auto _ : state) {
    state.PauseTiming();
    DropLiveTables(dir);  // recovery rebuilds them from the snapshot
    state.ResumeTiming();
    auto db = statedb::PersistentStateDb::Open(dir, options);
    benchmark::DoNotOptimize((*db)->last_committed_block());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(blocks));
  fs::remove_all(dir);
  fs::remove_all(options.checkpoint_dir);
}
BENCHMARK(BM_RestartFromCheckpoint)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// The CI smoke gate: after N blocks, checkpoint + WAL-tail restart must
/// be strictly faster than full WAL replay AND byte-identical in state.
/// Returns true on pass.
bool RunRestartSmokeGate() {
  constexpr uint64_t kBlocks = 2048;
  const std::string replay_dir = ScratchDir("gate_replay");
  const std::string ckpt_dir = ScratchDir("gate_ckpt");
  DbOptions replay_options;
  replay_options.sync_mode = WalSyncMode::kNone;
  replay_options.memtable_max_bytes = 256 << 20;
  DbOptions ckpt_options = replay_options;
  ckpt_options.checkpoint_dir = ckpt_dir + "-ckpts";
  ckpt_options.checkpoint_interval_blocks = kBlocks;
  fs::remove_all(ckpt_options.checkpoint_dir);
  {
    auto db = statedb::PersistentStateDb::Open(replay_dir, replay_options);
    ApplyChain(db->get(), kBlocks);
  }
  {
    auto db = statedb::PersistentStateDb::Open(ckpt_dir, ckpt_options);
    ApplyChain(db->get(), kBlocks);
  }
  DropLiveTables(ckpt_dir);

  using Clock = std::chrono::steady_clock;
  const auto replay_start = Clock::now();
  auto replayed = statedb::PersistentStateDb::Open(replay_dir,
                                                   replay_options);
  const double replay_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - replay_start)
          .count();
  const auto ckpt_start = Clock::now();
  auto recovered = statedb::PersistentStateDb::Open(ckpt_dir, ckpt_options);
  const double ckpt_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - ckpt_start)
          .count();

  bool ok = true;
  if (!replayed.ok() || !recovered.ok()) {
    std::fprintf(stderr, "SMOKE GATE: recovery open failed\n");
    ok = false;
  } else {
    const std::string fp_replay = (*replayed)->StateFingerprint();
    const std::string fp_ckpt = (*recovered)->StateFingerprint();
    if ((*recovered)->recovered_checkpoint_height() != kBlocks) {
      std::fprintf(stderr,
                   "SMOKE GATE: recovery ignored the checkpoint "
                   "(recovered_checkpoint_height=%llu)\n",
                   static_cast<unsigned long long>(
                       (*recovered)->recovered_checkpoint_height()));
      ok = false;
    }
    if (fp_replay != fp_ckpt) {
      std::fprintf(stderr,
                   "SMOKE GATE: fingerprint mismatch\n  replay: %s\n  "
                   "checkpoint: %s\n",
                   fp_replay.c_str(), fp_ckpt.c_str());
      ok = false;
    }
    if (ckpt_ms >= replay_ms) {
      std::fprintf(stderr,
                   "SMOKE GATE: checkpointed restart (%.2f ms) not faster "
                   "than full replay (%.2f ms)\n",
                   ckpt_ms, replay_ms);
      ok = false;
    }
    if (ok) {
      std::fprintf(stderr,
                   "SMOKE GATE PASS: %llu blocks, full replay %.2f ms, "
                   "checkpointed restart %.2f ms (%.1fx), fingerprints "
                   "match\n",
                   static_cast<unsigned long long>(kBlocks), replay_ms,
                   ckpt_ms, replay_ms / (ckpt_ms > 0 ? ckpt_ms : 1e-9));
    }
  }
  fs::remove_all(replay_dir);
  fs::remove_all(ckpt_dir);
  fs::remove_all(ckpt_options.checkpoint_dir);
  return ok;
}

}  // namespace
}  // namespace fabricpp::storage

// Custom main so CI can pass `--smoke`: expands to a 0.05s minimum
// measurement time per benchmark (keeping BENCH_storage.json complete) and
// additionally runs the restart-recovery gate — checkpoint + WAL-tail
// restart must beat full replay with an identical state fingerprint.
int main(int argc, char** argv) {
  static char min_time_arg[] = "--benchmark_min_time=0.05";
  bool smoke = false;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      args.push_back(min_time_arg);
    } else {
      args.push_back(argv[i]);
    }
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoke && !fabricpp::storage::RunRestartSmokeGate()) return 2;
  return 0;
}
