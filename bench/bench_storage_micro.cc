// google-benchmark timings of the storage-engine substrate: skip list,
// bloom filter, WAL append, SSTable build/lookup, and end-to-end Db
// operations. Establishes the per-operation costs that the simulation's
// CostModel abstracts (per_read / per_write / commit_per_write).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.h"
#include "common/strings.h"
#include "storage/bloom.h"
#include "storage/db.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace fabricpp::storage {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("fabricpp_bench_" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void BM_SkipListInsert(benchmark::State& state) {
  Rng rng(1);
  SkipList<std::string> list;
  for (auto _ : state) {
    list.Insert(StrFormat("key%llu", static_cast<unsigned long long>(
                                         rng.NextUint64(1 << 20))),
                "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListInsert);

void BM_SkipListLookup(benchmark::State& state) {
  Rng rng(2);
  SkipList<std::string> list;
  for (int i = 0; i < 100000; ++i) {
    list.Insert(StrFormat("key%d", i), "value");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.Find(StrFormat(
        "key%llu", static_cast<unsigned long long>(rng.NextUint64(100000)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListLookup);

void BM_BloomAddAndQuery(benchmark::State& state) {
  BloomFilter filter(100000, 10);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) filter.Add(StrFormat("key%d", i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(StrFormat(
        "key%llu", static_cast<unsigned long long>(rng.NextUint64(200000)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAddAndQuery);

void BM_WalAppend(benchmark::State& state) {
  const std::string dir = ScratchDir("wal");
  WalWriter writer;
  (void)writer.Open(dir + "/wal.log");
  const Bytes payload(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    (void)writer.Append(payload, false);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  writer.Close();
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(1024);

void BM_SstableGet(benchmark::State& state) {
  const std::string dir = ScratchDir("sst");
  SstableBuilder builder;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    builder.Add(StrFormat("key%08d", i), EntryType::kPut, "value");
  }
  (void)builder.Finish(dir + "/t.sst");
  const auto table = Sstable::Open(dir + "/t.sst");
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Get(StrFormat(
        "key%08llu", static_cast<unsigned long long>(rng.NextUint64(n)))));
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_SstableGet)->Arg(1000)->Arg(100000);

void BM_DbPut(benchmark::State& state) {
  const std::string dir = ScratchDir("dbput");
  auto db = Db::Open(dir);
  Rng rng(5);
  for (auto _ : state) {
    (void)(*db)->Put(StrFormat("key%llu", static_cast<unsigned long long>(
                                              rng.NextUint64(1 << 18))),
                     "value-of-moderate-size-for-state-db");
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_DbPut);

void BM_DbGetMixed(benchmark::State& state) {
  const std::string dir = ScratchDir("dbget");
  auto db = Db::Open(dir);
  for (int i = 0; i < 50000; ++i) {
    (void)(*db)->Put(StrFormat("key%d", i), "value");
    if (i % 20000 == 19999) (void)(*db)->Flush();
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Get(StrFormat(
        "key%llu", static_cast<unsigned long long>(rng.NextUint64(50000)))));
  }
  state.SetItemsProcessed(state.iterations());
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_DbGetMixed);

// --- Block commit: group commit (one batch WAL record per block) vs the
// per-key sync path (one synced WAL record per write + a separate height
// write). Reports appends/fsyncs per block alongside commit latency —
// the numbers behind DESIGN.md's commit-path atomicity section.

void BM_BlockCommitGroup(benchmark::State& state) {
  const std::string dir = ScratchDir("commit_group");
  DbOptions options;
  options.sync_mode = WalSyncMode::kBlock;
  auto db = Db::Open(dir, options);
  const int writes_per_block = static_cast<int>(state.range(0));
  uint64_t block = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int i = 0; i < writes_per_block; ++i) {
      batch.Put(StrFormat("key%06d", i),
                "value-of-moderate-size-for-state-db");
    }
    batch.Put("height", std::to_string(++block));
    (void)(*db)->ApplyBatch(batch);
  }
  state.SetItemsProcessed(state.iterations() * writes_per_block);
  state.counters["wal_appends_per_block"] =
      static_cast<double>((*db)->wal_appends()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["wal_syncs_per_block"] =
      static_cast<double>((*db)->wal_syncs()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_BlockCommitGroup)->Arg(64)->Arg(256)->Arg(1024);

void BM_BlockCommitPerKeySync(benchmark::State& state) {
  const std::string dir = ScratchDir("commit_perkey");
  DbOptions options;
  options.sync_mode = WalSyncMode::kEveryWrite;
  auto db = Db::Open(dir, options);
  const int writes_per_block = static_cast<int>(state.range(0));
  uint64_t block = 0;
  for (auto _ : state) {
    for (int i = 0; i < writes_per_block; ++i) {
      (void)(*db)->Put(StrFormat("key%06d", i),
                       "value-of-moderate-size-for-state-db");
    }
    (void)(*db)->Put("height", std::to_string(++block));
  }
  state.SetItemsProcessed(state.iterations() * writes_per_block);
  state.counters["wal_appends_per_block"] =
      static_cast<double>((*db)->wal_appends()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["wal_syncs_per_block"] =
      static_cast<double>((*db)->wal_syncs()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  db->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_BlockCommitPerKeySync)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace fabricpp::storage

BENCHMARK_MAIN();
