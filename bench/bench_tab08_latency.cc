// Reproduces Table 8: the Hyperledger Caliper run — latency (min/avg/max)
// and successful throughput at a reduced firing rate of 150 proposals/s per
// client (600 tps total), block size 512, custom workload N=10000, RW=4,
// HR=40%, HW=10%, HSS=1%.

#include <cstdio>

#include "harness.h"
#include "workload/custom.h"

namespace fabricpp::bench {
namespace {

void Run() {
  PrintHeader("Table 8 — Caliper-style latency & throughput",
              "Table 8, Section 6.7");

  workload::CustomConfig wl;
  wl.num_accounts = 10000;
  wl.rw_ops = 4;
  wl.hot_read_prob = 0.4;
  wl.hot_write_prob = 0.1;
  wl.hot_set_fraction = 0.01;
  const workload::CustomWorkload workload(wl);

  auto configure = [](fabric::FabricConfig config) {
    config.client_fire_rate_tps = 150;  // 4 clients -> 600 tps total.
    config.block.max_transactions = 512;
    return config;
  };
  const fabric::RunReport v =
      RunExperiment(configure(fabric::FabricConfig::Vanilla()), workload);
  const fabric::RunReport p = RunExperiment(
      configure(fabric::FabricConfig::FabricPlusPlus()), workload);

  std::printf("\n%-40s %12s %12s\n", "Metric", "Fabric", "Fabric++");
  std::printf("%-40s %12.2f %12.2f\n", "Max. Latency [seconds]",
              v.latency_max_ms / 1000, p.latency_max_ms / 1000);
  std::printf("%-40s %12.2f %12.2f\n", "Min. Latency [seconds]",
              v.latency_min_ms / 1000, p.latency_min_ms / 1000);
  std::printf("%-40s %12.2f %12.2f\n", "Avg. Latency [seconds]",
              v.latency_avg_ms / 1000, p.latency_avg_ms / 1000);
  std::printf("%-40s %12.1f %12.1f\n",
              "Avg. Successful Transactions per second", v.successful_tps,
              p.successful_tps);
  std::printf(
      "\nPaper: Fabric 1.44/0.26/0.47 s and 188 tps; Fabric++ "
      "1.14/0.12/0.28 s and 299 tps — Fabric++ roughly halves average "
      "latency and raises successful throughput.\n");
}

}  // namespace
}  // namespace fabricpp::bench

int main() {
  fabricpp::bench::Run();
  return 0;
}
