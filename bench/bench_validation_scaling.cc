// Wall-clock scaling of the validator's parallel verify stage.
//
// The paper's validation phase is dominated by endorsement signature checks
// (Appendix A.3.1), and Fabric 1.2 fans them out across validator workers.
// This bench measures the *real* (host wall-clock) speedup of that fan-out
// in fabricpp: one sealed block of endorsed transactions is validated
// repeatedly at increasing `validator_workers`, and the verify-stage time,
// commit-stage time, and speedup vs one worker are reported.
//
// The validation outcome is asserted byte-identical across worker counts —
// parallelism accelerates the crypto, never the simulation.
//
// Usage: bench_validation_scaling [num_txs] [endorsements_per_tx]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "crypto/identity.h"
#include "peer/endorser.h"
#include "peer/policy.h"
#include "peer/validator.h"
#include "proto/block.h"
#include "statedb/state_db.h"

namespace fabricpp {
namespace {

constexpr uint64_t kSeed = 42;
constexpr size_t kRwsetEntries = 16;  // Reads+writes per transaction.

/// Signs `tx` with one endorser per org (identities A1, B1, ...), exactly
/// like the honest endorsement path, but without chaincode simulation — the
/// bench times verification, not simulation.
void Endorse(proto::Transaction* tx, uint32_t num_orgs) {
  const Bytes payload = peer::EndorsementPayload(
      tx->channel, tx->chaincode, tx->policy_id, tx->rwset);
  for (uint32_t o = 0; o < num_orgs; ++o) {
    const std::string org(1, static_cast<char>('A' + o));
    proto::Endorsement e;
    e.peer = org + "1";
    e.org = org;
    e.signature = crypto::Identity(kSeed, e.peer).Sign(payload);
    tx->endorsements.push_back(std::move(e));
  }
}

proto::Block MakeBlock(size_t num_txs, uint32_t num_orgs,
                       const std::string& policy_id) {
  proto::Block block;
  block.header.number = 1;
  block.transactions.reserve(num_txs);
  for (size_t t = 0; t < num_txs; ++t) {
    proto::Transaction tx;
    tx.proposal_id = t;
    tx.client = "bench-client";
    tx.channel = "ch0";
    tx.chaincode = "bench";
    tx.policy_id = policy_id;
    for (size_t k = 0; k < kRwsetEntries; ++k) {
      const std::string key = StrFormat("acct_%zu_%zu", t, k);
      tx.rwset.reads.push_back({key, proto::kNilVersion});
      tx.rwset.writes.push_back(
          {key, std::string(64, static_cast<char>('a' + k % 26)), false});
    }
    Endorse(&tx, num_orgs);
    proto::Proposal proposal;
    proposal.proposal_id = t;
    proposal.client = tx.client;
    proposal.chaincode = tx.chaincode;
    proposal.nonce = t * 7919 + 1;
    tx.ComputeTxId(proposal);
    block.transactions.push_back(std::move(tx));
  }
  block.SealDataHash();
  return block;
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace
}  // namespace fabricpp

int main(int argc, char** argv) {
  using namespace fabricpp;

  const size_t num_txs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  const uint32_t num_orgs =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 4;
  const int kRounds = 7;

  peer::PolicyRegistry policies;
  peer::EndorsementPolicy policy;
  policy.id = "AND(all-orgs)";
  std::vector<std::string> signer_names;
  for (uint32_t o = 0; o < num_orgs; ++o) {
    const std::string org(1, static_cast<char>('A' + o));
    policy.required_orgs.push_back(org);
    signer_names.push_back(org + "1");
  }
  const std::string policy_id = policy.id;
  (void)policies.Register(std::move(policy));

  const proto::Block block = MakeBlock(num_txs, num_orgs, policy_id);
  const uint64_t verifies = num_txs * num_orgs;

  std::printf(
      "bench_validation_scaling: %zu txs/block, %u endorsements/tx "
      "(%llu signature checks), median of %d rounds\n\n",
      num_txs, num_orgs, static_cast<unsigned long long>(verifies), kRounds);
  std::printf("%-8s %12s %12s %12s %10s\n", "workers", "verify_ms",
              "commit_ms", "block_ms", "speedup");

  double baseline_verify_ms = 0;
  std::vector<proto::TxValidationCode> baseline_codes;

  for (const uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
    ThreadPool pool(workers - 1);
    peer::Validator validator(kSeed, &policies,
                              workers > 1 ? &pool : nullptr);
    validator.PrewarmIdentities(signer_names);

    // Warm-up round (page in the block, spin up threads), then measure.
    (void)validator.VerifyEndorsements(block);

    std::vector<double> verify_ms, commit_ms;
    std::vector<proto::TxValidationCode> codes;
    for (int r = 0; r < kRounds; ++r) {
      // Fresh state each round: ValidateAndCommit mutates the db.
      statedb::StateDb db;
      const peer::BlockValidationResult result =
          validator.ValidateAndCommit(block, &db, nullptr);
      verify_ms.push_back(static_cast<double>(result.verify_wall_ns) / 1e6);
      commit_ms.push_back(static_cast<double>(result.commit_wall_ns) / 1e6);
      codes = result.codes;
    }

    const double v = MedianMs(verify_ms);
    const double c = MedianMs(commit_ms);
    if (workers == 1) {
      baseline_verify_ms = v;
      baseline_codes = codes;
    } else if (codes != baseline_codes) {
      std::fprintf(stderr,
                   "FATAL: validation codes changed at %u workers — "
                   "parallelism must not affect outcomes\n",
                   workers);
      return 1;
    }
    std::printf("%-8u %12.2f %12.2f %12.2f %9.2fx\n", workers, v, c, v + c,
                baseline_verify_ms / v);
  }

  std::printf(
      "\nverify = parallel policy+signature stage, commit = sequential "
      "MVCC/write stage;\nspeedup is verify-stage wall-clock vs 1 worker. "
      "Validation codes are asserted\nidentical across all worker counts.\n");
  return 0;
}
