#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fabricpp::bench {

double MeasureSeconds() {
  if (const char* env = std::getenv("FABRICPP_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  if (const char* env = std::getenv("FABRICPP_BENCH_FULL")) {
    if (std::string(env) == "1") return 90.0;  // Paper-length runs.
  }
  return 12.0;
}

double WarmupSeconds() {
  const double w = MeasureSeconds() * 0.2;
  return w > 5.0 ? 5.0 : w;
}

fabric::RunReport RunExperiment(const fabric::FabricConfig& config,
                                const workload::Workload& workload) {
  fabric::FabricNetwork network(config, &workload);
  const auto duration =
      static_cast<sim::SimTime>(MeasureSeconds() * 1e6);
  const auto warmup = static_cast<sim::SimTime>(WarmupSeconds() * 1e6);
  return network.RunFor(duration, warmup);
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Virtual run: %.0fs measured (+%.0fs warmup). "
              "FABRICPP_BENCH_FULL=1 for paper-length 90s runs.\n",
              MeasureSeconds(), WarmupSeconds());
  std::printf("==============================================================\n");
}

void PrintComparisonRow(const std::string& label,
                        const fabric::RunReport& vanilla,
                        const fabric::RunReport& plusplus) {
  const double factor = vanilla.successful_tps > 0
                            ? plusplus.successful_tps / vanilla.successful_tps
                            : 0.0;
  std::printf(
      "%-34s | fabric %8.1f tps (fail %7.1f) | fabric++ %8.1f tps "
      "(fail %7.1f) | x%.2f\n",
      label.c_str(), vanilla.successful_tps, vanilla.failed_tps,
      plusplus.successful_tps, plusplus.failed_tps, factor);
}

}  // namespace fabricpp::bench
