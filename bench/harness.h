#ifndef FABRICPP_BENCH_HARNESS_H_
#define FABRICPP_BENCH_HARNESS_H_

#include <memory>
#include <string>

#include "fabric/config.h"
#include "fabric/metrics.h"
#include "fabric/network.h"
#include "workload/workload.h"

namespace fabricpp::bench {

/// How long each experiment fires transactions, in virtual seconds.
///
/// The paper runs 90 s per configuration; the default here is chosen so the
/// full figure sweeps finish in minutes on a laptop while the reported
/// shapes are stable. Override with FABRICPP_BENCH_SECONDS=<n> or set
/// FABRICPP_BENCH_FULL=1 for paper-length runs.
double MeasureSeconds();

/// Virtual warm-up excluded from measurement (default 20% of the run,
/// at most 5 s).
double WarmupSeconds();

/// Builds a network for `config` + `workload`, runs it, returns the report.
fabric::RunReport RunExperiment(const fabric::FabricConfig& config,
                                const workload::Workload& workload);

/// Prints a bench header naming the paper experiment being reproduced.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// Prints one comparison row: configuration label + vanilla vs Fabric++.
void PrintComparisonRow(const std::string& label,
                        const fabric::RunReport& vanilla,
                        const fabric::RunReport& plusplus);

}  // namespace fabricpp::bench

#endif  // FABRICPP_BENCH_HARNESS_H_
