// The paper's running example (Appendix A): organizations A and B transfer
// money between two balances. Demonstrates the full workflow — simulation
// with read/write sets, ordering, endorsement-policy validation (including
// a malicious client whose tampered transaction is rejected), and the MVCC
// serializability check invalidating a stale transaction.
//
//   $ ./build/examples/asset_transfer

#include <cstdio>

#include "chaincode/builtin_chaincodes.h"
#include "fabric/network.h"
#include "peer/endorser.h"
#include "workload/workload.h"

using namespace fabricpp;

namespace {

struct AssetWorkload : workload::Workload {
  std::string chaincode() const override { return "asset_transfer"; }
  void SeedState(statedb::StateDb* db) const override {
    // BalA = 100, BalB = 50 — the state of Appendix A's Figure 12.
    db->SeedInitialState("bal_A", "100");
    db->SeedInitialState("bal_B", "50");
  }
  std::vector<std::string> NextArgs(Rng&) const override { return {}; }
};

void PrintBalances(const fabric::FabricNetwork& network, const char* when) {
  const auto& db = network.peer(0).state_db(0);
  const auto a = db.Get("bal_A");
  const auto b = db.Get("bal_B");
  std::printf("%s: BalA = %s (%s), BalB = %s (%s)\n", when,
              a.ok() ? a->value.c_str() : "?",
              a.ok() ? a->version.ToString().c_str() : "-",
              b.ok() ? b->value.c_str() : "?",
              b.ok() ? b->version.ToString().c_str() : "-");
}

}  // namespace

int main() {
  fabric::FabricConfig config = fabric::FabricConfig::Vanilla();
  config.block.max_transactions = 1;  // One block per transfer, for clarity.

  AssetWorkload workload;
  fabric::FabricNetwork network(config, &workload);
  network.metrics().SetWindow(0, ~0ULL);

  std::printf("== The paper's Appendix A running example ==\n\n");
  PrintBalances(network, "initial state");

  // --- Honest transfer: A pays B 30 (Figure 12's proposal T7). ---
  network.SubmitProposal(0, 0, {"transfer", "A", "B", "30"});
  network.RunUntilIdle();
  PrintBalances(network, "after transfer A->B 30");

  // --- Malicious client (Appendix A.3.1): endorse honestly, then swap in
  //     a doctored write set claiming BalA stays at 100. ---
  std::printf("\n-- malicious client tampers with the write set --\n");
  proto::Proposal evil_proposal;
  evil_proposal.proposal_id = 424242;
  evil_proposal.client = "mallory";
  evil_proposal.channel = "ch0";
  evil_proposal.chaincode = "asset_transfer";
  evil_proposal.args = {"transfer", "A", "B", "20"};

  peer::Endorser endorser_a("A1", "A", config.seed, &network.registry());
  peer::Endorser endorser_b("B1", "B", config.seed, &network.registry());
  const auto resp_a = endorser_a.Endorse(
      evil_proposal, network.default_policy_id(),
      network.peer(0).state_db(0), false);
  const auto resp_b = endorser_b.Endorse(
      evil_proposal, network.default_policy_id(),
      network.peer(2).state_db(0), false);
  if (!resp_a.ok() || !resp_b.ok()) {
    std::printf("endorsement failed unexpectedly\n");
    return 1;
  }

  proto::Transaction evil_tx;
  evil_tx.proposal_id = evil_proposal.proposal_id;
  evil_tx.client = evil_proposal.client;
  evil_tx.channel = evil_proposal.channel;
  evil_tx.chaincode = evil_proposal.chaincode;
  evil_tx.policy_id = network.default_policy_id();
  evil_tx.rwset = resp_a->rwset;
  for (auto& write : evil_tx.rwset.writes) {
    if (write.key == "bal_A") write.value = "100";  // Keep the money!
  }
  evil_tx.endorsements = {resp_a->endorsement, resp_b->endorsement};
  evil_tx.ComputeTxId(evil_proposal);
  network.SubmitExternalTransaction(0, evil_tx);
  network.RunUntilIdle();

  const auto evil_code = network.peer(0).ledger(0).GetValidationCode(
      evil_tx.tx_id);
  std::printf("tampered transaction verdict: %s\n",
              evil_code.ok()
                  ? std::string(proto::TxValidationCodeToString(*evil_code))
                        .c_str()
                  : evil_code.status().ToString().c_str());
  PrintBalances(network, "after tampered tx (unchanged)");

  // --- Stale transaction (Appendix A.3.2): endorse T9 against the current
  //     state, commit another transfer first, then submit T9 — its read
  //     set is outdated and the MVCC check rejects it. ---
  std::printf("\n-- serializability conflict: T9 reads stale versions --\n");
  proto::Proposal stale_proposal;
  stale_proposal.proposal_id = 90909;
  stale_proposal.client = "client_c0_0";
  stale_proposal.channel = "ch0";
  stale_proposal.chaincode = "asset_transfer";
  stale_proposal.args = {"transfer", "A", "B", "70"};
  const auto stale_a = endorser_a.Endorse(
      stale_proposal, network.default_policy_id(),
      network.peer(0).state_db(0), false);
  const auto stale_b = endorser_b.Endorse(
      stale_proposal, network.default_policy_id(),
      network.peer(2).state_db(0), false);

  // A competing transfer commits first.
  network.SubmitProposal(0, 1, {"transfer", "B", "A", "10"});
  network.RunUntilIdle();
  PrintBalances(network, "after competing transfer B->A 10");

  proto::Transaction stale_tx;
  stale_tx.proposal_id = stale_proposal.proposal_id;
  stale_tx.client = stale_proposal.client;
  stale_tx.channel = stale_proposal.channel;
  stale_tx.chaincode = stale_proposal.chaincode;
  stale_tx.policy_id = network.default_policy_id();
  stale_tx.rwset = stale_a->rwset;
  stale_tx.endorsements = {stale_a->endorsement, stale_b->endorsement};
  stale_tx.ComputeTxId(stale_proposal);
  network.SubmitExternalTransaction(0, stale_tx);
  network.RunUntilIdle();

  const auto stale_code =
      network.peer(0).ledger(0).GetValidationCode(stale_tx.tx_id);
  std::printf("stale transaction verdict: %s\n",
              stale_code.ok()
                  ? std::string(proto::TxValidationCodeToString(*stale_code))
                        .c_str()
                  : stale_code.status().ToString().c_str());
  PrintBalances(network, "final state");

  // The ledger kept everything — valid and invalid — with tamper-evident
  // hashes (paper §2.2.4).
  const auto& ledger = network.peer(0).ledger(0);
  std::printf("\nledger: height=%llu total_txs=%llu valid_txs=%llu chain=%s\n",
              static_cast<unsigned long long>(ledger.Height()),
              static_cast<unsigned long long>(ledger.TotalTransactions()),
              static_cast<unsigned long long>(ledger.TotalValidTransactions()),
              ledger.VerifyChain().ok() ? "OK" : "BROKEN");
  return 0;
}
