// fabricpp_cli — run a configurable vanilla-Fabric / Fabric++ experiment
// from the command line and print the report. The fifth runnable example,
// and the tool for exploring the design space beyond the paper's figures.
//
//   $ ./build/examples/fabricpp_cli --workload=smallbank --zipf=1.5
//         --seconds=20 --system=both
//   $ ./build/examples/fabricpp_cli --workload=custom --rw=8 --hr=0.4
//         --hw=0.1 --hss=0.01 --blocksize=512 --system=fabric++
//   $ ./build/examples/fabricpp_cli --workload=ycsb --mix=F --raft=3

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "fabric/network.h"
#include "workload/custom.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"

using namespace fabricpp;

namespace {

struct CliOptions {
  std::string workload = "smallbank";
  std::string system = "both";  // fabric | fabric++ | both
  double seconds = 10;
  double zipf = 1.0;
  double prob_write = 0.95;
  uint32_t rw = 8;
  double hr = 0.4, hw = 0.1, hss = 0.01;
  std::string ycsb_mix = "A";
  uint32_t blocksize = 1024;
  uint32_t channels = 1;
  uint32_t clients = 4;
  double rate = 512;
  uint32_t raft = 0;
  uint64_t seed = 42;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

void PrintUsage() {
  std::printf(
      "usage: fabricpp_cli [--workload=smallbank|custom|ycsb|blank]\n"
      "  [--system=fabric|fabric++|both] [--seconds=N] [--seed=N]\n"
      "  [--zipf=S] [--pw=P]                 (smallbank)\n"
      "  [--rw=N] [--hr=P] [--hw=P] [--hss=F]  (custom)\n"
      "  [--mix=A|B|C|F]                     (ycsb)\n"
      "  [--blocksize=N] [--channels=N] [--clients=N] [--rate=TPS]\n"
      "  [--raft=N]  (0 = solo orderer)\n");
}

std::unique_ptr<workload::Workload> MakeWorkload(const CliOptions& options) {
  if (options.workload == "smallbank") {
    workload::SmallbankConfig config;
    config.num_users = 100000;
    config.prob_write = options.prob_write;
    config.zipf_s = options.zipf;
    return std::make_unique<workload::SmallbankWorkload>(config);
  }
  if (options.workload == "custom") {
    workload::CustomConfig config;
    config.num_accounts = 10000;
    config.rw_ops = options.rw;
    config.hot_read_prob = options.hr;
    config.hot_write_prob = options.hw;
    config.hot_set_fraction = options.hss;
    return std::make_unique<workload::CustomWorkload>(config);
  }
  if (options.workload == "ycsb") {
    workload::YcsbConfig config;
    config.zipf_s = options.zipf;
    if (options.ycsb_mix == "A") config.mix = workload::YcsbMix::kA;
    else if (options.ycsb_mix == "B") config.mix = workload::YcsbMix::kB;
    else if (options.ycsb_mix == "C") config.mix = workload::YcsbMix::kC;
    else config.mix = workload::YcsbMix::kF;
    return std::make_unique<workload::YcsbWorkload>(config);
  }
  if (options.workload == "blank") {
    return std::make_unique<workload::BlankWorkload>();
  }
  return nullptr;
}

void RunOne(const CliOptions& options, bool plusplus,
            const workload::Workload& wl) {
  fabric::FabricConfig config = plusplus
                                    ? fabric::FabricConfig::FabricPlusPlus()
                                    : fabric::FabricConfig::Vanilla();
  config.block.max_transactions = options.blocksize;
  config.num_channels = options.channels;
  config.clients_per_channel = options.clients;
  config.client_fire_rate_tps = options.rate;
  config.seed = options.seed;
  if (options.raft > 0) {
    config.ordering_backend = fabric::OrderingBackend::kRaft;
    config.raft_cluster_size = options.raft;
  }
  fabric::FabricNetwork network(config, &wl);
  const auto duration = static_cast<sim::SimTime>(options.seconds * 1e6);
  const fabric::RunReport report =
      network.RunFor(duration, duration / 5 < 5000000 ? duration / 5
                                                      : 5000000);
  std::printf("%-9s %s\n", plusplus ? "fabric++:" : "fabric:",
              report.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--workload", &value)) options.workload = value;
    else if (ParseFlag(argv[i], "--system", &value)) options.system = value;
    else if (ParseFlag(argv[i], "--seconds", &value)) options.seconds = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--zipf", &value)) options.zipf = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--pw", &value)) options.prob_write = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--rw", &value)) options.rw = std::atoi(value.c_str());
    else if (ParseFlag(argv[i], "--hr", &value)) options.hr = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--hw", &value)) options.hw = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--hss", &value)) options.hss = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--mix", &value)) options.ycsb_mix = value;
    else if (ParseFlag(argv[i], "--blocksize", &value)) options.blocksize = std::atoi(value.c_str());
    else if (ParseFlag(argv[i], "--channels", &value)) options.channels = std::atoi(value.c_str());
    else if (ParseFlag(argv[i], "--clients", &value)) options.clients = std::atoi(value.c_str());
    else if (ParseFlag(argv[i], "--rate", &value)) options.rate = std::atof(value.c_str());
    else if (ParseFlag(argv[i], "--raft", &value)) options.raft = std::atoi(value.c_str());
    else if (ParseFlag(argv[i], "--seed", &value)) options.seed = std::strtoull(value.c_str(), nullptr, 10);
    else {
      PrintUsage();
      return 1;
    }
  }

  const auto workload = MakeWorkload(options);
  if (workload == nullptr) {
    PrintUsage();
    return 1;
  }
  std::printf("workload=%s seconds=%.0f blocksize=%u channels=%u clients=%u "
              "rate=%.0f orderer=%s\n\n",
              options.workload.c_str(), options.seconds, options.blocksize,
              options.channels, options.clients, options.rate,
              options.raft > 0 ? "raft" : "solo");
  if (options.system == "fabric" || options.system == "both") {
    RunOne(options, false, *workload);
  }
  if (options.system == "fabric++" || options.system == "both") {
    RunOne(options, true, *workload);
  }
  return 0;
}
