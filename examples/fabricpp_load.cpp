// fabricpp_load — the load driver for a multi-process Fabric++ cluster
// (DESIGN.md §15). Hosts every client state machine, fires the configured
// workload at the remote peers/orderer for --seconds, prints the standard
// RunReport, then polls the peers until their (height, tip hash, state
// fingerprint) tuples agree and shuts the cluster down:
//
//   fabricpp_load --config cluster.conf --seconds 5 --warmup 1 --check
//
// --check turns the convergence poll into an assertion (exit 1 unless every
// peer reported, all per-channel fingerprints match — the multi-process
// "no MVCC anomalies" check — and the run committed work). --json PATH
// writes a machine-readable summary for CI.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "fabric/config_file.h"
#include "fabric/socket_host.h"
#include "sim/time.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE [--seconds S] [--warmup S] "
               "[--json PATH] [--check] [--no-shutdown]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string json_path;
  double seconds = 5.0;
  double warmup = 1.0;
  bool check = false;
  bool shutdown_cluster = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--warmup" && i + 1 < argc) {
      warmup = std::atof(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--no-shutdown") {
      shutdown_cluster = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (config_path.empty() || seconds <= 0 || warmup < 0 || warmup >= seconds) {
    Usage(argv[0]);
    return 2;
  }

  auto deployment = fabricpp::fabric::LoadDeploymentFile(config_path);
  if (!deployment.ok()) {
    std::fprintf(stderr, "%s: %s\n", config_path.c_str(),
                 deployment.status().ToString().c_str());
    return 1;
  }

  fabricpp::fabric::SocketRole role;
  role.kind = fabricpp::fabric::SocketRole::Kind::kClients;
  fabricpp::fabric::SocketHost host(deployment->config,
                                    deployment->workload.get(), role);
  const fabricpp::Status started = host.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  const uint32_t connect_budget_ms =
      deployment->config.socket_connect_timeout_ms + 10000;
  std::printf("[fabricpp_load] dialing %zu peers + orderer...\n",
              deployment->config.peer_addresses.size());
  std::fflush(stdout);
  if (!host.WaitForCluster(connect_budget_ms)) {
    std::fprintf(stderr, "cluster not reachable after %u ms\n",
                 connect_budget_ms);
    host.Stop();
    return 1;
  }

  std::printf("[fabricpp_load] firing %s for %.1fs (warmup %.1fs)\n",
              deployment->workload->chaincode().c_str(), seconds, warmup);
  std::fflush(stdout);
  const auto report = host.RunClients(
      static_cast<fabricpp::runtime::TimeMicros>(seconds * 1e6),
      static_cast<fabricpp::runtime::TimeMicros>(warmup * 1e6));
  std::printf("%s\n", report.ToString().c_str());
  const auto transport = host.metrics().transport_counters();
  std::printf("%s\n", transport.ToString().c_str());

  const auto peer_reports = host.CollectPeerReports(30000);
  const size_t num_peers = host.num_peers();
  bool converged = peer_reports.size() == num_peers;
  // Blocks commit on the peer hosts, so the local report's block counters
  // stay zero in socket mode; chain height comes from the state reports
  // (height 1 = genesis only, nothing committed).
  uint64_t chain_height = 0;
  for (const auto& pr : peer_reports) {
    for (size_t c = 0; c < pr.channels.size(); ++c) {
      const auto& info = pr.channels[c];
      if (info.height > chain_height) chain_height = info.height;
      std::printf(
          "[peer %u] channel %zu: height=%" PRIu64 " keys=%" PRIu64
          " tip=%.16s state=%s\n",
          pr.peer_index, c, info.height, info.num_keys,
          fabricpp::crypto::DigestToHex(info.tip_hash).c_str(),
          info.state_fingerprint.c_str());
      if (pr.channels.size() != peer_reports[0].channels.size() ||
          !(info == peer_reports[0].channels[c])) {
        converged = false;
      }
    }
  }
  if (converged && !peer_reports.empty()) {
    std::printf("[fabricpp_load] %zu peers converged\n", peer_reports.size());
  } else {
    std::fprintf(stderr,
                 "[fabricpp_load] DIVERGED: %zu/%zu peers reported, "
                 "fingerprints %s\n",
                 peer_reports.size(), num_peers,
                 converged ? "equal" : "differ");
  }

  if (shutdown_cluster) host.BroadcastShutdown();
  host.Stop();

  const bool committed = report.successful > 0 && chain_height > 1;
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"workload\": \"" << deployment->workload->chaincode() << "\",\n"
        << "  \"seconds\": " << seconds << ",\n"
        << "  \"successful\": " << report.successful << ",\n"
        << "  \"failed\": " << report.failed << ",\n"
        << "  \"successful_tps\": " << report.successful_tps << ",\n"
        << "  \"chain_height\": " << chain_height << ",\n"
        << "  \"latency_p50_ms\": " << report.latency_p50_ms << ",\n"
        << "  \"latency_p95_ms\": " << report.latency_p95_ms << ",\n"
        << "  \"socket_frames_sent\": " << transport.socket_frames_sent
        << ",\n"
        << "  \"socket_reconnects\": " << transport.socket_reconnects << ",\n"
        << "  \"peers_reported\": " << peer_reports.size() << ",\n"
        << "  \"converged\": " << (converged ? "true" : "false") << ",\n"
        << "  \"committed\": " << (committed ? "true" : "false") << "\n"
        << "}\n";
  }

  if (check && (!converged || !committed)) {
    std::fprintf(stderr, "[fabricpp_load] CHECK FAILED (converged=%d "
                 "committed=%d)\n",
                 converged, committed);
    return 1;
  }
  return 0;
}
