// fabricpp_node — one process of a multi-process Fabric++ cluster
// (DESIGN.md §15). Hosts exactly one role from a shared deployment file:
//
//   fabricpp_node --config cluster.conf --role orderer
//   fabricpp_node --config cluster.conf --role peer:0
//   fabricpp_node --config cluster.conf --role peer:1 --listen 0.0.0.0:7052
//
// The process binds its listener, dials its upstreams, and serves until a
// SHUTDOWN frame arrives (fabricpp_load --shutdown, or the load driver's
// normal teardown) or SIGINT/SIGTERM. Every process of the cluster must
// read an identical config file or the peers will not converge.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "fabric/config_file.h"
#include "fabric/socket_host.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE --role (orderer|peer:N) "
               "[--listen HOST:PORT]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string role_text;
  std::string listen_override;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--role" && i + 1 < argc) {
      role_text = argv[++i];
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_override = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (config_path.empty() || role_text.empty()) {
    Usage(argv[0]);
    return 2;
  }

  auto deployment = fabricpp::fabric::LoadDeploymentFile(config_path);
  if (!deployment.ok()) {
    std::fprintf(stderr, "%s: %s\n", config_path.c_str(),
                 deployment.status().ToString().c_str());
    return 1;
  }
  auto role = fabricpp::fabric::ParseSocketRole(role_text);
  if (!role.ok() ||
      role->kind == fabricpp::fabric::SocketRole::Kind::kClients) {
    std::fprintf(stderr, "bad --role %s (want orderer or peer:N)\n",
                 role_text.c_str());
    return 2;
  }
  if (!listen_override.empty()) {
    deployment->config.listen_address = listen_override;
  }

  // Block SIGINT/SIGTERM before any thread exists, then sigwait on a
  // dedicated thread: the handler context never touches locks.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  fabricpp::fabric::SocketHost host(deployment->config,
                                    deployment->workload.get(), *role);
  const fabricpp::Status started = host.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("[fabricpp_node] role=%s listening on port %u\n",
              role->ToString().c_str(), host.listen_port());
  std::fflush(stdout);

  std::thread signal_waiter([&sigs, &host] {
    int sig = 0;
    sigwait(&sigs, &sig);
    std::fprintf(stderr, "[fabricpp_node] signal %d, stopping\n", sig);
    host.Stop();
  });

  const bool graceful = host.WaitForShutdown();
  host.Stop();
  // Wake the sigwait thread if the shutdown came over the wire.
  pthread_kill(signal_waiter.native_handle(), SIGTERM);
  signal_waiter.join();
  std::printf("[fabricpp_node] role=%s exiting (%s)\n",
              role->ToString().c_str(),
              graceful ? "shutdown frame" : "local stop");
  return 0;
}
