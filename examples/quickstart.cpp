// Quickstart: build a simulated Fabric network, submit a few transactions
// through the full simulate-order-validate-commit pipeline, and inspect the
// resulting state and ledger.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "crypto/sha256.h"
#include "fabric/network.h"
#include "workload/workload.h"

using namespace fabricpp;

namespace {

// A minimal workload: proposals target the generic "kv" chaincode and we
// drive them manually through SubmitProposal below.
struct KvWorkload : workload::Workload {
  std::string chaincode() const override { return "kv"; }
  void SeedState(statedb::StateDb*) const override {}
  std::vector<std::string> NextArgs(Rng&) const override { return {}; }
};

}  // namespace

int main() {
  // 1. Pick a configuration. FabricConfig::Vanilla() models Hyperledger
  //    Fabric 1.2; FabricConfig::FabricPlusPlus() enables the paper's
  //    reordering + early-abort optimizations.
  fabric::FabricConfig config = fabric::FabricConfig::FabricPlusPlus();
  config.block.max_transactions = 4;  // Small blocks so the demo cuts fast.

  // 2. Build the network: 4 peers in 2 orgs, an ordering service, and four
  //    clients on one channel (the paper's Table 5 topology).
  KvWorkload kv;
  fabric::FabricNetwork network(config, &kv);
  network.metrics().SetWindow(0, ~0ULL);

  std::printf("Network: %zu peers in %u orgs, %u channel(s), policy \"%s\"\n",
              network.num_peers(), network.config().num_orgs,
              network.config().num_channels,
              network.default_policy_id().c_str());

  // 3. Submit proposals through clients. Each one goes through endorsement
  //    on one peer per org, client-side assembly, ordering, validation, and
  //    commit on every peer.
  network.SubmitProposal(0, 0, {"put", "greeting", "hello fabric++"});
  network.SubmitProposal(0, 1, {"put", "answer", "42"});
  network.SubmitProposal(0, 2, {"put", "paper", "SIGMOD 2019"});
  network.SubmitProposal(0, 3, {"put", "venue", "Amsterdam"});
  network.RunUntilIdle();  // Block 1 commits.
  network.SubmitProposal(0, 0, {"del", "answer"});
  network.RunUntilIdle();  // Block 2 (cut by the 1s batch timeout).

  // 4. Inspect the outcome on a peer.
  const auto& peer = network.peer(0);
  std::printf("\nAfter %llu virtual us:\n",
              static_cast<unsigned long long>(network.env().Now()));
  std::printf("  committed transactions: %llu successful, %llu failed\n",
              static_cast<unsigned long long>(network.metrics().successful()),
              static_cast<unsigned long long>(network.metrics().failed()));

  const auto greeting = peer.state_db(0).Get("greeting");
  if (greeting.ok()) {
    std::printf("  greeting = \"%s\" (version %s)\n", greeting->value.c_str(),
                greeting->version.ToString().c_str());
  }
  std::printf("  answer deleted: %s\n",
              peer.state_db(0).Get("answer").ok() ? "no" : "yes");

  // 5. The ledger is a verifiable hash chain on every peer.
  const auto& ledger = peer.ledger(0);
  std::printf("\nLedger height %llu, chain verification: %s\n",
              static_cast<unsigned long long>(ledger.Height()),
              ledger.VerifyChain().ok() ? "OK" : "BROKEN");
  for (uint64_t b = 1; b < ledger.Height(); ++b) {
    const auto block = *ledger.GetBlock(b);
    std::printf("  block %llu: %zu txs, hash %.16s...\n",
                static_cast<unsigned long long>(b),
                block->block.transactions.size(),
                crypto::DigestToHex(block->block.header.Hash()).c_str());
  }
  return 0;
}
