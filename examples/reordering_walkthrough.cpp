// Walks through the paper's worked reordering example (§5.1.1, Tables 3-4,
// Figures 3-5) step by step: conflict graph, strongly connected subgraphs,
// cycles, greedy aborts, and the final serializable schedule
// T5 => T1 => T3 => T4. Also replays Tables 1-2.
//
//   $ ./build/examples/reordering_walkthrough

#include <cstdio>

#include "ordering/conflict_graph.h"
#include "ordering/johnson.h"
#include "ordering/reorderer.h"
#include "ordering/tarjan.h"
#include "peer/validator.h"
#include "workload/micro_sequences.h"

using namespace fabricpp;

int main() {
  std::printf("== Paper §5.1.1 worked example (Table 3) ==\n\n");
  const auto txs = workload::PaperTable3Transactions();
  const auto rwsets = workload::AsPointers(txs);

  // Step 1: conflict graph (Figure 3).
  const ordering::ConflictGraph graph = ordering::ConflictGraph::Build(rwsets);
  std::printf("Step 1 — conflict graph C(S): %zu transactions, %zu unique "
              "keys, %zu edges\n",
              graph.num_nodes(), graph.num_unique_keys(), graph.num_edges());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    for (const uint32_t j : graph.Children(i)) {
      std::printf("  T%u -> T%u  (T%u writes a key T%u reads)\n", i, j, i, j);
    }
  }

  // Step 2: strongly connected subgraphs (Figure 4) + cycles.
  const auto sccs = ordering::StronglyConnectedComponents(
      static_cast<uint32_t>(graph.num_nodes()),
      [&](uint32_t v) -> const std::vector<uint32_t>& {
        return graph.Children(v);
      });
  std::printf("\nStep 2 — strongly connected subgraphs:\n");
  std::vector<std::vector<uint32_t>> adjacency(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    adjacency[i] = graph.Children(i);
  }
  for (const auto& scc : sccs) {
    std::printf("  {");
    for (size_t i = 0; i < scc.size(); ++i) {
      std::printf("%sT%u", i ? ", " : "", scc[i]);
    }
    std::printf("}");
    if (scc.size() > 1) {
      const auto cycles = ordering::FindElementaryCycles(adjacency, scc, 100);
      std::printf(" — %zu cycle(s):", cycles.cycles.size());
      for (const auto& cycle : cycles.cycles) {
        std::printf(" [");
        for (size_t i = 0; i < cycle.size(); ++i) {
          std::printf("%sT%u", i ? "->" : "", cycle[i]);
        }
        std::printf("]");
      }
    }
    std::printf("\n");
  }

  // Steps 3-5: the full reordering pass.
  const ordering::ReorderResult result =
      ordering::ReorderTransactions(rwsets);
  std::printf("\nSteps 3-4 — greedy cycle breaking aborted:");
  for (const uint32_t victim : result.aborted) std::printf(" T%u", victim);
  std::printf("  (paper: T0 and T2)\n");

  std::printf("Step 5  — final schedule:");
  for (const uint32_t pos : result.order) std::printf(" T%u", pos);
  std::printf("  (paper: T5 => T1 => T3 => T4)\n");
  std::printf("Stats: %u round(s), %zu cycles found, %llu us to reorder\n",
              result.stats.rounds, result.stats.num_cycles_found,
              static_cast<unsigned long long>(result.elapsed_wall_us));

  // Tables 1-2: the motivating 4-transaction example.
  std::printf("\n== Paper §4.1 example (Tables 1-2) ==\n\n");
  const auto t1 = workload::PaperTable1Transactions();
  const auto t1_ptrs = workload::AsPointers(t1);
  const std::vector<uint32_t> arrival = {0, 1, 2, 3};
  std::printf("Arrival order T1=>T2=>T3=>T4 commits %u of 4 (Table 1: 1).\n",
              peer::CountValidUnderCommonSnapshot(t1_ptrs, arrival));
  const ordering::ReorderResult reordered =
      ordering::ReorderTransactions(t1_ptrs);
  std::printf("Reordered schedule");
  for (const uint32_t pos : reordered.order) std::printf(" T%u", pos + 1);
  std::printf(" commits %u of 4 (Table 2: 4).\n",
              peer::CountValidUnderCommonSnapshot(t1_ptrs, reordered.order));
  return 0;
}
