// Smallbank demo: runs the paper's main benchmark workload on both vanilla
// Fabric and Fabric++ at a contended skew, prints the side-by-side outcome,
// and verifies an application-level invariant (money conservation for the
// transfer-only mix) across all peers.
//
//   $ ./build/examples/smallbank_demo

#include <cstdio>

#include "chaincode/builtin_chaincodes.h"
#include "fabric/network.h"
#include "workload/smallbank.h"

using namespace fabricpp;

namespace {

/// A Smallbank variant firing only send_payment transactions, so that the
/// total amount of money in the system is invariant — a property we can
/// check on every peer after the run.
class TransferOnlyWorkload : public workload::Workload {
 public:
  explicit TransferOnlyWorkload(uint64_t num_users, double zipf_s)
      : inner_({.num_users = num_users,
                .prob_write = 1.0,
                .zipf_s = zipf_s}),
        num_users_(num_users),
        zipf_(num_users, zipf_s) {}

  std::string chaincode() const override { return "smallbank"; }
  void SeedState(statedb::StateDb* db) const override {
    inner_.SeedState(db);
  }
  std::vector<std::string> NextArgs(Rng& rng) const override {
    const uint64_t from = zipf_.Next(rng);
    uint64_t to = zipf_.Next(rng);
    while (to == from) to = zipf_.Next(rng);
    return {"send_payment", std::to_string(from), std::to_string(to),
            std::to_string(1 + rng.NextUint64(100))};
  }

 private:
  workload::SmallbankWorkload inner_;
  uint64_t num_users_;
  ZipfGenerator zipf_;
};

int64_t TotalChecking(const statedb::StateDb& db, uint64_t num_users) {
  int64_t total = 0;
  for (uint64_t u = 0; u < num_users; ++u) {
    const auto v =
        db.Get(chaincode::SmallbankChaincode::CheckingKey(u));
    if (v.ok()) total += std::stoll(v->value);
  }
  return total;
}

}  // namespace

int main() {
  constexpr uint64_t kUsers = 5000;
  constexpr double kSkew = 1.4;  // Contended regime (paper Figure 8).
  TransferOnlyWorkload workload(kUsers, kSkew);

  std::printf("Smallbank, %llu users, zipf s=%.1f, transfer-only mix\n\n",
              static_cast<unsigned long long>(kUsers), kSkew);
  std::printf("%-12s %14s %14s %12s %12s\n", "system", "success [tps]",
              "failed [tps]", "avg lat", "blocks");

  for (const bool plusplus : {false, true}) {
    fabric::FabricConfig config = plusplus
                                      ? fabric::FabricConfig::FabricPlusPlus()
                                      : fabric::FabricConfig::Vanilla();
    fabric::FabricNetwork network(config, &workload);
    const fabric::RunReport report =
        network.RunFor(8 * sim::kSecond, 2 * sim::kSecond);
    network.RunUntilIdle();  // Drain in-flight blocks before the audit.
    std::printf("%-12s %14.1f %14.1f %9.1f ms %12llu\n",
                plusplus ? "fabric++" : "fabric", report.successful_tps,
                report.failed_tps, report.latency_avg_ms,
                static_cast<unsigned long long>(report.blocks_committed));

    // Audit: transfers conserve checking money, on every peer, and all
    // peers agree.
    const int64_t reference =
        TotalChecking(network.peer(0).state_db(0), kUsers);
    bool all_agree = true;
    for (uint32_t p = 1; p < network.num_peers(); ++p) {
      all_agree &=
          (TotalChecking(network.peer(p).state_db(0), kUsers) == reference);
    }
    statedb::StateDb fresh;
    workload.SeedState(&fresh);
    const int64_t initial = TotalChecking(fresh, kUsers);
    std::printf("             money audit: initial=%lld final=%lld "
                "conserved=%s peers_agree=%s\n",
                static_cast<long long>(initial),
                static_cast<long long>(reference),
                initial == reference ? "yes" : "NO",
                all_agree ? "yes" : "NO");
  }
  std::printf("\nFabric++ turns aborted transfers into successful ones "
              "without ever breaking balance conservation or replica "
              "agreement.\n");
  return 0;
}
