#include "chaincode/builtin_chaincodes.h"

#include <charconv>

#include "common/strings.h"

namespace fabricpp::chaincode {

namespace {

Result<int64_t> ParseInt(const std::string& s) {
  int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: " + s);
  }
  return out;
}

/// Reads an integer state value, treating a missing key as `fallback`.
Result<int64_t> GetIntOr(TxContext& ctx, const std::string& key,
                         int64_t fallback) {
  const auto r = ctx.GetInt(key);
  if (r.ok()) return r.value();
  if (r.status().code() == StatusCode::kNotFound) return fallback;
  return r.status();
}

}  // namespace

Status BlankChaincode::Invoke(TxContext& ctx,
                              const std::vector<std::string>& args) const {
  (void)ctx;
  (void)args;
  return Status::OK();
}

Status KvChaincode::Invoke(TxContext& ctx,
                           const std::vector<std::string>& args) const {
  if (args.empty()) return Status::InvalidArgument("kv: missing operation");
  const std::string& op = args[0];
  if (op == "put") {
    if (args.size() != 3) return Status::InvalidArgument("kv put key value");
    ctx.PutState(args[1], args[2]);
    return Status::OK();
  }
  if (op == "get") {
    if (args.size() != 2) return Status::InvalidArgument("kv get key");
    const auto value = ctx.GetState(args[1]);
    if (!value.ok() && value.status().code() != StatusCode::kNotFound) {
      return value.status();
    }
    return Status::OK();
  }
  if (op == "del") {
    if (args.size() != 2) return Status::InvalidArgument("kv del key");
    ctx.DeleteState(args[1]);
    return Status::OK();
  }
  if (op == "rmw") {
    // Read-modify-write: records a read (so MVCC conflicts apply, unlike
    // the blind "put") and overwrites the value.
    if (args.size() != 3) return Status::InvalidArgument("kv rmw key value");
    const auto current = ctx.GetState(args[1]);
    if (!current.ok() && current.status().code() != StatusCode::kNotFound) {
      return current.status();
    }
    ctx.PutState(args[1], args[2]);
    return Status::OK();
  }
  return Status::InvalidArgument("kv: unknown operation " + op);
}

std::string AssetTransferChaincode::BalanceKey(const std::string& account) {
  return "bal_" + account;
}

Status AssetTransferChaincode::Invoke(
    TxContext& ctx, const std::vector<std::string>& args) const {
  if (args.empty()) return Status::InvalidArgument("asset_transfer: no op");
  const std::string& op = args[0];
  if (op == "open") {
    if (args.size() != 3) {
      return Status::InvalidArgument("asset_transfer open account amount");
    }
    FABRICPP_ASSIGN_OR_RETURN(const int64_t initial, ParseInt(args[2]));
    ctx.PutInt(BalanceKey(args[1]), initial);
    return Status::OK();
  }
  if (op == "transfer") {
    if (args.size() != 4) {
      return Status::InvalidArgument("asset_transfer transfer from to amount");
    }
    FABRICPP_ASSIGN_OR_RETURN(const int64_t amount, ParseInt(args[3]));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t from_bal,
                              ctx.GetInt(BalanceKey(args[1])));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t to_bal,
                              ctx.GetInt(BalanceKey(args[2])));
    if (from_bal < amount) {
      return Status::FailedPrecondition(
          StrFormat("insufficient funds: %lld < %lld",
                    static_cast<long long>(from_bal),
                    static_cast<long long>(amount)));
    }
    ctx.PutInt(BalanceKey(args[1]), from_bal - amount);
    ctx.PutInt(BalanceKey(args[2]), to_bal + amount);
    return Status::OK();
  }
  if (op == "query") {
    if (args.size() != 2) {
      return Status::InvalidArgument("asset_transfer query account");
    }
    return ctx.GetInt(BalanceKey(args[1])).status();
  }
  return Status::InvalidArgument("asset_transfer: unknown op " + op);
}

std::string SmallbankChaincode::CheckingKey(uint64_t user) {
  return StrFormat("c_%llu", static_cast<unsigned long long>(user));
}
std::string SmallbankChaincode::SavingsKey(uint64_t user) {
  return StrFormat("s_%llu", static_cast<unsigned long long>(user));
}

Status SmallbankChaincode::Invoke(TxContext& ctx,
                                  const std::vector<std::string>& args) const {
  if (args.empty()) return Status::InvalidArgument("smallbank: no op");
  const std::string& op = args[0];

  if (op == "transact_savings") {
    if (args.size() != 3) return Status::InvalidArgument("bad args");
    FABRICPP_ASSIGN_OR_RETURN(const int64_t user, ParseInt(args[1]));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t amount, ParseInt(args[2]));
    const std::string key = SavingsKey(static_cast<uint64_t>(user));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t bal, GetIntOr(ctx, key, 0));
    ctx.PutInt(key, bal + amount);
    return Status::OK();
  }
  if (op == "deposit_checking") {
    if (args.size() != 3) return Status::InvalidArgument("bad args");
    FABRICPP_ASSIGN_OR_RETURN(const int64_t user, ParseInt(args[1]));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t amount, ParseInt(args[2]));
    const std::string key = CheckingKey(static_cast<uint64_t>(user));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t bal, GetIntOr(ctx, key, 0));
    ctx.PutInt(key, bal + amount);
    return Status::OK();
  }
  if (op == "send_payment") {
    if (args.size() != 4) return Status::InvalidArgument("bad args");
    FABRICPP_ASSIGN_OR_RETURN(const int64_t from, ParseInt(args[1]));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t to, ParseInt(args[2]));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t amount, ParseInt(args[3]));
    const std::string from_key = CheckingKey(static_cast<uint64_t>(from));
    const std::string to_key = CheckingKey(static_cast<uint64_t>(to));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t from_bal,
                              GetIntOr(ctx, from_key, 0));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t to_bal, GetIntOr(ctx, to_key, 0));
    ctx.PutInt(from_key, from_bal - amount);
    ctx.PutInt(to_key, to_bal + amount);
    return Status::OK();
  }
  if (op == "write_check") {
    if (args.size() != 3) return Status::InvalidArgument("bad args");
    FABRICPP_ASSIGN_OR_RETURN(const int64_t user, ParseInt(args[1]));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t amount, ParseInt(args[2]));
    const std::string key = CheckingKey(static_cast<uint64_t>(user));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t bal, GetIntOr(ctx, key, 0));
    ctx.PutInt(key, bal - amount);
    return Status::OK();
  }
  if (op == "amalgamate") {
    if (args.size() != 2) return Status::InvalidArgument("bad args");
    FABRICPP_ASSIGN_OR_RETURN(const int64_t user, ParseInt(args[1]));
    const std::string c_key = CheckingKey(static_cast<uint64_t>(user));
    const std::string s_key = SavingsKey(static_cast<uint64_t>(user));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t checking, GetIntOr(ctx, c_key, 0));
    FABRICPP_ASSIGN_OR_RETURN(const int64_t savings, GetIntOr(ctx, s_key, 0));
    ctx.PutInt(c_key, checking + savings);
    ctx.PutInt(s_key, 0);
    return Status::OK();
  }
  if (op == "query") {
    if (args.size() != 2) return Status::InvalidArgument("bad args");
    FABRICPP_ASSIGN_OR_RETURN(const int64_t user, ParseInt(args[1]));
    FABRICPP_RETURN_IF_ERROR(
        GetIntOr(ctx, CheckingKey(static_cast<uint64_t>(user)), 0).status());
    FABRICPP_RETURN_IF_ERROR(
        GetIntOr(ctx, SavingsKey(static_cast<uint64_t>(user)), 0).status());
    return Status::OK();
  }
  return Status::InvalidArgument("smallbank: unknown op " + op);
}

std::string CustomChaincode::AccountKey(uint64_t account) {
  return StrFormat("acc_%llu", static_cast<unsigned long long>(account));
}

Status CustomChaincode::Invoke(TxContext& ctx,
                               const std::vector<std::string>& args) const {
  if (args.empty()) return Status::InvalidArgument("custom: no args");
  FABRICPP_ASSIGN_OR_RETURN(const int64_t num_reads, ParseInt(args[0]));
  if (num_reads < 0 ||
      args.size() < 1 + static_cast<size_t>(num_reads)) {
    return Status::InvalidArgument("custom: bad read count");
  }
  int64_t sum = 0;
  for (size_t i = 1; i <= static_cast<size_t>(num_reads); ++i) {
    FABRICPP_ASSIGN_OR_RETURN(const int64_t v, GetIntOr(ctx, args[i], 0));
    sum += v;
  }
  int64_t salt = 0;
  for (size_t i = 1 + static_cast<size_t>(num_reads); i < args.size(); ++i) {
    ctx.PutInt(args[i], sum + salt);
    ++salt;
  }
  return Status::OK();
}

}  // namespace fabricpp::chaincode
