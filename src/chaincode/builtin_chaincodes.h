#ifndef FABRICPP_CHAINCODE_BUILTIN_CHAINCODES_H_
#define FABRICPP_CHAINCODE_BUILTIN_CHAINCODES_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"

namespace fabricpp::chaincode {

/// "blank" — performs no reads and no writes. Used by the Figure 1
/// experiment to show that the pipeline's throughput ceiling is set by
/// crypto + networking, not by transaction logic.
class BlankChaincode : public Chaincode {
 public:
  std::string name() const override { return "blank"; }
  Status Invoke(TxContext& ctx,
                const std::vector<std::string>& args) const override;
};

/// "kv" — a generic key-value contract:
///   ["put", key, value] | ["get", key] | ["del", key] |
///   ["rmw", key, value]  (read-modify-write: records a read first)
/// Used by the quickstart example and the YCSB workload.
class KvChaincode : public Chaincode {
 public:
  std::string name() const override { return "kv"; }
  Status Invoke(TxContext& ctx,
                const std::vector<std::string>& args) const override;
};

/// "asset_transfer" — the running example of the paper's Appendix A:
///   ["open", account, initial_balance]
///   ["transfer", from, to, amount]   (fails on insufficient funds)
///   ["query", account]
class AssetTransferChaincode : public Chaincode {
 public:
  std::string name() const override { return "asset_transfer"; }
  Status Invoke(TxContext& ctx,
                const std::vector<std::string>& args) const override;

  /// State key of an account balance.
  static std::string BalanceKey(const std::string& account);
};

/// "smallbank" — the Smallbank benchmark's six transactions (paper §6.2.2):
///   ["transact_savings", user, amount]   savings  += amount
///   ["deposit_checking", user, amount]   checking += amount
///   ["send_payment", from, to, amount]   checking transfer
///   ["write_check", user, amount]        checking -= amount
///   ["amalgamate", user]                 checking += savings; savings = 0
///   ["query", user]                      read both accounts
class SmallbankChaincode : public Chaincode {
 public:
  std::string name() const override { return "smallbank"; }
  Status Invoke(TxContext& ctx,
                const std::vector<std::string>& args) const override;

  static std::string CheckingKey(uint64_t user);
  static std::string SavingsKey(uint64_t user);
};

/// "custom" — the paper's configurable workload transaction (§6.2.2): a
/// fixed number of reads and writes against account keys chosen by the
/// workload generator (which implements the hot-set selection):
///   ["<num_reads>", read_key..., write_key...]
/// Reads sum the touched balances; each write key is overwritten with a
/// value derived from that sum, so the transaction is genuinely
/// read-dependent (its writes are only correct if its reads were current).
class CustomChaincode : public Chaincode {
 public:
  std::string name() const override { return "custom"; }
  Status Invoke(TxContext& ctx,
                const std::vector<std::string>& args) const override;

  static std::string AccountKey(uint64_t account);
};

}  // namespace fabricpp::chaincode

#endif  // FABRICPP_CHAINCODE_BUILTIN_CHAINCODES_H_
