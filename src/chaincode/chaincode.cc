#include "chaincode/chaincode.h"

#include "chaincode/builtin_chaincodes.h"

namespace fabricpp::chaincode {

Status ChaincodeRegistry::Register(std::unique_ptr<Chaincode> chaincode) {
  const std::string name = chaincode->name();
  const auto [it, inserted] = map_.emplace(name, std::move(chaincode));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("chaincode already registered: " + name);
  }
  return Status::OK();
}

Result<const Chaincode*> ChaincodeRegistry::Get(const std::string& name) const {
  const auto it = map_.find(name);
  if (it == map_.end()) {
    return Status::NotFound("chaincode not installed: " + name);
  }
  return static_cast<const Chaincode*>(it->second.get());
}

std::unique_ptr<ChaincodeRegistry> ChaincodeRegistry::WithBuiltins() {
  auto registry = std::make_unique<ChaincodeRegistry>();
  (void)registry->Register(std::make_unique<BlankChaincode>());
  (void)registry->Register(std::make_unique<KvChaincode>());
  (void)registry->Register(std::make_unique<AssetTransferChaincode>());
  (void)registry->Register(std::make_unique<SmallbankChaincode>());
  (void)registry->Register(std::make_unique<CustomChaincode>());
  return registry;
}

}  // namespace fabricpp::chaincode
