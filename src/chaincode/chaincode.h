#ifndef FABRICPP_CHAINCODE_CHAINCODE_H_
#define FABRICPP_CHAINCODE_CHAINCODE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaincode/tx_context.h"
#include "common/status.h"

namespace fabricpp::chaincode {

/// A smart contract ("chaincode" in Fabric terms — the paper treats the two
/// as synonyms, footnote 2).
///
/// Invoke() runs during the simulation phase only: it reads committed state
/// and buffers writes through the TxContext; it never mutates the state
/// database itself. A returned error aborts the simulation; kStaleRead
/// specifically marks a Fabric++ simulation-phase early abort.
class Chaincode {
 public:
  virtual ~Chaincode() = default;

  /// The name clients address proposals to.
  virtual std::string name() const = 0;

  /// Simulates the contract with the given arguments.
  virtual Status Invoke(TxContext& ctx,
                        const std::vector<std::string>& args) const = 0;
};

/// Name -> chaincode registry. Each peer in the simulation shares one
/// registry (chaincodes are deterministic and stateless by contract).
class ChaincodeRegistry {
 public:
  /// Registers a chaincode; AlreadyExists if the name is taken.
  Status Register(std::unique_ptr<Chaincode> chaincode);

  /// Looks up by name; NotFound if absent.
  Result<const Chaincode*> Get(const std::string& name) const;

  /// Installs all built-in contracts (blank, kv, asset_transfer, smallbank,
  /// custom) — convenience for the benchmarks and examples.
  static std::unique_ptr<ChaincodeRegistry> WithBuiltins();

 private:
  std::unordered_map<std::string, std::unique_ptr<Chaincode>> map_;
};

}  // namespace fabricpp::chaincode

#endif  // FABRICPP_CHAINCODE_CHAINCODE_H_
