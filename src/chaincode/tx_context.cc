#include "chaincode/tx_context.h"

#include <charconv>

#include "common/strings.h"

namespace fabricpp::chaincode {

TxContext::TxContext(const statedb::StateDb* db, uint64_t snapshot_block,
                     bool stale_check_enabled)
    : db_(db),
      snapshot_block_(snapshot_block),
      stale_check_enabled_(stale_check_enabled) {}

Result<std::string> TxContext::GetState(const std::string& key) {
  // Read-your-own-writes: a key this transaction already wrote returns the
  // pending value and records no read (committing the version it *read*
  // would be wrong — it read its own uncommitted write).
  if (const auto wit = write_index_.find(key); wit != write_index_.end()) {
    const proto::WriteItem& w = rwset_.writes[wit->second];
    if (w.is_delete) return Status::NotFound("key deleted in-tx: " + key);
    return w.value;
  }

  const auto db_result = db_->Get(key);
  const proto::Version version =
      db_result.ok() ? db_result.value().version : proto::kNilVersion;

  if (stale_check_enabled_ && version.block_num > snapshot_block_) {
    // Paper §5.2.1: "no read must encounter a version-number containing a
    // block-ID higher than the last-block-ID" — the simulation is doomed.
    return Status::StaleRead(StrFormat(
        "key %s has version block %llu > snapshot block %llu", key.c_str(),
        static_cast<unsigned long long>(version.block_num),
        static_cast<unsigned long long>(snapshot_block_)));
  }

  // Record the read once (first observation wins).
  if (read_index_.find(key) == read_index_.end()) {
    read_index_[key] = rwset_.reads.size();
    rwset_.reads.push_back(proto::ReadItem{key, version});
  }

  if (!db_result.ok()) return db_result.status();
  return db_result.value().value;
}

void TxContext::PutState(const std::string& key, std::string value) {
  if (const auto it = write_index_.find(key); it != write_index_.end()) {
    rwset_.writes[it->second].value = std::move(value);
    rwset_.writes[it->second].is_delete = false;
    return;
  }
  write_index_[key] = rwset_.writes.size();
  rwset_.writes.push_back(proto::WriteItem{key, std::move(value), false});
}

void TxContext::DeleteState(const std::string& key) {
  if (const auto it = write_index_.find(key); it != write_index_.end()) {
    rwset_.writes[it->second].value.clear();
    rwset_.writes[it->second].is_delete = true;
    return;
  }
  write_index_[key] = rwset_.writes.size();
  rwset_.writes.push_back(proto::WriteItem{key, "", true});
}

Result<int64_t> TxContext::GetInt(const std::string& key) {
  FABRICPP_ASSIGN_OR_RETURN(const std::string value, GetState(key));
  int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Status::Internal("value of " + key + " is not an integer: " + value);
  }
  return out;
}

void TxContext::PutInt(const std::string& key, int64_t value) {
  PutState(key, std::to_string(value));
}

}  // namespace fabricpp::chaincode
