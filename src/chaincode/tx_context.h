#ifndef FABRICPP_CHAINCODE_TX_CONTEXT_H_
#define FABRICPP_CHAINCODE_TX_CONTEXT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "proto/rwset.h"
#include "statedb/state_db.h"

namespace fabricpp::chaincode {

/// The simulation context handed to a chaincode's Invoke().
///
/// It plays the role of Fabric's transaction simulator (paper §2.2.1): reads
/// go against the peer's current state and are recorded with the observed
/// version in the read set; writes are buffered into the write set and do
/// not touch the state.
///
/// When `stale_check_enabled` (Fabric++, paper §5.2.1), every read compares
/// the observed version's block id against the snapshot's last-block-id: a
/// newer block id proves a block committed since the simulation began, the
/// read set is doomed, and GetState returns kStaleRead so the peer can abort
/// the simulation immediately and notify the client without delay.
class TxContext {
 public:
  /// `db` must outlive the context. `snapshot_block` is the id of the last
  /// block committed when the simulation started.
  TxContext(const statedb::StateDb* db, uint64_t snapshot_block,
            bool stale_check_enabled);

  /// Reads a key. Missing keys return NotFound (recorded with the nil
  /// version, as Fabric does). kStaleRead signals Fabric++ early abort.
  Result<std::string> GetState(const std::string& key);

  /// Buffers a write.
  void PutState(const std::string& key, std::string value);

  /// Buffers a delete.
  void DeleteState(const std::string& key);

  /// Integer convenience used by the bank-style contracts: parses the value
  /// as a decimal int64 (missing key => NotFound).
  Result<int64_t> GetInt(const std::string& key);
  void PutInt(const std::string& key, int64_t value);

  /// The accumulated effects. Reads and writes are each deduplicated by key
  /// in first-access order.
  const proto::ReadWriteSet& rwset() const { return rwset_; }
  proto::ReadWriteSet TakeRwSet() { return std::move(rwset_); }

  uint64_t snapshot_block() const { return snapshot_block_; }

 private:
  const statedb::StateDb* db_;
  uint64_t snapshot_block_;
  bool stale_check_enabled_;
  proto::ReadWriteSet rwset_;
  std::unordered_map<std::string, size_t> read_index_;
  std::unordered_map<std::string, size_t> write_index_;
};

}  // namespace fabricpp::chaincode

#endif  // FABRICPP_CHAINCODE_TX_CONTEXT_H_
