#include "common/bytes.h"

namespace fabricpp {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_->push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteWriter::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  PutRaw(b.data(), b.size());
}

void ByteWriter::PutRaw(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out_->insert(out_->end(), p, p + size);
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) return Status::OutOfRange("truncated u8");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return Status::OutOfRange("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return Status::OutOfRange("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return Status::OutOfRange("truncated varint");
    if (shift >= 64) return Status::OutOfRange("varint overflow");
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<std::string> ByteReader::GetString() {
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t len, GetVarint());
  if (remaining() < len) return Status::OutOfRange("truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(len));
  pos_ += len;
  return s;
}

Result<Bytes> ByteReader::GetBytes() {
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t len, GetVarint());
  if (remaining() < len) return Status::OutOfRange("truncated bytes");
  Bytes b(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return b;
}

std::string HexEncode(const uint8_t* data, size_t size) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

}  // namespace fabricpp
