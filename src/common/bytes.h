#ifndef FABRICPP_COMMON_BYTES_H_
#define FABRICPP_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fabricpp {

using Bytes = std::vector<uint8_t>;

/// Appends canonical little-endian / varint encodings to a byte vector.
///
/// This writer produces the canonical serialization used for (a) hashing
/// transactions and blocks, (b) computing wire sizes fed into the network
/// cost model, and (c) the ledger's on-disk-style block encoding. The format
/// is deliberately simple: fixed-width little-endian integers, LEB128
/// varints, and length-prefixed strings.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Varint length prefix followed by raw bytes.
  void PutString(std::string_view s);
  void PutBytes(const Bytes& b);
  void PutRaw(const void* data, size_t size);

 private:
  Bytes* out_;
};

/// Reads back what ByteWriter wrote. All getters return an error Status on
/// truncated input instead of crashing — ledger blocks may come from disk.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}
  /// A reader borrows its buffer; constructing from a temporary would
  /// dangle immediately.
  explicit ByteReader(Bytes&&) = delete;

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<std::string> GetString();
  Result<Bytes> GetBytes();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Hex encoding of arbitrary bytes (lowercase), e.g. for block hashes in
/// logs and the examples.
std::string HexEncode(const uint8_t* data, size_t size);
std::string HexEncode(const Bytes& b);

}  // namespace fabricpp

#endif  // FABRICPP_COMMON_BYTES_H_
