#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fabricpp {

Histogram::Histogram() {
  // Build geometric bucket limits covering [0, ~9e18]; everything above
  // lands in the final catch-all bucket. (Staying well below 2^64 keeps the
  // double -> uint64 casts defined.)
  bucket_limit_.push_back(0);
  double limit = 1.0;
  while (limit < 9e18) {
    bucket_limit_.push_back(static_cast<uint64_t>(limit));
    limit *= kGrowth;
    // Ensure strict growth for small integer limits.
    if (static_cast<uint64_t>(limit) <= bucket_limit_.back()) {
      limit = static_cast<double>(bucket_limit_.back() + 1);
    }
  }
  bucket_limit_.push_back(~0ULL);
  buckets_.assign(bucket_limit_.size(), 0);
}

size_t Histogram::BucketFor(uint64_t value) const {
  const auto it =
      std::lower_bound(bucket_limit_.begin(), bucket_limit_.end(), value);
  return static_cast<size_t>(it - bucket_limit_.begin());
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank 0 would match before any recorded value (the empty zero bucket
  // satisfies `seen >= 0`), making Quantile(0.0) report 0 instead of the
  // minimum — clamp to the first recorded value's rank.
  const uint64_t rank =
      std::max<uint64_t>(static_cast<uint64_t>(std::ceil(q * count_)), 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The bucket's upper bound can overshoot on both ends: clamp into
      // the recorded [min_, max_] range so low quantiles never report
      // below the true minimum.
      return static_cast<double>(
          std::clamp(bucket_limit_[i], min_, max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f min=%llu "
                "max=%llu",
                static_cast<unsigned long long>(count_), Mean(), Quantile(0.5),
                Quantile(0.95), Quantile(0.99),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace fabricpp
