#ifndef FABRICPP_COMMON_HISTOGRAM_H_
#define FABRICPP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fabricpp {

/// Log-bucketed histogram for latency-style measurements.
///
/// Values are non-negative integers (we use microseconds of virtual time).
/// Buckets grow geometrically, giving ~2.3% relative quantile error across
/// the full 64-bit range with a few hundred buckets — the same trade-off
/// RocksDB's HistogramImpl makes.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// Quantile in [0, 1], e.g. 0.5 for the median. Returns an upper bound of
  /// the bucket containing the quantile, clamped into [min(), max()] so
  /// Quantile(0.0) is the recorded minimum (0 on an empty histogram).
  double Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..." one-liner.
  std::string ToString() const;

 private:
  static constexpr double kGrowth = 1.045;
  size_t BucketFor(uint64_t value) const;

  std::vector<uint64_t> buckets_;      // Counts per bucket.
  std::vector<uint64_t> bucket_limit_; // Upper bound (inclusive) per bucket.
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace fabricpp

#endif  // FABRICPP_COMMON_HISTOGRAM_H_
