#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace fabricpp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  (void)level_;
}

}  // namespace internal
}  // namespace fabricpp
