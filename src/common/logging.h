#ifndef FABRICPP_COMMON_LOGGING_H_
#define FABRICPP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fabricpp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarn so tests and benchmarks stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fabricpp

#define FABRICPP_LOG(level)                                              \
  ::fabricpp::internal::LogMessage(::fabricpp::LogLevel::k##level, __FILE__, \
                                   __LINE__)

#endif  // FABRICPP_COMMON_LOGGING_H_
