#ifndef FABRICPP_COMMON_RESULT_H_
#define FABRICPP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fabricpp {

/// Result<T> holds either a value of type T or a non-OK Status.
///
/// This is the fabricpp equivalent of arrow::Result / absl::StatusOr. A
/// Result constructed from an OK status is a programming error and asserts.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit so `return SomeStatus;` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK() when a value is present.
  const Status& status() const { return status_; }

  /// Access the value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace fabricpp

/// Assigns the value of a Result expression to `lhs`, or returns the error
/// Status from the enclosing function.
#define FABRICPP_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto FABRICPP_CONCAT_(_res_, __LINE__) = (rexpr);       \
  if (!FABRICPP_CONCAT_(_res_, __LINE__).ok())            \
    return FABRICPP_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(FABRICPP_CONCAT_(_res_, __LINE__)).value()

#define FABRICPP_CONCAT_(a, b) FABRICPP_CONCAT_IMPL_(a, b)
#define FABRICPP_CONCAT_IMPL_(a, b) a##b

#endif  // FABRICPP_COMMON_RESULT_H_
