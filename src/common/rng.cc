#include "common/rng.h"

#include <cmath>

namespace fabricpp {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  // Inverse-CDF; 1 - U avoids log(0).
  return -mean * std::log(1.0 - NextDouble());
}

}  // namespace fabricpp
