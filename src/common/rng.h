#ifndef FABRICPP_COMMON_RNG_H_
#define FABRICPP_COMMON_RNG_H_

#include <cstdint>

namespace fabricpp {

/// SplitMix64 — used for seeding and as a cheap standalone mixer.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — the repository-wide deterministic PRNG.
///
/// Fast, high-quality, and (critically for the benchmarks) identical output
/// across platforms: every experiment in EXPERIMENTS.md is reproducible from
/// its seed. Reference: Blackman & Vigna, "Scrambled linear pseudorandom
/// number generators" (2018).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed value with the given mean (> 0); used by the
  /// simulator for Poisson arrival processes.
  double NextExponential(double mean);

 private:
  uint64_t s_[4];
};

}  // namespace fabricpp

#endif  // FABRICPP_COMMON_RNG_H_
