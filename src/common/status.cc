#include "common/status.h"

namespace fabricpp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kStaleRead:
      return "STALE_READ";
    case StatusCode::kSerializationConflict:
      return "SERIALIZATION_CONFLICT";
    case StatusCode::kEndorsementPolicyViolation:
      return "ENDORSEMENT_POLICY_VIOLATION";
    case StatusCode::kEarlyAbort:
      return "EARLY_ABORT";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fabricpp
