#ifndef FABRICPP_COMMON_STATUS_H_
#define FABRICPP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace fabricpp {

/// Canonical error codes used across all fabricpp libraries.
///
/// The set intentionally mirrors the small number of failure classes the
/// transaction pipeline can produce, plus the usual programming-error codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A simulation read observed a value newer than the snapshot it started
  /// from (Fabric++ early abort in the simulation phase, paper §5.2.1).
  kStaleRead,
  /// A transaction failed the validator's MVCC serializability check
  /// (paper §2.2.3 / Appendix A.3.2).
  kSerializationConflict,
  /// A transaction failed endorsement-policy evaluation (tampered signature
  /// or missing endorsement, paper Appendix A.3.1).
  kEndorsementPolicyViolation,
  /// A transaction was dropped by the orderer: either it participated in
  /// conflict cycles broken by the reorderer (paper §5.1) or it lost the
  /// within-block version-skew check (paper §5.2.2).
  kEarlyAbort,
  /// Durable state is unrecoverable: on-disk bytes fail integrity checks in
  /// a way that cannot be explained by a torn tail write (e.g. mid-log WAL
  /// corruption). Continuing would silently lose committed writes.
  kDataLoss,
};

/// Returns a stable human-readable name, e.g. "STALE_READ".
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds either success ("OK") or an error code plus message.
///
/// fabricpp is built without exceptions (see DESIGN.md §5); every fallible
/// operation returns a Status or a Result<T>. The class is cheap to copy in
/// the OK case (no allocation) and cheap to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status StaleRead(std::string msg) {
    return Status(StatusCode::kStaleRead, std::move(msg));
  }
  static Status SerializationConflict(std::string msg) {
    return Status(StatusCode::kSerializationConflict, std::move(msg));
  }
  static Status EndorsementPolicyViolation(std::string msg) {
    return Status(StatusCode::kEndorsementPolicyViolation, std::move(msg));
  }
  static Status EarlyAbort(std::string msg) {
    return Status(StatusCode::kEarlyAbort, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fabricpp

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define FABRICPP_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::fabricpp::Status _fabricpp_status = (expr);      \
    if (!_fabricpp_status.ok()) return _fabricpp_status; \
  } while (0)

#endif  // FABRICPP_COMMON_STATUS_H_
