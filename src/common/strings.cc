#include "common/strings.h"

#include <cstdio>
#include <vector>

namespace fabricpp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace fabricpp
