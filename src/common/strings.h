#ifndef FABRICPP_COMMON_STRINGS_H_
#define FABRICPP_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>

namespace fabricpp {

/// printf-style formatting into a std::string (GCC 12 lacks std::format).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fabricpp

#endif  // FABRICPP_COMMON_STRINGS_H_
