#include "common/thread_pool.h"

namespace fabricpp {

ThreadPool::ThreadPool(uint32_t extra_threads) {
  threads_.reserve(extra_threads);
  for (uint32_t i = 0; i < extra_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock,
                  [&]() { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    // Adopt the current task under the lock: fn_/n_/generation_ form a
    // consistent snapshot, and active_workers_ keeps the *next* ParallelFor
    // from recycling next_/fn_ while this worker is still mid-task.
    seen = generation_;
    if (fn_ == nullptr) continue;  // Woke after the task fully drained.
    const std::function<void(size_t)>* fn = fn_;
    const size_t n = n_;
    ++active_workers_;
    lock.unlock();

    size_t done = 0;
    while (true) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i);
      ++done;
    }

    lock.lock();
    completed_ += done;
    --active_workers_;
    if (completed_ == n_ && active_workers_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  completed_ = 0;
  next_.store(0, std::memory_order_relaxed);
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();

  // The caller is a worker too; a pool is never left idle waiting on it.
  size_t done = 0;
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    ++done;
  }

  lock.lock();
  completed_ += done;
  // Wait for stragglers: every index was claimed, but the last claims may
  // still be executing — and a worker that adopted this generation must
  // check out before fn_/next_ can be reused.
  done_cv_.wait(lock,
                [&]() { return completed_ == n_ && active_workers_ == 0; });
  fn_ = nullptr;
}

}  // namespace fabricpp
