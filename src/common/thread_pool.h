#ifndef FABRICPP_COMMON_THREAD_POOL_H_
#define FABRICPP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fabricpp {

/// A reusable fork-join worker pool for fanning out pure, independent work
/// items (e.g. per-transaction signature verification in the validator's
/// verify stage, or per-shard rwset scans and per-SCC cycle enumeration in
/// the orderer's reorder engine).
///
/// Design constraints, in order:
///  1. **Determinism.** ParallelFor runs `fn(i)` exactly once for every
///     i in [0, n) and returns only after all of them finished. Workers
///     race only for *which* index they pick next; as long as `fn` writes
///     its result to an index-addressed slot and touches no other shared
///     state, the joined results are byte-identical to a serial loop —
///     which is how the validator keeps simulation output independent of
///     the worker count.
///  2. **Reuse.** Threads are spawned once and parked between calls; a
///     ParallelFor on an already-warm pool costs two lock round-trips plus
///     wakeups, so it is cheap enough to call once per block.
///  3. **Caller participation.** The calling thread works alongside the
///     pool, so ThreadPool(0) degrades to a plain serial loop and a pool
///     with `extra_threads` threads gives `extra_threads + 1` way
///     parallelism.
///
/// ParallelFor is not reentrant and must not be called from two threads at
/// once (the validator serializes blocks and the orderer's reorder passes
/// run one at a time on the simulation thread; each of the two users gets
/// its own pool — FabricNetwork::validator_pool() / reorder_pool() — so
/// neither can re-enter the other's fan-out).
class ThreadPool {
 public:
  /// Spawns `extra_threads` worker threads (0 is valid: everything then
  /// runs on the calling thread).
  explicit ThreadPool(uint32_t extra_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (not counting callers).
  uint32_t extra_threads() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Total parallelism of a ParallelFor call: workers + the caller.
  uint32_t parallelism() const { return extra_threads() + 1; }

  /// Runs fn(0) .. fn(n-1), each exactly once, distributed over the worker
  /// threads and the calling thread; blocks until every call returned.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait here for a generation.
  std::condition_variable done_cv_;   // The caller waits here for the join.
  uint64_t generation_ = 0;           // Bumped per ParallelFor (guarded).
  const std::function<void(size_t)>* fn_ = nullptr;  // Current task.
  size_t n_ = 0;                      // Items in the current task.
  std::atomic<size_t> next_{0};       // Next unclaimed index.
  size_t completed_ = 0;              // Items finished (guarded by mu_).
  size_t active_workers_ = 0;         // Workers inside the current task.
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace fabricpp

#endif  // FABRICPP_COMMON_THREAD_POOL_H_
