#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fabricpp {

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // Guard against accumulated floating-point error.
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::Probability(uint64_t i) const {
  assert(i < n_);
  if (i == 0) return cdf_[0];
  return cdf_[i] - cdf_[i - 1];
}

}  // namespace fabricpp
