#ifndef FABRICPP_COMMON_ZIPF_H_
#define FABRICPP_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fabricpp {

/// Zipfian distribution over {0, 1, ..., n-1}.
///
/// Item i is drawn with probability proportional to 1 / (i+1)^s. s = 0
/// degenerates to the uniform distribution; the paper's Smallbank evaluation
/// (§6.4.1) sweeps s from 0.0 to 2.0.
///
/// Implementation: exact inverse-CDF sampling over a precomputed cumulative
/// table with binary search. O(n) memory, O(log n) per sample, exact for any
/// s >= 0 (the O(1) Gray et al. approximation misbehaves near s = 1).
class ZipfGenerator {
 public:
  /// Builds the CDF for n items (n >= 1) with skew parameter s >= 0.
  ZipfGenerator(uint64_t n, double s);

  /// Draws one item in [0, n).
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Probability of item i (for tests).
  double Probability(uint64_t i) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i); cdf_[n-1] == 1.0.
};

}  // namespace fabricpp

#endif  // FABRICPP_COMMON_ZIPF_H_
