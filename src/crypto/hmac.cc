#include "crypto/hmac.h"

#include <cstring>

namespace fabricpp::crypto {

Digest HmacSha256(const Bytes& key, const void* data, size_t size) {
  constexpr size_t kBlockSize = 64;
  uint8_t key_block[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    const Digest kd = Sha256::Hash(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlockSize];
  uint8_t opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlockSize);
  inner.Update(data, size);
  const Digest inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(opad, kBlockSize);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finalize();
}

Digest HmacSha256(const Bytes& key, std::string_view msg) {
  return HmacSha256(key, msg.data(), msg.size());
}

Digest HmacSha256(const Bytes& key, const Bytes& msg) {
  return HmacSha256(key, msg.data(), msg.size());
}

}  // namespace fabricpp::crypto
