#ifndef FABRICPP_CRYPTO_HMAC_H_
#define FABRICPP_CRYPTO_HMAC_H_

#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace fabricpp::crypto {

/// HMAC-SHA256 (RFC 2104). Verified against RFC 4231 test vectors.
///
/// fabricpp uses HMAC-SHA256 as its endorsement-signature primitive: each
/// peer holds a secret key; a "signature" over a message is
/// HMAC(key, message), and verification recomputes it. This keeps the
/// validation-phase semantics of the paper (validators *recompute* the
/// expected signature from the received read/write sets and compare,
/// Appendix A.3.1) while replacing ECDSA's cost with a knob in the
/// simulator's cost model.
Digest HmacSha256(const Bytes& key, const void* data, size_t size);
Digest HmacSha256(const Bytes& key, std::string_view msg);
Digest HmacSha256(const Bytes& key, const Bytes& msg);

}  // namespace fabricpp::crypto

#endif  // FABRICPP_CRYPTO_HMAC_H_
