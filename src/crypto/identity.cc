#include "crypto/identity.h"

namespace fabricpp::crypto {

Identity::Identity(uint64_t network_seed, std::string name)
    : name_(std::move(name)) {
  Sha256 h;
  h.Update(&network_seed, sizeof(network_seed));
  h.Update(name_);
  const Digest d = h.Finalize();
  secret_key_.assign(d.begin(), d.end());
}

Signature Identity::Sign(const Bytes& message) const {
  return Signature{name_, HmacSha256(secret_key_, message)};
}

Signature Identity::Sign(std::string_view message) const {
  return Signature{name_, HmacSha256(secret_key_, message)};
}

bool Identity::Verify(const Bytes& message, const Signature& sig) const {
  if (sig.signer != name_) return false;
  return HmacSha256(secret_key_, message) == sig.tag;
}

}  // namespace fabricpp::crypto
