#ifndef FABRICPP_CRYPTO_IDENTITY_H_
#define FABRICPP_CRYPTO_IDENTITY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace fabricpp::crypto {

/// A signature produced by an Identity: the signer's name plus an
/// HMAC-SHA256 tag over the signed message.
struct Signature {
  std::string signer;
  Digest tag{};

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.tag == b.tag;
  }
};

/// A named signing identity (a peer or client of the network), analogous to
/// an MSP enrollment certificate in Fabric.
///
/// Identities are derived deterministically from (network seed, name), so
/// every component that knows the network seed can verify any signature by
/// recomputation — this mirrors the trust model of the paper's validation
/// phase where all peers can recompute endorser signatures. Tamper tests
/// flip message bytes and assert verification failure.
class Identity {
 public:
  /// Derives the secret key as SHA-256(seed || name).
  Identity(uint64_t network_seed, std::string name);

  const std::string& name() const { return name_; }

  /// Signs a canonical message encoding.
  Signature Sign(const Bytes& message) const;
  Signature Sign(std::string_view message) const;

  /// Recomputes the tag and compares (constant content equality).
  bool Verify(const Bytes& message, const Signature& sig) const;

 private:
  std::string name_;
  Bytes secret_key_;
};

}  // namespace fabricpp::crypto

#endif  // FABRICPP_CRYPTO_IDENTITY_H_
