#include "crypto/merkle.h"

namespace fabricpp::crypto {

namespace {

Digest HashPair(const Digest& left, const Digest& right) {
  Sha256 h;
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finalize();
}

}  // namespace

Digest MerkleRoot(const std::vector<Digest>& leaves) {
  if (leaves.empty()) return Sha256::Hash("", 0);
  std::vector<Digest> level = leaves;
  while (level.size() > 1) {
    std::vector<Digest> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(HashPair(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());  // Promote odd.
    level = std::move(next);
  }
  return level[0];
}

MerkleProof BuildMerkleProof(const std::vector<Digest>& leaves,
                             size_t leaf_index) {
  MerkleProof proof;
  proof.leaf_index = leaf_index;
  std::vector<Digest> level = leaves;
  size_t index = leaf_index;
  while (level.size() > 1) {
    const size_t sibling = (index % 2 == 0) ? index + 1 : index - 1;
    if (sibling < level.size()) {
      proof.path.emplace_back(level[sibling], /*is_left=*/sibling < index);
    }
    std::vector<Digest> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(HashPair(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
    index /= 2;
  }
  return proof;
}

bool VerifyMerkleProof(const Digest& leaf, const MerkleProof& proof,
                       const Digest& root) {
  Digest running = leaf;
  for (const auto& [sibling, is_left] : proof.path) {
    running = is_left ? HashPair(sibling, running) : HashPair(running, sibling);
  }
  return running == root;
}

}  // namespace fabricpp::crypto
