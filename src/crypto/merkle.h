#ifndef FABRICPP_CRYPTO_MERKLE_H_
#define FABRICPP_CRYPTO_MERKLE_H_

#include <vector>

#include "crypto/sha256.h"

namespace fabricpp::crypto {

/// Computes the Merkle root of a list of leaf digests.
///
/// Fabric hashes a block's transaction list into the block header's data
/// hash; we use a binary Merkle tree (odd nodes promoted, Bitcoin-style
/// without duplication): an empty list hashes to SHA-256("").
Digest MerkleRoot(const std::vector<Digest>& leaves);

/// Inclusion proof: the sibling digests from leaf to root.
struct MerkleProof {
  size_t leaf_index = 0;
  /// (digest, is_left) pairs bottom-up; is_left tells whether the sibling
  /// sits on the left of the running hash.
  std::vector<std::pair<Digest, bool>> path;
};

/// Builds the proof for `leaf_index` (must be < leaves.size()).
MerkleProof BuildMerkleProof(const std::vector<Digest>& leaves,
                             size_t leaf_index);

/// Verifies that `leaf` at proof.leaf_index hashes up to `root`.
bool VerifyMerkleProof(const Digest& leaf, const MerkleProof& proof,
                       const Digest& root);

}  // namespace fabricpp::crypto

#endif  // FABRICPP_CRYPTO_MERKLE_H_
