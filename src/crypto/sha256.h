#ifndef FABRICPP_CRYPTO_SHA256_H_
#define FABRICPP_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace fabricpp::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch; verified
/// against the NIST test vectors in tests/crypto_test.cc.
///
/// Used for: transaction ids, block data hashes (via the Merkle tree), the
/// ledger hash chain, and as the compression function of HMAC signatures.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t size);
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  void Update(const Bytes& b) { Update(b.data(), b.size()); }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// reuse.
  Digest Finalize();

  /// One-shot convenience.
  static Digest Hash(const void* data, size_t size);
  static Digest Hash(std::string_view s) { return Hash(s.data(), s.size()); }
  static Digest Hash(const Bytes& b) { return Hash(b.data(), b.size()); }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Lowercase hex rendering of a digest.
std::string DigestToHex(const Digest& d);

}  // namespace fabricpp::crypto

#endif  // FABRICPP_CRYPTO_SHA256_H_
