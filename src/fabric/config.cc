#include "fabric/config.h"

namespace fabricpp::fabric {

FabricConfig FabricConfig::Vanilla() {
  FabricConfig config;
  config.enable_reordering = false;
  config.enable_early_abort_sim = false;
  config.enable_early_abort_ordering = false;
  config.concurrency = ConcurrencyMode::kCoarseLock;
  // Vanilla Fabric has no unique-keys batch condition (paper §5.1.2 adds
  // it in Fabric++).
  config.block.max_unique_keys = 0;
  return config;
}

FabricConfig FabricConfig::FabricPlusPlus() {
  FabricConfig config;
  config.enable_reordering = true;
  config.enable_early_abort_sim = true;
  config.enable_early_abort_ordering = true;
  config.concurrency = ConcurrencyMode::kFineGrained;
  config.block.max_unique_keys = 16384;
  return config;
}

}  // namespace fabricpp::fabric
