#include "fabric/config.h"

#include <cstdlib>

#include "common/logging.h"

namespace fabricpp::fabric {

FabricConfig FabricConfig::Vanilla() {
  FabricConfig config;
  config.enable_reordering = false;
  config.enable_early_abort_sim = false;
  config.enable_early_abort_ordering = false;
  config.concurrency = ConcurrencyMode::kCoarseLock;
  // Vanilla Fabric has no unique-keys batch condition (paper §5.1.2 adds
  // it in Fabric++).
  config.block.max_unique_keys = 0;
  return config;
}

FabricConfig FabricConfig::FabricPlusPlus() {
  FabricConfig config;
  config.enable_reordering = true;
  config.enable_early_abort_sim = true;
  config.enable_early_abort_ordering = true;
  config.concurrency = ConcurrencyMode::kFineGrained;
  config.block.max_unique_keys = 16384;
  return config;
}

runtime::RuntimeMode FabricConfig::RuntimeModeOrDefault() const {
  const auto mode = runtime::ParseRuntimeMode(runtime_mode);
  return mode.ok() ? *mode : runtime::RuntimeMode::kSim;
}

storage::DbOptions FabricConfig::StorageOptions() const {
  storage::DbOptions options;
  const auto mode = storage::ParseWalSyncMode(storage_sync_mode);
  if (!mode.ok()) {
    // Silently substituting a default here once masked misconfigured
    // durability ("evry_write" ran with per-block syncing). A caller that
    // skipped Validate() gets a loud stop, not a quiet downgrade.
    FABRICPP_LOG(Error) << "unparsable storage_sync_mode \""
                        << storage_sync_mode
                        << "\": " << mode.status().ToString()
                        << " — call Validate() before StorageOptions()";
    std::abort();
  }
  options.sync_mode = *mode;
  options.block_cache_bytes = static_cast<size_t>(storage_block_cache_bytes);
  options.checkpoint_interval_blocks = checkpoint_interval_blocks;
  options.checkpoint_dir = checkpoint_dir;
  return options;
}

Status FabricConfig::Validate() const {
  if (num_orgs == 0 || peers_per_org == 0) {
    return Status::InvalidArgument("topology needs at least one org/peer");
  }
  if (num_channels == 0) {
    return Status::InvalidArgument("num_channels must be > 0");
  }
  if (clients_per_channel == 0) {
    return Status::InvalidArgument("clients_per_channel must be > 0");
  }
  if (client_fire_rate_tps <= 0.0) {
    return Status::InvalidArgument("client_fire_rate_tps must be > 0");
  }
  if (peer_cores == 0 || orderer_cores == 0 || client_machine_cores == 0) {
    return Status::InvalidArgument("every machine needs at least one core");
  }
  if (validator_workers == 0 || validator_workers > 256) {
    return Status::InvalidArgument(
        "validator_workers must be in [1, 256]: it counts host threads "
        "(including the committing one) running real signature checks");
  }
  if (reorder_workers == 0 || reorder_workers > 256) {
    return Status::InvalidArgument(
        "reorder_workers must be in [1, 256]: it counts host threads "
        "(including the calling one) running the real reordering work");
  }
  if (commit_workers == 0 || commit_workers > 256) {
    return Status::InvalidArgument(
        "commit_workers must be in [1, 256]: it counts host threads "
        "(including the committing one) running the per-wave MVCC checks");
  }
  if (ordering_pipeline_depth == 0 || ordering_pipeline_depth > 64) {
    return Status::InvalidArgument(
        "ordering_pipeline_depth must be in [1, 64]: it bounds the batches "
        "concurrently inside the orderer's reorder stage per channel");
  }
  if (client_resubmit) {
    if (client_max_retries == 0) {
      return Status::InvalidArgument(
          "client_max_retries must be >= 1 when client_resubmit is on; set "
          "client_resubmit=false to disable resubmission");
    }
    if (client_max_retries > 64) {
      return Status::InvalidArgument(
          "client_max_retries > 64: the exponential backoff shift would "
          "overflow; cap the retry budget");
    }
  }
  // The backoff shape is validated unconditionally: BUSY-retry delays use
  // it even when client_resubmit is off, and a zero/inverted range would
  // silently degenerate exponential backoff into constant instant retry.
  if (client_retry_backoff_base == 0) {
    return Status::InvalidArgument(
        "client_retry_backoff_base must be > 0 (instant resubmission "
        "causes retry storms under faults and overload)");
  }
  if (client_retry_backoff_max == 0 ||
      client_retry_backoff_max < client_retry_backoff_base) {
    return Status::InvalidArgument(
        "client_retry_backoff_max must be >= client_retry_backoff_base > 0 "
        "(a zero or inverted cap degenerates backoff to constant retry)");
  }
  if (client_retry_jitter < 0.0 || client_retry_jitter > 1.0) {
    return Status::InvalidArgument("client_retry_jitter must be in [0, 1]");
  }
  if (admission_queue_depth > 1048576) {
    return Status::InvalidArgument(
        "admission_queue_depth must be in [0, 1048576] (0 disables "
        "admission control)");
  }
  if (admission_queue_depth > 0 && busy_retry_hint == 0) {
    return Status::InvalidArgument(
        "busy_retry_hint must be > 0 when admission control is on: a zero "
        "hint makes every BUSY an instant-retry storm");
  }
  if (fair_sched_quantum > 4096) {
    return Status::InvalidArgument(
        "fair_sched_quantum must be in [0, 4096] (0 disables the fair "
        "scheduler)");
  }
  if (fair_sched_quantum > 0 && admission_queue_depth == 0) {
    return Status::InvalidArgument(
        "fair_sched_quantum requires admission_queue_depth > 0: the fair "
        "scheduler is the drain policy of the orderer's bounded admission "
        "queues");
  }
  if (fair_conflict_penalty > 1024) {
    return Status::InvalidArgument(
        "fair_conflict_penalty must be in [0, 1024]");
  }
  if (fair_conflict_penalty > 0 && fair_sched_quantum == 0) {
    return Status::InvalidArgument(
        "fair_conflict_penalty requires fair_sched_quantum > 0: the "
        "surcharge is paid in deficit units of the fair scheduler");
  }
  if (client_endorsement_timeout == 0 || client_commit_timeout == 0) {
    return Status::InvalidArgument(
        "client timeouts must be > 0 (a zero timeout aborts every proposal "
        "immediately)");
  }
  if (peer_fetch_retry_interval == 0) {
    return Status::InvalidArgument("peer_fetch_retry_interval must be > 0");
  }
  if (ordering_backend == OrderingBackend::kRaft) {
    if (raft_cluster_size == 0) {
      return Status::InvalidArgument("raft_cluster_size must be > 0");
    }
    if (raft_cluster_size % 2 == 0) {
      return Status::InvalidArgument(
          "raft_cluster_size must be odd: an even cluster tolerates no more "
          "failures than the next-smaller odd one but must reach a larger "
          "quorum (size/2 + 1) to commit");
    }
    if (raft_cluster_size > 63) {
      return Status::InvalidArgument("raft_cluster_size must be <= 63");
    }
    if (raft_params.heartbeat_interval == 0) {
      return Status::InvalidArgument(
          "raft_params.heartbeat_interval must be > 0");
    }
    if (raft_params.election_timeout_min == 0 ||
        raft_params.election_timeout_max < raft_params.election_timeout_min) {
      return Status::InvalidArgument(
          "raft_params election timeouts must satisfy 0 < "
          "election_timeout_min <= election_timeout_max");
    }
    if (raft_params.heartbeat_interval >= raft_params.election_timeout_min) {
      return Status::InvalidArgument(
          "raft_params.heartbeat_interval must be < election_timeout_min: a "
          "heartbeat period at or above the election floor makes followers "
          "time out and depose a healthy leader");
    }
  }
  if (const auto mode = storage::ParseWalSyncMode(storage_sync_mode);
      !mode.ok()) {
    return Status::InvalidArgument(
        "storage_sync_mode must be one of \"none\", \"block\", "
        "\"every_write\"; got \"" + storage_sync_mode + "\"");
  }
  if (storage_block_cache_bytes > (1ull << 30)) {
    return Status::InvalidArgument(
        "storage_block_cache_bytes must be <= 1 GiB (0 disables the block "
        "cache)");
  }
  if (checkpoint_interval_blocks > 0 && checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_interval_blocks > 0 requires checkpoint_dir: snapshots "
        "need a directory to live in");
  }
  if (!checkpoint_dir.empty() && checkpoint_interval_blocks == 0) {
    return Status::InvalidArgument(
        "checkpoint_dir is set but checkpoint_interval_blocks is 0: no "
        "snapshot would ever be written — enable the interval or clear the "
        "directory");
  }
  if (ledger_retain_blocks > 0 && checkpoint_interval_blocks == 0) {
    return Status::InvalidArgument(
        "ledger_retain_blocks > 0 requires checkpointing: pruned blocks are "
        "only recoverable-without-replay when the state is checkpointed");
  }
  const auto runtime_parsed = runtime::ParseRuntimeMode(runtime_mode);
  if (!runtime_parsed.ok()) {
    return Status::InvalidArgument(
        "runtime_mode must be \"sim\", \"thread\" or \"socket\"; got \"" +
        runtime_mode + "\"");
  }
  if (*runtime_parsed == runtime::RuntimeMode::kSocket &&
      ordering_backend == OrderingBackend::kRaft) {
    return Status::InvalidArgument(
        "the raft ordering backend is not supported under "
        "runtime_mode=\"socket\" yet (raft RPCs do not ride the wire "
        "protocol); use runtime_mode=\"sim\"/\"thread\" or "
        "ordering_backend=kSolo");
  }
  if (channel_lanes > 64) {
    return Status::InvalidArgument(
        "channel_lanes must be in [0, 64] (0 = one lane per channel, capped "
        "at 8; 1 = single pipeline per node)");
  }
  if (*runtime_parsed == runtime::RuntimeMode::kSocket) {
    const size_t want_peers =
        static_cast<size_t>(num_orgs) * static_cast<size_t>(peers_per_org);
    if (peer_addresses.size() != want_peers) {
      return Status::InvalidArgument(
          "runtime_mode=\"socket\" needs one peer_addresses entry per peer "
          "(num_orgs * peers_per_org = " +
          std::to_string(want_peers) + "; got " +
          std::to_string(peer_addresses.size()) +
          "): every process dials and binds from the same cluster list");
    }
    for (const std::string& addr : peer_addresses) {
      if (addr.empty()) {
        return Status::InvalidArgument(
            "peer_addresses entries must be non-empty \"host:port\" strings");
      }
    }
    if (orderer_address.empty()) {
      return Status::InvalidArgument(
          "runtime_mode=\"socket\" requires orderer_address: peers and "
          "clients must know where the ordering service listens");
    }
    if (gossip_blocks) {
      return Status::InvalidArgument(
          "gossip_blocks is not supported under runtime_mode=\"socket\" yet "
          "(block dissemination is orderer-direct over TCP); disable it");
    }
    // The batch cutter cuts *after* the transaction that crosses
    // block.max_bytes, so a cut block can overshoot the bound by one
    // transaction (itself up to ~max_bytes), and the BlockMsg adds header,
    // metadata, optional commit schedule, and framing on top. 2x + 64 KiB
    // covers all of it; a block frame over the receiver bound would be shed
    // at the sender (and the peer would stall waiting for it).
    const uint64_t frame_block_budget =
        socket_max_frame_bytes > 65536 ? (socket_max_frame_bytes - 65536) / 2
                                       : 0;
    if (block.max_bytes > frame_block_budget) {
      return Status::InvalidArgument(
          "socket_max_frame_bytes must be >= 2 * block.max_bytes + 64 KiB "
          "under runtime_mode=\"socket\": the largest block the orderer can "
          "cut (bound overshoot included) must fit in one wire frame; got " +
          std::to_string(socket_max_frame_bytes) + " with block.max_bytes=" +
          std::to_string(block.max_bytes));
    }
  }
  if (socket_connect_timeout_ms == 0 || socket_connect_timeout_ms > 600000) {
    return Status::InvalidArgument(
        "socket_connect_timeout_ms must be in [1, 600000]");
  }
  if (socket_max_frame_bytes < 4096 ||
      socket_max_frame_bytes > (1ull << 30)) {
    return Status::InvalidArgument(
        "socket_max_frame_bytes must be in [4096, 1 GiB]: it bounds one "
        "length-framed wire message, so it must exceed the largest block "
        "the orderer can cut");
  }
  if (mailbox_capacity < 16 || mailbox_capacity > 1048576) {
    return Status::InvalidArgument(
        "mailbox_capacity must be in [16, 1048576]: it bounds each node's "
        "mailbox under the thread runtime");
  }
  if (thread_client_shards == 0 || thread_client_shards > 256) {
    return Status::InvalidArgument(
        "thread_client_shards must be in [1, 256]: it counts the endpoint "
        "threads the client machine is sharded across");
  }
  return Status::OK();
}

}  // namespace fabricpp::fabric
