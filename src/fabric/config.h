#ifndef FABRICPP_FABRIC_CONFIG_H_
#define FABRICPP_FABRIC_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ordering/batch_cutter.h"
#include "raft/raft_node.h"
#include "ordering/reorderer.h"
#include "runtime/runtime.h"
#include "sim/network.h"
#include "sim/time.h"
#include "storage/db.h"

namespace fabricpp::fabric {

/// How a peer coordinates the simulation and validation phases on its
/// current state (paper §5.2.1).
enum class ConcurrencyMode {
  /// Vanilla Fabric: simulations share a read lock on the entire state;
  /// block validation takes an exclusive write lock. Simulations never see
  /// mid-flight commits, but validation stalls behind running simulations
  /// (and vice versa).
  kCoarseLock,
  /// Fabric++: lock-free. Commits apply while simulations run; every read
  /// carries a version, and a simulation whose reads are overtaken by a
  /// commit is detected via the version check.
  kFineGrained,
};

/// How the ordering service reaches consensus on the block sequence.
enum class OrderingBackend {
  /// A single trusted orderer process (Fabric's "solo" profile — what the
  /// paper's cluster ran).
  kSolo,
  /// A crash-fault-tolerant Raft cluster (Fabric >= 1.4's etcdraft
  /// profile): blocks are dispatched only after the consensus log commits
  /// them, adding replication latency.
  kRaft,
};

/// Virtual-time costs of the pipeline's operations, in microseconds.
///
/// These model the paper's testbed (2x quad-core Xeon E5-2407 @ 2.2 GHz,
/// gigabit rack-local Ethernet, Fabric 1.2's Go crypto): ECDSA-P256
/// verification on that hardware/stack is on the order of 1.5-2 ms, signing
/// about half that, and per-block costs include consensus bookkeeping and
/// the ledger's fsync'd block append. Absolute throughput therefore lands in
/// the paper's few-hundred-to-thousand tps regime; the *relative* behaviour
/// of vanilla vs Fabric++ comes from the pipeline logic, not these knobs.
struct CostModel {
  // --- Crypto ---
  sim::SimTime sign = 1600;    ///< ECDSA sign (endorser, client, orderer).
  sim::SimTime verify = 3600;  ///< ECDSA verify.

  // --- Simulation phase (per endorsement, on a peer core) ---
  sim::SimTime chaincode_base = 250;  ///< Invocation overhead.
  sim::SimTime per_read = 2;          ///< State read + version lookup.
  sim::SimTime per_write = 2;         ///< Write-set append.

  // --- Client ---
  sim::SimTime client_assemble = 100;  ///< Rwset compare + tx assembly.

  // --- Ordering phase ---
  sim::SimTime order_per_tx = 30;        ///< Enqueue + batch bookkeeping.
  sim::SimTime block_fixed_order = 15000; ///< Consensus + block formation.
  sim::SimTime hash_per_kb = 25;         ///< Hashing block contents.
  /// Virtual cost charged for the Fabric++ reordering pass, derived from
  /// the reorderer's work counters (transactions and enumerated cycles;
  /// per-edge work is folded into the per-transaction constant). Keeps the
  /// simulation deterministic — host-measured time is never used. The
  /// constants are calibrated against the paper's Appendix B timings
  /// (~1-2 ms per 1024-transaction block, up to hundreds of ms for
  /// cycle-heavy pathological batches).
  sim::SimTime reorder_per_tx = 5;
  sim::SimTime reorder_per_cycle = 5;

  // --- Validation + commit phase (per peer) ---
  sim::SimTime validate_per_tx = 60;      ///< Policy plumbing + mvcc check.
  sim::SimTime block_fixed_commit = 25000; ///< Ledger append + fsync.
  sim::SimTime commit_per_write = 3;      ///< State-db write.
  sim::SimTime ledger_append_per_kb = 12;
};

/// Full system + experiment configuration. The defaults reproduce the
/// paper's Table 5 setup: 4 peers in 2 orgs, one ordering service, one
/// client machine firing 512 proposals/s per client with 4 clients on one
/// channel, blocks of up to 1024 transactions / 2 MB / 1 s / 16384 keys.
struct FabricConfig {
  // --- Topology (paper §6.1) ---
  uint32_t num_orgs = 2;
  uint32_t peers_per_org = 2;
  uint32_t num_channels = 1;
  uint32_t clients_per_channel = 4;
  double client_fire_rate_tps = 512.0;
  /// Whether clients resubmit aborted or timed-out proposals at all (paper
  /// §4.1: "the corresponding transaction proposals must be resubmitted by
  /// the client"). Measurement setups that want exactly one attempt per
  /// proposal turn this off.
  bool client_resubmit = true;
  /// Resubmission budget per proposal when client_resubmit is on. Must be
  /// in [1, 64]; use client_resubmit=false to disable retries entirely.
  uint32_t client_max_retries = 3;
  /// Exponential backoff before a resubmission: attempt k waits
  /// base * 2^k, capped at client_retry_backoff_max, then scaled by a
  /// uniform jitter factor in [1 - jitter, 1 + jitter]. Backoff prevents
  /// retry storms when aborts come from faults rather than contention.
  sim::SimTime client_retry_backoff_base = 5 * sim::kMillisecond;
  sim::SimTime client_retry_backoff_max = 500 * sim::kMillisecond;
  double client_retry_jitter = 0.2;
  /// A proposal whose endorsements have not all arrived after this long is
  /// aborted (kAbortEndorsementTimeout) and resubmitted per the backoff
  /// policy. Covers lost proposals and lost endorsement replies.
  sim::SimTime client_endorsement_timeout = 10 * sim::kSecond;
  /// An assembled transaction not resolved (committed or aborted) this long
  /// after submission to ordering is abandoned (kAbortCommitTimeout) and
  /// resubmitted. Covers lost submissions and lost commit events.
  sim::SimTime client_commit_timeout = 30 * sim::kSecond;
  /// Maximum proposals a client keeps in flight; firing ticks are skipped
  /// while the window is full. Models the bounded concurrency of real
  /// drivers (Caliper/gRPC) and keeps saturation stable instead of growing
  /// queues without bound. 0 = unbounded.
  uint32_t client_max_inflight = 512;

  // --- Overload survival: admission control + fair scheduling ---
  /// Bounded admission at the servers. 0 = off (legacy unbounded queues).
  /// At an endorsing peer it bounds the simulations concurrently admitted
  /// per channel; at the orderer it bounds the transactions one client may
  /// have queued ahead of the batch cutter per channel. A proposal or
  /// transaction arriving over the bound is answered with an explicit BUSY
  /// (retry-after) wire response instead of queueing without bound or being
  /// dropped silently. Must be in [0, 1048576].
  uint32_t admission_queue_depth = 0;
  /// Server-suggested minimum delay carried in BUSY responses. The client
  /// waits at least this long (its own exponential backoff still applies on
  /// top) before resubmitting, so load sheds back to the edge. Must be > 0
  /// whenever admission_queue_depth > 0.
  sim::SimTime busy_retry_hint = 20 * sim::kMillisecond;
  /// Deficit-round-robin quantum (in transaction cost units) of the fair
  /// scheduler in front of the orderer's batch cutter. 0 = FIFO admission
  /// (arrival order, still bounded per client); > 0 = each client queue
  /// earns `quantum` units per scheduler round, so a hot client's backlog
  /// cannot starve the others. Must be in [0, 4096].
  uint32_t fair_sched_quantum = 0;
  /// Conflict-aware surcharge (arXiv 2407.19732): extra deficit units a
  /// transaction pays per currently-hot key it touches, making hot-key
  /// spammers consume their fair share faster. 0 = off. Requires
  /// fair_sched_quantum > 0. Must be in [0, 1024].
  uint32_t fair_conflict_penalty = 0;

  // --- Hardware model ---
  uint32_t peer_cores = 8;  ///< 2x quad-core per server.
  uint32_t orderer_cores = 8;
  uint32_t client_machine_cores = 8;  ///< All clients share one machine.
  sim::NetworkParams network;
  /// Host threads running the validators' *real* signature-verification
  /// work (Fabric 1.2's validator workers), counting the committing thread:
  /// 1 = fully serial, N = the verify stage fans out N-wide on a shared
  /// ThreadPool. This only accelerates wall-clock crypto execution — the
  /// virtual-clock simulation stays single-threaded and every simulation
  /// output (validation codes, metrics, chain hashes) is byte-identical for
  /// any value. Must be in [1, 256].
  uint32_t validator_workers = 1;
  /// Host threads running the orderer's *real* reordering work (conflict
  /// graph build + per-SCC cycle enumeration), counting the calling thread:
  /// 1 = fully serial, N = the engine fans out N-wide on a dedicated
  /// ThreadPool shared via FabricNetwork::reorder_pool(). Same contract as
  /// validator_workers: wall-clock acceleration only — the ReorderResult
  /// (order, aborted set, stats) is byte-identical for any value. Must be
  /// in [1, 256].
  uint32_t reorder_workers = 1;
  /// Host threads running a peer's *real* commit-stage work (the per-wave
  /// MVCC version checks of the dependency-aware commit, DESIGN.md §13),
  /// counting the committing thread: 1 = the sequential commit loop,
  /// byte-identical to every earlier build; N = conflict-free waves fan out
  /// N-wide on a PoolKind::kCommit ThreadPool. Same contract as
  /// validator_workers: wall-clock acceleration only — verdicts, versioned
  /// state and every simulation output are byte-identical for any value.
  /// Must be in [1, 256].
  uint32_t commit_workers = 1;
  /// Whether the orderer attaches the commit-stage wave schedule to each
  /// block it cuts (proto::Block::commit_waves; see src/node/wire.h).
  /// Default off: the schedule enlarges the block's wire bytes, which feeds
  /// the modeled network/append costs, so turning it on changes virtual
  /// timings (deterministically). Peers without a shipped schedule
  /// recompute it locally when commit_workers > 1.
  bool ship_commit_schedule = false;
  /// Whether a peer re-validates a shipped schedule against the rwsets
  /// before using it (ordering::ValidateCommitWaves — the untrusted-orderer
  /// posture; an invalid schedule is discarded and recomputed). Turning it
  /// off skips the O(total-rwset) check for deployments that trust their
  /// ordering service. Never affects verdicts either way.
  bool verify_commit_schedule = true;
  /// Bound on orderer batches simultaneously inside the reorder stage per
  /// channel (the single-producer pipeline between block cutting and
  /// consensus submission). 1 reproduces the strictly serial seed behavior:
  /// batch N+1 waits until block N's ordering cost has been paid. Higher
  /// depths let the reorder of block N overlap the batching/reordering of
  /// block N+1 on the orderer's cores — blocks still enter consensus in
  /// chain order via an in-order drain. Must be in [1, 64].
  uint32_t ordering_pipeline_depth = 1;

  /// Per-channel scale-out lanes under the thread runtime: when
  /// num_channels > 1, the orderer and every peer run each channel's
  /// pipeline on its own endpoint thread (with its own executor), channels
  /// assigned round-robin over `channel_lanes` lanes. 0 = auto (one lane
  /// per channel, capped at 8). 1 = the single-threaded-per-node layout of
  /// earlier builds. Ignored under "sim" (one event loop regardless) and
  /// with a single channel. Must be in [0, 64].
  uint32_t channel_lanes = 0;

  // --- Block formation (paper Table 5) ---
  ordering::BatchCutConfig block;
  ordering::ReorderConfig reorder;
  OrderingBackend ordering_backend = OrderingBackend::kSolo;
  uint32_t raft_cluster_size = 3;
  raft::RaftCluster::Params raft_params;
  /// Block dissemination: false = the orderer ships every peer its own
  /// copy; true = Fabric's gossip pattern (Appendix A.2 step 9) — the
  /// orderer sends one copy per org to a leader peer, which forwards to
  /// the org's members. Halves orderer egress for the paper's topology.
  bool gossip_blocks = false;
  /// How long a peer that has detected a gap in its block stream waits for
  /// the orderer's re-delivery before asking again.
  sim::SimTime peer_fetch_retry_interval = 500 * sim::kMillisecond;

  // --- Fabric++ feature flags (Figure 10's ablation switches these) ---
  bool enable_reordering = false;
  bool enable_early_abort_sim = false;
  bool enable_early_abort_ordering = false;
  ConcurrencyMode concurrency = ConcurrencyMode::kCoarseLock;

  // --- Execution runtime ---
  /// Which runtime::Runtime executes the node state machines: "sim" (the
  /// default — single-threaded discrete-event simulation on a virtual
  /// clock, byte-identical replay) or "thread" (every node on its own OS
  /// thread with bounded mailboxes and a steady_clock-based clock; real
  /// concurrency, nondeterministic timings). Parsed by
  /// runtime::ParseRuntimeMode; Validate() rejects anything else.
  std::string runtime_mode = "sim";
  /// Bounded capacity of each node's mailbox under the thread runtime (a
  /// producer that finds the mailbox full blocks briefly, then the task is
  /// force-enqueued with a warning). Ignored under "sim". Must be in
  /// [16, 1048576].
  uint32_t mailbox_capacity = 8192;
  /// Number of endpoint threads the client machine's population is sharded
  /// across under the thread runtime (clients keep sharing one executor,
  /// mirroring the single client machine). Ignored under "sim". Must be in
  /// [1, 256].
  uint32_t thread_client_shards = 1;

  // --- Socket deployment (runtime_mode = "socket") ---
  /// TCP address ("host:port") peer i is reachable at. Under socket mode
  /// there must be exactly num_orgs * peers_per_org entries; every process
  /// in the cluster runs from the same list so dialing and listening agree.
  /// Port 0 is allowed only for in-process test clusters that rewire
  /// addresses after binding.
  std::vector<std::string> peer_addresses;
  /// TCP address ("host:port") the ordering service is reachable at.
  /// Required under socket mode.
  std::string orderer_address;
  /// Override of the local bind address for this process (e.g. to listen
  /// on 0.0.0.0 while peers dial a public name). Empty = bind the address
  /// the cluster list assigns this role.
  std::string listen_address;
  /// How long a dial may sit unconnected before it is torn down and retried
  /// with backoff. Must be in [1, 600000].
  uint32_t socket_connect_timeout_ms = 5000;
  /// Upper bound a receiver accepts for one wire frame (header + payload +
  /// CRC). Frames announcing more are a stream error and drop the
  /// connection. Must be in [4096, 1 GiB]; size it above the largest block
  /// (max_block_bytes plus framing slack).
  uint64_t socket_max_frame_bytes = 64ull << 20;

  /// runtime_mode resolved to the enum. Call Validate() first; an
  /// unparseable mode falls back to kSim here.
  runtime::RuntimeMode RuntimeModeOrDefault() const;

  // --- Storage (persistent state database) ---
  /// WAL durability of the LSM state store: "none" (leave syncing to the
  /// OS), "block" (group commit — one fsync per committed block batch; the
  /// default, matching Fabric's fsync'd block append), or "every_write"
  /// (fsync each WAL record, the slow per-key baseline). Parsed by
  /// storage::ParseWalSyncMode; Validate() rejects anything else.
  std::string storage_sync_mode = "block";
  /// Block-cache budget for SSTable data blocks in bytes (sharded LRU;
  /// see storage::BlockCache). 0 disables the cache. Must be <= 1 GiB.
  uint64_t storage_block_cache_bytes = 4ull << 20;
  /// Snapshot the state database every N committed blocks (0 = never).
  /// When > 0, checkpoint_dir must name the directory snapshots live in;
  /// restart then recovers from the newest valid checkpoint plus the WAL
  /// tail instead of replaying the whole log.
  uint32_t checkpoint_interval_blocks = 0;
  std::string checkpoint_dir;
  /// Prune ledger blocks below the newest state checkpoint, retaining at
  /// least this many trailing blocks. 0 = retain everything (the default:
  /// a blockchain forgets nothing unless explicitly told to). When > 0,
  /// checkpointing must be enabled — the checkpoint is what makes the
  /// pruned prefix recoverable-without-replay.
  uint32_t ledger_retain_blocks = 0;

  /// Storage-engine options with storage_sync_mode and the checkpoint /
  /// cache knobs resolved — what benches, tools, and durability tests
  /// should pass to PersistentStateDb::Open. Call Validate() first: an
  /// unparseable storage_sync_mode here is a programming error (Validate
  /// rejects it) and aborts loudly instead of silently defaulting.
  storage::DbOptions StorageOptions() const;

  CostModel cost;
  uint64_t seed = 42;

  /// Vanilla Fabric 1.2: arrival order, late abort, coarse lock, no
  /// unique-keys cut condition.
  static FabricConfig Vanilla();

  /// Fabric++: reordering + early abort in simulation and ordering, with
  /// the fine-grained concurrency control that enables the former.
  static FabricConfig FabricPlusPlus();

  /// Sanity-checks the configuration; FabricNetwork refuses to build from
  /// an invalid one. Returns the first problem found.
  Status Validate() const;
};

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_CONFIG_H_
