#include "fabric/config_file.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "workload/smallbank.h"
#include "workload/ycsb.h"

namespace fabricpp::fabric {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

Status BadValue(const std::string& key, const std::string& value) {
  return Status::InvalidArgument("bad value for " + key + ": \"" + value +
                                 "\"");
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  if (value.empty()) return BadValue(key, value);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) {
    return BadValue(key, value);
  }
  *out = v;
  return Status::OK();
}

Status ParseU32(const std::string& key, const std::string& value,
                uint32_t* out) {
  uint64_t v = 0;
  const Status s = ParseU64(key, value, &v);
  if (!s.ok()) return s;
  if (v > UINT32_MAX) return BadValue(key, value);
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

Status ParseF64(const std::string& key, const std::string& value,
                double* out) {
  if (value.empty()) return BadValue(key, value);
  errno = 0;
  char* end = nullptr;
  const double v = strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) {
    return BadValue(key, value);
  }
  *out = v;
  return Status::OK();
}

Status ParseBool(const std::string& key, const std::string& value,
                 bool* out) {
  if (value == "true" || value == "1" || value == "on") {
    *out = true;
    return Status::OK();
  }
  if (value == "false" || value == "0" || value == "off") {
    *out = false;
    return Status::OK();
  }
  return BadValue(key, value);
}

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      const std::string part = Trim(value.substr(start));
      if (!part.empty()) parts.push_back(part);
      break;
    }
    const std::string part = Trim(value.substr(start, comma - start));
    if (!part.empty()) parts.push_back(part);
    start = comma + 1;
  }
  return parts;
}

/// Everything the workload section can set, applied after all lines parse.
struct WorkloadSpec {
  std::string name = "smallbank";
  workload::SmallbankConfig smallbank;
  workload::YcsbConfig ycsb;
};

}  // namespace

Result<DeploymentConfig> ParseDeploymentText(const std::string& text) {
  // Pass 1: the preset selects the baseline the remaining keys override, no
  // matter where in the file it appears.
  FabricConfig config;
  std::istringstream preset_scan(text);
  std::string line;
  while (std::getline(preset_scan, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    if (Trim(line.substr(0, eq)) != "preset") continue;
    std::string value = Trim(line.substr(eq + 1));
    const size_t hash = value.find('#');
    if (hash != std::string::npos) value = Trim(value.substr(0, hash));
    if (value == "vanilla") {
      config = FabricConfig::Vanilla();
    } else if (value == "fabric++" || value == "fabricpp") {
      config = FabricConfig::FabricPlusPlus();
    } else {
      return BadValue("preset", value);
    }
  }

  WorkloadSpec spec;
  std::istringstream in(text);
  uint32_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected key = value, got \"" +
          line + "\"");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    Status s = Status::OK();

    if (key == "preset") {
      // Handled in pass 1.
    } else if (key == "num_orgs") {
      s = ParseU32(key, value, &config.num_orgs);
    } else if (key == "peers_per_org") {
      s = ParseU32(key, value, &config.peers_per_org);
    } else if (key == "num_channels") {
      s = ParseU32(key, value, &config.num_channels);
    } else if (key == "clients_per_channel") {
      s = ParseU32(key, value, &config.clients_per_channel);
    } else if (key == "client_fire_rate_tps") {
      s = ParseF64(key, value, &config.client_fire_rate_tps);
    } else if (key == "client_resubmit") {
      s = ParseBool(key, value, &config.client_resubmit);
    } else if (key == "client_max_retries") {
      s = ParseU32(key, value, &config.client_max_retries);
    } else if (key == "client_max_inflight") {
      s = ParseU32(key, value, &config.client_max_inflight);
    } else if (key == "admission_queue_depth") {
      s = ParseU32(key, value, &config.admission_queue_depth);
    } else if (key == "fair_sched_quantum") {
      s = ParseU32(key, value, &config.fair_sched_quantum);
    } else if (key == "fair_conflict_penalty") {
      s = ParseU32(key, value, &config.fair_conflict_penalty);
    } else if (key == "peer_cores") {
      s = ParseU32(key, value, &config.peer_cores);
    } else if (key == "orderer_cores") {
      s = ParseU32(key, value, &config.orderer_cores);
    } else if (key == "client_machine_cores") {
      s = ParseU32(key, value, &config.client_machine_cores);
    } else if (key == "validator_workers") {
      s = ParseU32(key, value, &config.validator_workers);
    } else if (key == "reorder_workers") {
      s = ParseU32(key, value, &config.reorder_workers);
    } else if (key == "commit_workers") {
      s = ParseU32(key, value, &config.commit_workers);
    } else if (key == "ordering_pipeline_depth") {
      s = ParseU32(key, value, &config.ordering_pipeline_depth);
    } else if (key == "block_max_transactions") {
      s = ParseU32(key, value, &config.block.max_transactions);
    } else if (key == "block_max_bytes") {
      s = ParseU64(key, value, &config.block.max_bytes);
    } else if (key == "block_timeout_ms") {
      uint64_t ms = 0;
      s = ParseU64(key, value, &ms);
      if (s.ok()) config.block.batch_timeout = ms * sim::kMillisecond;
    } else if (key == "block_max_unique_keys") {
      s = ParseU32(key, value, &config.block.max_unique_keys);
    } else if (key == "enable_reordering") {
      s = ParseBool(key, value, &config.enable_reordering);
    } else if (key == "enable_early_abort_sim") {
      s = ParseBool(key, value, &config.enable_early_abort_sim);
    } else if (key == "enable_early_abort_ordering") {
      s = ParseBool(key, value, &config.enable_early_abort_ordering);
    } else if (key == "concurrency") {
      if (value == "coarse") {
        config.concurrency = ConcurrencyMode::kCoarseLock;
      } else if (value == "fine") {
        config.concurrency = ConcurrencyMode::kFineGrained;
      } else {
        s = BadValue(key, value);
      }
    } else if (key == "runtime_mode") {
      config.runtime_mode = value;
    } else if (key == "mailbox_capacity") {
      s = ParseU32(key, value, &config.mailbox_capacity);
    } else if (key == "thread_client_shards") {
      s = ParseU32(key, value, &config.thread_client_shards);
    } else if (key == "peer_addresses") {
      config.peer_addresses = SplitCommas(value);
    } else if (key == "orderer_address") {
      config.orderer_address = value;
    } else if (key == "listen_address") {
      config.listen_address = value;
    } else if (key == "socket_connect_timeout_ms") {
      s = ParseU32(key, value, &config.socket_connect_timeout_ms);
    } else if (key == "socket_max_frame_bytes") {
      s = ParseU64(key, value, &config.socket_max_frame_bytes);
    } else if (key == "seed") {
      s = ParseU64(key, value, &config.seed);
    } else if (key == "workload") {
      if (value != "smallbank" && value != "ycsb") {
        s = BadValue(key, value);
      } else {
        spec.name = value;
      }
    } else if (key == "smallbank_users") {
      s = ParseU64(key, value, &spec.smallbank.num_users);
    } else if (key == "smallbank_prob_write") {
      s = ParseF64(key, value, &spec.smallbank.prob_write);
    } else if (key == "smallbank_zipf") {
      s = ParseF64(key, value, &spec.smallbank.zipf_s);
    } else if (key == "ycsb_mix") {
      if (value == "a") {
        spec.ycsb.mix = workload::YcsbMix::kA;
      } else if (value == "b") {
        spec.ycsb.mix = workload::YcsbMix::kB;
      } else if (value == "c") {
        spec.ycsb.mix = workload::YcsbMix::kC;
      } else if (value == "f") {
        spec.ycsb.mix = workload::YcsbMix::kF;
      } else {
        s = BadValue(key, value);
      }
    } else if (key == "ycsb_records") {
      s = ParseU64(key, value, &spec.ycsb.num_records);
    } else if (key == "ycsb_zipf") {
      s = ParseF64(key, value, &spec.ycsb.zipf_s);
    } else if (key == "ycsb_value_size") {
      s = ParseU32(key, value, &spec.ycsb.value_size);
    } else {
      s = Status::InvalidArgument("line " + std::to_string(line_no) +
                                  ": unknown key \"" + key + "\"");
    }
    if (!s.ok()) return s;
  }

  const Status valid = config.Validate();
  if (!valid.ok()) return valid;

  DeploymentConfig deployment;
  deployment.config = std::move(config);
  if (spec.name == "ycsb") {
    deployment.workload = std::make_unique<workload::YcsbWorkload>(spec.ycsb);
  } else {
    deployment.workload =
        std::make_unique<workload::SmallbankWorkload>(spec.smallbank);
  }
  return deployment;
}

Result<DeploymentConfig> LoadDeploymentFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDeploymentText(buffer.str());
}

}  // namespace fabricpp::fabric
