#ifndef FABRICPP_FABRIC_CONFIG_FILE_H_
#define FABRICPP_FABRIC_CONFIG_FILE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "fabric/config.h"
#include "workload/workload.h"

namespace fabricpp::fabric {

/// A deployment description parsed from a config file: the FabricConfig
/// every process of the cluster shares, plus the workload the load driver
/// fires (and every peer seeds its state from — the file must be identical
/// across processes or the cluster will not converge).
struct DeploymentConfig {
  FabricConfig config;
  std::unique_ptr<workload::Workload> workload;
};

/// Parses the `key = value` deployment format used by fabricpp_node and
/// fabricpp_load:
///
///   # comment
///   preset = fabric++              # or "vanilla"; applied before other keys
///   runtime_mode = socket
///   peer_addresses = 127.0.0.1:7051,127.0.0.1:7052
///   orderer_address = 127.0.0.1:7050
///   workload = smallbank           # or "ycsb"
///   smallbank_zipf = 1.0
///
/// Unknown keys are an error (a typo must not silently run a different
/// experiment). See docs/ and scripts/socket_smoke.sh for full examples.
Result<DeploymentConfig> ParseDeploymentText(const std::string& text);

/// Reads `path` and parses it with ParseDeploymentText.
Result<DeploymentConfig> LoadDeploymentFile(const std::string& path);

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_CONFIG_FILE_H_
