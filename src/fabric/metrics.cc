#include "fabric/metrics.h"

#include "common/strings.h"

namespace fabricpp::fabric {

std::string_view TxOutcomeToString(TxOutcome outcome) {
  switch (outcome) {
    case TxOutcome::kSuccess:
      return "SUCCESS";
    case TxOutcome::kAbortMvcc:
      return "ABORT_MVCC";
    case TxOutcome::kAbortPolicy:
      return "ABORT_POLICY";
    case TxOutcome::kAbortStaleSimulation:
      return "ABORT_STALE_SIMULATION";
    case TxOutcome::kAbortReorderer:
      return "ABORT_REORDERER";
    case TxOutcome::kAbortVersionSkew:
      return "ABORT_VERSION_SKEW";
    case TxOutcome::kAbortRwsetMismatch:
      return "ABORT_RWSET_MISMATCH";
    case TxOutcome::kAbortChaincodeError:
      return "ABORT_CHAINCODE_ERROR";
    case TxOutcome::kAbortEndorsementTimeout:
      return "ABORT_ENDORSEMENT_TIMEOUT";
    case TxOutcome::kAbortCommitTimeout:
      return "ABORT_COMMIT_TIMEOUT";
    case TxOutcome::kAbortDuplicateTxId:
      return "ABORT_DUPLICATE_TXID";
    case TxOutcome::kAbortBusy:
      return "ABORT_BUSY";
  }
  return "UNKNOWN";
}

TxOutcome OutcomeFromValidationCode(proto::TxValidationCode code) {
  switch (code) {
    case proto::TxValidationCode::kValid:
      return TxOutcome::kSuccess;
    case proto::TxValidationCode::kMvccConflict:
      return TxOutcome::kAbortMvcc;
    case proto::TxValidationCode::kEndorsementPolicyFailure:
      return TxOutcome::kAbortPolicy;
    case proto::TxValidationCode::kDuplicateTxId:
      return TxOutcome::kAbortDuplicateTxId;
    // The orderer-stage codes never appear in a committed block, but they do
    // travel in socket-mode OUTCOME messages (early aborts).
    case proto::TxValidationCode::kAbortedByReorderer:
      return TxOutcome::kAbortReorderer;
    case proto::TxValidationCode::kAbortedVersionSkew:
      return TxOutcome::kAbortVersionSkew;
    case proto::TxValidationCode::kAbortedStaleSimulation:
      return TxOutcome::kAbortStaleSimulation;
    case proto::TxValidationCode::kNotValidated:
      return TxOutcome::kAbortChaincodeError;
  }
  return TxOutcome::kAbortChaincodeError;
}

std::string TransportCounters::ToString() const {
  const double messages_d =
      messages == 0 ? 1.0 : static_cast<double>(messages);
  return StrFormat(
      "messages=%llu framed=%.2fMB modeled=%.2fMB framed_avg=%.1fB "
      "modeled_avg=%.1fB socket_tx=%llu/%.2fMB socket_rx=%llu/%.2fMB "
      "writev=%llu reconnects=%llu dropped=%llu decode_errors=%llu",
      static_cast<unsigned long long>(messages),
      static_cast<double>(framed_bytes) / 1e6,
      static_cast<double>(modeled_bytes) / 1e6,
      static_cast<double>(framed_bytes) / messages_d,
      static_cast<double>(modeled_bytes) / messages_d,
      static_cast<unsigned long long>(socket_frames_sent),
      static_cast<double>(socket_bytes_sent) / 1e6,
      static_cast<unsigned long long>(socket_frames_received),
      static_cast<double>(socket_bytes_received) / 1e6,
      static_cast<unsigned long long>(socket_writev_calls),
      static_cast<unsigned long long>(socket_reconnects),
      static_cast<unsigned long long>(socket_messages_dropped),
      static_cast<unsigned long long>(socket_decode_errors));
}

std::string ValidationWallClock::ToString() const {
  const double blocks_d = blocks == 0 ? 1.0 : static_cast<double>(blocks);
  const double waves_d =
      commit_waves == 0 ? 1.0 : static_cast<double>(commit_waves);
  return StrFormat(
      "blocks=%llu verify_total=%.2fms commit_total=%.2fms "
      "verify_avg=%.1fus commit_avg=%.1fus waves=%llu wave_avg=%.1fus "
      "wave_max=%.1fus",
      static_cast<unsigned long long>(blocks),
      static_cast<double>(verify_ns) / 1e6,
      static_cast<double>(commit_ns) / 1e6,
      static_cast<double>(verify_ns) / 1e3 / blocks_d,
      static_cast<double>(commit_ns) / 1e3 / blocks_d,
      static_cast<unsigned long long>(commit_waves),
      static_cast<double>(commit_wave_ns) / 1e3 / waves_d,
      static_cast<double>(commit_wave_max_ns) / 1e3);
}

std::string ReorderWallClock::ToString() const {
  const double batches_d = batches == 0 ? 1.0 : static_cast<double>(batches);
  return StrFormat(
      "batches=%llu reorder_total=%.2fms reorder_avg=%.1fus "
      "(build=%.2fms enumerate=%.2fms break=%.2fms schedule=%.2fms)",
      static_cast<unsigned long long>(batches),
      static_cast<double>(elapsed_us) / 1e3,
      static_cast<double>(elapsed_us) / batches_d,
      static_cast<double>(build_us) / 1e3,
      static_cast<double>(enumerate_us) / 1e3,
      static_cast<double>(break_us) / 1e3,
      static_cast<double>(schedule_us) / 1e3);
}

std::string StorageCounters::ToString() const {
  return StrFormat(
      "flushes=%llu compactions=%llu compacted=%.2fMB orphans_removed=%llu "
      "checkpoints=%llu recovered_from=%llu cache_hits=%llu "
      "cache_misses=%llu hit_rate=%.1f%%",
      static_cast<unsigned long long>(flushes),
      static_cast<unsigned long long>(compactions),
      static_cast<double>(compaction_bytes_written) / 1e6,
      static_cast<unsigned long long>(orphaned_tables_removed),
      static_cast<unsigned long long>(checkpoints_written),
      static_cast<unsigned long long>(recovered_checkpoint_height),
      static_cast<unsigned long long>(block_cache_hits),
      static_cast<unsigned long long>(block_cache_misses),
      100.0 * static_cast<double>(block_cache_hits) /
          static_cast<double>(
              block_cache_hits + block_cache_misses == 0
                  ? 1
                  : block_cache_hits + block_cache_misses));
}

std::string ProposalKey(const std::string& client, uint64_t proposal_id) {
  return StrFormat("%s/%llu", client.c_str(),
                   static_cast<unsigned long long>(proposal_id));
}

std::string Metrics::ClientOfKey(const std::string& key) {
  const size_t slash = key.rfind('/');
  return slash == std::string::npos ? key : key.substr(0, slash);
}

void Metrics::NoteFired(const std::string& key, sim::SimTime fired_at) {
  const std::lock_guard<std::mutex> lock(mu_);
  fired_at_[key] = fired_at;
  if (InWindow(fired_at)) ++per_client_fired_[ClientOfKey(key)];
}

void Metrics::Resolve(const std::string& key, TxOutcome outcome,
                      sim::SimTime now) {
  const std::lock_guard<std::mutex> lock(mu_);
  sim::SimTime fired = now;
  if (const auto it = fired_at_.find(key); it != fired_at_.end()) {
    fired = it->second;
    fired_at_.erase(it);
  }
  if (!InWindow(now)) return;
  if (outcome == TxOutcome::kSuccess) {
    ++successful_;
    ++per_client_successful_[ClientOfKey(key)];
    latency_us_.Add(now - fired);
  } else {
    ++failed_;
    ++aborts_[static_cast<size_t>(outcome)];
  }
}

bool Metrics::ResolveFired(const std::string& key, TxOutcome outcome,
                           sim::SimTime now) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = fired_at_.find(key);
  if (it == fired_at_.end()) return false;
  const sim::SimTime fired = it->second;
  fired_at_.erase(it);
  if (!InWindow(now)) return true;
  if (outcome == TxOutcome::kSuccess) {
    ++successful_;
    ++per_client_successful_[ClientOfKey(key)];
    latency_us_.Add(now - fired);
  } else {
    ++failed_;
    ++aborts_[static_cast<size_t>(outcome)];
  }
  return true;
}

void Metrics::NoteBlockCommitted(uint32_t num_txs, sim::SimTime now) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Commit-to-commit gap at the observer peer; the previous commit may sit
  // outside the window, the gap counts where it *ends*.
  if (last_block_commit_ != 0 && now >= last_block_commit_ && InWindow(now)) {
    block_gap_us_.Add(now - last_block_commit_);
  }
  last_block_commit_ = now;
  if (!InWindow(now)) return;
  ++blocks_committed_;
  block_tx_total_ += num_txs;
}

RunReport Metrics::Report() const {
  const std::lock_guard<std::mutex> lock(mu_);
  RunReport report;
  report.measure_seconds =
      sim::ToSeconds(window_end_ == ~0ULL ? 0 : window_end_ - window_start_);
  report.successful = successful_;
  report.failed = failed_;
  for (size_t i = 0; i < kNumTxOutcomes; ++i) report.aborts[i] = aborts_[i];
  if (report.measure_seconds > 0) {
    report.successful_tps =
        static_cast<double>(successful_) / report.measure_seconds;
    report.failed_tps = static_cast<double>(failed_) / report.measure_seconds;
  }
  if (latency_us_.count() > 0) {
    report.latency_avg_ms = latency_us_.Mean() / 1000.0;
    report.latency_min_ms = static_cast<double>(latency_us_.min()) / 1000.0;
    report.latency_max_ms = static_cast<double>(latency_us_.max()) / 1000.0;
    report.latency_p50_ms = latency_us_.Quantile(0.5) / 1000.0;
    report.latency_p95_ms = latency_us_.Quantile(0.95) / 1000.0;
    report.latency_p99_ms = latency_us_.Quantile(0.99) / 1000.0;
  }
  report.blocks_committed = blocks_committed_;
  if (blocks_committed_ > 0) {
    report.avg_block_size =
        static_cast<double>(block_tx_total_) / blocks_committed_;
  }
  if (block_gap_us_.count() > 0) {
    report.block_gap_avg_ms = block_gap_us_.Mean() / 1000.0;
    report.block_gap_p95_ms = block_gap_us_.Quantile(0.95) / 1000.0;
  }
  report.ordering_stalls = ordering_stalls_;
  report.ordering_stall_ms = static_cast<double>(ordering_stall_us_) / 1000.0;
  report.endorser_admitted = endorser_admitted_;
  report.endorser_busy = endorser_busy_;
  report.orderer_admitted = orderer_admitted_;
  report.orderer_busy = orderer_busy_;
  report.mailbox_shed_total = mailbox_shed_total_;
  // Jain index over every client that fired in the window: a starved client
  // contributes x=0 and drags the index toward 1/n, which is the point.
  double sum = 0, sum_sq = 0;
  size_t n = 0;
  for (const auto& [client, fired] : per_client_fired_) {
    const auto it = per_client_successful_.find(client);
    const double x =
        it == per_client_successful_.end() ? 0.0 : static_cast<double>(
                                                       it->second);
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n <= 1) {
    // No client fired in the window (or only one did): there is no
    // allocation to be unfair about. Defined as perfectly fair — an idle
    // run must not report the worst-possible index.
    report.jain_fairness = 1.0;
  } else if (sum_sq > 0) {
    report.jain_fairness = (sum * sum) / (n * sum_sq);
  } else {
    // Several clients fired, none succeeded: equal (zero) shares. The
    // formula's 0/0 limit is taken as fair rather than starved.
    report.jain_fairness = 1.0;
  }
  report.per_client_successful.assign(per_client_successful_.begin(),
                                      per_client_successful_.end());
  report.net_messages_dropped = net_dropped_;
  report.net_messages_duplicated = net_duplicated_;
  report.blocks_corrupted = blocks_corrupted_;
  report.blocks_deduplicated = blocks_deduplicated_;
  report.peer_recoveries = recovery_us_.count();
  if (recovery_us_.count() > 0) {
    report.recovery_avg_ms = recovery_us_.Mean() / 1000.0;
    report.recovery_max_ms = static_cast<double>(recovery_us_.max()) / 1000.0;
  }
  return report;
}

std::string RunReport::ToString() const {
  std::string out = StrFormat(
      "successful=%llu (%.1f tps) failed=%llu (%.1f tps) latency avg=%.1fms "
      "p50=%.1fms p95=%.1fms blocks=%llu avg_block=%.1f",
      static_cast<unsigned long long>(successful), successful_tps,
      static_cast<unsigned long long>(failed), failed_tps, latency_avg_ms,
      latency_p50_ms, latency_p95_ms,
      static_cast<unsigned long long>(blocks_committed), avg_block_size);
  bool any = false;
  for (uint64_t a : aborts) any |= (a != 0);
  if (any) {
    out += "\n  aborts:";
    for (size_t i = 1; i < kNumTxOutcomes; ++i) {
      if (aborts[i] == 0) continue;
      out += StrFormat(" %s=%llu",
                       std::string(TxOutcomeToString(static_cast<TxOutcome>(i)))
                           .c_str(),
                       static_cast<unsigned long long>(aborts[i]));
    }
  }
  if (ordering_stalls != 0) {
    out += StrFormat(
        "\n  ordering: stalls=%llu stall_total=%.1fms block_gap avg=%.1fms "
        "p95=%.1fms",
        static_cast<unsigned long long>(ordering_stalls), ordering_stall_ms,
        block_gap_avg_ms, block_gap_p95_ms);
  }
  if (endorser_admitted != 0 || endorser_busy != 0 || orderer_admitted != 0 ||
      orderer_busy != 0 || mailbox_shed_total != 0) {
    out += StrFormat(
        "\n  admission: endorser=%llu/%llu orderer=%llu/%llu "
        "(admitted/busy) mailbox_shed=%llu jain=%.3f",
        static_cast<unsigned long long>(endorser_admitted),
        static_cast<unsigned long long>(endorser_busy),
        static_cast<unsigned long long>(orderer_admitted),
        static_cast<unsigned long long>(orderer_busy),
        static_cast<unsigned long long>(mailbox_shed_total), jain_fairness);
  }
  if (net_messages_dropped != 0 || net_messages_duplicated != 0 ||
      blocks_corrupted != 0 || blocks_deduplicated != 0 ||
      peer_recoveries != 0) {
    out += StrFormat(
        "\n  faults: dropped=%llu duplicated=%llu corrupted_blocks=%llu "
        "deduped_blocks=%llu recoveries=%llu avg_recovery=%.1fms "
        "max_recovery=%.1fms",
        static_cast<unsigned long long>(net_messages_dropped),
        static_cast<unsigned long long>(net_messages_duplicated),
        static_cast<unsigned long long>(blocks_corrupted),
        static_cast<unsigned long long>(blocks_deduplicated),
        static_cast<unsigned long long>(peer_recoveries), recovery_avg_ms,
        recovery_max_ms);
  }
  return out;
}

}  // namespace fabricpp::fabric
