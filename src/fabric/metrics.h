#ifndef FABRICPP_FABRIC_METRICS_H_
#define FABRICPP_FABRIC_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "proto/transaction.h"
#include "sim/time.h"

namespace fabricpp::fabric {

/// Where in the pipeline a transaction's fate was decided.
enum class TxOutcome : uint8_t {
  kSuccess = 0,
  /// Validator MVCC conflict (the paper's "serialization conflict" aborts).
  kAbortMvcc,
  /// Endorsement policy / signature failure at validation.
  kAbortPolicy,
  /// Fabric++: stale read detected during simulation (paper §5.2.1).
  kAbortStaleSimulation,
  /// Fabric++: removed by the reorderer as a cycle victim (paper §5.1).
  kAbortReorderer,
  /// Fabric++: within-block version skew in the orderer (paper §5.2.2).
  kAbortVersionSkew,
  /// Client saw mismatching read/write sets across endorsers.
  kAbortRwsetMismatch,
  /// The chaincode itself returned an error during simulation.
  kAbortChaincodeError,
  /// Client gave up waiting for endorsements (lost proposal or reply).
  kAbortEndorsementTimeout,
  /// Client gave up waiting for the commit event (lost submission, lost
  /// block, or lost notification).
  kAbortCommitTimeout,
  /// Validator replay protection: the transaction id had already committed
  /// (a duplicated submission or block delivery).
  kAbortDuplicateTxId,
  /// An overloaded endorser or orderer refused admission with an explicit
  /// BUSY (retry-after) response; the client backs off and resubmits.
  kAbortBusy,
};

/// Number of TxOutcome values (array-sizing constant).
inline constexpr size_t kNumTxOutcomes = 12;

std::string_view TxOutcomeToString(TxOutcome outcome);

/// Maps a committed transaction's validation code to the outcome bucket the
/// run report counts it under. Shared by the observer peer (commit events)
/// and the socket-mode client host, which resolves metrics from OUTCOME
/// wire messages instead of an in-process commit loop.
TxOutcome OutcomeFromValidationCode(proto::TxValidationCode code);

/// Aggregated results of one run (what every bench prints).
struct RunReport {
  double measure_seconds = 0;
  uint64_t successful = 0;
  uint64_t failed = 0;  ///< Sum of all abort categories.
  double successful_tps = 0;
  double failed_tps = 0;
  uint64_t aborts[kNumTxOutcomes] = {0};  ///< Indexed by TxOutcome.
  // Latency of successful transactions (proposal fired -> committed),
  // milliseconds.
  double latency_avg_ms = 0;
  double latency_min_ms = 0;
  double latency_max_ms = 0;
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  uint64_t blocks_committed = 0;
  double avg_block_size = 0;
  // Block inter-arrival gap at the observer peer (commit-to-commit virtual
  // time) — what the ordering pipeline compresses when the reorder stage is
  // the bottleneck.
  double block_gap_avg_ms = 0;
  double block_gap_p95_ms = 0;

  // --- Ordering pipeline (virtual-time, deterministic) ---
  /// Batches that sat in the orderer's cut queue because the reorder stage
  /// was at its pipeline depth (with depth 1, every wait behind the
  /// previous block counts).
  uint64_t ordering_stalls = 0;
  double ordering_stall_ms = 0;  ///< Total virtual time those batches waited.

  // --- Admission / overload telemetry (zero with admission control off) ---
  /// Whole-run totals (not window-gated): admission accounting must balance
  /// even for work admitted during warm-up or the drain.
  uint64_t endorser_admitted = 0;  ///< Proposals admitted by endorsers.
  uint64_t endorser_busy = 0;      ///< Proposals refused with BUSY.
  uint64_t orderer_admitted = 0;   ///< Transactions admitted by the orderer.
  uint64_t orderer_busy = 0;       ///< Transactions refused with BUSY.
  /// Thread-runtime mailbox deliveries shed at a full bounded mailbox
  /// (always 0 under the simulation runtime, whose transport never sheds).
  uint64_t mailbox_shed_total = 0;
  /// Jain fairness index (sum x)^2 / (n * sum x^2) of per-client goodput,
  /// over every client that fired inside the window; 1.0 = perfectly even,
  /// 1/n = one client took everything. 0 when nothing committed.
  double jain_fairness = 0;
  /// Per-client committed transactions inside the window, sorted by client
  /// name (deterministic under sim).
  std::vector<std::pair<std::string, uint64_t>> per_client_successful;

  // --- Fault / recovery telemetry (zero in fault-free runs) ---
  uint64_t net_messages_dropped = 0;     ///< Injector drops, all causes.
  uint64_t net_messages_duplicated = 0;  ///< Injector duplications.
  uint64_t blocks_corrupted = 0;   ///< Blocks a peer rejected as tampered.
  uint64_t blocks_deduplicated = 0;  ///< Duplicate deliveries discarded.
  uint64_t peer_recoveries = 0;    ///< Completed crash-recovery episodes.
  double recovery_avg_ms = 0;      ///< Restart -> caught-up, average.
  double recovery_max_ms = 0;

  std::string ToString() const;
};

/// Host wall-clock spent in the validator's two stages, accumulated across
/// all blocks the observer peer committed. **Not part of RunReport**: these
/// are real (std::chrono) measurements of the crypto work, so they vary
/// run-to-run and with `validator_workers` — folding them into the report
/// would break the bit-identical-across-worker-counts guarantee the
/// determinism tests assert. Benches read them via
/// Metrics::validation_wall_clock().
struct ValidationWallClock {
  uint64_t blocks = 0;
  uint64_t verify_ns = 0;  ///< Parallel endorsement/signature stage.
  uint64_t commit_ns = 0;  ///< MVCC/write/append stage (either path).
  /// Dependency-aware commit breakdown (commit_workers > 1, DESIGN.md §13):
  /// waves executed across all blocks, host nanoseconds inside the wave
  /// loop (fan-out + barrier), and the single slowest wave seen. Zero on
  /// the sequential path.
  uint64_t commit_waves = 0;
  uint64_t commit_wave_ns = 0;
  uint64_t commit_wave_max_ns = 0;

  std::string ToString() const;
};

/// Host wall-clock spent in the orderer's reordering passes. Same contract
/// as ValidationWallClock: a real measurement, kept out of RunReport and
/// the deterministic ReorderStats so simulation outputs stay byte-identical
/// run-to-run. Benches read it via Metrics::reorder_wall_clock().
struct ReorderWallClock {
  uint64_t batches = 0;     ///< Reordering passes measured.
  uint64_t elapsed_us = 0;  ///< Total host microseconds across passes.
  // Per-stage split of elapsed_us (graph build / SCC + cycle enumeration /
  // cycle breaking / schedule generation) — the reorder_workers pool
  // accelerates the first two; benches report the split.
  uint64_t build_us = 0;
  uint64_t enumerate_us = 0;
  uint64_t break_us = 0;
  uint64_t schedule_us = 0;

  std::string ToString() const;
};

/// Storage-engine counters of the observer peer's persistent state store
/// (storage::DbStats plus the block cache), folded in by the harness after
/// a run. Same contract as ValidationWallClock: host-side measurements kept
/// out of RunReport so simulation fingerprints stay byte-identical whatever
/// the cache size, compaction shape, or checkpoint cadence. Benches and
/// tools read them via Metrics::storage_counters().
struct StorageCounters {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t orphaned_tables_removed = 0;
  uint64_t checkpoints_written = 0;
  uint64_t recovered_checkpoint_height = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;

  std::string ToString() const;
};

/// Wire-level message accounting under the thread and socket runtimes.
/// Same contract as ValidationWallClock: **not part of RunReport**. The
/// deterministic cost model keeps charging the modeled
/// `ByteSize() + node::kMessageOverhead` sizes (so sim fingerprints never
/// move), while these counters record what the messages *actually* weigh
/// once encoded and framed (proto/wire_format.h) — the measured replacement
/// for the modeled constant. Sim runs leave everything zero.
struct TransportCounters {
  /// Array bound for per-type counters, indexed by the raw
  /// proto::WireMessageType byte (1..12 used today).
  static constexpr size_t kNumWireTypes = 16;

  uint64_t messages = 0;
  uint64_t framed_bytes = 0;   ///< Encoded payload + frame header + CRC.
  uint64_t modeled_bytes = 0;  ///< What the cost model charged instead.
  uint64_t messages_by_type[kNumWireTypes] = {0};
  uint64_t framed_bytes_by_type[kNumWireTypes] = {0};

  // Socket event-loop totals (zero in sim/thread modes), folded in by the
  // host after a run from runtime::SocketTransport::counters().
  uint64_t socket_frames_sent = 0;
  uint64_t socket_bytes_sent = 0;
  uint64_t socket_frames_received = 0;
  uint64_t socket_bytes_received = 0;
  uint64_t socket_writev_calls = 0;
  uint64_t socket_reconnects = 0;
  uint64_t socket_messages_dropped = 0;
  uint64_t socket_decode_errors = 0;

  std::string ToString() const;
};

/// Collects transaction outcomes during a run.
///
/// Only events inside the measurement window [window_start, window_end)
/// count — the warm-up ramp and the drain are excluded, mirroring how the
/// paper reports steady-state transactions per second.
///
/// Thread-safe: under the thread runtime, the observer peer, the orderer
/// and the client machine report concurrently, so every entry takes an
/// internal mutex. Under the (single-threaded) simulation runtime the lock
/// is uncontended and has no effect on any recorded value.
class Metrics {
 public:
  void SetWindow(sim::SimTime start, sim::SimTime end) {
    const std::lock_guard<std::mutex> lock(mu_);
    window_start_ = start;
    window_end_ = end;
  }

  /// Clients call this when a proposal is fired, so commit-side latency can
  /// be computed. `key` identifies the proposal (client + proposal id).
  void NoteFired(const std::string& key, sim::SimTime fired_at);

  /// Records a resolved transaction (commit or any abort). `key` must match
  /// a NoteFired call; unknown keys are counted without latency.
  void Resolve(const std::string& key, TxOutcome outcome, sim::SimTime now);

  /// Like Resolve, but only counts if `key` has a pending NoteFired entry —
  /// the entry is consumed, so a proposal resolves at most once even when a
  /// client-side timeout races the real commit event. Returns whether the
  /// resolution counted.
  bool ResolveFired(const std::string& key, TxOutcome outcome,
                    sim::SimTime now);

  /// Records a committed block (observer peer only).
  void NoteBlockCommitted(uint32_t num_txs, sim::SimTime now);

  /// A peer rejected a block whose hashes or chain linkage did not check out.
  void NoteCorruptedBlock() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++blocks_corrupted_;
  }

  /// A peer discarded a duplicate delivery of a block it already has.
  void NoteDuplicateBlock() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++blocks_deduplicated_;
  }

  /// A restarted peer finished catching up; `duration` is restart -> parity
  /// with the orderer's chain.
  void NoteRecovery(sim::SimTime duration) {
    const std::lock_guard<std::mutex> lock(mu_);
    recovery_us_.Add(duration);
  }

  /// Host wall-clock of one block's verify/commit stages (observer peer).
  /// Accumulated outside the deterministic report — see ValidationWallClock.
  void NoteValidationWallClock(uint64_t verify_ns, uint64_t commit_ns,
                               uint32_t commit_waves = 0,
                               uint64_t commit_wave_ns = 0,
                               uint64_t commit_wave_max_ns = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++validation_wall_.blocks;
    validation_wall_.verify_ns += verify_ns;
    validation_wall_.commit_ns += commit_ns;
    validation_wall_.commit_waves += commit_waves;
    validation_wall_.commit_wave_ns += commit_wave_ns;
    validation_wall_.commit_wave_max_ns =
        std::max(validation_wall_.commit_wave_max_ns, commit_wave_max_ns);
  }
  const ValidationWallClock& validation_wall_clock() const {
    return validation_wall_;
  }

  /// Host wall-clock of one reordering pass (orderer), with its per-stage
  /// split. Accumulated outside the deterministic report — see
  /// ReorderWallClock.
  void NoteReorderWallClock(uint64_t elapsed_us, uint64_t build_us = 0,
                            uint64_t enumerate_us = 0, uint64_t break_us = 0,
                            uint64_t schedule_us = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++reorder_wall_.batches;
    reorder_wall_.elapsed_us += elapsed_us;
    reorder_wall_.build_us += build_us;
    reorder_wall_.enumerate_us += enumerate_us;
    reorder_wall_.break_us += break_us;
    reorder_wall_.schedule_us += schedule_us;
  }
  const ReorderWallClock& reorder_wall_clock() const { return reorder_wall_; }

  /// Storage-engine totals, folded in by the harness or bench after the run
  /// (from storage::Db::stats() and the block cache counters) — see
  /// StorageCounters.
  void SetStorageCounters(const StorageCounters& counters) {
    const std::lock_guard<std::mutex> lock(mu_);
    storage_counters_ = counters;
  }
  StorageCounters storage_counters() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return storage_counters_;
  }

  /// One cross-node message measured at its real framed size (thread and
  /// socket modes; the mesh skips measuring under sim). `type` is the raw
  /// proto::WireMessageType byte; `modeled_bytes` is what the cost model
  /// charged for the same send. Outside RunReport — see TransportCounters.
  void NoteWireMessage(uint8_t type, uint64_t framed_bytes,
                       uint64_t modeled_bytes) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++transport_counters_.messages;
    transport_counters_.framed_bytes += framed_bytes;
    transport_counters_.modeled_bytes += modeled_bytes;
    if (type < TransportCounters::kNumWireTypes) {
      ++transport_counters_.messages_by_type[type];
      transport_counters_.framed_bytes_by_type[type] += framed_bytes;
    }
  }

  /// Socket event-loop totals, folded in by the host after the run (from
  /// runtime::SocketTransport::counters()). Leaves the mesh-level message
  /// counters untouched.
  void SetSocketTransportTotals(uint64_t frames_sent, uint64_t bytes_sent,
                                uint64_t frames_received,
                                uint64_t bytes_received,
                                uint64_t writev_calls, uint64_t reconnects,
                                uint64_t messages_dropped,
                                uint64_t decode_errors) {
    const std::lock_guard<std::mutex> lock(mu_);
    transport_counters_.socket_frames_sent = frames_sent;
    transport_counters_.socket_bytes_sent = bytes_sent;
    transport_counters_.socket_frames_received = frames_received;
    transport_counters_.socket_bytes_received = bytes_received;
    transport_counters_.socket_writev_calls = writev_calls;
    transport_counters_.socket_reconnects = reconnects;
    transport_counters_.socket_messages_dropped = messages_dropped;
    transport_counters_.socket_decode_errors = decode_errors;
  }

  TransportCounters transport_counters() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return transport_counters_;
  }

  /// A cut batch waited `waited` virtual time in the orderer's queue before
  /// the reorder stage had pipeline capacity for it. Virtual-time and thus
  /// deterministic: part of RunReport, unlike the wall-clock notes above.
  void NoteOrderingStall(sim::SimTime waited, sim::SimTime now) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!InWindow(now)) return;
    ++ordering_stalls_;
    ordering_stall_us_ += waited;
  }

  /// An endorsing peer's admission decision on a delivered proposal:
  /// admitted into the simulation stage, or refused with BUSY. Whole-run
  /// totals (no window gating): the zero-silent-drops accounting must
  /// balance across warm-up and drain too.
  void NoteEndorserAdmission(bool admitted) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (admitted) {
      ++endorser_admitted_;
    } else {
      ++endorser_busy_;
    }
  }

  /// The orderer's admission decision on a delivered transaction.
  void NoteOrdererAdmission(bool admitted) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (admitted) {
      ++orderer_admitted_;
    } else {
      ++orderer_busy_;
    }
  }

  /// Thread-runtime mailbox deliveries shed at full bounded mailboxes,
  /// folded in by the composition root after the run (like the injector
  /// totals). Always 0 under the simulation runtime.
  void SetMailboxShedTotal(uint64_t shed) {
    const std::lock_guard<std::mutex> lock(mu_);
    mailbox_shed_total_ = shed;
  }

  /// Proposals fired but not yet resolved (committed, aborted or timed
  /// out). After a full drain this must be zero: anything else would be a
  /// silently dropped transaction.
  uint64_t unresolved_fired() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return fired_at_.size();
  }

  /// Injector totals, folded into the report by the harness after the run.
  void SetNetworkFaultTotals(uint64_t dropped, uint64_t duplicated) {
    const std::lock_guard<std::mutex> lock(mu_);
    net_dropped_ = dropped;
    net_duplicated_ = duplicated;
  }

  RunReport Report() const;

  uint64_t successful() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return successful_;
  }
  uint64_t failed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return failed_;
  }
  uint64_t aborts(TxOutcome outcome) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return aborts_[static_cast<size_t>(outcome)];
  }

 private:
  bool InWindow(sim::SimTime t) const {
    return t >= window_start_ && t < window_end_;
  }

  /// The client part of a ProposalKey ("client/proposal_id").
  static std::string ClientOfKey(const std::string& key);

  mutable std::mutex mu_;
  sim::SimTime window_start_ = 0;
  sim::SimTime window_end_ = ~0ULL;
  std::unordered_map<std::string, sim::SimTime> fired_at_;
  uint64_t successful_ = 0;
  uint64_t failed_ = 0;
  uint64_t aborts_[kNumTxOutcomes] = {0};
  Histogram latency_us_;
  uint64_t blocks_committed_ = 0;
  uint64_t block_tx_total_ = 0;
  sim::SimTime last_block_commit_ = 0;
  Histogram block_gap_us_;
  uint64_t ordering_stalls_ = 0;
  uint64_t ordering_stall_us_ = 0;
  uint64_t endorser_admitted_ = 0;
  uint64_t endorser_busy_ = 0;
  uint64_t orderer_admitted_ = 0;
  uint64_t orderer_busy_ = 0;
  uint64_t mailbox_shed_total_ = 0;
  /// Per-client in-window counters (std::map: deterministic iteration for
  /// the report's sorted per-client goodput).
  std::map<std::string, uint64_t> per_client_successful_;
  std::map<std::string, uint64_t> per_client_fired_;
  uint64_t blocks_corrupted_ = 0;
  uint64_t blocks_deduplicated_ = 0;
  Histogram recovery_us_;
  uint64_t net_dropped_ = 0;
  uint64_t net_duplicated_ = 0;
  ValidationWallClock validation_wall_;
  ReorderWallClock reorder_wall_;
  StorageCounters storage_counters_;
  TransportCounters transport_counters_;
};

/// A stable key for (client, proposal) used by Metrics.
std::string ProposalKey(const std::string& client, uint64_t proposal_id);

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_METRICS_H_
