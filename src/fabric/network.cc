#include "fabric/network.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace fabricpp::fabric {

FabricNetwork::FabricNetwork(FabricConfig config,
                             const workload::Workload* workload)
    : config_(std::move(config)), workload_(workload) {
  const Status valid = config_.Validate();
  if (!valid.ok()) {
    FABRICPP_LOG(Error) << "invalid FabricConfig: " << valid;
    std::abort();
  }

  // 1. The execution substrate. Sim: one deterministic event loop, every
  // message routed through the fault injector (pass-through and drawing no
  // randomness without a fault plan, so fault-free runs stay bit-identical
  // to a network without it). Thread: one mailbox thread per endpoint.
  const runtime::RuntimeMode mode = config_.RuntimeModeOrDefault();
  if (mode == runtime::RuntimeMode::kSocket) {
    FABRICPP_LOG(Error)
        << "runtime_mode=\"socket\" composes per-process hosts, not one "
           "in-process network — run fabricpp_node / fabricpp_load (or "
           "fabric::SocketHost) instead of FabricNetwork";
    std::abort();
  }
  if (mode == runtime::RuntimeMode::kSim) {
    runtime::SimRuntime::Options options;
    options.seed = config_.seed;
    options.network = config_.network;
    auto sim = std::make_unique<runtime::SimRuntime>(options);
    sim_ = sim.get();
    runtime_ = std::move(sim);
  } else {
    runtime::ThreadRuntime::Options options;
    options.mailbox_capacity = config_.mailbox_capacity;
    auto thread = std::make_unique<runtime::ThreadRuntime>(options);
    thread_ = thread.get();
    runtime_ = std::move(thread);
  }

  registry_ = chaincode::ChaincodeRegistry::WithBuiltins();

  // 2. The shared client machine (paper §6.1: one server fires all
  // proposals). Its endpoint is created before any peer so the historical
  // node-id order ("clients" first) is preserved. Under the thread runtime
  // the client population can be sharded across several endpoint threads;
  // node-to-client traffic still addresses each client's own home shard.
  const uint32_t shards = mode == runtime::RuntimeMode::kThread
                              ? config_.thread_client_shards
                              : 1;
  for (uint32_t s = 0; s < shards; ++s) {
    runtime::Endpoint& home = runtime_->AddEndpoint(
        s == 0 ? "clients" : StrFormat("clients-%u", s));
    client_endpoints_.push_back(&home);
    client_cpus_.push_back(&runtime_->AddExecutor(
        home, s == 0 ? "client-cpu" : StrFormat("client-cpu-%u", s),
        config_.client_machine_cores));
  }

  // 3. Worker pools for the real (wall-clock) crypto and reordering work.
  // Under sim these are the process-wide shared pools the peers and the
  // orderer will also be handed (created here, before the nodes, matching
  // the pre-runtime construction order); under the thread runtime each
  // node requests its own pool and these stay null.
  if (sim_ != nullptr) {
    validator_pool_ = runtime_->RequestPool(runtime::PoolKind::kValidator,
                                            config_.validator_workers);
    reorder_pool_ = runtime_->RequestPool(runtime::PoolKind::kReorder,
                                          config_.reorder_workers);
    commit_pool_ = runtime_->RequestPool(runtime::PoolKind::kCommit,
                                         config_.commit_workers);
  }

  // 4. Endorsement policy: one peer of every org (paper §2.2.1).
  peer::EndorsementPolicy policy;
  policy.id = "AND(all-orgs)";
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    policy.required_orgs.push_back(std::string(1, static_cast<char>('A' + o)));
  }
  default_policy_id_ = policy.id;
  (void)policies_.Register(std::move(policy));

  // 5. The nodes, built against the narrow context only — no node sees
  // FabricNetwork itself, just the directory + runtime + mesh interfaces.
  // LocalMesh measures real framed wire sizes in thread mode only; the sim
  // path must not spend host time encoding messages it never ships.
  mesh_ = std::make_unique<node::LocalMesh>(
      &config_, &metrics_, this, runtime_.get(),
      /*measure_wire_bytes=*/mode == runtime::RuntimeMode::kThread);
  const node::NodeContext ctx{&config_,         &metrics_, workload_,
                              registry_.get(),  &policies_, runtime_.get(),
                              this,             mesh_.get()};

  // Peers, org-major: A1 A2 ... B1 B2 ...
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    const std::string org(1, static_cast<char>('A' + o));
    for (uint32_t p = 0; p < config_.peers_per_org; ++p) {
      const uint32_t index = o * config_.peers_per_org + p;
      peers_.push_back(std::make_unique<node::PeerNode>(
          ctx, index, StrFormat("%s%u", org.c_str(), p + 1), org));
    }
  }

  // Pre-warm every validator's verification-identity cache with the full
  // peer roster (the only signers on the endorsement path). The verify
  // stage then runs read-only against the cache no matter how many workers
  // race through it; the shared_mutex slow path only covers signers unknown
  // at construction (e.g. externally injected transactions).
  {
    std::vector<std::string> peer_names;
    peer_names.reserve(peers_.size());
    for (const auto& peer : peers_) peer_names.push_back(peer->name());
    for (auto& peer : peers_) peer->PrewarmIdentities(peer_names);
  }

  orderer_ = std::make_unique<node::OrdererNode>(ctx);

  // 6. Consensus backend. Raft runs on both substrates: under sim the
  // replicas share the event loop and register with the injector for chaos
  // coverage; under the thread runtime each replica gets its own mailbox
  // thread and commits are posted back to the committed channel's orderer
  // lane.
  if (config_.ordering_backend == OrderingBackend::kRaft) {
    if (sim_ != nullptr) {
      raft_consensus_ = std::make_unique<RaftConsensus>(
          &sim_->env(), &sim_->network(), config_);
    } else {
      raft_consensus_ = std::make_unique<RaftConsensus>(runtime_.get(),
                                                        config_);
      raft_consensus_->SetDeliveryEndpointResolver([this](uint32_t channel) {
        return &orderer_->endpoint_for(channel);
      });
    }
    orderer_->SetConsensus(raft_consensus_.get());
  } else {
    orderer_->SetConsensus(&solo_consensus_);
  }

  // 7. Seed every (peer, channel) state database identically.
  for (auto& peer : peers_) {
    for (uint32_t c = 0; c < config_.num_channels; ++c) {
      workload_->SeedState(peer->mutable_state_db(c));
    }
  }

  // 8. Clients, channel-major, round-robin across the client machine's
  // endpoint shards (one shard under sim: all on "clients").
  for (uint32_t c = 0; c < config_.num_channels; ++c) {
    for (uint32_t i = 0; i < config_.clients_per_channel; ++i) {
      const uint32_t index = c * config_.clients_per_channel + i;
      clients_.push_back(std::make_unique<node::ClientNode>(
          ctx, index, c, node::ClientNameFor(c, i),
          config_.seed * 0x9e3779b97f4a7c15ULL + index + 1,
          client_endpoints_[index % shards], client_cpus_[index % shards]));
      clients_by_name_[clients_.back()->name()] = clients_.back().get();
    }
  }
}

FabricNetwork::~FabricNetwork() {
  // Stop all endpoint threads before any node state they touch is torn
  // down. No-op after RunFor (which shuts down to end the measurement) and
  // under sim.
  if (thread_ != nullptr) thread_->Shutdown();
}

runtime::SimRuntime& FabricNetwork::RequireSim(const char* what) const {
  if (sim_ == nullptr) {
    FABRICPP_LOG(Error) << what
                        << " requires runtime_mode=\"sim\" (the thread "
                           "runtime has no deterministic fault plan)";
    std::abort();
  }
  return *sim_;
}

sim::Environment& FabricNetwork::env() { return RequireSim("env()").env(); }

sim::Network& FabricNetwork::network() {
  return RequireSim("network()").network();
}

sim::FaultInjector& FabricNetwork::fault_injector() {
  return RequireSim("fault_injector()").injector();
}

node::ClientNode* FabricNetwork::FindClient(const std::string& name) {
  const auto it = clients_by_name_.find(name);
  return it == clients_by_name_.end() ? nullptr : it->second;
}

std::vector<uint32_t> FabricNetwork::EndorsersFor(uint64_t proposal_id) {
  return node::EndorserIndicesFor(config_.num_orgs, config_.peers_per_org,
                                  proposal_id);
}

RunReport FabricNetwork::RunFor(sim::SimTime duration, sim::SimTime warmup) {
  if (sim_ != nullptr) {
    metrics_.SetWindow(warmup, duration);
    for (auto& client : clients_) client->StartFiring(duration);
    sim_->env().RunUntil(duration);
    metrics_.SetNetworkFaultTotals(sim_->injector().stats().TotalDropped(),
                                   sim_->injector().stats().duplicated);
    return metrics_.Report();
  }

  // Thread runtime: `duration` is wall-clock. The run ends with a drain
  // (so in-flight blocks land) and a full shutdown — client timeout timers
  // are armed tens of (real) seconds out, and the only way to guarantee
  // none of them races the report below is to stop the machinery. One
  // measured run per network, by design.
  if (ran_) {
    FABRICPP_LOG(Error) << "RunFor can only be called once under the "
                           "thread runtime";
    std::abort();
  }
  ran_ = true;
  thread_->ResetEpoch();
  metrics_.SetWindow(warmup, duration);
  // Election timers first: ordering stalls (and clients back off) until the
  // cluster elects its first leader, which takes one timeout.
  if (raft_consensus_ != nullptr) raft_consensus_->StartReplicas();
  for (auto& client : clients_) {
    node::ClientNode* c = client.get();
    c->home().Post([c, duration]() { c->StartFiring(duration); });
  }
  thread_->SleepUntil(duration);
  if (raft_consensus_ != nullptr) {
    // Give in-flight consensus entries time to commit and deliver, then
    // halt the cluster: heartbeats re-arm every 50ms forever, so Quiesce
    // would otherwise never see an idle timer queue.
    thread_->SleepUntil(duration + 500 * sim::kMillisecond);
    raft_consensus_->Halt();
  }
  // Let the pipeline drain: a batch timeout may still have to fire and a
  // peer may still be re-fetching a lost-in-shutdown block.
  const runtime::TimeMicros horizon =
      std::max<runtime::TimeMicros>(config_.block.batch_timeout,
                                    config_.peer_fetch_retry_interval) +
      250 * sim::kMillisecond;
  thread_->Quiesce(horizon);
  thread_->Shutdown();
  metrics_.SetMailboxShedTotal(thread_->mailbox_shed_total());
  return metrics_.Report();
}

void FabricNetwork::SchedulePeerCrash(uint32_t peer_index, sim::SimTime start,
                                      sim::SimTime end) {
  runtime::SimRuntime& sim = RequireSim("SchedulePeerCrash");
  node::PeerNode* peer = peers_[peer_index].get();
  sim.injector().CrashNode(peer->node_id(), start, end);
  sim.env().ScheduleAt(start, [peer]() { peer->Crash(); });
  sim.env().ScheduleAt(end, [peer]() { peer->Restart(); });
}

void FabricNetwork::ScheduleRaftLeaderCrash(sim::SimTime at,
                                            sim::SimTime duration) {
  if (sim_ == nullptr) {
    // Thread runtime: the cluster schedules the kill on the replicas' own
    // clocks (whoever believes it leads at `at` crashes itself; replica 0
    // is the fallback). Call before RunFor — timers armed before the epoch
    // reset still fire at the right post-epoch time.
    if (raft_consensus_ != nullptr) {
      raft_consensus_->ScheduleLeaderCrash(at, duration);
    }
    return;
  }
  sim_->env().ScheduleAt(at, [this, duration]() {
    if (raft_consensus_ == nullptr) return;  // Solo backend: nothing to crash.
    raft::RaftCluster* raft = &raft_consensus_->cluster();
    // Whoever leads right now is the victim; with an election in progress,
    // take replica 0 so the fault still lands deterministically.
    const uint32_t victim = raft->FindLeader().value_or(0);
    FABRICPP_LOG(Info) << "crashing raft leader " << victim << " at "
                       << sim_->env().Now() / 1000 << "ms";
    raft->node(victim).Crash();
    sim_->env().Schedule(duration, [raft, victim]() {
      raft->node(victim).Resume();
    });
  });
}

void FabricNetwork::SyncPeers() {
  if (sim_ != nullptr) {
    sim_->env().Schedule(0, [this]() {
      for (auto& peer : peers_) {
        if (peer->crashed()) continue;
        for (uint32_t c = 0; c < config_.num_channels; ++c) {
          peer->RequestMissingBlocks(c);
        }
      }
    });
    return;
  }
  // Thread runtime: each channel pulls on its own lane context.
  for (auto& peer : peers_) {
    node::PeerNode* p = peer.get();
    for (uint32_t c = 0; c < config_.num_channels; ++c) {
      p->endpoint_for(c).Post([p, c]() {
        if (p->crashed()) return;
        p->RequestMissingBlocks(c);
      });
    }
  }
}

void FabricNetwork::RunUntilIdle() {
  if (sim_ != nullptr) {
    sim_->env().Run();
    return;
  }
  thread_->Quiesce(
      std::max<runtime::TimeMicros>(config_.block.batch_timeout,
                                    config_.peer_fetch_retry_interval) +
      250 * sim::kMillisecond);
}

void FabricNetwork::SubmitProposal(uint32_t channel, uint32_t client_index,
                                   std::vector<std::string> args) {
  node::ClientNode& client =
      *clients_[channel * config_.clients_per_channel + client_index];
  // Under sim, Post is Schedule(0) on the shared loop — identical to the
  // pre-runtime behavior; under threads it hops onto the client's context.
  client.home().Post([&client, args = std::move(args)]() mutable {
    client.FireProposal(std::move(args));
  });
}

void FabricNetwork::SubmitExternalTransaction(uint32_t channel,
                                              proto::Transaction tx) {
  node::OrdererNode* orderer = orderer_.get();
  orderer->endpoint_for(channel).Post(
      [orderer, channel, tx = std::move(tx)]() mutable {
        orderer->HandleTransaction(channel, std::move(tx));
      });
}

}  // namespace fabricpp::fabric
