#include "fabric/network.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "ordering/early_abort.h"
#include "ordering/reorderer.h"

namespace fabricpp::fabric {

namespace {

/// Fixed per-message envelope overhead (headers, signatures) in bytes.
constexpr uint64_t kMessageOverhead = 300;

TxOutcome OutcomeFromValidationCode(proto::TxValidationCode code) {
  switch (code) {
    case proto::TxValidationCode::kValid:
      return TxOutcome::kSuccess;
    case proto::TxValidationCode::kMvccConflict:
      return TxOutcome::kAbortMvcc;
    case proto::TxValidationCode::kEndorsementPolicyFailure:
      return TxOutcome::kAbortPolicy;
    case proto::TxValidationCode::kDuplicateTxId:
      return TxOutcome::kAbortDuplicateTxId;
    default:
      return TxOutcome::kAbortChaincodeError;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PeerNode
// ---------------------------------------------------------------------------

PeerNode::PeerNode(FabricNetwork* net, uint32_t index, std::string name,
                   std::string org)
    : net_(net),
      index_(index),
      name_(std::move(name)),
      org_(std::move(org)),
      node_id_(net->network().AddNode(name_)),
      cpu_(&net->env(), name_ + "-cpu", net->config().peer_cores),
      endorser_(name_, org_, net->config().seed, net->registry_.get()),
      validator_(net->config().seed, &net->policies_,
                 net->validator_pool()),
      channels_(net->config().num_channels) {}

void PeerNode::HandleProposal(uint32_t channel, proto::Proposal proposal,
                              uint32_t client_index) {
  if (crashed_) return;
  ChannelState& ch = channels_[channel];
  PendingSim sim{std::move(proposal), client_index};
  if (net_->config().concurrency == ConcurrencyMode::kCoarseLock &&
      ch.commit_phase) {
    // Vanilla: a block's commit stage wants (or holds) the exclusive state
    // lock; the simulation's read lock must wait (paper §4.2.1).
    ch.pending_sims.push_back(std::move(sim));
    return;
  }
  StartSimulation(channel, std::move(sim));
}

void PeerNode::StartSimulation(uint32_t channel, PendingSim sim) {
  ChannelState& ch = channels_[channel];
  ++ch.active_sims;

  // The chaincode's effects are determined by the state at simulation
  // start; the CPU job then models the wall time the simulation occupies.
  const bool stale_checks = net_->config().enable_early_abort_sim;
  Result<peer::EndorsementResponse> response = endorser_.Endorse(
      sim.proposal, net_->default_policy_id(), ch.db, stale_checks);

  const CostModel& cost = net_->config().cost;
  sim::SimTime service = cost.verify + cost.chaincode_base;
  if (response.ok()) {
    service += cost.per_read * response->rwset.reads.size() +
               cost.per_write * response->rwset.writes.size() + cost.sign;
  }
  const uint64_t proposal_id = sim.proposal.proposal_id;
  const uint32_t client_index = sim.client_index;
  const uint64_t epoch = crash_epoch_;
  cpu_.Submit(service, [this, channel, client_index, proposal_id, epoch,
                        response = std::move(response)]() mutable {
    if (crashed_ || epoch != crash_epoch_) return;
    FinishSimulation(channel, client_index, proposal_id, std::move(response));
  });
}

void PeerNode::FinishSimulation(uint32_t channel, uint32_t client_index,
                                uint64_t proposal_id,
                                Result<peer::EndorsementResponse> response) {
  ChannelState& ch = channels_[channel];
  --ch.active_sims;

  // Fabric++ early abort in the simulation phase (paper §5.2.1): with the
  // fine-grained concurrency control, a block may have committed while this
  // simulation ran; re-checking the read versions detects exactly the stale
  // reads the vanilla version would only discover in its validation phase.
  if (response.ok() && net_->config().enable_early_abort_sim) {
    for (const proto::ReadItem& r : response->rwset.reads) {
      if (ch.db.GetVersion(r.key) != r.version) {
        response = Status::StaleRead("overtaken by commit during simulation");
        break;
      }
    }
  }

  uint64_t reply_size = kMessageOverhead;
  if (response.ok()) reply_size += response->rwset.ByteSize();
  ClientNode* client = &net_->client(client_index);
  net_->network().Send(node_id_, net_->client_machine_node(), reply_size,
                       [client, proposal_id,
                        response = std::move(response)]() mutable {
                         client->HandleEndorsement(proposal_id,
                                                   std::move(response));
                       });

  if (net_->config().concurrency == ConcurrencyMode::kCoarseLock &&
      ch.active_sims == 0 && ch.commit_phase) {
    TryStartCommit(channel);
  }
}

void PeerNode::HandleBlock(uint32_t channel,
                           std::shared_ptr<proto::Block> block) {
  if (crashed_) return;
  ChannelState& ch = channels_[channel];
  const uint64_t number = block->header.number;
  if (number < ch.next_accept || ch.reorder_buffer.count(number) != 0) {
    // Already admitted (or waiting): duplicated delivery, discard.
    net_->metrics().NoteDuplicateBlock();
    return;
  }
  // Integrity at admission: a block whose payload does not match its sealed
  // data hash was tampered with in flight; reject it and fetch a clean copy.
  if (!block->VerifyDataHash()) {
    net_->metrics().NoteCorruptedBlock();
    FABRICPP_LOG(Warn) << name_ << ": rejecting block " << number
                       << " on channel " << channel
                       << " with mismatched data hash";
    RequestMissingBlocks(channel);
    ArmFetchTimer(channel);
    return;
  }
  ch.reorder_buffer[number] = std::move(block);
  DrainReorderBuffer(channel);
  // Anything left is out of order: a predecessor was lost or is still in
  // flight. Fetch right away the first time the gap is seen — waiting a
  // full retry interval would stall every transaction of the lost block,
  // and with tight client commit timeouts that turns one lost delivery
  // into a resubmission storm. The timer covers lost fetches.
  if (!ch.reorder_buffer.empty() && !ch.fetch_timer_armed) {
    RequestMissingBlocks(channel);
    ArmFetchTimer(channel);
  }
}

void PeerNode::DrainReorderBuffer(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  while (true) {
    const auto it = ch.reorder_buffer.find(ch.next_accept);
    if (it == ch.reorder_buffer.end()) break;
    ch.pending_blocks.push_back(std::move(it->second));
    ch.reorder_buffer.erase(it);
    ++ch.next_accept;
  }
  MaybeStartValidation(channel);
}

void PeerNode::RequestMissingBlocks(uint32_t channel) {
  if (crashed_) return;
  OrdererNode* orderer = &net_->orderer();
  const uint64_t from = channels_[channel].next_accept;
  const uint32_t peer_index = index_;
  net_->network().Send(node_id_, orderer->node_id(), kMessageOverhead,
                       [orderer, channel, peer_index, from]() {
                         orderer->HandleBlockRequest(channel, peer_index,
                                                     from);
                       });
}

void PeerNode::ArmFetchTimer(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (crashed_ || ch.fetch_timer_armed) return;
  ch.fetch_timer_armed = true;
  const uint64_t epoch = crash_epoch_;
  net_->env().Schedule(
      net_->config().peer_fetch_retry_interval, [this, channel, epoch]() {
        if (crashed_ || epoch != crash_epoch_) return;
        ChannelState& state = channels_[channel];
        state.fetch_timer_armed = false;
        if (!state.reorder_buffer.empty() || state.recovering) {
          RequestMissingBlocks(channel);
          ArmFetchTimer(channel);
        }
      });
}

void PeerNode::HandleChainInfo(uint32_t channel, uint64_t orderer_height) {
  if (crashed_) return;
  ChannelState& ch = channels_[channel];
  if (ch.next_accept <= orderer_height) {
    // Still behind the orderer's dispatched chain: keep fetching.
    ArmFetchTimer(channel);
    return;
  }
  if (ch.recovering) {
    ch.recovering = false;
    const sim::SimTime took = net_->env().Now() - ch.restart_time;
    net_->metrics().NoteRecovery(took);
    FABRICPP_LOG(Info) << name_ << ": caught up on channel " << channel
                       << " " << took / 1000 << "ms after restart";
  }
}

void PeerNode::ResyncChannel(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  ch.validating = false;
  ch.commit_phase = false;
  ch.commit_submitted = false;
  ch.current_block.reset();
  ch.pending_blocks.clear();
  ch.reorder_buffer.clear();
  ch.next_accept = ch.ledger.Height();
  RequestMissingBlocks(channel);
  ArmFetchTimer(channel);
}

void PeerNode::Crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crash_epoch_;
  for (ChannelState& ch : channels_) {
    // The process dies: running simulations, queued work and undelivered
    // blocks are gone. Ledger and state database are durable and survive.
    ch.active_sims = 0;
    ch.validating = false;
    ch.commit_phase = false;
    ch.commit_submitted = false;
    ch.current_block.reset();
    ch.pending_sims.clear();
    ch.pending_blocks.clear();
    ch.reorder_buffer.clear();
    ch.fetch_timer_armed = false;
    ch.recovering = false;
    ch.next_accept = ch.ledger.Height();
  }
  FABRICPP_LOG(Info) << name_ << ": crashed at "
                     << net_->env().Now() / 1000 << "ms";
}

void PeerNode::Restart() {
  if (!crashed_) return;
  crashed_ = false;
  const sim::SimTime now = net_->env().Now();
  FABRICPP_LOG(Info) << name_ << ": restarting at " << now / 1000 << "ms";
  for (uint32_t c = 0; c < channels_.size(); ++c) {
    channels_[c].recovering = true;
    channels_[c].restart_time = now;
    RequestMissingBlocks(c);
    ArmFetchTimer(c);
  }
}

void PeerNode::MaybeStartValidation(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (ch.validating || ch.pending_blocks.empty()) return;
  ch.validating = true;
  ch.current_block = ch.pending_blocks.front();
  ch.pending_blocks.pop_front();

  const CostModel& cost = net_->config().cost;
  const size_t num_txs = ch.current_block->transactions.size();

  // Endorsement-policy evaluation parallelizes across the peer's cores
  // (Fabric 1.2's validator workers) and runs *outside* the state lock;
  // only the subsequent commit stage needs exclusivity.
  auto on_policy_done = [this, channel]() {
    ChannelState& state = channels_[channel];
    state.commit_phase = true;
    TryStartCommit(channel);
  };

  if (num_txs == 0) {
    on_policy_done();
    return;
  }
  auto remaining = std::make_shared<size_t>(num_txs);
  const uint64_t epoch = crash_epoch_;
  for (const proto::Transaction& tx : ch.current_block->transactions) {
    const sim::SimTime policy_service =
        cost.validate_per_tx + cost.verify * tx.endorsements.size();
    cpu_.Submit(policy_service, [this, epoch, remaining, on_policy_done]() {
      if (crashed_ || epoch != crash_epoch_) return;
      if (--*remaining == 0) on_policy_done();
    });
  }
}

void PeerNode::TryStartCommit(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (ch.commit_submitted) return;
  if (net_->config().concurrency == ConcurrencyMode::kCoarseLock &&
      ch.active_sims > 0) {
    // Vanilla: the exclusive lock waits for running simulations
    // (paper §4.2.1's "the block has to wait").
    return;
  }
  ch.commit_submitted = true;
  const CostModel& cost = net_->config().cost;
  const std::shared_ptr<proto::Block>& block = ch.current_block;
  sim::SimTime commit_service =
      cost.block_fixed_commit +
      cost.ledger_append_per_kb * (block->ByteSize() / 1024 + 1);
  for (const proto::Transaction& tx : block->transactions) {
    commit_service += cost.per_read * tx.rwset.reads.size() +
                      cost.commit_per_write * tx.rwset.writes.size();
  }
  const uint64_t epoch = crash_epoch_;
  cpu_.Submit(commit_service, [this, channel, epoch]() {
    if (crashed_ || epoch != crash_epoch_) return;
    FinishCommit(channel);
  });
}

void PeerNode::FinishCommit(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const std::shared_ptr<proto::Block> block = std::move(ch.current_block);

  // Integrity gate before any state mutation: the block must extend our
  // chain (number + previous-hash link) and carry the data it was sealed
  // with. ValidateAndCommit applies state writes before the ledger append,
  // so a tampered block caught only there would already have leaked writes.
  const bool intact = block->header.number == ch.ledger.Height() &&
                      block->header.previous_hash == ch.ledger.LastHash() &&
                      block->VerifyDataHash();
  if (!intact) {
    net_->metrics().NoteCorruptedBlock();
    FABRICPP_LOG(Warn) << name_ << ": rejecting corrupted block "
                       << block->header.number << " on channel " << channel
                       << " at commit (bad chain link or data hash)";
    ResyncChannel(channel);
    if (net_->config().concurrency == ConcurrencyMode::kCoarseLock) {
      std::deque<PendingSim> sims;
      sims.swap(ch.pending_sims);
      for (PendingSim& sim : sims) StartSimulation(channel, std::move(sim));
    }
    return;
  }

  const peer::BlockValidationResult result =
      validator_.ValidateAndCommit(*block, &ch.db, &ch.ledger);

  if (net_->IsObserver(*this)) {
    // Host wall-clock of the two validation stages — kept outside the
    // deterministic RunReport (it varies with validator_workers).
    net_->metrics().NoteValidationWallClock(result.verify_wall_ns,
                                            result.commit_wall_ns);
    const sim::SimTime now = net_->env().Now();
    for (uint32_t i = 0; i < block->transactions.size(); ++i) {
      const proto::Transaction& tx = block->transactions[i];
      const TxOutcome outcome = OutcomeFromValidationCode(result.codes[i]);
      const std::string key = ProposalKey(tx.client, tx.proposal_id);
      ClientNode* client = net_->FindClient(tx.client);
      if (client != nullptr) {
        // Client-fired work resolves at most once, even when a client-side
        // timeout raced this commit.
        net_->metrics().ResolveFired(key, outcome, now);
      } else {
        // Externally injected transactions have no NoteFired entry.
        net_->metrics().Resolve(key, outcome, now);
      }
      // Commit-event notification to the submitting client (Fabric's event
      // service); an aborted transaction triggers resubmission there.
      if (client != nullptr) {
        const bool success =
            result.codes[i] == proto::TxValidationCode::kValid;
        const uint64_t proposal_id = tx.proposal_id;
        net_->network().Send(node_id_, net_->client_machine_node(),
                             kMessageOverhead,
                             [client, proposal_id, success]() {
                               client->HandleOutcome(proposal_id, success);
                             });
      }
    }
    net_->metrics().NoteBlockCommitted(
        static_cast<uint32_t>(block->transactions.size()), now);
  }

  ch.validating = false;
  ch.commit_phase = false;
  ch.commit_submitted = false;
  // Vanilla: admit the queued simulations before the next block's commit
  // takes the exclusive lock again (reader batch between writers).
  if (net_->config().concurrency == ConcurrencyMode::kCoarseLock) {
    std::deque<PendingSim> sims;
    sims.swap(ch.pending_sims);
    for (PendingSim& sim : sims) StartSimulation(channel, std::move(sim));
  }
  MaybeStartValidation(channel);
}

// ---------------------------------------------------------------------------
// OrdererNode
// ---------------------------------------------------------------------------

OrdererNode::OrdererNode(FabricNetwork* net)
    : net_(net),
      node_id_(net->network().AddNode("orderer")),
      cpu_(&net->env(), "orderer-cpu", net->config().orderer_cores) {
  const crypto::Digest genesis_hash = ledger::Ledger().LastHash();
  channels_.reserve(net->config().num_channels);
  for (uint32_t c = 0; c < net->config().num_channels; ++c) {
    channels_.emplace_back(net->config().block);
    channels_.back().prev_hash = genesis_hash;
  }
  if (net->config().ordering_backend == OrderingBackend::kRaft) {
    raft_ = std::make_unique<raft::RaftCluster>(
        &net->env(), net->config().raft_cluster_size, net->config().seed,
        net->config().raft_params);
    // Register each replica with the message fabric's fault injector, so a
    // chaos plan's loss/partitions/crashes hit consensus traffic too.
    std::vector<sim::NodeId> raft_ids;
    raft_ids.reserve(net->config().raft_cluster_size);
    for (uint32_t i = 0; i < net->config().raft_cluster_size; ++i) {
      raft_ids.push_back(net->network().AddNode(StrFormat("raft-%u", i)));
    }
    raft_->SetFaultInjector(net->network().fault_injector(),
                            std::move(raft_ids));
    raft_->Start();
    // Dispatch each block exactly once, at the earliest replica apply
    // (monotonic index guard; replicas apply in log order). The entry's
    // payload identifies the block — the log index cannot, because a lost
    // entry's index gets reused by a different block after a leader crash.
    raft_->SetCommitCallbackOnAll([this](uint64_t index,
                                         const Bytes& payload) {
      if (index <= raft_dispatched_) return;
      raft_dispatched_ = index;
      if (payload.size() < 8) return;
      uint64_t key = 0;
      for (int i = 0; i < 8; ++i) {
        key |= static_cast<uint64_t>(payload[i]) << (8 * i);
      }
      const auto it = raft_pending_.find(key);
      if (it == raft_pending_.end()) return;  // Re-proposal already won.
      ConsensusPending pending = std::move(it->second);
      raft_pending_.erase(it);
      DispatchBlock(pending.channel, std::move(pending.block),
                    pending.block_bytes);
    });
  }
}

void OrdererNode::SubmitToConsensus(uint32_t channel,
                                    std::shared_ptr<proto::Block> block,
                                    uint64_t block_bytes) {
  if (raft_ == nullptr) {
    DispatchBlock(channel, std::move(block), block_bytes);
    return;
  }
  const uint64_t key = PendingKey(channel, block->header.number);
  raft_pending_[key] = ConsensusPending{channel, std::move(block),
                                        block_bytes};
  ProposeToRaft(key, block_bytes);
}

void OrdererNode::ProposeToRaft(uint64_t key, uint64_t block_bytes) {
  if (raft_pending_.find(key) == raft_pending_.end()) return;  // Committed.
  // The consensus entry carries the block's identity in its first 8 bytes
  // and is padded to the block's wire size (replication cost model); the
  // content itself is tracked out-of-band in raft_pending_.
  Bytes payload(std::max<uint64_t>(block_bytes, 8), 0);
  for (int i = 0; i < 8; ++i) {
    payload[i] = static_cast<uint8_t>(key >> (8 * i));
  }
  const auto index = raft_->Propose(std::move(payload));
  // Either no leader exists (election in progress: retry soon) or the
  // proposal was accepted — in which case it can still be lost if the
  // leader crashes before replicating it, so check back and re-propose
  // until the commit callback clears the pending entry.
  const sim::SimTime retry = index.has_value() ? 500 * sim::kMillisecond
                                               : 20 * sim::kMillisecond;
  net_->env().Schedule(retry, [this, key, block_bytes]() {
    ProposeToRaft(key, block_bytes);
  });
}

void OrdererNode::DispatchBlock(uint32_t channel,
                                std::shared_ptr<proto::Block> block,
                                uint64_t block_bytes) {
  // Keep the block servable: peers that miss this delivery (loss, crash,
  // partition) fetch it later via HandleBlockRequest.
  channels_[channel].dispatched[block->header.number] = block;
  // Distribute to every peer (paper §2.2.2 / Appendix A.2 steps 8-9).
  if (!net_->config().gossip_blocks) {
    for (uint32_t p = 0; p < net_->num_peers(); ++p) {
      PeerNode* peer = &net_->peer(p);
      net_->network().Send(node_id_, peer->node_id(), block_bytes,
                           [peer, channel, block]() {
                             peer->HandleBlock(channel, block);
                           });
    }
    return;
  }
  // Gossip: one copy to each org's leader peer (its first), which forwards
  // to the org's remaining members — "partially from ordering service to
  // peers directly ... and partially between the peers using a gossip
  // protocol" (Appendix A.2 step 9).
  const uint32_t peers_per_org = net_->config().peers_per_org;
  for (uint32_t org = 0; org < net_->config().num_orgs; ++org) {
    PeerNode* leader = &net_->peer(org * peers_per_org);
    FabricNetwork* net = net_;
    net_->network().Send(
        node_id_, leader->node_id(), block_bytes,
        [net, leader, org, peers_per_org, channel, block, block_bytes]() {
          leader->HandleBlock(channel, block);
          for (uint32_t m = 1; m < peers_per_org; ++m) {
            PeerNode* member = &net->peer(org * peers_per_org + m);
            net->network().Send(leader->node_id(), member->node_id(),
                                block_bytes, [member, channel, block]() {
                                  member->HandleBlock(channel, block);
                                });
          }
        });
  }
}

void OrdererNode::HandleBlockRequest(uint32_t channel, uint32_t peer_index,
                                     uint64_t from_number) {
  ChannelState& ch = channels_[channel];
  PeerNode* peer = &net_->peer(peer_index);
  // Bounded batch per request: the peer re-requests from its new frontier
  // until it reports parity (HandleChainInfo), so a long outage drains in
  // successive rounds instead of one giant burst.
  constexpr uint32_t kMaxBlocksPerFetch = 16;
  uint32_t sent = 0;
  for (auto it = ch.dispatched.lower_bound(from_number);
       it != ch.dispatched.end() && sent < kMaxBlocksPerFetch; ++it, ++sent) {
    std::shared_ptr<proto::Block> block = it->second;
    const uint64_t block_bytes = block->ByteSize() + kMessageOverhead;
    net_->network().Send(node_id_, peer->node_id(), block_bytes,
                         [peer, channel, block]() {
                           peer->HandleBlock(channel, block);
                         });
  }
  const uint64_t highest =
      ch.dispatched.empty() ? 0 : ch.dispatched.rbegin()->first;
  net_->network().Send(node_id_, peer->node_id(), kMessageOverhead,
                       [peer, channel, highest]() {
                         peer->HandleChainInfo(channel, highest);
                       });
}

void OrdererNode::HandleTransaction(uint32_t channel, proto::Transaction tx) {
  const CostModel& cost = net_->config().cost;
  // The ordering service authenticates the submitting client before
  // enqueueing (one signature verification per transaction).
  cpu_.Submit(cost.verify + cost.order_per_tx,
              [this, channel, tx = std::move(tx)]() mutable {
                Enqueue(channel, std::move(tx));
              });
}

void OrdererNode::NotifyEarlyAbort(const proto::Transaction& tx) {
  // Early abort notification to the client (paper §5.2: aborted
  // transactions leave the pipeline immediately and the client learns of it
  // without waiting for validation).
  ClientNode* client = net_->FindClient(tx.client);
  if (client == nullptr) return;
  const uint64_t proposal_id = tx.proposal_id;
  net_->network().Send(node_id_, net_->client_machine_node(),
                       kMessageOverhead, [client, proposal_id]() {
                         client->HandleOutcome(proposal_id, false);
                       });
}

void OrdererNode::Enqueue(uint32_t channel, proto::Transaction tx) {
  ChannelState& ch = channels_[channel];
  const bool was_empty = ch.cutter.pending_transactions() == 0;
  std::optional<ordering::Batch> batch = ch.cutter.Add(std::move(tx));
  if (batch.has_value()) {
    ++ch.timer_generation;  // Cancel the pending timeout.
    ch.batch_queue.push_back({std::move(*batch), net_->env().Now()});
    MaybeProcessNextBatch(channel);
  } else if (was_empty) {
    ArmTimer(channel);
  }
}

void OrdererNode::MaybeProcessNextBatch(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const uint32_t depth = net_->config().ordering_pipeline_depth;
  while (!ch.batch_queue.empty() && ch.stage_inflight < depth) {
    PendingBatch pending = std::move(ch.batch_queue.front());
    ch.batch_queue.pop_front();
    const sim::SimTime now = net_->env().Now();
    if (now > pending.enqueued_at) {
      // The batch was cut while the reorder stage was at capacity — the
      // pipeline stall the ordering_pipeline_depth knob exists to hide.
      net_->metrics().NoteOrderingStall(now - pending.enqueued_at, now);
    }
    ProcessBatch(channel, std::move(pending.batch));
  }
}

void OrdererNode::ArmTimer(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const uint64_t generation = ch.timer_generation;
  net_->env().Schedule(
      net_->config().block.batch_timeout, [this, channel, generation]() {
        ChannelState& state = channels_[channel];
        if (state.timer_generation != generation) return;  // Was cut already.
        ++state.timer_generation;
        std::optional<ordering::Batch> batch =
            state.cutter.Flush(ordering::CutReason::kTimeout);
        if (batch.has_value()) {
          state.batch_queue.push_back({std::move(*batch), net_->env().Now()});
          MaybeProcessNextBatch(channel);
        }
      });
}

void OrdererNode::ProcessBatch(uint32_t channel, ordering::Batch batch) {
  const FabricConfig& config = net_->config();
  const CostModel& cost = net_->config().cost;
  const sim::SimTime now = net_->env().Now();
  sim::SimTime service = cost.block_fixed_order;

  std::vector<proto::Transaction>& txs = batch.transactions;
  std::vector<bool> dropped(txs.size(), false);

  // Fabric++ early abort in the ordering phase (paper §5.2.2): transactions
  // whose reads are version-skewed against a sibling in the same batch can
  // never commit; drop them before reordering and distribution.
  if (config.enable_early_abort_ordering) {
    std::vector<const proto::ReadWriteSet*> rwsets;
    rwsets.reserve(txs.size());
    for (const proto::Transaction& tx : txs) rwsets.push_back(&tx.rwset);
    for (const uint32_t victim : ordering::FindVersionSkewAborts(rwsets)) {
      dropped[victim] = true;
      net_->metrics().Resolve(
          ProposalKey(txs[victim].client, txs[victim].proposal_id),
          TxOutcome::kAbortVersionSkew, now);
      NotifyEarlyAbort(txs[victim]);
    }
    service += cost.order_per_tx * txs.size();  // The skew scan.
  }

  std::vector<uint32_t> survivors;
  survivors.reserve(txs.size());
  for (uint32_t i = 0; i < txs.size(); ++i) {
    if (!dropped[i]) survivors.push_back(i);
  }

  // Fabric++ transaction reordering (paper §5.1): replace the arrival order
  // by a serializable schedule, aborting cycle participants.
  std::vector<uint32_t> final_order = survivors;
  if (config.enable_reordering && !survivors.empty()) {
    std::vector<const proto::ReadWriteSet*> rwsets;
    rwsets.reserve(survivors.size());
    for (const uint32_t i : survivors) rwsets.push_back(&txs[i].rwset);
    ordering::ReorderResult reorder = ordering::ReorderTransactions(
        rwsets, config.reorder, net_->reorder_pool());
    last_reorder_stats_ = reorder.stats;
    // Wall-clock of the pass goes to the measurement side of Metrics, never
    // into the deterministic stats/report (same rule as validation timings).
    net_->metrics().NoteReorderWallClock(
        reorder.elapsed_wall_us, reorder.stage_wall.build_us,
        reorder.stage_wall.enumerate_us, reorder.stage_wall.break_us,
        reorder.stage_wall.schedule_us);
    for (const uint32_t victim : reorder.aborted) {
      const proto::Transaction& tx = txs[survivors[victim]];
      net_->metrics().Resolve(ProposalKey(tx.client, tx.proposal_id),
                              TxOutcome::kAbortReorderer, now);
      NotifyEarlyAbort(tx);
    }
    final_order.clear();
    for (const uint32_t pos : reorder.order) {
      final_order.push_back(survivors[pos]);
    }
    service += cost.reorder_per_tx * reorder.stats.num_transactions +
               cost.reorder_per_cycle * reorder.stats.num_cycles_found;
  }

  if (final_order.empty()) {
    // Nothing survived; no block to distribute and no pipeline slot taken —
    // the admission loop in MaybeProcessNextBatch continues to the next
    // queued batch.
    return;
  }

  auto block = std::make_shared<proto::Block>();
  block->transactions.reserve(final_order.size());
  for (const uint32_t i : final_order) {
    block->transactions.push_back(std::move(txs[i]));
  }

  // Seal at admission: batches are admitted in cut order, so numbering and
  // hash-chaining here keeps the chain identical for any pipeline depth
  // even though a deeper pipeline lets several blocks' ordering costs
  // overlap below.
  ChannelState& ch = channels_[channel];
  block->header.number = ch.next_block_number++;
  block->header.previous_hash = ch.prev_hash;
  block->SealDataHash();
  ch.prev_hash = block->header.Hash();
  ++blocks_cut_;

  const uint64_t block_bytes = block->ByteSize() + kMessageOverhead;
  service += cost.hash_per_kb * (block_bytes / 1024 + 1);

  const uint64_t seq = ch.next_stage_seq++;
  ++ch.stage_inflight;
  cpu_.Submit(service, [this, channel, seq, block, block_bytes]() {
    FinishBatchStage(channel, seq, StagedBlock{block, block_bytes});
  });
}

void OrdererNode::FinishBatchStage(uint32_t channel, uint64_t seq,
                                   StagedBlock done) {
  ChannelState& ch = channels_[channel];
  --ch.stage_inflight;
  ch.staged.emplace(seq, std::move(done));
  // Blocks enter consensus strictly in chain order even when a later,
  // lighter block pays off its ordering cost before a heavy predecessor.
  while (true) {
    const auto it = ch.staged.find(ch.next_submit_seq);
    if (it == ch.staged.end()) break;
    StagedBlock ready = std::move(it->second);
    ch.staged.erase(it);
    ++ch.next_submit_seq;
    SubmitToConsensus(channel, std::move(ready.block), ready.block_bytes);
  }
  MaybeProcessNextBatch(channel);
}

// ---------------------------------------------------------------------------
// ClientNode
// ---------------------------------------------------------------------------

ClientNode::ClientNode(FabricNetwork* net, uint32_t index, uint32_t channel,
                       std::string name, uint64_t rng_seed)
    : net_(net),
      index_(index),
      channel_(channel),
      name_(std::move(name)),
      rng_(rng_seed) {}

void ClientNode::StartFiring(sim::SimTime deadline) {
  fire_deadline_ = deadline;
  const double interval_us = 1e6 / net_->config().client_fire_rate_tps;
  // Stagger clients across one interval so firing is uniform in aggregate.
  next_fire_us_ = interval_us * static_cast<double>(index_) /
                  static_cast<double>(net_->num_clients());
  net_->env().ScheduleAt(static_cast<sim::SimTime>(next_fire_us_),
                         [this]() { FireFromWorkload(); });
}

void ClientNode::FireFromWorkload() {
  if (net_->env().Now() >= fire_deadline_) return;
  const uint32_t max_inflight = net_->config().client_max_inflight;
  if (max_inflight == 0 || inflight_.size() < max_inflight) {
    FireProposal(net_->workload()->NextArgs(rng_));
  }
  const double interval_us = 1e6 / net_->config().client_fire_rate_tps;
  next_fire_us_ += interval_us;
  net_->env().ScheduleAt(static_cast<sim::SimTime>(next_fire_us_),
                         [this]() { FireFromWorkload(); });
}

void ClientNode::FireProposal(std::vector<std::string> args) {
  FireWithRetries(std::move(args), 0);
}

void ClientNode::FireWithRetries(std::vector<std::string> args,
                                 uint32_t retries_used) {
  proto::Proposal proposal;
  proposal.proposal_id = next_proposal_id_++;
  proposal.client = name_;
  proposal.channel = StrFormat("ch%u", channel_);
  proposal.chaincode = net_->workload()->chaincode();
  proposal.args = args;
  proposal.nonce = rng_.Next();
  inflight_[proposal.proposal_id] =
      InflightProposal{std::move(args), retries_used};
  net_->metrics().NoteFired(ProposalKey(name_, proposal.proposal_id),
                            net_->env().Now());
  Submit(std::move(proposal));
}

sim::SimTime ClientNode::BackoffDelay(uint32_t retries_used) {
  const FabricConfig& config = net_->config();
  sim::SimTime delay = config.client_retry_backoff_base;
  for (uint32_t i = 0;
       i < retries_used && delay < config.client_retry_backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config.client_retry_backoff_max);
  if (config.client_retry_jitter > 0.0) {
    // Uniform multiplier in [1 - j, 1 + j]: desynchronizes clients whose
    // proposals aborted off the same event (block commit, fault window).
    const double factor = 1.0 - config.client_retry_jitter +
                          2.0 * config.client_retry_jitter * rng_.NextDouble();
    delay = static_cast<sim::SimTime>(static_cast<double>(delay) * factor);
  }
  return std::max<sim::SimTime>(delay, 1);
}

void ClientNode::MaybeResubmit(uint64_t proposal_id) {
  const auto it = inflight_.find(proposal_id);
  if (it == inflight_.end()) return;
  InflightProposal inflight = std::move(it->second);
  inflight_.erase(it);
  const FabricConfig& config = net_->config();
  if (!config.client_resubmit) return;
  if (inflight.retries_used >= config.client_max_retries) return;
  // fire_deadline_ == 0 means manual driving (no firing window).
  if (fire_deadline_ != 0 && net_->env().Now() >= fire_deadline_) return;
  // Resubmit the same logical work as a fresh proposal after a backoff:
  // new simulation, new read versions (paper §4.1 / §5.2.1). Instant
  // refiring would hammer a still-faulty pipeline with retry storms.
  const uint32_t next_retries = inflight.retries_used + 1;
  net_->env().Schedule(
      BackoffDelay(inflight.retries_used),
      [this, args = std::move(inflight.args), next_retries]() mutable {
        if (fire_deadline_ != 0 && net_->env().Now() >= fire_deadline_) return;
        FireWithRetries(std::move(args), next_retries);
      });
}

void ClientNode::ArmEndorsementTimeout(uint64_t proposal_id) {
  net_->env().Schedule(
      net_->config().client_endorsement_timeout, [this, proposal_id]() {
        const auto it = pending_.find(proposal_id);
        if (it == pending_.end()) return;  // Completed or aborted already.
        pending_.erase(it);
        if (net_->metrics().ResolveFired(ProposalKey(name_, proposal_id),
                                         TxOutcome::kAbortEndorsementTimeout,
                                         net_->env().Now())) {
          MaybeResubmit(proposal_id);
        }
      });
}

void ClientNode::ArmCommitTimeout(uint64_t proposal_id) {
  net_->env().Schedule(
      net_->config().client_commit_timeout, [this, proposal_id]() {
        if (inflight_.find(proposal_id) == inflight_.end()) return;
        // ResolveFired fails when the transaction already resolved (its
        // commit event is merely in flight) — then do NOT resubmit, or
        // committed work would be applied twice.
        if (net_->metrics().ResolveFired(ProposalKey(name_, proposal_id),
                                         TxOutcome::kAbortCommitTimeout,
                                         net_->env().Now())) {
          MaybeResubmit(proposal_id);
        }
      });
}

void ClientNode::HandleOutcome(uint64_t proposal_id, bool success) {
  if (success) {
    inflight_.erase(proposal_id);
    return;
  }
  MaybeResubmit(proposal_id);
}

void ClientNode::Submit(proto::Proposal proposal) {
  // Client CPU: sign the proposal, then ship it to one endorser per org.
  const CostModel& cost = net_->config().cost;
  net_->client_cpu().Submit(
      cost.sign, [this, proposal = std::move(proposal)]() mutable {
        const uint64_t size = proposal.ByteSize() + kMessageOverhead;
        std::vector<PeerNode*> endorsers =
            net_->EndorsersFor(proposal.proposal_id + index_);
        PendingProposal pending;
        pending.proposal = proposal;
        pending.expected = static_cast<uint32_t>(endorsers.size());
        pending_.emplace(proposal.proposal_id, std::move(pending));
        for (PeerNode* peer : endorsers) {
          net_->network().Send(
              net_->client_machine_node(), peer->node_id(), size,
              [peer, channel = channel_, proposal, index = index_]() mutable {
                peer->HandleProposal(channel, std::move(proposal), index);
              });
        }
        ArmEndorsementTimeout(proposal.proposal_id);
      });
}

void ClientNode::HandleEndorsement(uint64_t proposal_id,
                                   Result<peer::EndorsementResponse> response) {
  const auto it = pending_.find(proposal_id);
  if (it == pending_.end()) return;
  PendingProposal& pending = it->second;

  if (!response.ok()) {
    // A failed simulation aborts the proposal immediately — the client does
    // not wait for the remaining endorsers (paper §5.2.1: "we directly
    // notify the corresponding client about the abort"). Late replies find
    // no pending entry and are dropped.
    const TxOutcome outcome =
        response.status().code() == StatusCode::kStaleRead
            ? TxOutcome::kAbortStaleSimulation
            : TxOutcome::kAbortChaincodeError;
    pending_.erase(it);
    net_->metrics().Resolve(ProposalKey(name_, proposal_id), outcome,
                            net_->env().Now());
    MaybeResubmit(proposal_id);
    return;
  }

  // A duplicated reply from the same endorser must not count twice — the
  // transaction would then carry two copies of one org's endorsement and
  // miss another org's, failing the policy at validation.
  for (const peer::EndorsementResponse& r : pending.responses) {
    if (r.endorsement.peer == response->endorsement.peer) return;
  }
  pending.responses.push_back(std::move(response).value());
  if (pending.responses.size() < pending.expected) return;

  PendingProposal done = std::move(pending);
  pending_.erase(it);

  // All read/write sets must match (paper §2.2.1); otherwise the proposal
  // cannot become a transaction.
  for (size_t i = 1; i < done.responses.size(); ++i) {
    if (!(done.responses[i].rwset == done.responses[0].rwset)) {
      net_->metrics().Resolve(ProposalKey(name_, proposal_id),
                              TxOutcome::kAbortRwsetMismatch,
                              net_->env().Now());
      MaybeResubmit(proposal_id);
      return;
    }
  }
  Assemble(std::move(done));
}

void ClientNode::Assemble(PendingProposal pending) {
  const CostModel& cost = net_->config().cost;
  net_->client_cpu().Submit(
      cost.client_assemble + cost.sign,
      [this, pending = std::move(pending)]() mutable {
        proto::Transaction tx;
        tx.proposal_id = pending.proposal.proposal_id;
        tx.client = name_;
        tx.channel = pending.proposal.channel;
        tx.chaincode = pending.proposal.chaincode;
        tx.policy_id = net_->default_policy_id();
        tx.rwset = pending.responses[0].rwset;
        for (const peer::EndorsementResponse& r : pending.responses) {
          tx.endorsements.push_back(r.endorsement);
        }
        tx.ComputeTxId(pending.proposal);
        const uint64_t proposal_id = tx.proposal_id;
        const uint64_t size = tx.ByteSize() + kMessageOverhead;
        OrdererNode* orderer = &net_->orderer();
        net_->network().Send(
            net_->client_machine_node(), orderer->node_id(), size,
            [orderer, channel = channel_, tx = std::move(tx)]() mutable {
              orderer->HandleTransaction(channel, std::move(tx));
            });
        ArmCommitTimeout(proposal_id);
      });
}

// ---------------------------------------------------------------------------
// FabricNetwork
// ---------------------------------------------------------------------------

FabricNetwork::FabricNetwork(FabricConfig config,
                             const workload::Workload* workload)
    : config_(config),
      workload_(workload),
      env_(),
      injector_(&env_, config.seed),
      net_(&env_, config.network),
      registry_(chaincode::ChaincodeRegistry::WithBuiltins()),
      client_cpu_(&env_, "client-cpu", config.client_machine_cores),
      client_machine_node_(net_.AddNode("clients")) {
  const Status valid = config_.Validate();
  if (!valid.ok()) {
    FABRICPP_LOG(Error) << "invalid FabricConfig: " << valid;
    std::abort();
  }
  // Every message flows through the injector; with no fault plan configured
  // it is pass-through and draws no randomness, so fault-free runs stay
  // bit-identical to a network without it.
  net_.set_fault_injector(&injector_);

  // Validator worker pool, shared by every peer's verify stage (the
  // committing thread participates, so N workers = N - 1 extra threads).
  // Must exist before the peers: their validators borrow it.
  if (config_.validator_workers > 1) {
    validator_pool_ =
        std::make_unique<ThreadPool>(config_.validator_workers - 1);
  }

  // Reorder worker pool for the orderer's graph build + cycle enumeration
  // (the calling thread participates, so N workers = N - 1 extra threads).
  // Deliberately distinct from validator_pool_: ParallelFor is not
  // reentrant across users on the same call stack.
  if (config_.reorder_workers > 1) {
    reorder_pool_ = std::make_unique<ThreadPool>(config_.reorder_workers - 1);
  }

  // Endorsement policy: one peer of every org (paper §2.2.1).
  peer::EndorsementPolicy policy;
  policy.id = "AND(all-orgs)";
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    policy.required_orgs.push_back(std::string(1, static_cast<char>('A' + o)));
  }
  default_policy_id_ = policy.id;
  (void)policies_.Register(std::move(policy));

  // Peers, org-major: A1 A2 ... B1 B2 ...
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    const std::string org(1, static_cast<char>('A' + o));
    for (uint32_t p = 0; p < config_.peers_per_org; ++p) {
      const uint32_t index = o * config_.peers_per_org + p;
      peers_.push_back(std::make_unique<PeerNode>(
          this, index, StrFormat("%s%u", org.c_str(), p + 1), org));
    }
  }

  // Pre-warm every validator's verification-identity cache with the full
  // peer roster (the only signers on the endorsement path). The verify
  // stage then runs read-only against the cache no matter how many workers
  // race through it; the shared_mutex slow path only covers signers unknown
  // at construction (e.g. externally injected transactions).
  {
    std::vector<std::string> peer_names;
    peer_names.reserve(peers_.size());
    for (const auto& peer : peers_) peer_names.push_back(peer->name());
    for (auto& peer : peers_) {
      peer->validator_.PrewarmIdentities(peer_names);
    }
  }

  orderer_ = std::make_unique<OrdererNode>(this);

  // Seed every (peer, channel) state database identically.
  for (auto& peer : peers_) {
    for (uint32_t c = 0; c < config_.num_channels; ++c) {
      workload_->SeedState(peer->mutable_state_db(c));
    }
  }

  // Clients, channel-major.
  for (uint32_t c = 0; c < config_.num_channels; ++c) {
    for (uint32_t i = 0; i < config_.clients_per_channel; ++i) {
      const uint32_t index =
          c * config_.clients_per_channel + i;
      clients_.push_back(std::make_unique<ClientNode>(
          this, index, c, StrFormat("client_c%u_%u", c, i),
          config_.seed * 0x9e3779b97f4a7c15ULL + index + 1));
      clients_by_name_[clients_.back()->name()] = clients_.back().get();
    }
  }
}

ClientNode* FabricNetwork::FindClient(const std::string& name) {
  const auto it = clients_by_name_.find(name);
  return it == clients_by_name_.end() ? nullptr : it->second;
}

std::vector<PeerNode*> FabricNetwork::EndorsersFor(uint64_t proposal_id) {
  std::vector<PeerNode*> endorsers;
  endorsers.reserve(config_.num_orgs);
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    const uint32_t p = static_cast<uint32_t>(proposal_id % config_.peers_per_org);
    endorsers.push_back(peers_[o * config_.peers_per_org + p].get());
  }
  return endorsers;
}

RunReport FabricNetwork::RunFor(sim::SimTime duration, sim::SimTime warmup) {
  metrics_.SetWindow(warmup, duration);
  for (auto& client : clients_) client->StartFiring(duration);
  env_.RunUntil(duration);
  metrics_.SetNetworkFaultTotals(injector_.stats().TotalDropped(),
                                 injector_.stats().duplicated);
  return metrics_.Report();
}

void FabricNetwork::SchedulePeerCrash(uint32_t peer_index, sim::SimTime start,
                                      sim::SimTime end) {
  PeerNode* peer = peers_[peer_index].get();
  injector_.CrashNode(peer->node_id(), start, end);
  env_.ScheduleAt(start, [peer]() { peer->Crash(); });
  env_.ScheduleAt(end, [peer]() { peer->Restart(); });
}

void FabricNetwork::ScheduleRaftLeaderCrash(sim::SimTime at,
                                            sim::SimTime duration) {
  env_.ScheduleAt(at, [this, duration]() {
    raft::RaftCluster* raft = orderer_->raft();
    if (raft == nullptr) return;  // Solo backend: nothing to crash.
    // Whoever leads right now is the victim; with an election in progress,
    // take replica 0 so the fault still lands deterministically.
    const uint32_t victim = raft->FindLeader().value_or(0);
    FABRICPP_LOG(Info) << "crashing raft leader " << victim << " at "
                       << env_.Now() / 1000 << "ms";
    raft->node(victim).Crash();
    env_.Schedule(duration, [raft, victim]() {
      raft->node(victim).Resume();
    });
  });
}

void FabricNetwork::SyncPeers() {
  env_.Schedule(0, [this]() {
    for (auto& peer : peers_) {
      if (peer->crashed()) continue;
      for (uint32_t c = 0; c < config_.num_channels; ++c) {
        peer->RequestMissingBlocks(c);
      }
    }
  });
}

void FabricNetwork::SubmitProposal(uint32_t channel, uint32_t client_index,
                                   std::vector<std::string> args) {
  ClientNode& client = *clients_[channel * config_.clients_per_channel +
                                 client_index];
  env_.Schedule(0, [&client, args = std::move(args)]() mutable {
    client.FireProposal(std::move(args));
  });
}

void FabricNetwork::SubmitExternalTransaction(uint32_t channel,
                                              proto::Transaction tx) {
  OrdererNode* orderer = orderer_.get();
  env_.Schedule(0, [orderer, channel, tx = std::move(tx)]() mutable {
    orderer->HandleTransaction(channel, std::move(tx));
  });
}

}  // namespace fabricpp::fabric
