#ifndef FABRICPP_FABRIC_NETWORK_H_
#define FABRICPP_FABRIC_NETWORK_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaincode/chaincode.h"
#include "common/thread_pool.h"
#include "fabric/config.h"
#include "fabric/metrics.h"
#include "fabric/raft_consensus.h"
#include "node/client_node.h"
#include "node/consensus.h"
#include "node/local_mesh.h"
#include "node/node_context.h"
#include "node/orderer_node.h"
#include "node/peer_node.h"
#include "peer/policy.h"
#include "proto/transaction.h"
#include "runtime/runtime.h"
#include "runtime/sim_runtime.h"
#include "runtime/thread_runtime.h"
#include "sim/environment.h"
#include "sim/fault_injector.h"
#include "sim/network.h"
#include "workload/workload.h"

namespace fabricpp::fabric {

/// The node state machines live in src/node/, decoupled from this
/// composition root; their historical names in this namespace stay valid.
using PeerNode = node::PeerNode;
using OrdererNode = node::OrdererNode;
using ClientNode = node::ClientNode;

/// The whole Fabric network: topology and pipeline wiring, the runtime the
/// nodes execute on, and the experiment driver. This is the main entry
/// point of the library — see examples/quickstart.cpp.
///
/// The execution substrate is chosen by `FabricConfig::runtime_mode`:
///
///  - "sim" (default): every node shares one discrete-event loop on a
///    virtual clock. Deterministic — runs are byte-for-byte reproducible —
///    and the full fault plan (injector, crashes, Raft) is available.
///  - "thread": every node runs on its own OS thread with a bounded
///    mailbox, timers fire off a steady_clock, and messages hand off
///    directly between threads. Real concurrency (races surface under
///    TSan), but timings are nondeterministic, the sim-only facilities
///    (env(), network(), fault_injector(), peer-crash scheduling) abort,
///    and RunFor() can be called at most once — it shuts the runtime down
///    to guarantee no node activity outlives the measurement. The Raft
///    ordering backend runs here too (replicas on their own mailbox
///    threads), as does ScheduleRaftLeaderCrash; with several channels the
///    orderer and peers shard their pipelines across per-channel lanes
///    (FabricConfig::channel_lanes, DESIGN.md §16).
///
/// FabricNetwork implements node::NodeDirectory — the only view the nodes
/// have of it.
class FabricNetwork : public node::NodeDirectory {
 public:
  /// Builds the network. `workload` seeds each channel's initial state and
  /// generates proposal arguments; it must outlive the network.
  FabricNetwork(FabricConfig config, const workload::Workload* workload);
  ~FabricNetwork() override;

  FabricNetwork(const FabricNetwork&) = delete;
  FabricNetwork& operator=(const FabricNetwork&) = delete;

  /// Runs the standard experiment: clients fire for `duration`, outcomes
  /// are measured in [warmup, duration), and the report is returned.
  /// Under the thread runtime `duration` is wall-clock microseconds, the
  /// run ends with a quiesce + shutdown, and only one call is allowed.
  RunReport RunFor(sim::SimTime duration, sim::SimTime warmup = 0);

  /// Manual driving (examples): submit one proposal through a client, then
  /// run the event loop until it drains.
  void SubmitProposal(uint32_t channel, uint32_t client_index,
                      std::vector<std::string> args);
  /// Injects a fully-formed transaction directly into the ordering service
  /// (used to demonstrate tamper detection, Appendix A.3.1).
  void SubmitExternalTransaction(uint32_t channel, proto::Transaction tx);
  /// Drains outstanding work. Sim: runs the event queue dry — only valid
  /// with the solo ordering backend (a Raft cluster's heartbeat timers keep
  /// the queue alive forever; use env().RunUntil(...) there). Thread: waits
  /// until the mailboxes are empty and no timer is due soon.
  void RunUntilIdle();

  // --- Fault plan (simulation runtime only) ---

  /// The injector every message of this network flows through. Configure
  /// loss/duplication/delay/partitions on it before (or during) a run.
  sim::FaultInjector& fault_injector();

  /// Crashes peer `peer_index` over [start, end): the injector blackholes
  /// its traffic, the peer drops its in-flight pipeline at `start`, and at
  /// `end` it restarts and catches up from the orderer.
  void SchedulePeerCrash(uint32_t peer_index, sim::SimTime start,
                         sim::SimTime end);

  /// At time `at`, crashes whichever Raft replica currently leads (no-op
  /// for the solo backend) and resumes it after `duration`. The cluster
  /// elects a new leader in the meantime — ordering stalls, then recovers;
  /// no block may be lost. Works on both substrates: virtual time under
  /// sim; under the thread runtime the kill is scheduled on the replicas'
  /// own clocks (call before RunFor).
  void ScheduleRaftLeaderCrash(sim::SimTime at, sim::SimTime duration);

  /// One-shot anti-entropy: every live peer asks the orderer for blocks it
  /// is missing. Chaos drivers call this after healing the network — a
  /// dropped tail block has no successor to reveal the gap, so without a
  /// pull the ledgers could end one block apart forever.
  void SyncPeers();

  // --- Component access ---
  /// The execution substrate the nodes run on.
  runtime::Runtime& runtime() { return *runtime_; }
  /// Simulation-only components; abort under the thread runtime.
  sim::Environment& env();
  sim::Network& network();

  Metrics& metrics() { return metrics_; }
  const FabricConfig& config() const { return config_; }
  const workload::Workload* workload() const { return workload_; }
  const chaincode::ChaincodeRegistry& registry() const { return *registry_; }
  const peer::PolicyRegistry& policies() const { return policies_; }
  /// The shared client machine's CPU (first shard under the thread
  /// runtime's client sharding).
  runtime::Executor& client_cpu() { return *client_cpus_[0]; }
  runtime::NodeId client_machine_node() const {
    return client_endpoints_[0]->id();
  }

  /// Shared pool running the validators' real signature-verification work
  /// (null when validator_workers == 1, and under the thread runtime,
  /// where each peer's validator owns a pool instead). Workers accelerate
  /// wall-clock crypto only — never virtual time or validation outcomes.
  ThreadPool* validator_pool() { return validator_pool_; }

  /// Pool running the orderer's real reordering work (null when
  /// reorder_workers == 1). Separate from validator_pool: ParallelFor is
  /// not reentrant, and the validator may be mid-fan-out on the same host
  /// thread's call stack when a reorder pass runs. Same determinism
  /// contract: wall-clock acceleration only.
  ThreadPool* reorder_pool() { return reorder_pool_; }

  /// Pool running the peers' real commit-stage wave fan-out (null when
  /// commit_workers == 1). Its own kind for the same reason as
  /// reorder_pool: the verify stage's fan-out has finished by the time the
  /// commit stage runs, but keeping the users on distinct pools makes the
  /// single-user ParallelFor contract hold by construction.
  ThreadPool* commit_pool() { return commit_pool_; }

  // --- node::NodeDirectory ---
  size_t num_peers() const override { return peers_.size(); }
  PeerNode& peer(uint32_t i) override { return *peers_[i]; }
  const PeerNode& peer(uint32_t i) const { return *peers_[i]; }
  OrdererNode& orderer() override { return *orderer_; }
  size_t num_clients() const override { return clients_.size(); }
  ClientNode& client(uint32_t i) override { return *clients_[i]; }
  ClientNode* FindClient(const std::string& name) override;
  std::vector<uint32_t> EndorsersFor(uint64_t proposal_id) override;
  const std::string& default_policy_id() const override {
    return default_policy_id_;
  }
  bool IsObserver(const PeerNode& peer) const override {
    return peer.index() == 0;
  }

 private:
  /// Guards the sim-only surface: aborts (with `what` in the log) when the
  /// network runs on the thread runtime.
  runtime::SimRuntime& RequireSim(const char* what) const;

  FabricConfig config_;
  const workload::Workload* workload_;
  /// Owns the execution substrate; nodes are destroyed before it.
  std::unique_ptr<runtime::Runtime> runtime_;
  /// Mode discriminators into runtime_ (exactly one is non-null).
  runtime::SimRuntime* sim_ = nullptr;
  runtime::ThreadRuntime* thread_ = nullptr;
  Metrics metrics_;
  std::unique_ptr<chaincode::ChaincodeRegistry> registry_;
  peer::PolicyRegistry policies_;
  std::string default_policy_id_;
  /// The client machine's endpoint(s). One under sim; thread_client_shards
  /// of them under the thread runtime, clients assigned round-robin.
  std::vector<runtime::Endpoint*> client_endpoints_;
  std::vector<runtime::Executor*> client_cpus_;
  /// The in-process message fabric every node send goes through; must
  /// outlive the nodes, which hold it via NodeContext.
  std::unique_ptr<node::LocalMesh> mesh_;
  /// Borrowed from runtime_ (sim mode only, where the pools are shared).
  ThreadPool* validator_pool_ = nullptr;
  ThreadPool* reorder_pool_ = nullptr;
  ThreadPool* commit_pool_ = nullptr;
  std::vector<std::unique_ptr<node::PeerNode>> peers_;
  std::unique_ptr<node::OrdererNode> orderer_;
  node::SoloConsensus solo_consensus_;
  std::unique_ptr<RaftConsensus> raft_consensus_;
  std::vector<std::unique_ptr<node::ClientNode>> clients_;
  std::unordered_map<std::string, node::ClientNode*> clients_by_name_;
  bool ran_ = false;
};

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_NETWORK_H_
