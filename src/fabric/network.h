#ifndef FABRICPP_FABRIC_NETWORK_H_
#define FABRICPP_FABRIC_NETWORK_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaincode/chaincode.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "fabric/config.h"
#include "fabric/metrics.h"
#include "ledger/ledger.h"
#include "ordering/batch_cutter.h"
#include "peer/endorser.h"
#include "peer/policy.h"
#include "peer/validator.h"
#include "proto/block.h"
#include "proto/transaction.h"
#include "raft/raft_node.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "sim/resource.h"
#include "statedb/state_db.h"
#include "workload/workload.h"

namespace fabricpp::fabric {

class FabricNetwork;

/// One peer of the network inside the simulation: endorsement (simulation
/// phase) and validation + commit, per channel, on a shared CPU.
class PeerNode {
 public:
  PeerNode(FabricNetwork* net, uint32_t index, std::string name,
           std::string org);

  const std::string& name() const { return name_; }
  const std::string& org() const { return org_; }
  uint32_t index() const { return index_; }
  sim::NodeId node_id() const { return node_id_; }

  /// Delivery of a proposal from a client (simulation phase entry).
  void HandleProposal(uint32_t channel, proto::Proposal proposal,
                      uint32_t client_index);

  /// Delivery of a block from the ordering service (validation entry).
  /// Blocks are admitted strictly in chain order: duplicates are discarded,
  /// out-of-order arrivals are buffered, tampered payloads are rejected, and
  /// a detected gap triggers a re-fetch from the orderer.
  void HandleBlock(uint32_t channel, std::shared_ptr<proto::Block> block);

  /// Orderer's reply to a block-fetch request: the highest block number it
  /// has dispatched so far on `channel`.
  void HandleChainInfo(uint32_t channel, uint64_t orderer_height);

  /// Crash simulation. Crash() drops everything in flight (running
  /// simulations, queued blocks, the validation pipeline) but keeps the
  /// durable state — ledger and state database — like a process kill on a
  /// machine with an intact disk. Restart() rejoins and catches up on
  /// missed blocks by fetching them from the orderer.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  const ledger::Ledger& ledger(uint32_t channel) const {
    return channels_[channel].ledger;
  }
  const statedb::StateDb& state_db(uint32_t channel) const {
    return channels_[channel].db;
  }
  statedb::StateDb* mutable_state_db(uint32_t channel) {
    return &channels_[channel].db;
  }

  sim::Resource& cpu() { return cpu_; }

 private:
  friend class FabricNetwork;

  struct PendingSim {
    proto::Proposal proposal;
    uint32_t client_index;
  };

  /// Per-channel peer state, including the vanilla coarse-lock bookkeeping
  /// (paper §4.2.1): simulations hold the shared side of the state lock;
  /// the block's *commit stage* (MVCC check + state update) needs the
  /// exclusive side. Endorsement-policy verification does not touch the
  /// state and runs outside the lock, as in Fabric 1.2.
  struct ChannelState {
    statedb::StateDb db;
    ledger::Ledger ledger;
    uint32_t active_sims = 0;
    /// A block is in the validation pipeline (serializes blocks).
    bool validating = false;
    /// The block finished policy checks and is waiting for / holding the
    /// exclusive lock; simulations queue while set (coarse mode).
    bool commit_phase = false;
    bool commit_submitted = false;
    std::shared_ptr<proto::Block> current_block;
    std::deque<PendingSim> pending_sims;
    std::deque<std::shared_ptr<proto::Block>> pending_blocks;
    /// Next block number this peer will admit into its pipeline. Blocks
    /// below it are duplicates; blocks above it wait in reorder_buffer.
    uint64_t next_accept = 1;
    /// Out-of-order arrivals, keyed by block number.
    std::map<uint64_t, std::shared_ptr<proto::Block>> reorder_buffer;
    bool fetch_timer_armed = false;
    /// Crash-recovery bookkeeping: set between Restart() and chain parity.
    bool recovering = false;
    sim::SimTime restart_time = 0;
  };

  void StartSimulation(uint32_t channel, PendingSim sim);
  void FinishSimulation(uint32_t channel, uint32_t client_index,
                        uint64_t proposal_id,
                        Result<peer::EndorsementResponse> response);
  void MaybeStartValidation(uint32_t channel);
  void TryStartCommit(uint32_t channel);
  void FinishCommit(uint32_t channel);
  /// Moves contiguous buffered blocks into the validation queue.
  void DrainReorderBuffer(uint32_t channel);
  /// Asks the orderer to re-send blocks from next_accept on.
  void RequestMissingBlocks(uint32_t channel);
  /// Arms a one-shot retry timer that re-fetches while a gap persists.
  void ArmFetchTimer(uint32_t channel);
  /// Resets the channel's block pipeline after a rejected (corrupted)
  /// block, so a clean copy can be re-fetched and admitted.
  void ResyncChannel(uint32_t channel);

  FabricNetwork* net_;
  uint32_t index_;
  std::string name_;
  std::string org_;
  sim::NodeId node_id_;
  sim::Resource cpu_;
  peer::Endorser endorser_;
  peer::Validator validator_;
  std::vector<ChannelState> channels_;
  bool crashed_ = false;
  /// Bumped on every crash; CPU-job callbacks from before the crash carry
  /// the old epoch and turn into no-ops (the work died with the process).
  uint64_t crash_epoch_ = 0;
};

/// The (trusted) ordering service: receives endorsed transactions, cuts
/// batches, optionally early-aborts and reorders (Fabric++), seals blocks,
/// and distributes them to every peer.
class OrdererNode {
 public:
  explicit OrdererNode(FabricNetwork* net);

  sim::NodeId node_id() const { return node_id_; }

  /// Delivery of a transaction from a client.
  void HandleTransaction(uint32_t channel, proto::Transaction tx);

  /// A peer's catch-up request: re-send dispatched blocks of `channel`
  /// numbered >= `from_number` (bounded per request), then report the
  /// highest dispatched number so the peer knows whether it is caught up.
  void HandleBlockRequest(uint32_t channel, uint32_t peer_index,
                          uint64_t from_number);

  /// Consensus backend (null for kSolo).
  raft::RaftCluster* raft() { return raft_.get(); }

  uint64_t blocks_cut() const { return blocks_cut_; }
  const ordering::ReorderStats& last_reorder_stats() const {
    return last_reorder_stats_;
  }

 private:
  friend class FabricNetwork;

  /// A cut batch waiting for the reorder stage, stamped with its cut time
  /// so the pipeline-stall metric can measure how long it sat.
  struct PendingBatch {
    ordering::Batch batch;
    sim::SimTime enqueued_at;
  };

  /// A block whose reorder stage finished, awaiting its turn at consensus.
  struct StagedBlock {
    std::shared_ptr<proto::Block> block;
    uint64_t block_bytes;
  };

  struct ChannelState {
    explicit ChannelState(ordering::BatchCutConfig config)
        : cutter(config) {}
    ordering::BatchCutter cutter;
    uint64_t next_block_number = 1;
    crypto::Digest prev_hash{};
    uint64_t timer_generation = 0;
    /// Single-producer queue between the batch cutter and the reorder
    /// stage. Admission is bounded by ordering_pipeline_depth: with depth
    /// 1 this is the seed's strictly serial behavior, with depth d the
    /// reorder+hash of up to d consecutive blocks overlaps on the
    /// orderer's cores while block N+d's batch accumulates.
    std::deque<PendingBatch> batch_queue;
    /// Batches currently inside the reorder stage (their virtual CPU cost
    /// has been submitted but not completed).
    uint32_t stage_inflight = 0;
    /// Stage sequence numbers, assigned at admission in cut order. Blocks
    /// are sealed (numbered + hash-chained) at admission, but a deeper
    /// pipeline can finish a light block's stage before a heavy
    /// predecessor's — the staged map + next_submit_seq drain re-imposes
    /// chain order on consensus submission.
    uint64_t next_stage_seq = 0;
    uint64_t next_submit_seq = 0;
    std::map<uint64_t, StagedBlock> staged;
    /// Every dispatched block, keyed by number — the delivery service peers
    /// fetch from when they detect a gap or recover from a crash.
    std::map<uint64_t, std::shared_ptr<proto::Block>> dispatched;
  };

  void Enqueue(uint32_t channel, proto::Transaction tx);
  void NotifyEarlyAbort(const proto::Transaction& tx);
  void ArmTimer(uint32_t channel);
  /// Admits queued batches into the reorder stage while the pipeline has
  /// capacity, recording a stall for each batch that had to wait.
  void MaybeProcessNextBatch(uint32_t channel);
  /// Runs the Fabric++ ordering-phase logic on a cut batch (early abort +
  /// reordering), seals the block, and charges its virtual cost; the block
  /// proceeds to consensus via FinishBatchStage when the cost is paid.
  void ProcessBatch(uint32_t channel, ordering::Batch batch);
  /// Stage-completion: queues the block for in-order consensus submission,
  /// drains every consecutively finished block, and refills the stage.
  void FinishBatchStage(uint32_t channel, uint64_t seq, StagedBlock done);
  /// Hands a sealed block to the configured consensus backend; distribution
  /// happens on consensus commit (immediately for kSolo).
  void SubmitToConsensus(uint32_t channel,
                         std::shared_ptr<proto::Block> block,
                         uint64_t block_bytes);
  /// Proposes the pending block identified by `key` to the Raft cluster,
  /// re-proposing until it commits — a leader crash can lose an accepted
  /// entry before replication, and the block must not be lost with it.
  void ProposeToRaft(uint64_t key, uint64_t block_bytes);
  /// Ships a consensus-committed block to every peer.
  void DispatchBlock(uint32_t channel, std::shared_ptr<proto::Block> block,
                     uint64_t block_bytes);

  struct ConsensusPending {
    uint32_t channel;
    std::shared_ptr<proto::Block> block;
    uint64_t block_bytes;
  };

  /// Identity of a block in consensus: (channel, block number). Stable
  /// across re-proposals, unlike the Raft log index.
  static uint64_t PendingKey(uint32_t channel, uint64_t number) {
    return (static_cast<uint64_t>(channel) << 48) | number;
  }

  FabricNetwork* net_;
  sim::NodeId node_id_;
  sim::Resource cpu_;
  std::vector<ChannelState> channels_;
  uint64_t blocks_cut_ = 0;
  ordering::ReorderStats last_reorder_stats_;
  /// Raft backend state (null for kSolo).
  std::unique_ptr<raft::RaftCluster> raft_;
  /// Blocks awaiting consensus commit, keyed by PendingKey.
  std::unordered_map<uint64_t, ConsensusPending> raft_pending_;
  uint64_t raft_dispatched_ = 0;
};

/// One client: fires proposals at the configured rate, collects
/// endorsements, assembles transactions, submits them for ordering. All
/// clients share one simulated client machine (paper §6.1: one server fires
/// all proposals).
class ClientNode {
 public:
  ClientNode(FabricNetwork* net, uint32_t index, uint32_t channel,
             std::string name, uint64_t rng_seed);

  const std::string& name() const { return name_; }
  uint32_t channel() const { return channel_; }

  /// Arms periodic firing until `deadline` (virtual time).
  void StartFiring(sim::SimTime deadline);

  /// Fires a single proposal with explicit args (examples/tests).
  void FireProposal(std::vector<std::string> args);

  /// Endorsement reply delivery.
  void HandleEndorsement(uint64_t proposal_id,
                         Result<peer::EndorsementResponse> response);

  /// Final outcome notification (from the orderer's early aborts or the
  /// observer peer's commit events). An aborted proposal is resubmitted
  /// with the same arguments while the firing window is open and retries
  /// remain — the paper's client resubmission loop.
  void HandleOutcome(uint64_t proposal_id, bool success);

 private:
  friend class FabricNetwork;

  struct PendingProposal {
    proto::Proposal proposal;
    uint32_t expected = 0;
    std::vector<peer::EndorsementResponse> responses;
  };

  /// Retry bookkeeping for every in-flight proposal.
  struct InflightProposal {
    std::vector<std::string> args;
    uint32_t retries_used = 0;
  };

  void FireFromWorkload();
  void FireWithRetries(std::vector<std::string> args, uint32_t retries_used);
  void Submit(proto::Proposal proposal);
  void Assemble(PendingProposal pending);
  /// Resubmits an aborted proposal after an exponential-backoff delay with
  /// jitter, while the retry budget and firing window allow it.
  void MaybeResubmit(uint64_t proposal_id);
  sim::SimTime BackoffDelay(uint32_t retries_used);
  /// Aborts the proposal if its endorsements have not all arrived when the
  /// endorsement timeout expires (covers lost proposals/replies).
  void ArmEndorsementTimeout(uint64_t proposal_id);
  /// Abandons the transaction if no outcome arrived within the commit
  /// timeout of its submission to ordering.
  void ArmCommitTimeout(uint64_t proposal_id);

  FabricNetwork* net_;
  uint32_t index_;
  uint32_t channel_;
  std::string name_;
  Rng rng_;
  uint64_t next_proposal_id_ = 1;
  double next_fire_us_ = 0;
  sim::SimTime fire_deadline_ = 0;
  std::unordered_map<uint64_t, PendingProposal> pending_;
  std::unordered_map<uint64_t, InflightProposal> inflight_;
};

/// The whole simulated Fabric network: topology, pipeline wiring, and the
/// experiment driver. This is the main entry point of the library — see
/// examples/quickstart.cpp.
class FabricNetwork {
 public:
  /// Builds the network. `workload` seeds each channel's initial state and
  /// generates proposal arguments; it must outlive the network.
  FabricNetwork(FabricConfig config, const workload::Workload* workload);

  FabricNetwork(const FabricNetwork&) = delete;
  FabricNetwork& operator=(const FabricNetwork&) = delete;

  /// Runs the standard experiment: clients fire for `duration`, outcomes
  /// are measured in [warmup, duration), and the report is returned.
  RunReport RunFor(sim::SimTime duration, sim::SimTime warmup = 0);

  /// Manual driving (examples): submit one proposal through a client, then
  /// run the event loop until it drains.
  void SubmitProposal(uint32_t channel, uint32_t client_index,
                      std::vector<std::string> args);
  /// Injects a fully-formed transaction directly into the ordering service
  /// (used to demonstrate tamper detection, Appendix A.3.1).
  void SubmitExternalTransaction(uint32_t channel, proto::Transaction tx);
  /// Drains the event queue. Only valid with the solo ordering backend —
  /// a Raft cluster's heartbeat timers keep the queue alive forever; use
  /// env().RunUntil(...) there.
  void RunUntilIdle() { env_.Run(); }

  // --- Fault plan (tentpole of the robustness work) ---

  /// The injector every message of this network flows through. Configure
  /// loss/duplication/delay/partitions on it before (or during) a run.
  sim::FaultInjector& fault_injector() { return injector_; }

  /// Crashes peer `peer_index` over [start, end): the injector blackholes
  /// its traffic, the peer drops its in-flight pipeline at `start`, and at
  /// `end` it restarts and catches up from the orderer.
  void SchedulePeerCrash(uint32_t peer_index, sim::SimTime start,
                         sim::SimTime end);

  /// At virtual time `at`, crashes whichever Raft replica currently leads
  /// (no-op for the solo backend) and resumes it after `duration`. The
  /// cluster elects a new leader in the meantime — ordering stalls, then
  /// recovers; no block may be lost.
  void ScheduleRaftLeaderCrash(sim::SimTime at, sim::SimTime duration);

  /// One-shot anti-entropy: every live peer asks the orderer for blocks it
  /// is missing. Chaos drivers call this after healing the network — a
  /// dropped tail block has no successor to reveal the gap, so without a
  /// pull the ledgers could end one block apart forever.
  void SyncPeers();

  // --- Component access ---
  sim::Environment& env() { return env_; }
  sim::Network& network() { return net_; }
  Metrics& metrics() { return metrics_; }
  const FabricConfig& config() const { return config_; }
  const workload::Workload* workload() const { return workload_; }
  const chaincode::ChaincodeRegistry& registry() const { return *registry_; }
  const peer::PolicyRegistry& policies() const { return policies_; }
  sim::Resource& client_cpu() { return client_cpu_; }
  sim::NodeId client_machine_node() const { return client_machine_node_; }

  /// Shared pool running the validators' real signature-verification work
  /// (null when validator_workers == 1: fully serial). Workers accelerate
  /// wall-clock crypto only — never virtual time or validation outcomes.
  ThreadPool* validator_pool() { return validator_pool_.get(); }

  /// Pool running the orderer's real reordering work (null when
  /// reorder_workers == 1). Separate from validator_pool: ParallelFor is
  /// not reentrant, and the validator may be mid-fan-out on the same host
  /// thread's call stack when a reorder pass runs. Same determinism
  /// contract: wall-clock acceleration only.
  ThreadPool* reorder_pool() { return reorder_pool_.get(); }

  size_t num_peers() const { return peers_.size(); }
  PeerNode& peer(uint32_t i) { return *peers_[i]; }
  const PeerNode& peer(uint32_t i) const { return *peers_[i]; }
  OrdererNode& orderer() { return *orderer_; }
  size_t num_clients() const { return clients_.size(); }
  ClientNode& client(uint32_t i) { return *clients_[i]; }
  /// Client lookup by name; nullptr for unknown submitters (e.g. externally
  /// injected transactions).
  ClientNode* FindClient(const std::string& name);

  /// The peers a proposal with the given id is endorsed by: one peer per
  /// org, rotated by proposal id for load balance.
  std::vector<PeerNode*> EndorsersFor(uint64_t proposal_id);

  /// Endorsement policy id used by all transactions.
  const std::string& default_policy_id() const { return default_policy_id_; }

  /// Observer peer whose commits feed the metrics (peer 0).
  bool IsObserver(const PeerNode& peer) const { return peer.index() == 0; }

 private:
  friend class PeerNode;
  friend class OrdererNode;
  friend class ClientNode;

  FabricConfig config_;
  const workload::Workload* workload_;
  sim::Environment env_;
  sim::FaultInjector injector_;
  sim::Network net_;
  Metrics metrics_;
  std::unique_ptr<chaincode::ChaincodeRegistry> registry_;
  peer::PolicyRegistry policies_;
  std::string default_policy_id_;
  sim::Resource client_cpu_;
  sim::NodeId client_machine_node_;
  /// Built before peers_ (their validators borrow it); destroyed after.
  std::unique_ptr<ThreadPool> validator_pool_;
  /// Built before orderer_ (its reorder stage borrows it); destroyed after.
  std::unique_ptr<ThreadPool> reorder_pool_;
  std::vector<std::unique_ptr<PeerNode>> peers_;
  std::unique_ptr<OrdererNode> orderer_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  std::unordered_map<std::string, ClientNode*> clients_by_name_;
};

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_NETWORK_H_
