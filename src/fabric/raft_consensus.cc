#include "fabric/raft_consensus.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace fabricpp::fabric {

RaftConsensus::RaftConsensus(sim::Environment* env, sim::Network* net,
                             const FabricConfig& config)
    : env_(env) {
  raft_ = std::make_unique<raft::RaftCluster>(
      env, config.raft_cluster_size, config.seed, config.raft_params);
  // Register each replica with the message fabric's fault injector, so a
  // chaos plan's loss/partitions/crashes hit consensus traffic too.
  std::vector<sim::NodeId> raft_ids;
  raft_ids.reserve(config.raft_cluster_size);
  for (uint32_t i = 0; i < config.raft_cluster_size; ++i) {
    raft_ids.push_back(net->AddNode(StrFormat("raft-%u", i)));
  }
  raft_->SetFaultInjector(net->fault_injector(), std::move(raft_ids));
  raft_->Start();
  // Deliver each block exactly once, at the earliest replica apply
  // (monotonic index guard; replicas apply in log order). The entry's
  // payload identifies the block — the log index cannot, because a lost
  // entry's index gets reused by a different block after a leader crash.
  raft_->SetCommitCallbackOnAll([this](uint64_t index, const Bytes& payload) {
    if (index <= dispatched_) return;
    dispatched_ = index;
    if (payload.size() < 8) return;
    uint64_t key = 0;
    for (int i = 0; i < 8; ++i) {
      key |= static_cast<uint64_t>(payload[i]) << (8 * i);
    }
    const auto it = pending_.find(key);
    if (it == pending_.end()) return;  // Re-proposal already won.
    Pending pending = std::move(it->second);
    pending_.erase(it);
    deliver_(pending.channel, std::move(pending.block), pending.block_bytes);
  });
}

void RaftConsensus::Submit(uint32_t channel,
                           std::shared_ptr<proto::Block> block,
                           uint64_t block_bytes) {
  const uint64_t key = PendingKey(channel, block->header.number);
  pending_[key] = Pending{channel, std::move(block), block_bytes};
  ProposeToRaft(key, block_bytes);
}

void RaftConsensus::ProposeToRaft(uint64_t key, uint64_t block_bytes) {
  if (pending_.find(key) == pending_.end()) return;  // Committed.
  // The consensus entry carries the block's identity in its first 8 bytes
  // and is padded to the block's wire size (replication cost model); the
  // content itself is tracked out-of-band in pending_.
  Bytes payload(std::max<uint64_t>(block_bytes, 8), 0);
  for (int i = 0; i < 8; ++i) {
    payload[i] = static_cast<uint8_t>(key >> (8 * i));
  }
  const auto index = raft_->Propose(std::move(payload));
  // Either no leader exists (election in progress: retry soon) or the
  // proposal was accepted — in which case it can still be lost if the
  // leader crashes before replicating it, so check back and re-propose
  // until the commit callback clears the pending entry.
  const sim::SimTime retry = index.has_value() ? 500 * sim::kMillisecond
                                               : 20 * sim::kMillisecond;
  env_->Schedule(retry, [this, key, block_bytes]() {
    ProposeToRaft(key, block_bytes);
  });
}

}  // namespace fabricpp::fabric
