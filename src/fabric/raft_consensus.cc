#include "fabric/raft_consensus.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace fabricpp::fabric {

namespace {
constexpr size_t kBlockIdBytes = 12;  // LE32 channel + LE64 number.
}  // namespace

Bytes RaftConsensus::EncodePayload(BlockId id, uint64_t block_bytes) {
  Bytes payload(std::max<uint64_t>(block_bytes, kBlockIdBytes), 0);
  for (int i = 0; i < 4; ++i) {
    payload[i] = static_cast<uint8_t>(id.channel >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    payload[4 + i] = static_cast<uint8_t>(id.number >> (8 * i));
  }
  return payload;
}

bool RaftConsensus::DecodePayload(const Bytes& payload, BlockId* id) {
  if (payload.size() < kBlockIdBytes) return false;
  id->channel = 0;
  id->number = 0;
  for (int i = 0; i < 4; ++i) {
    id->channel |= static_cast<uint32_t>(payload[i]) << (8 * i);
  }
  for (int i = 0; i < 8; ++i) {
    id->number |= static_cast<uint64_t>(payload[4 + i]) << (8 * i);
  }
  return true;
}

RaftConsensus::RaftConsensus(sim::Environment* env, sim::Network* net,
                             const FabricConfig& config)
    : env_(env) {
  raft_ = std::make_unique<raft::RaftCluster>(
      env, config.raft_cluster_size, config.seed, config.raft_params);
  // Register each replica with the message fabric's fault injector, so a
  // chaos plan's loss/partitions/crashes hit consensus traffic too.
  std::vector<sim::NodeId> raft_ids;
  raft_ids.reserve(config.raft_cluster_size);
  for (uint32_t i = 0; i < config.raft_cluster_size; ++i) {
    raft_ids.push_back(net->AddNode(StrFormat("raft-%u", i)));
  }
  raft_->SetFaultInjector(net->fault_injector(), std::move(raft_ids));
  raft_->Start();
  // Deliver each block exactly once, at the earliest replica apply
  // (monotonic index guard; replicas apply in log order). The entry's
  // payload identifies the block — the log index cannot, because a lost
  // entry's index gets reused by a different block after a leader crash.
  raft_->SetCommitCallbackOnAll([this](uint64_t index, const Bytes& payload) {
    if (index <= dispatched_) return;
    dispatched_ = index;
    BlockId id;
    if (!DecodePayload(payload, &id)) return;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // Re-proposal already won.
    Pending pending = std::move(it->second);
    pending_.erase(it);
    deliver_(pending.channel, std::move(pending.block), pending.block_bytes);
  });
}

RaftConsensus::RaftConsensus(runtime::Runtime* runtime,
                             const FabricConfig& config)
    : lanes_(config.num_channels) {
  std::vector<runtime::Endpoint*> endpoints;
  endpoints.reserve(config.raft_cluster_size);
  for (uint32_t i = 0; i < config.raft_cluster_size; ++i) {
    endpoints.push_back(&runtime->AddEndpoint(StrFormat("raft-%u", i)));
  }
  raft_ = std::make_unique<raft::RaftCluster>(&runtime->transport(),
                                              std::move(endpoints), config.seed,
                                              config.raft_params);
  // Every replica reports every commit (on its own mailbox thread); the
  // report is posted to the committed channel's lane endpoint, where the
  // first arrival claims the pending entry and the rest find it gone.
  raft_->SetCommitCallbackOnAll(
      [this](uint64_t /*index*/, const Bytes& payload) {
        BlockId id;
        if (!DecodePayload(payload, &id)) return;
        if (!resolver_ || id.channel >= lanes_.size()) return;
        runtime::Endpoint* lane = resolver_(id.channel);
        if (lane == nullptr) return;
        lane->Post([this, id]() { OnThreadCommit(id); });
      });
}

void RaftConsensus::Submit(uint32_t channel,
                           std::shared_ptr<proto::Block> block,
                           uint64_t block_bytes) {
  const BlockId id{channel, block->header.number};
  if (env_ != nullptr) {
    pending_[id] = Pending{channel, std::move(block), block_bytes};
    ProposeToRaft(id, block_bytes);
    return;
  }
  // Thread mode: Submit runs on the channel's lane thread, so the lane's
  // state is single-writer by construction.
  lanes_[channel].pending[id.number] =
      Pending{channel, std::move(block), block_bytes};
  ThreadPropose(channel, id.number, block_bytes);
}

void RaftConsensus::ProposeToRaft(BlockId id, uint64_t block_bytes) {
  if (pending_.find(id) == pending_.end()) return;  // Committed.
  // The consensus entry carries the block's identity and is padded to the
  // block's wire size (replication cost model); the content itself is
  // tracked out-of-band in pending_.
  const auto index = raft_->Propose(EncodePayload(id, block_bytes));
  // Either no leader exists (election in progress: retry soon) or the
  // proposal was accepted — in which case it can still be lost if the
  // leader crashes before replicating it, so check back and re-propose
  // until the commit callback clears the pending entry.
  const sim::SimTime retry = index.has_value() ? 500 * sim::kMillisecond
                                               : 20 * sim::kMillisecond;
  env_->Schedule(retry, [this, id, block_bytes]() {
    ProposeToRaft(id, block_bytes);
  });
}

void RaftConsensus::ThreadPropose(uint32_t channel, uint64_t number,
                                  uint64_t block_bytes) {
  if (halted_.load(std::memory_order_acquire)) return;
  ChannelLane& lane = lanes_[channel];
  if (lane.pending.find(number) == lane.pending.end()) return;  // Committed.
  // No replica-state peeking across threads: post a propose-if-leader task
  // to every replica and let the current leader accept it. Duplicate log
  // entries (two replicas briefly both believing, or a retry racing the
  // commit) are deduplicated by the pending-erase on the lane thread.
  raft_->ProposeOnAll(EncodePayload(BlockId{channel, number}, block_bytes));
  // Fixed retry cadence on the lane's own clock: covers both the no-leader
  // window and an accepted entry lost to a leader crash.
  runtime::Endpoint* ep = resolver_ ? resolver_(channel) : nullptr;
  if (ep == nullptr) return;
  ep->clock().Schedule(100 * runtime::kMillisecond,
                       [this, channel, number, block_bytes]() {
                         ThreadPropose(channel, number, block_bytes);
                       });
}

void RaftConsensus::OnThreadCommit(BlockId id) {
  ChannelLane& lane = lanes_[id.channel];
  const auto it = lane.pending.find(id.number);
  if (it == lane.pending.end()) return;  // Another replica's post won.
  lane.ready.emplace(id.number, std::move(it->second));
  lane.pending.erase(it);
  // Hold-back delivery: commits can surface out of chain order (an earlier
  // block's entry lost to a leader crash commits later via re-proposal),
  // but the orderer's dispatch contract is chain order per channel.
  while (true) {
    const auto ready_it = lane.ready.find(lane.next_deliver);
    if (ready_it == lane.ready.end()) break;
    Pending pending = std::move(ready_it->second);
    lane.ready.erase(ready_it);
    ++lane.next_deliver;
    deliver_(pending.channel, std::move(pending.block), pending.block_bytes);
  }
}

void RaftConsensus::StartReplicas() { raft_->Start(); }

void RaftConsensus::Halt() {
  halted_.store(true, std::memory_order_release);
  if (raft_ == nullptr || !raft_->thread_mode()) return;
  for (uint32_t i = 0; i < raft_->num_nodes(); ++i) {
    raft::RaftNode* node = &raft_->node(i);
    runtime::Endpoint* ep = raft_->endpoint(i);
    if (ep != nullptr) ep->Post([node]() { node->Stop(); });
  }
}

void RaftConsensus::ScheduleLeaderCrash(runtime::TimeMicros at,
                                        runtime::TimeMicros duration) {
  raft_->ScheduleLeaderCrash(at, duration);
}

}  // namespace fabricpp::fabric
