#ifndef FABRICPP_FABRIC_RAFT_CONSENSUS_H_
#define FABRICPP_FABRIC_RAFT_CONSENSUS_H_

#include <memory>
#include <unordered_map>

#include "fabric/config.h"
#include "node/consensus.h"
#include "raft/raft_node.h"
#include "sim/environment.h"
#include "sim/network.h"

namespace fabricpp::fabric {

/// The crash-fault-tolerant consensus backend (Fabric >= 1.4's etcdraft
/// profile): blocks are delivered only after the Raft log commits them,
/// adding replication latency. Simulation-only — the Raft cluster runs on
/// sim primitives (Validate() rejects kRaft under the thread runtime).
///
/// A submitted block is re-proposed until its commit callback fires: a
/// leader crash can lose an accepted entry before replication, and the
/// block must not be lost with it.
class RaftConsensus final : public node::ConsensusService {
 public:
  /// Builds and starts the cluster. Registers each replica with `net`'s
  /// fault injector so a chaos plan's loss/partitions/crashes hit consensus
  /// traffic too.
  RaftConsensus(sim::Environment* env, sim::Network* net,
                const FabricConfig& config);

  void Submit(uint32_t channel, std::shared_ptr<proto::Block> block,
              uint64_t block_bytes) override;

  raft::RaftCluster& cluster() { return *raft_; }

 private:
  struct Pending {
    uint32_t channel;
    std::shared_ptr<proto::Block> block;
    uint64_t block_bytes;
  };

  /// Identity of a block in consensus: (channel, block number). Stable
  /// across re-proposals, unlike the Raft log index.
  static uint64_t PendingKey(uint32_t channel, uint64_t number) {
    return (static_cast<uint64_t>(channel) << 48) | number;
  }

  /// Proposes the pending block identified by `key`, re-proposing until it
  /// commits.
  void ProposeToRaft(uint64_t key, uint64_t block_bytes);

  sim::Environment* env_;
  std::unique_ptr<raft::RaftCluster> raft_;
  /// Blocks awaiting consensus commit, keyed by PendingKey.
  std::unordered_map<uint64_t, Pending> pending_;
  uint64_t dispatched_ = 0;
};

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_RAFT_CONSENSUS_H_
