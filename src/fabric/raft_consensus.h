#ifndef FABRICPP_FABRIC_RAFT_CONSENSUS_H_
#define FABRICPP_FABRIC_RAFT_CONSENSUS_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/config.h"
#include "node/consensus.h"
#include "raft/raft_node.h"
#include "runtime/runtime.h"
#include "sim/environment.h"
#include "sim/network.h"

namespace fabricpp::fabric {

/// The crash-fault-tolerant consensus backend (Fabric >= 1.4's etcdraft
/// profile): blocks are delivered only after the Raft log commits them,
/// adding replication latency. Runs on both substrates — the historical
/// deterministic simulation (one event loop, fault-injector integration)
/// and the thread runtime, where each replica lives on its own mailbox
/// thread and commits are funneled back to the submitting channel's
/// execution context.
///
/// A submitted block is re-proposed until its commit callback fires: a
/// leader crash can lose an accepted entry before replication, and the
/// block must not be lost with it.
class RaftConsensus final : public node::ConsensusService {
 public:
  /// Resolves a channel to the endpoint its deliveries must run on (the
  /// orderer's lane for that channel under the thread runtime).
  using EndpointResolver = std::function<runtime::Endpoint*(uint32_t)>;

  /// Sim mode: builds and starts the cluster on `env`. Registers each
  /// replica with `net`'s fault injector so a chaos plan's
  /// loss/partitions/crashes hit consensus traffic too.
  RaftConsensus(sim::Environment* env, sim::Network* net,
                const FabricConfig& config);

  /// Thread mode: one runtime endpoint ("raft-%u") per replica, RPCs over
  /// the runtime transport. Call SetDeliveryEndpointResolver before the
  /// first Submit and StartReplicas once the runtime epoch is set.
  RaftConsensus(runtime::Runtime* runtime, const FabricConfig& config);

  void Submit(uint32_t channel, std::shared_ptr<proto::Block> block,
              uint64_t block_bytes) override;

  raft::RaftCluster& cluster() { return *raft_; }

  // --- Thread-mode lifecycle (no-ops / unused under sim) ---

  /// Wires commit delivery back to per-channel execution contexts.
  void SetDeliveryEndpointResolver(EndpointResolver resolver) {
    resolver_ = std::move(resolver);
  }

  /// Arms every replica's election timer (posted to the replica threads).
  void StartReplicas();

  /// Stops proposal retries and halts every replica, so no consensus timer
  /// re-arms and the runtime can quiesce. Irreversible.
  void Halt();

  /// Thread-mode leader kill (see RaftCluster::ScheduleLeaderCrash).
  void ScheduleLeaderCrash(runtime::TimeMicros at,
                           runtime::TimeMicros duration);

  /// Identity of a block in consensus: (channel, block number). Stable
  /// across re-proposals, unlike the Raft log index. A struct rather than
  /// a packed word: the historical `(channel << 48) | number` packing
  /// collided once a channel's block numbers crossed 2^48 — and worse,
  /// collided *between* channels for any number with bits at or above 48.
  struct BlockId {
    uint32_t channel = 0;
    uint64_t number = 0;
    bool operator==(const BlockId&) const = default;
  };
  struct BlockIdHash {
    size_t operator()(const BlockId& id) const {
      return static_cast<size_t>(
          (static_cast<uint64_t>(id.channel) * 0x9e3779b97f4a7c15ULL) ^
          id.number);
    }
  };

  /// The consensus entry carries the block's identity in its first 12
  /// bytes (LE channel, LE number) and is padded to the block's wire size.
  /// Public for the collision regression tests.
  static Bytes EncodePayload(BlockId id, uint64_t block_bytes);
  static bool DecodePayload(const Bytes& payload, BlockId* id);

 private:
  struct Pending {
    uint32_t channel;
    std::shared_ptr<proto::Block> block;
    uint64_t block_bytes;
  };

  /// Per-channel delivery lane (thread mode). Each element is touched only
  /// on its channel's resolved endpoint thread: Submit runs there, and
  /// replica commit callbacks post back to it.
  struct ChannelLane {
    /// Blocks awaiting consensus commit, keyed by block number.
    std::unordered_map<uint64_t, Pending> pending;
    /// Committed blocks held back until their predecessors deliver —
    /// commits can surface out of chain order when an earlier block's
    /// entry was lost to a leader crash and re-proposed.
    std::map<uint64_t, Pending> ready;
    uint64_t next_deliver = 1;
  };

  /// Sim mode: proposes the pending block `id`, re-proposing until it
  /// commits.
  void ProposeToRaft(BlockId id, uint64_t block_bytes);

  /// Thread mode: ProposeOnAll plus a fixed retry on the channel's lane
  /// clock, until the commit erases the pending entry (or Halt()).
  void ThreadPropose(uint32_t channel, uint64_t number, uint64_t block_bytes);

  /// Thread mode: runs on the channel's lane thread; first arrival wins
  /// (every replica posts one), delivery is held back into chain order.
  void OnThreadCommit(BlockId id);

  sim::Environment* env_ = nullptr;  // Sim mode only.
  std::unique_ptr<raft::RaftCluster> raft_;
  /// Sim mode: blocks awaiting consensus commit.
  std::unordered_map<BlockId, Pending, BlockIdHash> pending_;
  uint64_t dispatched_ = 0;

  // Thread mode.
  EndpointResolver resolver_;
  std::vector<ChannelLane> lanes_;  // One per channel, lane-thread-confined.
  std::atomic<bool> halted_{false};
};

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_RAFT_CONSENSUS_H_
