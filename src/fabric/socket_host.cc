#include "fabric/socket_host.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "node/wire.h"
#include "sim/time.h"

namespace fabricpp::fabric {

namespace {

bool RoundsEqual(const std::vector<proto::StateReportMsg>& a,
                 const std::vector<proto::StateReportMsg>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].peer_index != b[i].peer_index) return false;
    if (!(a[i].channels == b[i].channels)) return false;
  }
  return true;
}

}  // namespace

std::string SocketRole::ToString() const {
  switch (kind) {
    case Kind::kClients:
      return "clients";
    case Kind::kOrderer:
      return "orderer";
    case Kind::kPeer:
      return StrFormat("peer:%u", peer_index);
  }
  return "?";
}

Result<SocketRole> ParseSocketRole(const std::string& text) {
  SocketRole role;
  if (text == "clients") {
    role.kind = SocketRole::Kind::kClients;
    return role;
  }
  if (text == "orderer") {
    role.kind = SocketRole::Kind::kOrderer;
    return role;
  }
  constexpr std::string_view kPeerPrefix = "peer:";
  if (text.compare(0, kPeerPrefix.size(), kPeerPrefix) == 0 &&
      text.size() > kPeerPrefix.size()) {
    uint64_t index = 0;
    for (size_t i = kPeerPrefix.size(); i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') {
        return Status::InvalidArgument("bad peer index in role \"" + text +
                                       "\"");
      }
      index = index * 10 + static_cast<uint64_t>(text[i] - '0');
      if (index > UINT32_MAX) {
        return Status::InvalidArgument("peer index out of range in \"" +
                                       text + "\"");
      }
    }
    role.kind = SocketRole::Kind::kPeer;
    role.peer_index = static_cast<uint32_t>(index);
    return role;
  }
  return Status::InvalidArgument(
      "role must be \"clients\", \"orderer\" or \"peer:<index>\", got \"" +
      text + "\"");
}

SocketHost::SocketHost(FabricConfig config, const workload::Workload* workload,
                       SocketRole role)
    : config_(std::move(config)), workload_(workload), role_(role) {
  const Status valid = config_.Validate();
  if (!valid.ok()) {
    FABRICPP_LOG(Error) << "invalid FabricConfig: " << valid;
    std::abort();
  }
  if (config_.RuntimeModeOrDefault() != runtime::RuntimeMode::kSocket) {
    FABRICPP_LOG(Error) << "SocketHost requires runtime_mode=\"socket\"";
    std::abort();
  }
  if (role_.kind == SocketRole::Kind::kPeer &&
      role_.peer_index >= num_peers()) {
    FABRICPP_LOG(Error) << "peer index " << role_.peer_index
                        << " out of range (num peers " << num_peers() << ")";
    std::abort();
  }

  registry_ = chaincode::ChaincodeRegistry::WithBuiltins();

  peer::EndorsementPolicy policy;
  policy.id = "AND(all-orgs)";
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    policy.required_orgs.push_back(std::string(1, static_cast<char>('A' + o)));
  }
  default_policy_id_ = policy.id;
  (void)policies_.Register(std::move(policy));

  // Every host runs its slice on a thread runtime of its own — same node
  // code, same mailbox semantics as runtime_mode="thread", just fewer
  // endpoints per process.
  runtime::ThreadRuntime::Options options;
  options.mailbox_capacity = config_.mailbox_capacity;
  runtime_ = std::make_unique<runtime::ThreadRuntime>(options);

  const node::NodeContext ctx{&config_,        &metrics_,  workload_,
                              registry_.get(), &policies_, runtime_.get(),
                              this,            this};

  switch (role_.kind) {
    case SocketRole::Kind::kPeer: {
      const uint32_t o = role_.peer_index / config_.peers_per_org;
      const uint32_t p = role_.peer_index % config_.peers_per_org;
      const std::string org(1, static_cast<char>('A' + o));
      peer_ = std::make_unique<node::PeerNode>(
          ctx, role_.peer_index, StrFormat("%s%u", org.c_str(), p + 1), org);
      // The full roster signs endorsements; prewarm so remote signatures
      // verify read-only (identities are deterministic in name + seed).
      peer_->PrewarmIdentities(PeerNames());
      for (uint32_t c = 0; c < config_.num_channels; ++c) {
        workload_->SeedState(peer_->mutable_state_db(c));
      }
      break;
    }
    case SocketRole::Kind::kOrderer: {
      orderer_ = std::make_unique<node::OrdererNode>(ctx);
      orderer_->SetConsensus(&solo_consensus_);
      break;
    }
    case SocketRole::Kind::kClients: {
      const uint32_t shards = config_.thread_client_shards;
      for (uint32_t s = 0; s < shards; ++s) {
        runtime::Endpoint& home = runtime_->AddEndpoint(
            s == 0 ? "clients" : StrFormat("clients-%u", s));
        client_endpoints_.push_back(&home);
        client_cpus_.push_back(&runtime_->AddExecutor(
            home, s == 0 ? "client-cpu" : StrFormat("client-cpu-%u", s),
            config_.client_machine_cores));
      }
      for (uint32_t c = 0; c < config_.num_channels; ++c) {
        for (uint32_t i = 0; i < config_.clients_per_channel; ++i) {
          const uint32_t index = c * config_.clients_per_channel + i;
          clients_.push_back(std::make_unique<node::ClientNode>(
              ctx, index, c, node::ClientNameFor(c, i),
              config_.seed * 0x9e3779b97f4a7c15ULL + index + 1,
              client_endpoints_[index % shards],
              client_cpus_[index % shards]));
          clients_by_name_[clients_.back()->name()] = clients_.back().get();
        }
      }
      break;
    }
  }
}

SocketHost::~SocketHost() { Stop(); }

std::vector<std::string> SocketHost::PeerNames() const {
  std::vector<std::string> names;
  names.reserve(num_peers());
  for (uint32_t o = 0; o < config_.num_orgs; ++o) {
    const std::string org(1, static_cast<char>('A' + o));
    for (uint32_t p = 0; p < config_.peers_per_org; ++p) {
      names.push_back(StrFormat("%s%u", org.c_str(), p + 1));
    }
  }
  return names;
}

runtime::SocketPeerKey SocketHost::SelfKey() const {
  switch (role_.kind) {
    case SocketRole::Kind::kClients:
      return ClientsKey();
    case SocketRole::Kind::kOrderer:
      return OrdererKey();
    case SocketRole::Kind::kPeer:
      return PeerKey(role_.peer_index);
  }
  return ClientsKey();
}

Status SocketHost::Start() {
  runtime::SocketTransport::Options opts;
  opts.max_frame_bytes = config_.socket_max_frame_bytes;
  opts.connect_timeout_ms = config_.socket_connect_timeout_ms;
  const runtime::SocketPeerKey self = SelfKey();
  opts.self_role = self.role;
  opts.self_index = self.index;
  switch (role_.kind) {
    case SocketRole::Kind::kClients:
      // Dial-only: the load driver reaches out to everyone.
      opts.self_name = "load";
      break;
    case SocketRole::Kind::kPeer:
      opts.listen_address = !config_.listen_address.empty()
                                ? config_.listen_address
                                : config_.peer_addresses[role_.peer_index];
      opts.self_name = peer_->name();
      break;
    case SocketRole::Kind::kOrderer:
      opts.listen_address = !config_.listen_address.empty()
                                ? config_.listen_address
                                : config_.orderer_address;
      opts.self_name = "orderer";
      break;
  }
  transport_ = std::make_unique<runtime::SocketTransport>(
      std::move(opts),
      [this](const runtime::SocketPeerKey& from, proto::Frame frame) {
        HandleFrame(from, std::move(frame));
      });
  const Status started = transport_->Start();
  if (!started.ok()) return started;

  switch (role_.kind) {
    case SocketRole::Kind::kClients:
      for (uint32_t i = 0; i < num_peers(); ++i) {
        transport_->Dial(PeerKey(i), config_.peer_addresses[i]);
      }
      transport_->Dial(OrdererKey(), config_.orderer_address);
      break;
    case SocketRole::Kind::kPeer:
      transport_->Dial(OrdererKey(), config_.orderer_address);
      ArmAntiEntropy();
      break;
    case SocketRole::Kind::kOrderer:
      break;  // Everyone dials the orderer.
  }
  return Status::OK();
}

uint16_t SocketHost::listen_port() const {
  return transport_ == nullptr ? 0 : transport_->listen_port();
}

bool SocketHost::WaitForCluster(uint32_t timeout_ms) {
  std::vector<runtime::SocketPeerKey> want;
  switch (role_.kind) {
    case SocketRole::Kind::kClients:
      for (uint32_t i = 0; i < num_peers(); ++i) want.push_back(PeerKey(i));
      want.push_back(OrdererKey());
      break;
    case SocketRole::Kind::kPeer:
      want.push_back(OrdererKey());
      break;
    case SocketRole::Kind::kOrderer:
      return true;
  }
  return transport_->WaitConnected(want, timeout_ms);
}

void SocketHost::ArmAntiEntropy() {
  node::PeerNode* p = peer_.get();
  p->endpoint().clock().Schedule(config_.peer_fetch_retry_interval, [this]() {
    // Runs on the peer's endpoint context; dies with the runtime on stop.
    for (uint32_t c = 0; c < config_.num_channels; ++c) {
      peer_->RequestMissingBlocks(c);
    }
    ArmAntiEntropy();
  });
}

// --- NodeDirectory ---------------------------------------------------------

size_t SocketHost::num_peers() const {
  return static_cast<size_t>(config_.num_orgs) * config_.peers_per_org;
}

node::PeerNode& SocketHost::peer(uint32_t index) {
  if (peer_ != nullptr && index == role_.peer_index) return *peer_;
  FABRICPP_LOG(Error) << "peer " << index << " is not hosted by this process ("
                      << role_.ToString() << ")";
  std::abort();
}

node::OrdererNode& SocketHost::orderer() {
  if (orderer_ != nullptr) return *orderer_;
  FABRICPP_LOG(Error) << "the orderer is not hosted by this process ("
                      << role_.ToString() << ")";
  std::abort();
}

size_t SocketHost::num_clients() const {
  return static_cast<size_t>(config_.num_channels) *
         config_.clients_per_channel;
}

node::ClientNode& SocketHost::client(uint32_t index) {
  if (role_.kind == SocketRole::Kind::kClients && index < clients_.size()) {
    return *clients_[index];
  }
  FABRICPP_LOG(Error) << "client " << index
                      << " is not hosted by this process ("
                      << role_.ToString() << ")";
  std::abort();
}

node::ClientNode* SocketHost::FindClient(const std::string& name) {
  const auto it = clients_by_name_.find(name);
  return it == clients_by_name_.end() ? nullptr : it->second;
}

std::vector<uint32_t> SocketHost::EndorsersFor(uint64_t proposal_id) {
  return node::EndorserIndicesFor(config_.num_orgs, config_.peers_per_org,
                                  proposal_id);
}

// --- Mesh ------------------------------------------------------------------

void SocketHost::Ship(const runtime::SocketPeerKey& to,
                      proto::WireMessageType type, const Bytes& payload,
                      uint64_t modeled_bytes) {
  metrics_.NoteWireMessage(static_cast<uint8_t>(type),
                           proto::FramedSize(payload.size()), modeled_bytes);
  (void)transport_->Send(to, type, payload);
}

void SocketHost::SendProposal(runtime::Endpoint& from, uint32_t peer_index,
                              uint32_t channel,
                              const proto::Proposal& proposal,
                              uint32_t client_index, uint64_t size_bytes) {
  (void)from;
  const proto::ProposalMsg msg{channel, client_index, proposal};
  Ship(PeerKey(peer_index), proto::WireMessageType::kProposal, msg.Encode(),
       size_bytes);
}

void SocketHost::SendTransaction(runtime::Endpoint& from, uint32_t channel,
                                 proto::Transaction tx, uint64_t size_bytes) {
  (void)from;
  proto::TransactionMsg msg;
  msg.channel = channel;
  msg.tx = std::move(tx);
  Ship(OrdererKey(), proto::WireMessageType::kTransaction, msg.Encode(),
       size_bytes);
}

void SocketHost::SendEndorsementReply(
    runtime::Endpoint& from, uint32_t client_index, uint64_t proposal_id,
    Result<peer::EndorsementResponse> response, uint64_t size_bytes) {
  (void)from;
  proto::EndorsementReplyMsg msg;
  msg.client_index = client_index;
  msg.proposal_id = proposal_id;
  msg.ok = response.ok();
  if (response.ok()) {
    msg.rwset = std::move(response->rwset);
    msg.endorsement = std::move(response->endorsement);
  } else {
    msg.status_code = static_cast<uint8_t>(response.status().code());
    msg.status_message = response.status().message();
  }
  Ship(ClientsKey(), proto::WireMessageType::kEndorsementReply, msg.Encode(),
       size_bytes);
}

void SocketHost::SendBusy(runtime::Endpoint& from, uint32_t client_index,
                          const node::BusyResponse& busy) {
  (void)from;
  const proto::BusyMsg msg{client_index, busy.proposal_id,
                           busy.retry_after_us};
  Ship(ClientsKey(), proto::WireMessageType::kBusy, msg.Encode(),
       node::kMessageOverhead);
}

void SocketHost::SendBusyByName(runtime::Endpoint& from,
                                const std::string& client,
                                const node::BusyResponse& busy) {
  (void)from;
  uint32_t channel = 0;
  uint32_t index_in_channel = 0;
  if (!node::ParseClientName(client, &channel, &index_in_channel)) {
    return;  // External submitter — no client host route for it.
  }
  const uint32_t global = channel * config_.clients_per_channel +
                          index_in_channel;
  const proto::BusyMsg msg{global, busy.proposal_id, busy.retry_after_us};
  Ship(ClientsKey(), proto::WireMessageType::kBusy, msg.Encode(),
       node::kMessageOverhead);
}

bool SocketHost::RoutesToClient(const std::string& client) {
  uint32_t channel = 0;
  uint32_t index_in_channel = 0;
  if (!node::ParseClientName(client, &channel, &index_in_channel)) {
    return false;  // Externally injected — nobody hosts its state machine.
  }
  return transport_->Connected(ClientsKey());
}

void SocketHost::SendOutcome(runtime::Endpoint& from,
                             const std::string& client, uint64_t proposal_id,
                             proto::TxValidationCode code) {
  (void)from;
  proto::OutcomeMsg msg;
  msg.client = client;
  msg.proposal_id = proposal_id;
  msg.code = code;
  Ship(ClientsKey(), proto::WireMessageType::kOutcome, msg.Encode(),
       node::kMessageOverhead);
}

void SocketHost::SendBlock(runtime::Endpoint& from, uint32_t peer_index,
                           uint32_t channel,
                           std::shared_ptr<proto::Block> block,
                           uint64_t block_bytes) {
  (void)from;
  const proto::BlockMsg msg{channel, *block};
  Ship(PeerKey(peer_index), proto::WireMessageType::kBlock, msg.Encode(),
       block_bytes);
}

void SocketHost::GossipBlock(runtime::Endpoint& from, uint32_t channel,
                             std::shared_ptr<proto::Block> block,
                             uint64_t block_bytes) {
  (void)from;
  (void)channel;
  (void)block;
  (void)block_bytes;
  // Validate() rejects gossip_blocks under runtime_mode="socket" (peer ->
  // peer links do not exist in the dial topology).
  FABRICPP_LOG(Error) << "gossip dissemination is not available in socket "
                         "mode";
  std::abort();
}

void SocketHost::SendChainInfo(runtime::Endpoint& from, uint32_t peer_index,
                               uint32_t channel, uint64_t height) {
  (void)from;
  const proto::ChainInfoMsg msg{channel, height};
  Ship(PeerKey(peer_index), proto::WireMessageType::kChainInfo, msg.Encode(),
       node::kMessageOverhead);
}

void SocketHost::SendBlockRequest(runtime::Endpoint& from, uint32_t channel,
                                  uint32_t peer_index, uint64_t from_number) {
  (void)from;
  const proto::BlockRequestMsg msg{channel, peer_index, from_number};
  Ship(OrdererKey(), proto::WireMessageType::kBlockRequest, msg.Encode(),
       node::kMessageOverhead);
}

// --- Frame dispatch (event-loop thread) ------------------------------------

void SocketHost::HandleFrame(const runtime::SocketPeerKey& from,
                             proto::Frame frame) {
  switch (role_.kind) {
    case SocketRole::Kind::kClients:
      HandleClientsFrame(frame);
      return;
    case SocketRole::Kind::kPeer:
      HandlePeerFrame(from, frame);
      return;
    case SocketRole::Kind::kOrderer:
      HandleOrdererFrame(frame);
      return;
  }
}

void SocketHost::HandleClientsFrame(proto::Frame& frame) {
  ByteReader r(frame.payload);
  switch (static_cast<proto::WireMessageType>(frame.type)) {
    case proto::WireMessageType::kEndorsementReply: {
      Result<proto::EndorsementReplyMsg> msg =
          proto::EndorsementReplyMsg::Decode(&r);
      if (!msg.ok() || msg->client_index >= clients_.size()) break;
      if (run_done_.load()) return;
      node::ClientNode* c = clients_[msg->client_index].get();
      Result<peer::EndorsementResponse> response =
          msg->ok ? Result<peer::EndorsementResponse>(
                        peer::EndorsementResponse{std::move(msg->rwset),
                                                  std::move(msg->endorsement)})
                  : Result<peer::EndorsementResponse>(
                        Status(static_cast<StatusCode>(msg->status_code),
                               std::move(msg->status_message)));
      c->home().Post([c, proposal_id = msg->proposal_id,
                      response = std::move(response)]() mutable {
        c->HandleEndorsement(proposal_id, std::move(response));
      });
      return;
    }
    case proto::WireMessageType::kBusy: {
      Result<proto::BusyMsg> msg = proto::BusyMsg::Decode(&r);
      if (!msg.ok() || msg->client_index >= clients_.size()) break;
      if (run_done_.load()) return;
      node::ClientNode* c = clients_[msg->client_index].get();
      const node::BusyResponse busy{msg->proposal_id, msg->retry_after_us};
      c->home().Post([c, busy]() { c->HandleBusy(busy); });
      return;
    }
    case proto::WireMessageType::kOutcome: {
      Result<proto::OutcomeMsg> msg = proto::OutcomeMsg::Decode(&r);
      if (!msg.ok()) break;
      uint32_t channel = 0;
      uint32_t index_in_channel = 0;
      if (!node::ParseClientName(msg->client, &channel, &index_in_channel)) {
        break;
      }
      const uint64_t global =
          static_cast<uint64_t>(channel) * config_.clients_per_channel +
          index_in_channel;
      if (global >= clients_.size()) break;
      if (run_done_.load()) return;
      node::ClientNode* c = clients_[global].get();
      // The client host is the authority on proposal outcomes: resolve in
      // this host's (reported) Metrics, then drive the client's retry
      // machine. ResolveFired consumes the fired entry, so a racing
      // client-side timeout cannot double-count.
      c->home().Post([this, c, name = std::move(msg->client),
                      proposal_id = msg->proposal_id, code = msg->code]() {
        metrics_.ResolveFired(ProposalKey(name, proposal_id),
                              OutcomeFromValidationCode(code),
                              c->home().clock().Now());
        c->HandleOutcome(proposal_id,
                         code == proto::TxValidationCode::kValid);
      });
      return;
    }
    case proto::WireMessageType::kStateReport: {
      Result<proto::StateReportMsg> msg = proto::StateReportMsg::Decode(&r);
      if (!msg.ok()) break;
      {
        const std::pair<uint64_t, uint32_t> key{msg->token, msg->peer_index};
        std::lock_guard<std::mutex> lock(mu_);
        reports_[key] = std::move(*msg);
      }
      cv_.notify_all();
      return;
    }
    case proto::WireMessageType::kShutdown: {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_received_ = true;
      cv_.notify_all();
      return;
    }
    default:
      break;
  }
  transport_->NoteMessageDropped();
}

void SocketHost::HandlePeerFrame(const runtime::SocketPeerKey& from,
                                 proto::Frame& frame) {
  (void)from;
  node::PeerNode* p = peer_.get();
  ByteReader r(frame.payload);
  switch (static_cast<proto::WireMessageType>(frame.type)) {
    case proto::WireMessageType::kProposal: {
      Result<proto::ProposalMsg> msg = proto::ProposalMsg::Decode(&r);
      if (!msg.ok() || msg->channel >= config_.num_channels ||
          msg->client_index >= num_clients()) {
        break;
      }
      p->endpoint().Post([p, channel = msg->channel,
                          proposal = std::move(msg->proposal),
                          client_index = msg->client_index]() mutable {
        p->HandleProposal(channel, std::move(proposal), client_index);
      });
      return;
    }
    case proto::WireMessageType::kBlock: {
      Result<proto::BlockMsg> msg = proto::BlockMsg::Decode(&r);
      if (!msg.ok() || msg->channel >= config_.num_channels) break;
      auto block = std::make_shared<proto::Block>(std::move(msg->block));
      p->endpoint().Post([p, channel = msg->channel, block]() {
        p->HandleBlock(channel, block);
      });
      return;
    }
    case proto::WireMessageType::kChainInfo: {
      Result<proto::ChainInfoMsg> msg = proto::ChainInfoMsg::Decode(&r);
      if (!msg.ok() || msg->channel >= config_.num_channels) break;
      p->endpoint().Post([p, channel = msg->channel, height = msg->height]() {
        p->HandleChainInfo(channel, height);
      });
      return;
    }
    case proto::WireMessageType::kStateRequest: {
      Result<proto::StateRequestMsg> msg = proto::StateRequestMsg::Decode(&r);
      if (!msg.ok()) break;
      // Build the report on the peer's own context — ledger and state are
      // single-writer there, so the snapshot is consistent.
      p->endpoint().Post([this, p, token = msg->token]() {
        proto::StateReportMsg report;
        report.peer_index = role_.peer_index;
        report.token = token;
        for (uint32_t c = 0; c < config_.num_channels; ++c) {
          proto::ChannelStateInfo info;
          info.height = p->ledger(c).Height();
          info.tip_hash = p->ledger(c).LastHash();
          info.state_fingerprint = p->state_db(c).Fingerprint();
          info.num_keys = p->state_db(c).NumKeys();
          report.channels.push_back(std::move(info));
        }
        Ship(ClientsKey(), proto::WireMessageType::kStateReport,
             report.Encode(), node::kMessageOverhead);
      });
      return;
    }
    case proto::WireMessageType::kShutdown: {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_received_ = true;
      cv_.notify_all();
      return;
    }
    default:
      break;
  }
  transport_->NoteMessageDropped();
}

void SocketHost::HandleOrdererFrame(proto::Frame& frame) {
  node::OrdererNode* o = orderer_.get();
  ByteReader r(frame.payload);
  switch (static_cast<proto::WireMessageType>(frame.type)) {
    case proto::WireMessageType::kTransaction: {
      Result<proto::TransactionMsg> msg = proto::TransactionMsg::Decode(&r);
      if (!msg.ok() || msg->channel >= config_.num_channels) break;
      o->endpoint().Post(
          [o, channel = msg->channel, tx = std::move(msg->tx)]() mutable {
            o->HandleTransaction(channel, std::move(tx));
          });
      return;
    }
    case proto::WireMessageType::kBlockRequest: {
      Result<proto::BlockRequestMsg> msg = proto::BlockRequestMsg::Decode(&r);
      if (!msg.ok() || msg->channel >= config_.num_channels ||
          msg->peer_index >= num_peers()) {
        break;
      }
      o->endpoint().Post([o, channel = msg->channel,
                          peer_index = msg->peer_index,
                          from_number = msg->from_number]() {
        o->HandleBlockRequest(channel, peer_index, from_number);
      });
      return;
    }
    case proto::WireMessageType::kShutdown: {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_received_ = true;
      cv_.notify_all();
      return;
    }
    default:
      break;
  }
  transport_->NoteMessageDropped();
}

// --- Experiment driving (client host) --------------------------------------

RunReport SocketHost::RunClients(runtime::TimeMicros duration,
                                 runtime::TimeMicros warmup) {
  if (role_.kind != SocketRole::Kind::kClients) {
    FABRICPP_LOG(Error) << "RunClients is client-host only";
    std::abort();
  }
  if (ran_) {
    FABRICPP_LOG(Error) << "RunClients can only be called once per host";
    std::abort();
  }
  ran_ = true;

  // Same measured-run protocol as thread-mode FabricNetwork::RunFor.
  runtime_->ResetEpoch();
  metrics_.SetWindow(warmup, duration);
  for (auto& client : clients_) {
    node::ClientNode* c = client.get();
    c->home().Post([c, duration]() { c->StartFiring(duration); });
  }
  runtime_->SleepUntil(duration);

  // Drain: first the local mailboxes, then a settle window for the remote
  // pipeline (blocks cut near the deadline still have to be validated and
  // their outcome frames shipped back), then the mailboxes again.
  const runtime::TimeMicros horizon =
      std::max<runtime::TimeMicros>(config_.block.batch_timeout,
                                    config_.peer_fetch_retry_interval) +
      250 * sim::kMillisecond;
  runtime_->Quiesce(horizon);
  std::this_thread::sleep_for(std::chrono::microseconds(horizon));
  runtime_->Quiesce(horizon);

  run_done_.store(true);
  runtime_->Shutdown();
  metrics_.SetMailboxShedTotal(runtime_->mailbox_shed_total());
  const runtime::SocketTransport::Counters c = transport_->counters();
  metrics_.SetSocketTransportTotals(c.frames_sent, c.bytes_sent,
                                    c.frames_received, c.bytes_received,
                                    c.writev_calls, c.reconnects,
                                    c.messages_dropped, c.decode_errors);
  return metrics_.Report();
}

std::vector<proto::StateReportMsg> SocketHost::CollectPeerReports(
    uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::vector<proto::StateReportMsg> last;
  while (std::chrono::steady_clock::now() < deadline) {
    uint64_t token = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      token = next_state_token_++;
    }
    const proto::StateRequestMsg request{token};
    for (uint32_t i = 0; i < num_peers(); ++i) {
      Ship(PeerKey(i), proto::WireMessageType::kStateRequest,
           request.Encode(), node::kMessageOverhead);
    }

    std::vector<proto::StateReportMsg> round;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto round_deadline = std::min(
          deadline, std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(2000));
      const bool complete = cv_.wait_until(lock, round_deadline, [&]() {
        size_t got = 0;
        for (uint32_t i = 0; i < num_peers(); ++i) {
          got += reports_.count({token, i});
        }
        return got == num_peers();
      });
      if (!complete) continue;  // A peer lagged; poll again.
      for (uint32_t i = 0; i < num_peers(); ++i) {
        const auto it = reports_.find({token, i});
        round.push_back(it->second);
        reports_.erase(it);
      }
    }
    // Two consecutive identical rounds mean the cluster went quiescent —
    // heights and fingerprints can no longer be mid-commit snapshots.
    if (!last.empty() && RoundsEqual(last, round)) return round;
    last = std::move(round);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return last;
}

void SocketHost::BroadcastShutdown() {
  const proto::ShutdownMsg msg;
  for (uint32_t i = 0; i < num_peers(); ++i) {
    Ship(PeerKey(i), proto::WireMessageType::kShutdown, msg.Encode(),
         node::kMessageOverhead);
  }
  Ship(OrdererKey(), proto::WireMessageType::kShutdown, msg.Encode(),
       node::kMessageOverhead);
  (void)transport_->Drain(2000);
}

bool SocketHost::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this]() { return shutdown_received_ || stopped_; });
  return shutdown_received_;
}

void SocketHost::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (transport_ != nullptr) {
    // Flush what is queued (e.g. the last outcome frames a peer produced
    // before its shutdown), then tear the loop down before the runtime so
    // no frame dispatch posts into dying mailboxes.
    (void)transport_->Drain(1000);
    transport_->Stop();
  }
  runtime_->Shutdown();
}

namespace {

void CheckStarted(const Status& status, const char* what) {
  if (!status.ok()) {
    FABRICPP_LOG(Error) << what << ": " << status.ToString();
    std::abort();
  }
}

}  // namespace

LocalSocketCluster::LocalSocketCluster(FabricConfig base,
                                       const workload::Workload* workload) {
  const size_t num_peers =
      static_cast<size_t>(base.num_orgs) * base.peers_per_org;
  base.runtime_mode = "socket";
  base.peer_addresses.assign(num_peers, "127.0.0.1:0");
  base.orderer_address = "127.0.0.1:0";

  FabricConfig orderer_config = base;
  orderer_config.listen_address = "127.0.0.1:0";
  SocketRole orderer_role;
  orderer_role.kind = SocketRole::Kind::kOrderer;
  orderer_ =
      std::make_unique<SocketHost>(orderer_config, workload, orderer_role);
  CheckStarted(orderer_->Start(), "orderer host start");
  base.orderer_address =
      "127.0.0.1:" + std::to_string(orderer_->listen_port());

  for (size_t i = 0; i < num_peers; ++i) {
    FabricConfig peer_config = base;
    peer_config.listen_address = "127.0.0.1:0";
    SocketRole role;
    role.kind = SocketRole::Kind::kPeer;
    role.peer_index = static_cast<uint32_t>(i);
    peers_.push_back(std::make_unique<SocketHost>(peer_config, workload, role));
    CheckStarted(peers_.back()->Start(), "peer host start");
    base.peer_addresses[i] =
        "127.0.0.1:" + std::to_string(peers_.back()->listen_port());
  }

  SocketRole clients_role;
  clients_role.kind = SocketRole::Kind::kClients;
  clients_ = std::make_unique<SocketHost>(base, workload, clients_role);
  CheckStarted(clients_->Start(), "client host start");
}

LocalSocketCluster::~LocalSocketCluster() {
  clients_->BroadcastShutdown();
  clients_->Stop();
  for (auto& peer : peers_) peer->Stop();
  orderer_->Stop();
}

}  // namespace fabricpp::fabric
