#ifndef FABRICPP_FABRIC_SOCKET_HOST_H_
#define FABRICPP_FABRIC_SOCKET_HOST_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chaincode/chaincode.h"
#include "fabric/config.h"
#include "fabric/metrics.h"
#include "node/client_node.h"
#include "node/consensus.h"
#include "node/mesh.h"
#include "node/node_context.h"
#include "node/orderer_node.h"
#include "node/peer_node.h"
#include "peer/policy.h"
#include "proto/wire_format.h"
#include "runtime/runtime.h"
#include "runtime/socket_transport.h"
#include "runtime/thread_runtime.h"
#include "workload/workload.h"

namespace fabricpp::fabric {

/// Which slice of the network one process hosts under runtime_mode="socket":
/// all clients (the load driver), one peer, or the orderer.
struct SocketRole {
  enum class Kind { kClients, kPeer, kOrderer };
  Kind kind = Kind::kClients;
  uint32_t peer_index = 0;  ///< Valid iff kind == kPeer.

  std::string ToString() const;
};

/// Parses "clients" | "orderer" | "peer:<index>".
Result<SocketRole> ParseSocketRole(const std::string& text);

/// The multi-process composition root (DESIGN.md §15): one SocketHost per
/// process hosts its slice of the network on a ThreadRuntime and stitches
/// the slices together over TCP. It is simultaneously the
/// node::NodeDirectory its local nodes look each other up in (remote
/// lookups abort — node code only reaches concrete nodes through
/// Mesh-delivered tasks, which by construction run where the node lives)
/// and the node::Mesh that encodes every cross-node send into a wire frame
/// (proto/wire_format.h) and ships it through runtime::SocketTransport.
///
/// Topology: the orderer listens and dials nobody; each peer listens and
/// dials the orderer; the client host dials every peer and the orderer.
/// Exactly one connection per process pair, both directions multiplexed.
///
/// Measurement: the client host owns the run. RunClients mirrors the
/// thread-mode FabricNetwork::RunFor protocol (reset epoch, fire, sleep,
/// quiesce, report); outcome frames from the observer peer and the orderer
/// resolve proposals in this host's Metrics, so the RunReport has the same
/// shape and semantics as the in-process modes. Peer/orderer hosts run
/// until a kShutdown frame (or a signal) stops them.
class SocketHost : public node::NodeDirectory, public node::Mesh {
 public:
  /// `workload` must outlive the host. The config must validate with
  /// runtime_mode="socket" (peer_addresses / orderer_address filled in).
  SocketHost(FabricConfig config, const workload::Workload* workload,
             SocketRole role);
  ~SocketHost() override;

  SocketHost(const SocketHost&) = delete;
  SocketHost& operator=(const SocketHost&) = delete;

  /// Builds the local nodes, binds the listener (peer/orderer roles) and
  /// starts dialing. Returns the first hard error (e.g. bind failure).
  Status Start();

  /// Port this host's listener bound; 0 for the (dial-only) client host.
  /// Resolves port 0 in the configured address — how tests run whole
  /// clusters in one process on ephemeral ports.
  uint16_t listen_port() const;

  /// Blocks until every route this role dials is connected.
  bool WaitForCluster(uint32_t timeout_ms);

  /// Client host only: runs the standard experiment against the remote
  /// cluster — clients fire for `duration` (wall-clock microseconds),
  /// outcomes are measured in [warmup, duration) — and returns the report.
  /// One call per host, like the thread runtime.
  RunReport RunClients(runtime::TimeMicros duration,
                       runtime::TimeMicros warmup = 0);

  /// Client host only: polls every peer for (height, tip hash, state
  /// fingerprint, key count) per channel until two consecutive rounds
  /// agree (the cluster went quiescent) or `timeout_ms` elapses. Returns
  /// the last round, sorted by peer index; may be shorter than num_peers
  /// on timeout.
  std::vector<proto::StateReportMsg> CollectPeerReports(uint32_t timeout_ms);

  /// Client host only: tells every peer and the orderer to exit.
  void BroadcastShutdown();

  /// Daemon roles: blocks until a kShutdown frame arrives or Stop() is
  /// called. Returns whether a shutdown frame (vs. local Stop) ended it.
  bool WaitForShutdown();

  /// Stops the transport and the runtime. Idempotent; the destructor calls
  /// it too.
  void Stop();

  Metrics& metrics() { return metrics_; }
  const FabricConfig& config() const { return config_; }
  const SocketRole& role() const { return role_; }
  runtime::SocketTransport& transport() { return *transport_; }
  /// The locally hosted peer (peer role only; else nullptr).
  node::PeerNode* local_peer() { return peer_.get(); }

  // --- node::NodeDirectory ---
  size_t num_peers() const override;
  node::PeerNode& peer(uint32_t index) override;
  node::OrdererNode& orderer() override;
  size_t num_clients() const override;
  node::ClientNode& client(uint32_t index) override;
  node::ClientNode* FindClient(const std::string& name) override;
  std::vector<uint32_t> EndorsersFor(uint64_t proposal_id) override;
  const std::string& default_policy_id() const override {
    return default_policy_id_;
  }
  bool IsObserver(const node::PeerNode& peer) const override {
    return peer.index() == 0;
  }

  // --- node::Mesh (encode + ship over TCP) ---
  void SendProposal(runtime::Endpoint& from, uint32_t peer_index,
                    uint32_t channel, const proto::Proposal& proposal,
                    uint32_t client_index, uint64_t size_bytes) override;
  void SendTransaction(runtime::Endpoint& from, uint32_t channel,
                       proto::Transaction tx, uint64_t size_bytes) override;
  void SendEndorsementReply(runtime::Endpoint& from, uint32_t client_index,
                            uint64_t proposal_id,
                            Result<peer::EndorsementResponse> response,
                            uint64_t size_bytes) override;
  void SendBusy(runtime::Endpoint& from, uint32_t client_index,
                const node::BusyResponse& busy) override;
  void SendBusyByName(runtime::Endpoint& from, const std::string& client,
                      const node::BusyResponse& busy) override;
  bool RoutesToClient(const std::string& client) override;
  void SendOutcome(runtime::Endpoint& from, const std::string& client,
                   uint64_t proposal_id,
                   proto::TxValidationCode code) override;
  void SendBlock(runtime::Endpoint& from, uint32_t peer_index,
                 uint32_t channel, std::shared_ptr<proto::Block> block,
                 uint64_t block_bytes) override;
  void GossipBlock(runtime::Endpoint& from, uint32_t channel,
                   std::shared_ptr<proto::Block> block,
                   uint64_t block_bytes) override;
  void SendChainInfo(runtime::Endpoint& from, uint32_t peer_index,
                     uint32_t channel, uint64_t height) override;
  void SendBlockRequest(runtime::Endpoint& from, uint32_t channel,
                        uint32_t peer_index, uint64_t from_number) override;

 private:
  /// Encodes + ships one frame and records its real framed size against the
  /// modeled one (Metrics transport counters, outside RunReport).
  void Ship(const runtime::SocketPeerKey& to, proto::WireMessageType type,
            const Bytes& payload, uint64_t modeled_bytes);

  /// Transport frame dispatch (event-loop thread): decode the payload and
  /// post the typed handler onto the target node's execution context.
  void HandleFrame(const runtime::SocketPeerKey& from, proto::Frame frame);
  void HandleClientsFrame(proto::Frame& frame);
  void HandlePeerFrame(const runtime::SocketPeerKey& from,
                       proto::Frame& frame);
  void HandleOrdererFrame(proto::Frame& frame);

  /// Peer role: periodic anti-entropy — a catch-up probe to the orderer
  /// every peer_fetch_retry_interval, so a block lost in flight (or a tail
  /// block with no successor to reveal the gap) is always re-fetched.
  void ArmAntiEntropy();

  /// The peer roster's names ("A1", "B2", ...), derivable from config alone
  /// — every host prewarms its verifier caches with them, so endorsements
  /// signed in one process verify in another.
  std::vector<std::string> PeerNames() const;

  runtime::SocketPeerKey SelfKey() const;
  static runtime::SocketPeerKey OrdererKey() {
    return {proto::NodeRole::kOrderer, 0};
  }
  static runtime::SocketPeerKey ClientsKey() {
    return {proto::NodeRole::kClientHost, 0};
  }
  static runtime::SocketPeerKey PeerKey(uint32_t index) {
    return {proto::NodeRole::kPeer, index};
  }

  FabricConfig config_;
  const workload::Workload* workload_;
  SocketRole role_;
  Metrics metrics_;
  std::unique_ptr<chaincode::ChaincodeRegistry> registry_;
  peer::PolicyRegistry policies_;
  std::string default_policy_id_;
  std::unique_ptr<runtime::ThreadRuntime> runtime_;
  std::unique_ptr<runtime::SocketTransport> transport_;

  // Local slice (exactly one populated, by role).
  std::unique_ptr<node::PeerNode> peer_;
  std::unique_ptr<node::OrdererNode> orderer_;
  node::SoloConsensus solo_consensus_;
  std::vector<runtime::Endpoint*> client_endpoints_;
  std::vector<runtime::Executor*> client_cpus_;
  std::vector<std::unique_ptr<node::ClientNode>> clients_;
  std::unordered_map<std::string, node::ClientNode*> clients_by_name_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_received_ = false;
  bool stopped_ = false;
  /// Set once the measured run ended: late frames for clients are ignored
  /// instead of posted into the shut-down runtime.
  std::atomic<bool> run_done_{false};
  bool ran_ = false;
  /// State reports keyed by (token, peer_index) — CollectPeerReports waits
  /// here for each polling round to complete.
  uint64_t next_state_token_ = 1;
  std::map<std::pair<uint64_t, uint32_t>, proto::StateReportMsg> reports_;
};

/// A whole socket-mode cluster inside one process, on ephemeral loopback
/// ports: the orderer host binds first, each peer host learns its port,
/// the client host learns everyone's. Every host still has its own
/// ThreadRuntime, Metrics and SocketTransport — only TCP connects them —
/// so this exercises the full multi-process path without fork/exec. Used
/// by tests and bench_runtime; real deployments run fabricpp_node /
/// fabricpp_load instead.
class LocalSocketCluster {
 public:
  /// `base` needs topology/workload knobs only; runtime_mode and the
  /// address lists are filled in here. Aborts on a start failure (test
  /// fixture semantics). `workload` must outlive the cluster.
  LocalSocketCluster(FabricConfig base, const workload::Workload* workload);

  /// Broadcasts shutdown from the client host and stops every host.
  ~LocalSocketCluster();

  LocalSocketCluster(const LocalSocketCluster&) = delete;
  LocalSocketCluster& operator=(const LocalSocketCluster&) = delete;

  SocketHost& clients() { return *clients_; }

 private:
  std::unique_ptr<SocketHost> orderer_;
  std::vector<std::unique_ptr<SocketHost>> peers_;
  std::unique_ptr<SocketHost> clients_;
};

}  // namespace fabricpp::fabric

#endif  // FABRICPP_FABRIC_SOCKET_HOST_H_
