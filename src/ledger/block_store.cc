#include "ledger/block_store.h"

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "storage/crc32.h"

namespace fabricpp::ledger {

namespace {

/// Serializes a stored block (block bytes + validation codes).
Bytes EncodeStored(const StoredBlock& stored) {
  Bytes out;
  ByteWriter writer(&out);
  const Bytes block_bytes = stored.block.Encode();
  writer.PutBytes(block_bytes);
  writer.PutVarint(stored.validation_codes.size());
  for (const proto::TxValidationCode code : stored.validation_codes) {
    writer.PutU8(static_cast<uint8_t>(code));
  }
  return out;
}

Result<StoredBlock> DecodeStored(const Bytes& data) {
  ByteReader reader(data);
  StoredBlock stored;
  FABRICPP_ASSIGN_OR_RETURN(const Bytes block_bytes, reader.GetBytes());
  {
    ByteReader block_reader(block_bytes);
    FABRICPP_ASSIGN_OR_RETURN(stored.block,
                              proto::Block::Decode(&block_reader));
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_codes, reader.GetVarint());
  stored.validation_codes.reserve(num_codes);
  for (uint64_t i = 0; i < num_codes; ++i) {
    FABRICPP_ASSIGN_OR_RETURN(const uint8_t code, reader.GetU8());
    stored.validation_codes.push_back(
        static_cast<proto::TxValidationCode>(code));
  }
  return stored;
}

}  // namespace

PersistentLedger::~PersistentLedger() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<PersistentLedger>> PersistentLedger::Open(
    const std::string& path) {
  std::unique_ptr<PersistentLedger> ledger(new PersistentLedger(path));

  // Replay: records are u32 crc | u32 length | payload, like the WAL.
  if (std::FILE* file = std::fopen(path.c_str(), "rb")) {
    while (true) {
      uint8_t header[8];
      if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
        break;
      }
      uint32_t crc = 0, length = 0;
      for (int i = 0; i < 4; ++i) {
        crc |= static_cast<uint32_t>(header[i]) << (8 * i);
        length |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
      }
      if (length > (256u << 20)) break;
      Bytes payload(length);
      if (std::fread(payload.data(), 1, length, file) != length) break;
      if (storage::Crc32(payload.data(), payload.size()) != crc) break;
      auto stored = DecodeStored(payload);
      if (!stored.ok()) break;
      const Status append = ledger->ledger_.Append(std::move(stored).value());
      if (!append.ok()) {
        std::fclose(file);
        return Status::Internal("ledger file chain broken: " +
                                append.ToString());
      }
      ++ledger->blocks_recovered_;
    }
    std::fclose(file);
  }
  FABRICPP_RETURN_IF_ERROR(ledger->ledger_.VerifyChain());

  ledger->file_ = std::fopen(path.c_str(), "ab");
  if (ledger->file_ == nullptr) {
    return Status::Internal("cannot open ledger file " + path + ": " +
                            std::strerror(errno));
  }
  return ledger;
}

Status PersistentLedger::AppendToFile(const StoredBlock& stored) {
  const Bytes payload = EncodeStored(stored);
  uint8_t header[8];
  const uint32_t crc = storage::Crc32(payload.data(), payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(crc >> (8 * i));
    header[4 + i] = static_cast<uint8_t>(length >> (8 * i));
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal("ledger file write failed");
  }
  return Status::OK();
}

Status PersistentLedger::Append(StoredBlock stored) {
  const StoredBlock copy = stored;  // Ledger::Append consumes it.
  FABRICPP_RETURN_IF_ERROR(ledger_.Append(std::move(stored)));
  return AppendToFile(copy);
}

}  // namespace fabricpp::ledger
