#include "ledger/block_store.h"

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "storage/crc32.h"

namespace fabricpp::ledger {

namespace {

/// First payload byte of an anchor record. A normal record's payload starts
/// with the varint length of the encoded block — never zero, since a block
/// always encodes to at least its header — so 0x00 is unambiguous.
constexpr uint8_t kAnchorTag = 0x00;
constexpr uint64_t kAnchorMagic = 0xfab1e7a2c40f0001ULL;

/// Serializes a stored block (block bytes + validation codes).
Bytes EncodeStored(const StoredBlock& stored) {
  Bytes out;
  ByteWriter writer(&out);
  const Bytes block_bytes = stored.block.Encode();
  writer.PutBytes(block_bytes);
  writer.PutVarint(stored.validation_codes.size());
  for (const proto::TxValidationCode code : stored.validation_codes) {
    writer.PutU8(static_cast<uint8_t>(code));
  }
  return out;
}

Result<StoredBlock> DecodeStored(const Bytes& data) {
  ByteReader reader(data);
  StoredBlock stored;
  FABRICPP_ASSIGN_OR_RETURN(const Bytes block_bytes, reader.GetBytes());
  {
    ByteReader block_reader(block_bytes);
    FABRICPP_ASSIGN_OR_RETURN(stored.block,
                              proto::Block::Decode(&block_reader));
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_codes, reader.GetVarint());
  stored.validation_codes.reserve(num_codes);
  for (uint64_t i = 0; i < num_codes; ++i) {
    FABRICPP_ASSIGN_OR_RETURN(const uint8_t code, reader.GetU8());
    stored.validation_codes.push_back(
        static_cast<proto::TxValidationCode>(code));
  }
  return stored;
}

/// Frames `payload` as u32 crc | u32 length | payload and flushes.
Status WriteRecordTo(std::FILE* file, const Bytes& payload) {
  uint8_t header[8];
  const uint32_t crc = storage::Crc32(payload.data(), payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(crc >> (8 * i));
    header[4 + i] = static_cast<uint8_t>(length >> (8 * i));
  }
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file) !=
          payload.size() ||
      std::fflush(file) != 0) {
    return Status::Internal("ledger file write failed");
  }
  return Status::OK();
}

/// Anchor record payload: tag byte, magic, then the stored-block encoding.
Bytes EncodeAnchor(const StoredBlock& stored) {
  Bytes out;
  ByteWriter writer(&out);
  writer.PutU8(kAnchorTag);
  writer.PutU64(kAnchorMagic);
  const Bytes inner = EncodeStored(stored);
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

Result<StoredBlock> DecodeAnchor(const Bytes& payload) {
  ByteReader reader(payload);
  FABRICPP_ASSIGN_OR_RETURN(const uint8_t tag, reader.GetU8());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t magic, reader.GetU64());
  if (tag != kAnchorTag || magic != kAnchorMagic) {
    return Status::DataLoss("malformed ledger anchor record");
  }
  const Bytes inner(payload.begin() + 9, payload.end());
  return DecodeStored(inner);
}

}  // namespace

PersistentLedger::~PersistentLedger() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<PersistentLedger>> PersistentLedger::Open(
    const std::string& path) {
  std::unique_ptr<PersistentLedger> ledger(new PersistentLedger(path));

  // Replay: records are u32 crc | u32 length | payload, like the WAL.
  if (std::FILE* file = std::fopen(path.c_str(), "rb")) {
    while (true) {
      uint8_t header[8];
      if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
        break;
      }
      uint32_t crc = 0, length = 0;
      for (int i = 0; i < 4; ++i) {
        crc |= static_cast<uint32_t>(header[i]) << (8 * i);
        length |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
      }
      if (length > (256u << 20)) break;
      Bytes payload(length);
      if (std::fread(payload.data(), 1, length, file) != length) break;
      if (storage::Crc32(payload.data(), payload.size()) != crc) break;
      if (!payload.empty() && payload[0] == kAnchorTag) {
        // Anchor record — a pruned file's first record. Anywhere else it is
        // corruption.
        if (ledger->blocks_recovered_ != 0) {
          std::fclose(file);
          return Status::Internal("ledger anchor record not at file start");
        }
        auto anchor = DecodeAnchor(payload);
        if (!anchor.ok()) break;
        const Status restart =
            ledger->ledger_.RestartFrom(std::move(anchor).value());
        if (!restart.ok()) {
          std::fclose(file);
          return Status::Internal("ledger anchor rejected: " +
                                  restart.ToString());
        }
        ++ledger->blocks_recovered_;
        continue;
      }
      auto stored = DecodeStored(payload);
      if (!stored.ok()) break;
      const Status append = ledger->ledger_.Append(std::move(stored).value());
      if (!append.ok()) {
        std::fclose(file);
        return Status::Internal("ledger file chain broken: " +
                                append.ToString());
      }
      ++ledger->blocks_recovered_;
    }
    std::fclose(file);
  }
  FABRICPP_RETURN_IF_ERROR(ledger->ledger_.VerifyChain());

  ledger->file_ = std::fopen(path.c_str(), "ab");
  if (ledger->file_ == nullptr) {
    return Status::Internal("cannot open ledger file " + path + ": " +
                            std::strerror(errno));
  }
  return ledger;
}

Status PersistentLedger::AppendToFile(const StoredBlock& stored) {
  return WriteRecordTo(file_, EncodeStored(stored));
}

Status PersistentLedger::PruneBelow(uint64_t first_retained) {
  const uint64_t before = ledger_.first_block();
  ledger_.PruneTo(first_retained);
  if (ledger_.first_block() == before) return Status::OK();

  // Rewrite the block file from the retained suffix: anchor first, then the
  // rest, then swap in atomically.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  Status status = Status::OK();
  for (uint64_t n = ledger_.first_block(); n < ledger_.Height(); ++n) {
    const auto stored = ledger_.GetBlock(n);
    if (!stored.ok()) {
      status = stored.status();
      break;
    }
    status = WriteRecordTo(out, n == ledger_.first_block()
                                    ? EncodeAnchor(**stored)
                                    : EncodeStored(**stored));
    if (!status.ok()) break;
  }
  std::fclose(out);
  if (status.ok() && std::rename(tmp.c_str(), path_.c_str()) != 0) {
    status = Status::Internal("cannot swap pruned ledger file: " +
                              std::string(std::strerror(errno)));
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot reopen ledger file " + path_ + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status PersistentLedger::Append(StoredBlock stored) {
  const StoredBlock copy = stored;  // Ledger::Append consumes it.
  FABRICPP_RETURN_IF_ERROR(ledger_.Append(std::move(stored)));
  return AppendToFile(copy);
}

}  // namespace fabricpp::ledger
