#ifndef FABRICPP_LEDGER_BLOCK_STORE_H_
#define FABRICPP_LEDGER_BLOCK_STORE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "ledger/ledger.h"

namespace fabricpp::ledger {

/// A durable ledger: the in-memory hash-chained Ledger backed by an
/// append-only block file (Fabric's blockfile storage). Each record is a
/// CRC-protected serialized block plus its validation flags; recovery
/// replays intact records and stops cleanly at a torn tail, then verifies
/// the whole chain.
class PersistentLedger {
 public:
  /// Opens `path`, replaying any existing blocks. Fails if the recovered
  /// chain does not verify.
  static Result<std::unique_ptr<PersistentLedger>> Open(
      const std::string& path);

  ~PersistentLedger();
  PersistentLedger(const PersistentLedger&) = delete;
  PersistentLedger& operator=(const PersistentLedger&) = delete;

  /// Validates against the chain, appends in memory, then persists.
  Status Append(StoredBlock stored);

  /// Drops all blocks below `first_retained` (clamped to keep the chain
  /// tip) and rewrites the block file: the first retained block becomes an
  /// anchor record, subsequent blocks follow unchanged, and the rewrite is
  /// atomic (tmp file + rename). Reopening a pruned file restarts the chain
  /// from the anchor. No-op when nothing would be pruned.
  Status PruneBelow(uint64_t first_retained);

  /// The recovered + appended chain.
  const Ledger& ledger() const { return ledger_; }

  uint64_t blocks_recovered() const { return blocks_recovered_; }

 private:
  explicit PersistentLedger(std::string path) : path_(std::move(path)) {}

  Status AppendToFile(const StoredBlock& stored);

  std::string path_;
  std::FILE* file_ = nullptr;
  Ledger ledger_;
  uint64_t blocks_recovered_ = 0;
};

}  // namespace fabricpp::ledger

#endif  // FABRICPP_LEDGER_BLOCK_STORE_H_
