#include "ledger/ledger.h"

#include "common/strings.h"

namespace fabricpp::ledger {

Ledger::Ledger() {
  // Genesis block: number 0, zero previous hash, no transactions.
  StoredBlock genesis;
  genesis.block.header.number = 0;
  genesis.block.header.previous_hash.fill(0);
  genesis.block.SealDataHash();
  blocks_.push_back(std::move(genesis));
}

crypto::Digest Ledger::LastHash() const {
  return blocks_.back().block.header.Hash();
}

Status Ledger::Append(StoredBlock stored) {
  const proto::Block& block = stored.block;
  if (block.header.number != blocks_.size()) {
    return Status::FailedPrecondition(
        StrFormat("block number %llu does not extend chain of height %zu",
                  static_cast<unsigned long long>(block.header.number),
                  blocks_.size()));
  }
  if (block.header.previous_hash != LastHash()) {
    return Status::FailedPrecondition("previous-hash link mismatch");
  }
  if (!block.VerifyDataHash()) {
    return Status::FailedPrecondition("block data hash mismatch");
  }
  if (stored.validation_codes.size() != block.transactions.size()) {
    return Status::InvalidArgument(
        "validation codes do not match transaction count");
  }
  for (uint32_t i = 0; i < block.transactions.size(); ++i) {
    tx_index_[block.transactions[i].tx_id] = {block.header.number, i};
    ++total_txs_;
    if (stored.validation_codes[i] == proto::TxValidationCode::kValid) {
      ++total_valid_txs_;
    }
  }
  blocks_.push_back(std::move(stored));
  return Status::OK();
}

Result<const StoredBlock*> Ledger::GetBlock(uint64_t number) const {
  if (number >= blocks_.size()) {
    return Status::OutOfRange(
        StrFormat("block %llu beyond chain height %zu",
                  static_cast<unsigned long long>(number), blocks_.size()));
  }
  return &blocks_[number];
}

Result<std::pair<uint64_t, uint32_t>> Ledger::FindTransaction(
    const std::string& tx_id) const {
  const auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) {
    return Status::NotFound("transaction not in ledger: " + tx_id);
  }
  return it->second;
}

Result<proto::TxValidationCode> Ledger::GetValidationCode(
    const std::string& tx_id) const {
  FABRICPP_ASSIGN_OR_RETURN(const auto loc, FindTransaction(tx_id));
  return blocks_[loc.first].validation_codes[loc.second];
}

Status Ledger::VerifyChain() const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const proto::Block& block = blocks_[i].block;
    if (block.header.number != i) {
      return Status::Internal(StrFormat("block %zu has wrong number", i));
    }
    if (!block.VerifyDataHash()) {
      return Status::Internal(StrFormat("block %zu data hash mismatch", i));
    }
    if (i > 0) {
      if (block.header.previous_hash != blocks_[i - 1].block.header.Hash()) {
        return Status::Internal(
            StrFormat("block %zu previous-hash link broken", i));
      }
    }
  }
  return Status::OK();
}

}  // namespace fabricpp::ledger
