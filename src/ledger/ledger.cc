#include "ledger/ledger.h"

#include <algorithm>

#include "common/strings.h"

namespace fabricpp::ledger {

Ledger::Ledger() {
  // Genesis block: number 0, zero previous hash, no transactions.
  StoredBlock genesis;
  genesis.block.header.number = 0;
  genesis.block.header.previous_hash.fill(0);
  genesis.block.SealDataHash();
  blocks_.push_back(std::move(genesis));
}

crypto::Digest Ledger::LastHash() const {
  return blocks_.back().block.header.Hash();
}

Status Ledger::Append(StoredBlock stored) {
  const proto::Block& block = stored.block;
  if (block.header.number != Height()) {
    return Status::FailedPrecondition(
        StrFormat("block number %llu does not extend chain of height %llu",
                  static_cast<unsigned long long>(block.header.number),
                  static_cast<unsigned long long>(Height())));
  }
  if (block.header.previous_hash != LastHash()) {
    return Status::FailedPrecondition("previous-hash link mismatch");
  }
  if (!block.VerifyDataHash()) {
    return Status::FailedPrecondition("block data hash mismatch");
  }
  if (stored.validation_codes.size() != block.transactions.size()) {
    return Status::InvalidArgument(
        "validation codes do not match transaction count");
  }
  for (uint32_t i = 0; i < block.transactions.size(); ++i) {
    tx_index_[block.transactions[i].tx_id] = {block.header.number, i};
    ++total_txs_;
    if (stored.validation_codes[i] == proto::TxValidationCode::kValid) {
      ++total_valid_txs_;
    }
  }
  blocks_.push_back(std::move(stored));
  return Status::OK();
}

Result<const StoredBlock*> Ledger::GetBlock(uint64_t number) const {
  if (number < first_block_) {
    return Status::OutOfRange(
        StrFormat("block %llu pruned (first retained block is %llu)",
                  static_cast<unsigned long long>(number),
                  static_cast<unsigned long long>(first_block_)));
  }
  if (number >= Height()) {
    return Status::OutOfRange(
        StrFormat("block %llu beyond chain height %llu",
                  static_cast<unsigned long long>(number),
                  static_cast<unsigned long long>(Height())));
  }
  return &blocks_[number - first_block_];
}

Result<std::pair<uint64_t, uint32_t>> Ledger::FindTransaction(
    const std::string& tx_id) const {
  const auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) {
    return Status::NotFound("transaction not in ledger: " + tx_id);
  }
  return it->second;
}

Result<proto::TxValidationCode> Ledger::GetValidationCode(
    const std::string& tx_id) const {
  FABRICPP_ASSIGN_OR_RETURN(const auto loc, FindTransaction(tx_id));
  return blocks_[loc.first - first_block_].validation_codes[loc.second];
}

Status Ledger::VerifyChain() const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const proto::Block& block = blocks_[i].block;
    const uint64_t number = first_block_ + i;
    if (block.header.number != number) {
      return Status::Internal(
          StrFormat("block %llu has wrong number",
                    static_cast<unsigned long long>(number)));
    }
    if (!block.VerifyDataHash()) {
      return Status::Internal(
          StrFormat("block %llu data hash mismatch",
                    static_cast<unsigned long long>(number)));
    }
    // The first retained block is the anchor: its predecessor is pruned (or
    // it is genesis), so there is no link to check — it was verified before
    // the prune.
    if (i > 0) {
      if (block.header.previous_hash != blocks_[i - 1].block.header.Hash()) {
        return Status::Internal(
            StrFormat("block %llu previous-hash link broken",
                      static_cast<unsigned long long>(number)));
      }
    }
  }
  return Status::OK();
}

void Ledger::PruneTo(uint64_t first_retained) {
  if (first_retained <= first_block_) return;
  // Keep at least the chain tip so LastHash()/Append keep working.
  first_retained = std::min<uint64_t>(first_retained, Height() - 1);
  const size_t drop = static_cast<size_t>(first_retained - first_block_);
  for (size_t i = 0; i < drop; ++i) {
    for (const proto::Transaction& tx : blocks_[i].block.transactions) {
      tx_index_.erase(tx.tx_id);
    }
  }
  blocks_.erase(blocks_.begin(), blocks_.begin() + static_cast<ptrdiff_t>(drop));
  first_block_ = first_retained;
}

Status Ledger::RestartFrom(StoredBlock anchor) {
  if (!anchor.block.VerifyDataHash()) {
    return Status::FailedPrecondition("anchor block data hash mismatch");
  }
  if (anchor.validation_codes.size() != anchor.block.transactions.size()) {
    return Status::InvalidArgument(
        "anchor validation codes do not match transaction count");
  }
  blocks_.clear();
  tx_index_.clear();
  total_txs_ = 0;
  total_valid_txs_ = 0;
  first_block_ = anchor.block.header.number;
  for (uint32_t i = 0; i < anchor.block.transactions.size(); ++i) {
    tx_index_[anchor.block.transactions[i].tx_id] = {first_block_, i};
    ++total_txs_;
    if (anchor.validation_codes[i] == proto::TxValidationCode::kValid) {
      ++total_valid_txs_;
    }
  }
  blocks_.push_back(std::move(anchor));
  return Status::OK();
}

}  // namespace fabricpp::ledger
