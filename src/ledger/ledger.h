#ifndef FABRICPP_LEDGER_LEDGER_H_
#define FABRICPP_LEDGER_LEDGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "proto/block.h"
#include "proto/transaction.h"

namespace fabricpp::ledger {

/// A block as stored by a peer: the distributed block plus the validation
/// flags this peer computed. Fabric appends *both valid and invalid*
/// transactions to the ledger (paper §2.2.4); the flags record which are
/// which.
struct StoredBlock {
  proto::Block block;
  std::vector<proto::TxValidationCode> validation_codes;
};

/// Append-only hash-chained block store — one per (peer, channel).
///
/// Every appended block must reference the hash of its predecessor;
/// VerifyChain() re-hashes the whole chain and is used by integrity tests
/// and the examples to demonstrate tamper evidence.
///
/// Blocks below a state-checkpoint horizon can be pruned (PruneTo): block
/// bodies are dropped, the first retained block becomes the chain anchor
/// (its stored previous-hash is trusted — it was verified before pruning),
/// and Height() keeps counting absolute block numbers.
class Ledger {
 public:
  Ledger();

  /// Appends a validated block. Fails with FailedPrecondition if the block
  /// number or previous-hash link is wrong, or if the data hash does not
  /// match the transactions.
  Status Append(StoredBlock stored);

  /// Number of blocks including the genesis block and any pruned prefix —
  /// i.e. the next block number to append.
  uint64_t Height() const { return first_block_ + blocks_.size(); }

  /// Number of the oldest block still stored (0 until pruned).
  uint64_t first_block() const { return first_block_; }
  size_t NumStoredBlocks() const { return blocks_.size(); }

  /// Drops all blocks below `first_retained` (clamped to keep at least the
  /// chain tip). Pruned transactions leave the index; lifetime totals are
  /// unchanged. No-op when `first_retained` is at or below first_block().
  void PruneTo(uint64_t first_retained);

  /// Resets the ledger to start at `anchor` (a previously verified block of
  /// number >= 0) — how a pruned persistent ledger file is reopened. The
  /// anchor's previous-hash cannot be checked (its predecessor is gone) and
  /// is trusted; its data hash is still verified by VerifyChain.
  Status RestartFrom(StoredBlock anchor);

  /// Hash of the last block (what the next header must link to).
  crypto::Digest LastHash() const;

  /// Block by number; OutOfRange if beyond the chain tip.
  Result<const StoredBlock*> GetBlock(uint64_t number) const;

  /// Looks a transaction up by id; returns (block number, tx index).
  Result<std::pair<uint64_t, uint32_t>> FindTransaction(
      const std::string& tx_id) const;

  /// The validation code recorded for a transaction.
  Result<proto::TxValidationCode> GetValidationCode(
      const std::string& tx_id) const;

  /// Re-hashes every block and checks all links and data hashes.
  Status VerifyChain() const;

  /// Totals across all stored blocks.
  uint64_t TotalTransactions() const { return total_txs_; }
  uint64_t TotalValidTransactions() const { return total_valid_txs_; }

 private:
  /// blocks_[i] holds block number first_block_ + i; blocks_[0] is the
  /// genesis block until the chain is pruned.
  std::vector<StoredBlock> blocks_;
  uint64_t first_block_ = 0;
  std::unordered_map<std::string, std::pair<uint64_t, uint32_t>> tx_index_;
  uint64_t total_txs_ = 0;
  uint64_t total_valid_txs_ = 0;
};

}  // namespace fabricpp::ledger

#endif  // FABRICPP_LEDGER_LEDGER_H_
