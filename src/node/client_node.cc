#include "node/client_node.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "node/mesh.h"
#include "node/orderer_node.h"
#include "node/peer_node.h"
#include "node/wire.h"

namespace fabricpp::node {

ClientNode::ClientNode(const NodeContext& ctx, uint32_t index,
                       uint32_t channel, std::string name, uint64_t rng_seed,
                       runtime::Endpoint* home, runtime::Executor* cpu)
    : ctx_(ctx),
      index_(index),
      channel_(channel),
      name_(std::move(name)),
      home_(home),
      cpu_(cpu),
      rng_(rng_seed) {}

void ClientNode::StartFiring(runtime::TimeMicros deadline) {
  fire_deadline_ = deadline;
  const double interval_us =
      1e6 / (config().client_fire_rate_tps * fire_rate_multiplier_);
  // Stagger clients across one interval so firing is uniform in aggregate.
  next_fire_us_ = interval_us * static_cast<double>(index_) /
                  static_cast<double>(ctx_.directory->num_clients());
  clock().ScheduleAt(static_cast<runtime::TimeMicros>(next_fire_us_),
                     [this]() { FireFromWorkload(); });
}

void ClientNode::FireFromWorkload() {
  if (clock().Now() >= fire_deadline_) return;
  const uint32_t max_inflight = config().client_max_inflight;
  if (max_inflight == 0 || inflight_.size() < max_inflight) {
    FireProposal(ctx_.workload->NextArgsFor(channel_, rng_));
  }
  const double interval_us =
      1e6 / (config().client_fire_rate_tps * fire_rate_multiplier_);
  next_fire_us_ += interval_us;
  clock().ScheduleAt(static_cast<runtime::TimeMicros>(next_fire_us_),
                     [this]() { FireFromWorkload(); });
}

void ClientNode::FireProposal(std::vector<std::string> args) {
  FireWithRetries(std::move(args), 0);
}

void ClientNode::FireWithRetries(std::vector<std::string> args,
                                 uint32_t retries_used) {
  proto::Proposal proposal;
  proposal.proposal_id = next_proposal_id_++;
  proposal.client = name_;
  proposal.channel = StrFormat("ch%u", channel_);
  proposal.chaincode = ctx_.workload->chaincode();
  proposal.args = args;
  proposal.nonce = rng_.Next();
  inflight_[proposal.proposal_id] =
      InflightProposal{std::move(args), retries_used};
  metrics().NoteFired(fabric::ProposalKey(name_, proposal.proposal_id),
                      clock().Now());
  Submit(std::move(proposal));
}

runtime::TimeMicros SaturatingBackoff(runtime::TimeMicros base,
                                      runtime::TimeMicros max,
                                      uint32_t retries_used) {
  runtime::TimeMicros delay = std::min(base, max);
  for (uint32_t i = 0; i < retries_used && delay < max; ++i) {
    // `delay < max` (loop guard) keeps the subtraction safe; the comparison
    // is `2 * delay >= max` written without the doubling, so the doubling
    // itself can never overflow — the old `delay *= 2` before the clamp
    // wrapped around for bases near the top of the TimeMicros range,
    // turning a huge configured backoff into a near-zero one.
    if (delay >= max - delay) {
      delay = max;
      break;
    }
    delay *= 2;
  }
  return delay;
}

runtime::TimeMicros ClientNode::BackoffDelay(uint32_t retries_used) {
  const fabric::FabricConfig& cfg = config();
  runtime::TimeMicros delay =
      SaturatingBackoff(cfg.client_retry_backoff_base,
                        cfg.client_retry_backoff_max, retries_used);
  if (cfg.client_retry_jitter > 0.0) {
    // Uniform multiplier in [1 - j, 1 + j]: desynchronizes clients whose
    // proposals aborted off the same event (block commit, fault window).
    const double factor = 1.0 - cfg.client_retry_jitter +
                          2.0 * cfg.client_retry_jitter * rng_.NextDouble();
    delay = static_cast<runtime::TimeMicros>(
        static_cast<double>(delay) * factor);
  }
  return std::max<runtime::TimeMicros>(delay, 1);
}

void ClientNode::MaybeResubmit(uint64_t proposal_id,
                               runtime::TimeMicros min_delay) {
  const auto it = inflight_.find(proposal_id);
  if (it == inflight_.end()) return;
  InflightProposal inflight = std::move(it->second);
  inflight_.erase(it);
  const fabric::FabricConfig& cfg = config();
  if (!cfg.client_resubmit) return;
  if (inflight.retries_used >= cfg.client_max_retries) return;
  // fire_deadline_ == 0 means manual driving (no firing window).
  if (fire_deadline_ != 0 && clock().Now() >= fire_deadline_) return;
  // Resubmit the same logical work as a fresh proposal after a backoff:
  // new simulation, new read versions (paper §4.1 / §5.2.1). Instant
  // refiring would hammer a still-faulty pipeline with retry storms. A
  // BUSY's retry-after hint floors the delay: the server knows better than
  // the client's first-retry backoff how long its queues need to drain.
  const uint32_t next_retries = inflight.retries_used + 1;
  clock().Schedule(
      std::max(BackoffDelay(inflight.retries_used), min_delay),
      [this, args = std::move(inflight.args), next_retries]() mutable {
        if (fire_deadline_ != 0 && clock().Now() >= fire_deadline_) return;
        FireWithRetries(std::move(args), next_retries);
      });
}

void ClientNode::HandleBusy(const BusyResponse& busy) {
  // The refusal may come from one endorser while others still reply, or
  // from the orderer after assembly: drop any endorsement collection state
  // and resolve the proposal as BUSY exactly once — ResolveFired consumes
  // the fired entry, so a second refusal (or a racing timeout) is a no-op
  // and can never double-resubmit.
  pending_.erase(busy.proposal_id);
  if (metrics().ResolveFired(fabric::ProposalKey(name_, busy.proposal_id),
                             fabric::TxOutcome::kAbortBusy, clock().Now())) {
    MaybeResubmit(busy.proposal_id, busy.retry_after_us);
  }
}

void ClientNode::ArmEndorsementTimeout(uint64_t proposal_id) {
  clock().Schedule(
      config().client_endorsement_timeout, [this, proposal_id]() {
        const auto it = pending_.find(proposal_id);
        if (it == pending_.end()) return;  // Completed or aborted already.
        pending_.erase(it);
        if (metrics().ResolveFired(
                fabric::ProposalKey(name_, proposal_id),
                fabric::TxOutcome::kAbortEndorsementTimeout, clock().Now())) {
          MaybeResubmit(proposal_id);
        }
      });
}

void ClientNode::ArmCommitTimeout(uint64_t proposal_id) {
  clock().Schedule(
      config().client_commit_timeout, [this, proposal_id]() {
        if (inflight_.find(proposal_id) == inflight_.end()) return;
        // ResolveFired fails when the transaction already resolved (its
        // commit event is merely in flight) — then do NOT resubmit, or
        // committed work would be applied twice.
        if (metrics().ResolveFired(
                fabric::ProposalKey(name_, proposal_id),
                fabric::TxOutcome::kAbortCommitTimeout, clock().Now())) {
          MaybeResubmit(proposal_id);
        }
      });
}

void ClientNode::HandleOutcome(uint64_t proposal_id, bool success) {
  if (success) {
    inflight_.erase(proposal_id);
    return;
  }
  MaybeResubmit(proposal_id);
}

void ClientNode::Submit(proto::Proposal proposal) {
  // Client CPU: sign the proposal, then ship it to one endorser per org.
  const fabric::CostModel& cost = config().cost;
  cpu_->Submit(
      cost.sign, [this, proposal = std::move(proposal)]() mutable {
        const uint64_t size = proposal.ByteSize() + kMessageOverhead;
        std::vector<uint32_t> endorsers =
            ctx_.directory->EndorsersFor(proposal.proposal_id + index_);
        PendingProposal pending;
        pending.proposal = proposal;
        pending.expected = static_cast<uint32_t>(endorsers.size());
        pending_.emplace(proposal.proposal_id, std::move(pending));
        for (uint32_t peer_index : endorsers) {
          ctx_.mesh->SendProposal(*home_, peer_index, channel_, proposal,
                                  index_, size);
        }
        ArmEndorsementTimeout(proposal.proposal_id);
      });
}

void ClientNode::HandleEndorsement(
    uint64_t proposal_id, Result<peer::EndorsementResponse> response) {
  const auto it = pending_.find(proposal_id);
  if (it == pending_.end()) return;
  PendingProposal& pending = it->second;

  if (!response.ok()) {
    // A failed simulation aborts the proposal immediately — the client does
    // not wait for the remaining endorsers (paper §5.2.1: "we directly
    // notify the corresponding client about the abort"). Late replies find
    // no pending entry and are dropped.
    const fabric::TxOutcome outcome =
        response.status().code() == StatusCode::kStaleRead
            ? fabric::TxOutcome::kAbortStaleSimulation
            : fabric::TxOutcome::kAbortChaincodeError;
    pending_.erase(it);
    metrics().Resolve(fabric::ProposalKey(name_, proposal_id), outcome,
                      clock().Now());
    MaybeResubmit(proposal_id);
    return;
  }

  // A duplicated reply from the same endorser must not count twice — the
  // transaction would then carry two copies of one org's endorsement and
  // miss another org's, failing the policy at validation.
  for (const peer::EndorsementResponse& r : pending.responses) {
    if (r.endorsement.peer == response->endorsement.peer) return;
  }
  pending.responses.push_back(std::move(response).value());
  if (pending.responses.size() < pending.expected) return;

  PendingProposal done = std::move(pending);
  pending_.erase(it);

  // All read/write sets must match (paper §2.2.1); otherwise the proposal
  // cannot become a transaction.
  for (size_t i = 1; i < done.responses.size(); ++i) {
    if (!(done.responses[i].rwset == done.responses[0].rwset)) {
      metrics().Resolve(fabric::ProposalKey(name_, proposal_id),
                        fabric::TxOutcome::kAbortRwsetMismatch,
                        clock().Now());
      MaybeResubmit(proposal_id);
      return;
    }
  }
  Assemble(std::move(done));
}

void ClientNode::Assemble(PendingProposal pending) {
  const fabric::CostModel& cost = config().cost;
  cpu_->Submit(
      cost.client_assemble + cost.sign,
      [this, pending = std::move(pending)]() mutable {
        proto::Transaction tx;
        tx.proposal_id = pending.proposal.proposal_id;
        tx.client = name_;
        tx.channel = pending.proposal.channel;
        tx.chaincode = pending.proposal.chaincode;
        tx.policy_id = ctx_.directory->default_policy_id();
        tx.rwset = pending.responses[0].rwset;
        for (const peer::EndorsementResponse& r : pending.responses) {
          tx.endorsements.push_back(r.endorsement);
        }
        tx.ComputeTxId(pending.proposal);
        const uint64_t proposal_id = tx.proposal_id;
        const uint64_t size = tx.ByteSize() + kMessageOverhead;
        ctx_.mesh->SendTransaction(*home_, channel_, std::move(tx), size);
        ArmCommitTimeout(proposal_id);
      });
}

}  // namespace fabricpp::node
