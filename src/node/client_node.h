#ifndef FABRICPP_NODE_CLIENT_NODE_H_
#define FABRICPP_NODE_CLIENT_NODE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "node/node_context.h"
#include "node/wire.h"
#include "peer/endorser.h"
#include "proto/transaction.h"
#include "runtime/runtime.h"

namespace fabricpp::node {

/// Saturating exponential backoff: base doubled `retries_used` times,
/// clamped to `max` — with the doubling itself saturating, so a base (or
/// max) near the top of the TimeMicros range cannot overflow to a tiny
/// delay mid-loop. Pure; the client applies jitter on top.
runtime::TimeMicros SaturatingBackoff(runtime::TimeMicros base,
                                      runtime::TimeMicros max,
                                      uint32_t retries_used);

/// One client: fires proposals at the configured rate, collects
/// endorsements, assembles transactions, submits them for ordering.
/// Clients do not get their own endpoint — they live on a shared client
/// machine (paper §6.1: one server fires all proposals), whose endpoint and
/// CPU are injected as `home`/`cpu`. All of a client's callbacks run on its
/// home context.
class ClientNode {
 public:
  ClientNode(const NodeContext& ctx, uint32_t index, uint32_t channel,
             std::string name, uint64_t rng_seed, runtime::Endpoint* home,
             runtime::Executor* cpu);

  const std::string& name() const { return name_; }
  uint32_t channel() const { return channel_; }

  /// The client machine endpoint this client lives on; replies and
  /// notifications addressed to this client are sent here.
  runtime::Endpoint& home() { return *home_; }

  /// Arms periodic firing until `deadline`.
  void StartFiring(runtime::TimeMicros deadline);

  /// Fires a single proposal with explicit args (examples/tests).
  void FireProposal(std::vector<std::string> args);

  /// Endorsement reply delivery.
  void HandleEndorsement(uint64_t proposal_id,
                         Result<peer::EndorsementResponse> response);

  /// Final outcome notification (from the orderer's early aborts or the
  /// observer peer's commit events). An aborted proposal is resubmitted
  /// with the same arguments while the firing window is open and retries
  /// remain — the paper's client resubmission loop.
  void HandleOutcome(uint64_t proposal_id, bool success);

  /// An endorser or the orderer refused the proposal for overload. The
  /// proposal resolves as kAbortBusy (at most once, even when several
  /// endorsers refuse it) and is resubmitted no earlier than the server's
  /// retry-after hint — end-to-end backpressure honoring the server's
  /// suggestion on top of the client's own exponential backoff.
  void HandleBusy(const BusyResponse& busy);

  /// Scales this client's firing rate relative to client_fire_rate_tps.
  /// Set before StartFiring; lets tests/benches model one misbehaving
  /// spammer among polite clients without per-client config plumbing.
  void set_fire_rate_multiplier(double multiplier) {
    fire_rate_multiplier_ = multiplier;
  }

 private:
  struct PendingProposal {
    proto::Proposal proposal;
    uint32_t expected = 0;
    std::vector<peer::EndorsementResponse> responses;
  };

  /// Retry bookkeeping for every in-flight proposal.
  struct InflightProposal {
    std::vector<std::string> args;
    uint32_t retries_used = 0;
  };

  void FireFromWorkload();
  void FireWithRetries(std::vector<std::string> args, uint32_t retries_used);
  void Submit(proto::Proposal proposal);
  void Assemble(PendingProposal pending);
  /// Resubmits an aborted proposal after an exponential-backoff delay with
  /// jitter, while the retry budget and firing window allow it. The delay
  /// never undercuts `min_delay` (a server's BUSY retry-after hint).
  void MaybeResubmit(uint64_t proposal_id, runtime::TimeMicros min_delay = 0);
  runtime::TimeMicros BackoffDelay(uint32_t retries_used);
  /// Aborts the proposal if its endorsements have not all arrived when the
  /// endorsement timeout expires (covers lost proposals/replies).
  void ArmEndorsementTimeout(uint64_t proposal_id);
  /// Abandons the transaction if no outcome arrived within the commit
  /// timeout of its submission to ordering.
  void ArmCommitTimeout(uint64_t proposal_id);

  const fabric::FabricConfig& config() const { return *ctx_.config; }
  fabric::Metrics& metrics() { return *ctx_.metrics; }
  runtime::Clock& clock() { return home_->clock(); }
  runtime::Transport& transport() { return ctx_.runtime->transport(); }

  NodeContext ctx_;
  uint32_t index_;
  uint32_t channel_;
  std::string name_;
  runtime::Endpoint* home_;
  runtime::Executor* cpu_;
  Rng rng_;
  uint64_t next_proposal_id_ = 1;
  double fire_rate_multiplier_ = 1.0;
  double next_fire_us_ = 0;
  runtime::TimeMicros fire_deadline_ = 0;
  std::unordered_map<uint64_t, PendingProposal> pending_;
  std::unordered_map<uint64_t, InflightProposal> inflight_;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_CLIENT_NODE_H_
