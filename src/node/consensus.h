#ifndef FABRICPP_NODE_CONSENSUS_H_
#define FABRICPP_NODE_CONSENSUS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "proto/block.h"

namespace fabricpp::node {

/// How the ordering service reaches agreement on the block sequence.
///
/// The orderer hands every sealed block to Submit, in chain order; the
/// service invokes the deliver callback exactly once per block when
/// consensus commits it — possibly immediately (solo), possibly much later
/// and from a consensus-internal event (Raft), but always on the orderer's
/// execution context, and never out of chain order for a channel.
class ConsensusService {
 public:
  using DeliverFn = std::function<void(
      uint32_t channel, std::shared_ptr<proto::Block> block,
      uint64_t block_bytes)>;

  virtual ~ConsensusService() = default;

  /// Must be set (by the composition root) before the first Submit.
  void SetDeliverCallback(DeliverFn deliver) { deliver_ = std::move(deliver); }

  virtual void Submit(uint32_t channel, std::shared_ptr<proto::Block> block,
                      uint64_t block_bytes) = 0;

 protected:
  DeliverFn deliver_;
};

/// The single-trusted-orderer backend (Fabric's "solo" profile — what the
/// paper's cluster ran): a block is committed the moment it is submitted,
/// synchronously, so solo timing is exactly the pre-consensus-split
/// behavior.
class SoloConsensus final : public ConsensusService {
 public:
  void Submit(uint32_t channel, std::shared_ptr<proto::Block> block,
              uint64_t block_bytes) override {
    deliver_(channel, std::move(block), block_bytes);
  }
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_CONSENSUS_H_
