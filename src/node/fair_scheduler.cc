#include "node/fair_scheduler.h"

#include <algorithm>
#include <utility>

namespace fabricpp::node {

namespace {
/// Sealed batches the hot-key window spans.
constexpr size_t kHotKeyWindow = 4;
/// Writes within the window that make a key hot.
constexpr uint32_t kHotThreshold = 8;
/// Cap on the conflict surcharge, so one pathological transaction cannot
/// starve its own client behind an astronomically priced head-of-line.
constexpr uint64_t kMaxSurcharge = 63;
}  // namespace

bool FairScheduler::Offer(proto::Transaction& tx) {
  const uint32_t depth = options_.per_client_depth;
  if (options_.quantum == 0) {
    uint32_t& count = fifo_counts_[tx.client];
    if (count >= depth) return false;
    ++count;
    fifo_.push_back(std::move(tx));
    ++total_;
    return true;
  }
  ClientQueue& q = queues_[tx.client];
  if (q.txs.size() >= depth) return false;
  q.txs.push_back(std::move(tx));
  ++total_;
  return true;
}

std::optional<proto::Transaction> FairScheduler::PollNext() {
  if (total_ == 0) return std::nullopt;
  if (options_.quantum == 0) {
    proto::Transaction tx = std::move(fifo_.front());
    fifo_.pop_front();
    --total_;
    --fifo_counts_[tx.client];
    return tx;
  }
  // DRR: visit clients in lexicographic round-robin order from the cursor.
  // Each visit grants the client `quantum` deficit units exactly once (the
  // `granted` flag spans the successive PollNext calls that make up one
  // visit); the client then serves transactions while its deficit covers
  // their cost and the round moves on when it runs short. Deficits only
  // grow while a queue is nonempty, so with total_ > 0 some head becomes
  // affordable and the loop terminates.
  while (true) {
    auto it = queues_.lower_bound(cursor_);
    if (it == queues_.end()) it = queues_.begin();
    ClientQueue& q = it->second;
    const auto advance = [this, it, &q]() {
      q.granted = false;  // The next visit gets a fresh grant.
      const auto next = std::next(it);
      cursor_ = next == queues_.end() ? std::string() : next->first;
    };
    if (q.txs.empty()) {
      q.deficit = 0;  // Idleness banks no credit.
      advance();
      continue;
    }
    if (!q.granted) {
      q.deficit += options_.quantum;
      q.granted = true;
    }
    const uint64_t cost = CostOf(q.txs.front());
    if (q.deficit < cost) {
      advance();  // Out of budget: save the deficit for the next round.
      continue;
    }
    q.deficit -= cost;
    proto::Transaction tx = std::move(q.txs.front());
    q.txs.pop_front();
    --total_;
    if (q.txs.empty()) {
      q.deficit = 0;
      advance();
    }
    return tx;
  }
}

uint64_t FairScheduler::CostOf(const proto::Transaction& tx) const {
  if (options_.conflict_penalty == 0) return 1;
  uint64_t hot_touches = 0;
  for (const proto::WriteItem& w : tx.rwset.writes) {
    if (IsHot(w.key)) ++hot_touches;
  }
  const uint64_t surcharge =
      std::min(static_cast<uint64_t>(options_.conflict_penalty) * hot_touches,
               kMaxSurcharge);
  return 1 + surcharge;
}

bool FairScheduler::IsHot(const std::string& key) const {
  const auto it = hot_counts_.find(key);
  return it != hot_counts_.end() && it->second >= kHotThreshold;
}

void FairScheduler::NoteSealedBatch(
    const std::vector<std::string>& write_keys) {
  for (const std::string& key : write_keys) ++hot_counts_[key];
  hot_window_.push_back(write_keys);
  if (hot_window_.size() <= kHotKeyWindow) return;
  for (const std::string& key : hot_window_.front()) {
    const auto it = hot_counts_.find(key);
    if (it != hot_counts_.end() && --it->second == 0) hot_counts_.erase(it);
  }
  hot_window_.pop_front();
}

}  // namespace fabricpp::node
