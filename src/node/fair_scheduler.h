#ifndef FABRICPP_NODE_FAIR_SCHEDULER_H_
#define FABRICPP_NODE_FAIR_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/transaction.h"

namespace fabricpp::node {

/// Bounded per-client admission queues in front of the orderer, drained by
/// deficit round robin so one spamming client cannot starve the others.
///
/// Two modes, both bounding every client to `per_client_depth` queued
/// transactions (Offer refuses beyond that — the caller replies BUSY):
///   - `quantum == 0`: a single global FIFO. Bounded, but a spammer still
///     owns the queue in proportion to its rate.
///   - `quantum > 0`: classic DRR over per-client queues. Each round-robin
///     visit grants the client `quantum` deficit units; serving a
///     transaction costs at least 1 unit, so relative goodput across
///     backlogged clients converges to the cost-weighted fair share.
///
/// The optional conflict-aware surcharge (`conflict_penalty`, after arXiv
/// 2407.19732) makes transactions writing currently-hot keys cost extra
/// deficit: a tenant hammering one key pays more per transaction and is
/// throttled harder than one spreading load. Hot keys are tracked over a
/// sliding window of recently sealed batches.
///
/// Determinism: all state lives on the orderer's endpoint context and every
/// decision depends only on arrival order and `std::map` (lexicographic)
/// client iteration — never on worker-pool sizes or wall clock — so
/// simulation fingerprints stay byte-identical across worker counts.
class FairScheduler {
 public:
  struct Options {
    /// Queued transactions allowed per client; Offer refuses beyond it.
    uint32_t per_client_depth = 0;
    /// DRR deficit units granted per round-robin visit; 0 = global FIFO.
    uint32_t quantum = 0;
    /// Extra deficit units per hot key a transaction writes; 0 = off.
    uint32_t conflict_penalty = 0;
  };

  explicit FairScheduler(const Options& options) : options_(options) {}

  /// Queues `tx` behind its client's earlier transactions. Returns false —
  /// leaving `tx` untouched — when the client is at its depth bound; the
  /// caller must reply BUSY (never silently drop).
  bool Offer(proto::Transaction& tx);

  /// The next transaction to admit into ordering, or nullopt when empty.
  std::optional<proto::Transaction> PollNext();

  /// Feeds the hot-key tracker the write keys of a just-sealed block.
  void NoteSealedBatch(const std::vector<std::string>& write_keys);

  /// Total queued transactions across all clients.
  size_t pending() const { return total_; }

  /// Whether `key` is currently hot (written often in the sliding window).
  bool IsHot(const std::string& key) const;

 private:
  struct ClientQueue {
    std::deque<proto::Transaction> txs;
    uint64_t deficit = 0;
    /// Quantum was already granted on the current round-robin visit —
    /// successive PollNext calls landing on the same cursor are one visit,
    /// so the grant happens once per visit, not once per poll.
    bool granted = false;
  };

  /// Deficit units serving `tx` costs: 1 + conflict surcharge (capped).
  uint64_t CostOf(const proto::Transaction& tx) const;

  Options options_;
  size_t total_ = 0;

  // FIFO mode (quantum == 0): one global queue, per-client counts for the
  // depth bound only.
  std::deque<proto::Transaction> fifo_;
  std::unordered_map<std::string, uint32_t> fifo_counts_;

  // DRR mode. std::map: client visit order is lexicographic and iterators
  // stay valid as clients appear — entries are never erased, an idle
  // client's empty queue just gets skipped (and its deficit cleared, so
  // idleness banks no credit).
  std::map<std::string, ClientQueue> queues_;
  /// The client whose turn the next PollNext visit starts at ("" = begin).
  std::string cursor_;

  // Hot-key tracker: write keys of the last kHotKeyWindow sealed batches,
  // with a count per key for O(1) lookup.
  std::deque<std::vector<std::string>> hot_window_;
  std::unordered_map<std::string, uint32_t> hot_counts_;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_FAIR_SCHEDULER_H_
