#ifndef FABRICPP_NODE_LANES_H_
#define FABRICPP_NODE_LANES_H_

#include <algorithm>
#include <cstdint>

#include "fabric/config.h"
#include "runtime/runtime.h"

namespace fabricpp::node {

/// Number of per-channel pipeline lanes a node should run (DESIGN.md §16).
///
/// Lanes exist to scale multi-channel workloads across cores under the
/// thread runtime: each lane is its own endpoint thread (plus executor),
/// and channels are assigned round-robin, so independent channels stop
/// serializing on one node mailbox. Under the simulation runtime there is
/// exactly one lane regardless — the sim is single-threaded and its event
/// order (and with it every fingerprint) must not depend on the knob.
inline uint32_t ChannelLaneCount(const fabric::FabricConfig& config,
                                 runtime::RuntimeMode mode) {
  if (mode != runtime::RuntimeMode::kThread) return 1;
  if (config.num_channels <= 1) return 1;
  uint32_t lanes = config.channel_lanes;
  if (lanes == 0) lanes = std::min<uint32_t>(config.num_channels, 8);
  return std::min(lanes, config.num_channels);
}

/// The lane a channel's pipeline runs on.
inline uint32_t LaneForChannel(uint32_t channel, size_t num_lanes) {
  return channel % static_cast<uint32_t>(num_lanes);
}

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_LANES_H_
