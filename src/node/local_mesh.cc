#include "node/local_mesh.h"

#include <utility>

#include "node/client_node.h"
#include "node/orderer_node.h"
#include "node/peer_node.h"
#include "node/wire.h"
#include "proto/wire_format.h"

namespace fabricpp::node {

LocalMesh::LocalMesh(const fabric::FabricConfig* config,
                     fabric::Metrics* metrics, NodeDirectory* directory,
                     runtime::Runtime* runtime, bool measure_wire_bytes)
    : config_(config),
      metrics_(metrics),
      directory_(directory),
      runtime_(runtime),
      measure_wire_bytes_(measure_wire_bytes) {}

void LocalMesh::Measure(uint8_t type, size_t payload_size, uint64_t modeled) {
  metrics_->NoteWireMessage(type, proto::FramedSize(payload_size), modeled);
}

void LocalMesh::SendProposal(runtime::Endpoint& from, uint32_t peer_index,
                             uint32_t channel, const proto::Proposal& proposal,
                             uint32_t client_index, uint64_t size_bytes) {
  PeerNode* peer = &directory_->peer(peer_index);
  transport().Send(
      from, peer->endpoint_for(channel), size_bytes,
      [peer, channel, proposal, index = client_index]() mutable {
        peer->HandleProposal(channel, std::move(proposal), index);
      });
  if (measure_wire_bytes_) {
    const proto::ProposalMsg msg{channel, client_index, proposal};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kProposal),
            msg.Encode().size(), size_bytes);
  }
}

void LocalMesh::SendTransaction(runtime::Endpoint& from, uint32_t channel,
                                proto::Transaction tx, uint64_t size_bytes) {
  OrdererNode* orderer = &directory_->orderer();
  if (measure_wire_bytes_) {
    const proto::TransactionMsg msg{channel, tx};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kTransaction),
            msg.Encode().size(), size_bytes);
  }
  transport().Send(from, orderer->endpoint_for(channel), size_bytes,
                   [orderer, channel, tx = std::move(tx)]() mutable {
                     orderer->HandleTransaction(channel, std::move(tx));
                   });
}

void LocalMesh::SendEndorsementReply(
    runtime::Endpoint& from, uint32_t client_index, uint64_t proposal_id,
    Result<peer::EndorsementResponse> response, uint64_t size_bytes) {
  ClientNode* client = &directory_->client(client_index);
  if (measure_wire_bytes_) {
    proto::EndorsementReplyMsg msg;
    msg.client_index = client_index;
    msg.proposal_id = proposal_id;
    msg.ok = response.ok();
    if (response.ok()) {
      msg.rwset = response->rwset;
      msg.endorsement = response->endorsement;
    } else {
      msg.status_code = static_cast<uint8_t>(response.status().code());
      msg.status_message = response.status().message();
    }
    Measure(static_cast<uint8_t>(proto::WireMessageType::kEndorsementReply),
            msg.Encode().size(), size_bytes);
  }
  transport().Send(
      from, client->home(), size_bytes,
      [client, proposal_id, response = std::move(response)]() mutable {
        client->HandleEndorsement(proposal_id, std::move(response));
      });
}

void LocalMesh::SendBusy(runtime::Endpoint& from, uint32_t client_index,
                         const BusyResponse& busy) {
  ClientNode* client = &directory_->client(client_index);
  transport().Send(from, client->home(), kMessageOverhead,
                   [client, busy]() { client->HandleBusy(busy); });
  if (measure_wire_bytes_) {
    const proto::BusyMsg msg{client_index, busy.proposal_id,
                             busy.retry_after_us};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kBusy),
            msg.Encode().size(), kMessageOverhead);
  }
}

void LocalMesh::SendBusyByName(runtime::Endpoint& from,
                               const std::string& client_name,
                               const BusyResponse& busy) {
  ClientNode* client = directory_->FindClient(client_name);
  if (client == nullptr) return;
  transport().Send(from, client->home(), kMessageOverhead,
                   [client, busy]() { client->HandleBusy(busy); });
  if (measure_wire_bytes_) {
    const proto::BusyMsg msg{0, busy.proposal_id, busy.retry_after_us};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kBusy),
            msg.Encode().size(), kMessageOverhead);
  }
}

bool LocalMesh::RoutesToClient(const std::string& client) {
  return directory_->FindClient(client) != nullptr;
}

void LocalMesh::SendOutcome(runtime::Endpoint& from, const std::string& client,
                            uint64_t proposal_id,
                            proto::TxValidationCode code) {
  ClientNode* target = directory_->FindClient(client);
  if (target == nullptr) return;
  const bool success = code == proto::TxValidationCode::kValid;
  transport().Send(from, target->home(), kMessageOverhead,
                   [target, proposal_id, success]() {
                     target->HandleOutcome(proposal_id, success);
                   });
  if (measure_wire_bytes_) {
    proto::OutcomeMsg msg;
    msg.client = client;
    msg.proposal_id = proposal_id;
    msg.code = code;
    Measure(static_cast<uint8_t>(proto::WireMessageType::kOutcome),
            msg.Encode().size(), kMessageOverhead);
  }
}

void LocalMesh::SendBlock(runtime::Endpoint& from, uint32_t peer_index,
                          uint32_t channel,
                          std::shared_ptr<proto::Block> block,
                          uint64_t block_bytes) {
  PeerNode* peer = &directory_->peer(peer_index);
  transport().Send(from, peer->endpoint_for(channel), block_bytes,
                   [peer, channel, block]() {
                     peer->HandleBlock(channel, block);
                   });
  if (measure_wire_bytes_) {
    const proto::BlockMsg msg{channel, *block};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kBlock),
            msg.Encode().size(), block_bytes);
  }
}

void LocalMesh::GossipBlock(runtime::Endpoint& from, uint32_t channel,
                            std::shared_ptr<proto::Block> block,
                            uint64_t block_bytes) {
  // Gossip: one copy to each org's leader peer (its first), which forwards
  // to the org's remaining members — "partially from ordering service to
  // peers directly ... and partially between the peers using a gossip
  // protocol" (Appendix A.2 step 9).
  const uint32_t peers_per_org = config_->peers_per_org;
  for (uint32_t org = 0; org < config_->num_orgs; ++org) {
    PeerNode* leader = &directory_->peer(org * peers_per_org);
    NodeDirectory* directory = directory_;
    runtime::Transport* transport = &this->transport();
    transport->Send(
        from, leader->endpoint_for(channel), block_bytes,
        [directory, transport, leader, org, peers_per_org, channel, block,
         block_bytes]() {
          leader->HandleBlock(channel, block);
          for (uint32_t m = 1; m < peers_per_org; ++m) {
            PeerNode* member = &directory->peer(org * peers_per_org + m);
            transport->Send(leader->endpoint_for(channel),
                            member->endpoint_for(channel), block_bytes,
                            [member, channel, block]() {
                              member->HandleBlock(channel, block);
                            });
          }
        });
  }
  if (measure_wire_bytes_) {
    // Every peer receives one framed copy (orderer->leader hops plus the
    // leader->member forwards), all the same encoding.
    const proto::BlockMsg msg{channel, *block};
    const size_t payload = msg.Encode().size();
    const size_t copies = directory_->num_peers();
    for (size_t i = 0; i < copies; ++i) {
      Measure(static_cast<uint8_t>(proto::WireMessageType::kBlock), payload,
              block_bytes);
    }
  }
}

void LocalMesh::SendChainInfo(runtime::Endpoint& from, uint32_t peer_index,
                              uint32_t channel, uint64_t height) {
  PeerNode* peer = &directory_->peer(peer_index);
  transport().Send(from, peer->endpoint_for(channel), kMessageOverhead,
                   [peer, channel, height]() {
                     peer->HandleChainInfo(channel, height);
                   });
  if (measure_wire_bytes_) {
    const proto::ChainInfoMsg msg{channel, height};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kChainInfo),
            msg.Encode().size(), kMessageOverhead);
  }
}

void LocalMesh::SendBlockRequest(runtime::Endpoint& from, uint32_t channel,
                                 uint32_t peer_index, uint64_t from_number) {
  OrdererNode* orderer = &directory_->orderer();
  transport().Send(from, orderer->endpoint_for(channel), kMessageOverhead,
                   [orderer, channel, peer_index, from_number]() {
                     orderer->HandleBlockRequest(channel, peer_index,
                                                 from_number);
                   });
  if (measure_wire_bytes_) {
    const proto::BlockRequestMsg msg{channel, peer_index, from_number};
    Measure(static_cast<uint8_t>(proto::WireMessageType::kBlockRequest),
            msg.Encode().size(), kMessageOverhead);
  }
}

std::string ClientNameFor(uint32_t channel, uint32_t index_in_channel) {
  return "client_c" + std::to_string(channel) + "_" +
         std::to_string(index_in_channel);
}

bool ParseClientName(const std::string& name, uint32_t* channel,
                     uint32_t* index_in_channel) {
  constexpr std::string_view kPrefix = "client_c";
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  const size_t sep = name.find('_', kPrefix.size());
  if (sep == std::string::npos || sep == kPrefix.size() ||
      sep + 1 >= name.size()) {
    return false;
  }
  uint64_t ch = 0;
  for (size_t i = kPrefix.size(); i < sep; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    ch = ch * 10 + static_cast<uint64_t>(name[i] - '0');
    if (ch > UINT32_MAX) return false;
  }
  uint64_t idx = 0;
  for (size_t i = sep + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    idx = idx * 10 + static_cast<uint64_t>(name[i] - '0');
    if (idx > UINT32_MAX) return false;
  }
  *channel = static_cast<uint32_t>(ch);
  *index_in_channel = static_cast<uint32_t>(idx);
  return true;
}

std::vector<uint32_t> EndorserIndicesFor(uint32_t num_orgs,
                                         uint32_t peers_per_org,
                                         uint64_t key) {
  std::vector<uint32_t> endorsers;
  endorsers.reserve(num_orgs);
  for (uint32_t o = 0; o < num_orgs; ++o) {
    const uint32_t p = static_cast<uint32_t>(key % peers_per_org);
    endorsers.push_back(o * peers_per_org + p);
  }
  return endorsers;
}

}  // namespace fabricpp::node
