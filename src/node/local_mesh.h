#ifndef FABRICPP_NODE_LOCAL_MESH_H_
#define FABRICPP_NODE_LOCAL_MESH_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fabric/config.h"
#include "fabric/metrics.h"
#include "node/mesh.h"
#include "node/node_context.h"

namespace fabricpp::node {

/// The in-process Mesh: every destination lives in this composition, so a
/// send is a runtime::Transport task that invokes the target's handler
/// directly — byte-for-byte the closures the node layer shipped before the
/// seam existed, which is what keeps sim fingerprints and thread-mode
/// behavior pinned across the refactor.
///
/// When `measure_wire_bytes` is on (thread runtime), every send is also
/// encoded through the real wire format and its framed size recorded in
/// Metrics::transport_counters() — the measured counterpart to the modeled
/// kMessageOverhead sizes the cost model charges. Sim runs must leave it
/// off: the measurement itself is invisible to the report, but skipping the
/// encode keeps the deterministic path free of dead work.
class LocalMesh : public Mesh {
 public:
  LocalMesh(const fabric::FabricConfig* config, fabric::Metrics* metrics,
            NodeDirectory* directory, runtime::Runtime* runtime,
            bool measure_wire_bytes);

  void SendProposal(runtime::Endpoint& from, uint32_t peer_index,
                    uint32_t channel, const proto::Proposal& proposal,
                    uint32_t client_index, uint64_t size_bytes) override;
  void SendTransaction(runtime::Endpoint& from, uint32_t channel,
                       proto::Transaction tx, uint64_t size_bytes) override;
  void SendEndorsementReply(runtime::Endpoint& from, uint32_t client_index,
                            uint64_t proposal_id,
                            Result<peer::EndorsementResponse> response,
                            uint64_t size_bytes) override;
  void SendBusy(runtime::Endpoint& from, uint32_t client_index,
                const BusyResponse& busy) override;
  void SendBusyByName(runtime::Endpoint& from, const std::string& client,
                      const BusyResponse& busy) override;
  bool RoutesToClient(const std::string& client) override;
  void SendOutcome(runtime::Endpoint& from, const std::string& client,
                   uint64_t proposal_id, proto::TxValidationCode code) override;
  void SendBlock(runtime::Endpoint& from, uint32_t peer_index,
                 uint32_t channel, std::shared_ptr<proto::Block> block,
                 uint64_t block_bytes) override;
  void GossipBlock(runtime::Endpoint& from, uint32_t channel,
                   std::shared_ptr<proto::Block> block,
                   uint64_t block_bytes) override;
  void SendChainInfo(runtime::Endpoint& from, uint32_t peer_index,
                     uint32_t channel, uint64_t height) override;
  void SendBlockRequest(runtime::Endpoint& from, uint32_t channel,
                        uint32_t peer_index, uint64_t from_number) override;

 private:
  runtime::Transport& transport() { return runtime_->transport(); }
  /// Records the real framed size of a send (thread mode only). `payload`
  /// is the encoded wire payload; `modeled` what the cost model charged.
  void Measure(uint8_t type, size_t payload_size, uint64_t modeled);

  const fabric::FabricConfig* config_;
  fabric::Metrics* metrics_;
  NodeDirectory* directory_;
  runtime::Runtime* runtime_;
  bool measure_wire_bytes_;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_LOCAL_MESH_H_
