#ifndef FABRICPP_NODE_MESH_H_
#define FABRICPP_NODE_MESH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "peer/endorser.h"
#include "proto/block.h"
#include "proto/transaction.h"
#include "runtime/runtime.h"

namespace fabricpp::node {

struct BusyResponse;

/// The message fabric between node state machines. Every cross-node send a
/// client, peer or orderer makes goes through this seam, typed by message
/// rather than by closure, so the same state-machine code runs whether the
/// destination lives in this process (LocalMesh: the message becomes a
/// runtime::Transport task invoking the target's handler directly — the
/// sim/thread path, byte-identical to the pre-seam closures) or in another
/// one (fabric::SocketHost: the message is encoded into a wire frame and
/// shipped over TCP — DESIGN.md §15).
///
/// Contract:
///  - All methods are called on the *sender's* endpoint context.
///  - `size_bytes` is the modeled wire size (ByteSize() + kMessageOverhead)
///    the node computed; the sim's network cost model charges it verbatim.
///    Implementations measure real framed bytes separately (Metrics
///    transport counters) so the deterministic report never depends on the
///    actual encoding.
///  - Destinations are indices/names, never pointers: peer i, the orderer,
///    client `client_index` (directory order), or a client by name.
///  - Delivery is at-most-once and unordered across destinations, exactly
///    like the underlying transports; the node layer already tolerates loss
///    via timeouts and block refetch.
class Mesh {
 public:
  virtual ~Mesh() = default;

  /// Client -> peer: endorse `proposal`. `client_index` routes the replies.
  virtual void SendProposal(runtime::Endpoint& from, uint32_t peer_index,
                            uint32_t channel, const proto::Proposal& proposal,
                            uint32_t client_index, uint64_t size_bytes) = 0;

  /// Client -> orderer: an endorsed transaction for ordering.
  virtual void SendTransaction(runtime::Endpoint& from, uint32_t channel,
                               proto::Transaction tx, uint64_t size_bytes) = 0;

  /// Peer -> client: the simulation outcome (rwset + endorsement, or the
  /// error that aborted it).
  virtual void SendEndorsementReply(runtime::Endpoint& from,
                                    uint32_t client_index,
                                    uint64_t proposal_id,
                                    Result<peer::EndorsementResponse> response,
                                    uint64_t size_bytes) = 0;

  /// Peer -> client: admission refused, retry later.
  virtual void SendBusy(runtime::Endpoint& from, uint32_t client_index,
                        const BusyResponse& busy) = 0;

  /// Orderer -> client, by name (the orderer only knows names from
  /// transactions). Unknown names are dropped.
  virtual void SendBusyByName(runtime::Endpoint& from,
                              const std::string& client,
                              const BusyResponse& busy) = 0;

  /// True iff a final outcome for `client` can reach its state machine from
  /// here (it is hosted locally, or a client host is connected that hosts
  /// it). Peers use this to decide ResolveFired-vs-Resolve accounting.
  virtual bool RoutesToClient(const std::string& client) = 0;

  /// Peer/orderer -> client: the final validation code for one proposal.
  /// kValid completes the proposal; any abort code triggers the client's
  /// resubmission path.
  virtual void SendOutcome(runtime::Endpoint& from, const std::string& client,
                           uint64_t proposal_id,
                           proto::TxValidationCode code) = 0;

  /// Orderer -> peer: a cut block (direct dissemination).
  virtual void SendBlock(runtime::Endpoint& from, uint32_t peer_index,
                         uint32_t channel,
                         std::shared_ptr<proto::Block> block,
                         uint64_t block_bytes) = 0;

  /// Orderer -> org leaders -> org members: Fabric's gossip dissemination
  /// (Appendix A.2 step 9). LocalMesh only; socket mode validates
  /// gossip_blocks off.
  virtual void GossipBlock(runtime::Endpoint& from, uint32_t channel,
                           std::shared_ptr<proto::Block> block,
                           uint64_t block_bytes) = 0;

  /// Orderer -> peer: current dispatched chain height (gap detection).
  virtual void SendChainInfo(runtime::Endpoint& from, uint32_t peer_index,
                             uint32_t channel, uint64_t height) = 0;

  /// Peer -> orderer: re-send blocks from `from_number` on.
  virtual void SendBlockRequest(runtime::Endpoint& from, uint32_t channel,
                                uint32_t peer_index, uint64_t from_number) = 0;
};

/// Canonical client naming, shared by every composition root so a client's
/// name alone identifies it across processes: channel c, in-channel index i
/// -> "client_c<c>_<i>".
std::string ClientNameFor(uint32_t channel, uint32_t index_in_channel);

/// Inverts ClientNameFor. Returns false on anything else.
bool ParseClientName(const std::string& name, uint32_t* channel,
                     uint32_t* index_in_channel);

/// The deterministic endorser choice shared by every composition root
/// (paper §2.2.1: one endorsing peer per org, rotated by proposal id so
/// load spreads): org o contributes peer o * peers_per_org + key %
/// peers_per_org.
std::vector<uint32_t> EndorserIndicesFor(uint32_t num_orgs,
                                         uint32_t peers_per_org, uint64_t key);

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_MESH_H_
