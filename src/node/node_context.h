#ifndef FABRICPP_NODE_NODE_CONTEXT_H_
#define FABRICPP_NODE_NODE_CONTEXT_H_

#include <string>
#include <vector>

#include "chaincode/chaincode.h"
#include "fabric/config.h"
#include "fabric/metrics.h"
#include "peer/policy.h"
#include "runtime/runtime.h"
#include "workload/workload.h"

namespace fabricpp::node {

class PeerNode;
class OrdererNode;
class ClientNode;
class Mesh;

/// The composition root's node roster, as seen from inside a node. Nodes
/// look each other up here instead of holding a pointer to the concrete
/// network class — the only coupling between a node and the rest of the
/// system is this interface plus the runtime.
///
/// A reference obtained here is only ever *used* from a task already running
/// on the target's execution context (a delivered message, a timer), so the
/// lookup itself needs no synchronization: the roster is immutable after
/// construction.
class NodeDirectory {
 public:
  virtual ~NodeDirectory() = default;

  /// Cluster-wide peer count. Valid in every composition, including hosts
  /// whose peers live in other processes.
  virtual size_t num_peers() const = 0;
  /// Node lookups. In a multi-process composition only locally hosted
  /// nodes are reachable; the accessors abort on a remote index (node code
  /// reaches concrete nodes only through Mesh-delivered tasks, which by
  /// construction run where the node lives).
  virtual PeerNode& peer(uint32_t index) = 0;
  virtual OrdererNode& orderer() = 0;
  virtual size_t num_clients() const = 0;
  virtual ClientNode& client(uint32_t index) = 0;
  /// Client lookup by name; nullptr for unknown submitters (e.g. externally
  /// injected transactions, or clients hosted by another process).
  virtual ClientNode* FindClient(const std::string& name) = 0;

  /// The peers a proposal with the given id is endorsed by: one peer per
  /// org, rotated by proposal id for load balance. Indices, not pointers —
  /// an endorser may live in another process (see EndorserIndicesFor).
  virtual std::vector<uint32_t> EndorsersFor(uint64_t proposal_id) = 0;

  /// Endorsement policy id used by all transactions.
  virtual const std::string& default_policy_id() const = 0;

  /// Observer peer whose commits feed the metrics (peer 0).
  virtual bool IsObserver(const PeerNode& peer) const = 0;
};

/// Everything a node needs from its surroundings, injected at construction.
/// All pointers outlive the node and are non-null.
struct NodeContext {
  const fabric::FabricConfig* config = nullptr;
  fabric::Metrics* metrics = nullptr;
  const workload::Workload* workload = nullptr;
  const chaincode::ChaincodeRegistry* registry = nullptr;
  const peer::PolicyRegistry* policies = nullptr;
  runtime::Runtime* runtime = nullptr;
  NodeDirectory* directory = nullptr;
  /// Typed message fabric every cross-node send goes through (node/mesh.h).
  Mesh* mesh = nullptr;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_NODE_CONTEXT_H_
