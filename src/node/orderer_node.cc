#include "node/orderer_node.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "ledger/ledger.h"
#include "node/client_node.h"
#include "node/lanes.h"
#include "node/mesh.h"
#include "node/peer_node.h"
#include "node/wire.h"
#include "ordering/commit_schedule.h"
#include "ordering/early_abort.h"

namespace fabricpp::node {

OrdererNode::OrdererNode(const NodeContext& ctx)
    : ctx_(ctx),
      endpoint_(&ctx.runtime->AddEndpoint("orderer")),
      cpu_(&ctx.runtime->AddExecutor(*endpoint_, "orderer-cpu",
                                     ctx.config->orderer_cores)),
      reorder_pool_(ctx.runtime->RequestPool(runtime::PoolKind::kReorder,
                                             ctx.config->reorder_workers)) {
  // Lane 0 is the primary context; extra lanes (thread runtime,
  // multi-channel) each get their own endpoint thread, executor, and
  // reorder pool so channels stop serializing on one mailbox.
  lane_endpoints_.push_back(endpoint_);
  lane_cpus_.push_back(cpu_);
  lane_reorder_pools_.push_back(reorder_pool_);
  const uint32_t lanes = ChannelLaneCount(*ctx.config, ctx.runtime->mode());
  for (uint32_t lane = 1; lane < lanes; ++lane) {
    runtime::Endpoint& ep =
        ctx.runtime->AddEndpoint(StrFormat("orderer-lane-%u", lane));
    lane_endpoints_.push_back(&ep);
    lane_cpus_.push_back(&ctx.runtime->AddExecutor(
        ep, StrFormat("orderer-lane-%u-cpu", lane),
        ctx.config->orderer_cores));
    lane_reorder_pools_.push_back(ctx.runtime->RequestPool(
        runtime::PoolKind::kReorder, ctx.config->reorder_workers));
  }
  const crypto::Digest genesis_hash = ledger::Ledger().LastHash();
  FairScheduler::Options admission;
  admission.per_client_depth = ctx.config->admission_queue_depth;
  admission.quantum = ctx.config->fair_sched_quantum;
  admission.conflict_penalty = ctx.config->fair_conflict_penalty;
  channels_.reserve(ctx.config->num_channels);
  for (uint32_t c = 0; c < ctx.config->num_channels; ++c) {
    channels_.emplace_back(ctx.config->block, admission);
    channels_.back().prev_hash = genesis_hash;
  }
}

void OrdererNode::SetConsensus(ConsensusService* consensus) {
  consensus_ = consensus;
  consensus_->SetDeliverCallback(
      [this](uint32_t channel, std::shared_ptr<proto::Block> block,
             uint64_t block_bytes) {
        DispatchBlock(channel, std::move(block), block_bytes);
      });
}

void OrdererNode::SubmitToConsensus(uint32_t channel,
                                    std::shared_ptr<proto::Block> block,
                                    uint64_t block_bytes) {
  consensus_->Submit(channel, std::move(block), block_bytes);
}

void OrdererNode::DispatchBlock(uint32_t channel,
                                std::shared_ptr<proto::Block> block,
                                uint64_t block_bytes) {
  // Keep the block servable: peers that miss this delivery (loss, crash,
  // partition) fetch it later via HandleBlockRequest.
  channels_[channel].dispatched[block->header.number] = block;
  // Distribute to every peer (paper §2.2.2 / Appendix A.2 steps 8-9).
  if (!config().gossip_blocks) {
    for (uint32_t p = 0; p < ctx_.directory->num_peers(); ++p) {
      ctx_.mesh->SendBlock(endpoint_for(channel), p, channel, block,
                           block_bytes);
    }
    return;
  }
  ctx_.mesh->GossipBlock(endpoint_for(channel), channel, block, block_bytes);
}

void OrdererNode::HandleBlockRequest(uint32_t channel, uint32_t peer_index,
                                     uint64_t from_number) {
  ChannelState& ch = channels_[channel];
  // Bounded batch per request: the peer re-requests from its new frontier
  // until it reports parity (HandleChainInfo), so a long outage drains in
  // successive rounds instead of one giant burst.
  constexpr uint32_t kMaxBlocksPerFetch = 16;
  uint32_t sent = 0;
  for (auto it = ch.dispatched.lower_bound(from_number);
       it != ch.dispatched.end() && sent < kMaxBlocksPerFetch; ++it, ++sent) {
    std::shared_ptr<proto::Block> block = it->second;
    const uint64_t block_bytes = block->ByteSize() + kMessageOverhead;
    ctx_.mesh->SendBlock(endpoint_for(channel), peer_index, channel, block,
                         block_bytes);
  }
  const uint64_t highest =
      ch.dispatched.empty() ? 0 : ch.dispatched.rbegin()->first;
  ctx_.mesh->SendChainInfo(endpoint_for(channel), peer_index, channel,
                           highest);
}

void OrdererNode::HandleTransaction(uint32_t channel, proto::Transaction tx) {
  const fabric::CostModel& cost = config().cost;
  if (config().admission_queue_depth == 0) {
    // Admission control off: the seed's unbounded path. The ordering
    // service authenticates the submitting client before enqueueing (one
    // signature verification per transaction).
    cpu_for(channel).Submit(cost.verify + cost.order_per_tx,
                            [this, channel, tx = std::move(tx)]() mutable {
                              Enqueue(channel, std::move(tx));
                            });
    return;
  }
  ChannelState& ch = channels_[channel];
  const std::string client = tx.client;
  const uint64_t proposal_id = tx.proposal_id;
  if (!ch.admission.Offer(tx)) {
    // The client's admission queue is full: refuse explicitly with a
    // retry-after hint instead of buffering without bound (or dropping
    // silently). The refusal costs no CPU — shedding must stay cheap.
    metrics().NoteOrdererAdmission(false);
    NotifyBusy(channel, client, proposal_id);
    return;
  }
  metrics().NoteOrdererAdmission(true);
  PumpAdmission(channel);
}

void OrdererNode::NotifyBusy(uint32_t channel,
                             const std::string& client_name,
                             uint64_t proposal_id) {
  const BusyResponse busy{proposal_id, config().busy_retry_hint};
  ctx_.mesh->SendBusyByName(endpoint_for(channel), client_name, busy);
}

void OrdererNode::PumpAdmission(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const fabric::CostModel& cost = config().cost;
  // Enough verify jobs to keep the cores busy, few enough that the backlog
  // waits in the fair scheduler (where DRR ordering applies) rather than in
  // the executor's FIFO. The batch-queue bound stops admitting cut batches
  // faster than the reorder stage drains them.
  const uint32_t verify_window = 2 * config().orderer_cores;
  while (ch.verify_inflight < verify_window &&
         ch.batch_queue.size() <= config().ordering_pipeline_depth) {
    std::optional<proto::Transaction> tx = ch.admission.PollNext();
    if (!tx.has_value()) return;
    ++ch.verify_inflight;
    cpu_for(channel).Submit(cost.verify + cost.order_per_tx,
                            [this, channel, tx = std::move(*tx)]() mutable {
                              --channels_[channel].verify_inflight;
                              Enqueue(channel, std::move(tx));
                              PumpAdmission(channel);
                            });
  }
}

void OrdererNode::NotifyEarlyAbort(uint32_t channel,
                                   const proto::Transaction& tx,
                                   proto::TxValidationCode code) {
  // Early abort notification to the client (paper §5.2: aborted
  // transactions leave the pipeline immediately and the client learns of it
  // without waiting for validation). The code travels with the outcome so a
  // remote client host can account the abort under the right bucket.
  ctx_.mesh->SendOutcome(endpoint_for(channel), tx.client, tx.proposal_id,
                         code);
}

void OrdererNode::Enqueue(uint32_t channel, proto::Transaction tx) {
  ChannelState& ch = channels_[channel];
  const bool was_empty = ch.cutter.pending_transactions() == 0;
  std::optional<ordering::Batch> batch = ch.cutter.Add(std::move(tx));
  if (batch.has_value()) {
    ++ch.timer_generation;  // Cancel the pending timeout.
    ch.batch_queue.push_back({std::move(*batch), clock_for(channel).Now()});
    MaybeProcessNextBatch(channel);
  } else if (was_empty) {
    ArmTimer(channel);
  }
}

void OrdererNode::MaybeProcessNextBatch(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const uint32_t depth = config().ordering_pipeline_depth;
  while (!ch.batch_queue.empty() && ch.stage_inflight < depth) {
    PendingBatch pending = std::move(ch.batch_queue.front());
    ch.batch_queue.pop_front();
    const runtime::TimeMicros now = clock_for(channel).Now();
    if (now > pending.enqueued_at) {
      // The batch was cut while the reorder stage was at capacity — the
      // pipeline stall the ordering_pipeline_depth knob exists to hide.
      metrics().NoteOrderingStall(now - pending.enqueued_at, now);
    }
    ProcessBatch(channel, std::move(pending.batch));
  }
  // Draining the batch queue may have re-opened the admission valve.
  if (config().admission_queue_depth > 0) PumpAdmission(channel);
}

void OrdererNode::ArmTimer(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const uint64_t generation = ch.timer_generation;
  clock_for(channel).Schedule(
      config().block.batch_timeout, [this, channel, generation]() {
        ChannelState& state = channels_[channel];
        if (state.timer_generation != generation) return;  // Was cut already.
        ++state.timer_generation;
        std::optional<ordering::Batch> batch =
            state.cutter.Flush(ordering::CutReason::kTimeout);
        if (batch.has_value()) {
          state.batch_queue.push_back(
              {std::move(*batch), clock_for(channel).Now()});
          MaybeProcessNextBatch(channel);
        }
      });
}

void OrdererNode::ProcessBatch(uint32_t channel, ordering::Batch batch) {
  const fabric::FabricConfig& cfg = config();
  const fabric::CostModel& cost = cfg.cost;
  const runtime::TimeMicros now = clock_for(channel).Now();
  runtime::TimeMicros service = cost.block_fixed_order;

  std::vector<proto::Transaction>& txs = batch.transactions;
  std::vector<bool> dropped(txs.size(), false);

  // Fabric++ early abort in the ordering phase (paper §5.2.2): transactions
  // whose reads are version-skewed against a sibling in the same batch can
  // never commit; drop them before reordering and distribution.
  if (cfg.enable_early_abort_ordering) {
    std::vector<const proto::ReadWriteSet*> rwsets;
    rwsets.reserve(txs.size());
    for (const proto::Transaction& tx : txs) rwsets.push_back(&tx.rwset);
    for (const uint32_t victim : ordering::FindVersionSkewAborts(rwsets)) {
      dropped[victim] = true;
      metrics().Resolve(
          fabric::ProposalKey(txs[victim].client, txs[victim].proposal_id),
          fabric::TxOutcome::kAbortVersionSkew, now);
      NotifyEarlyAbort(channel, txs[victim],
                       proto::TxValidationCode::kAbortedVersionSkew);
    }
    service += cost.order_per_tx * txs.size();  // The skew scan.
  }

  std::vector<uint32_t> survivors;
  survivors.reserve(txs.size());
  for (uint32_t i = 0; i < txs.size(); ++i) {
    if (!dropped[i]) survivors.push_back(i);
  }

  // Fabric++ transaction reordering (paper §5.1): replace the arrival order
  // by a serializable schedule, aborting cycle participants.
  std::vector<uint32_t> final_order = survivors;
  if (cfg.enable_reordering && !survivors.empty()) {
    std::vector<const proto::ReadWriteSet*> rwsets;
    rwsets.reserve(survivors.size());
    for (const uint32_t i : survivors) rwsets.push_back(&txs[i].rwset);
    ordering::ReorderResult reorder = ordering::ReorderTransactions(
        rwsets, cfg.reorder, reorder_pool_for(channel));
    channels_[channel].last_reorder_stats = reorder.stats;
    // Wall-clock of the pass goes to the measurement side of Metrics, never
    // into the deterministic stats/report (same rule as validation timings).
    metrics().NoteReorderWallClock(
        reorder.elapsed_wall_us, reorder.stage_wall.build_us,
        reorder.stage_wall.enumerate_us, reorder.stage_wall.break_us,
        reorder.stage_wall.schedule_us);
    for (const uint32_t victim : reorder.aborted) {
      const proto::Transaction& tx = txs[survivors[victim]];
      metrics().Resolve(fabric::ProposalKey(tx.client, tx.proposal_id),
                        fabric::TxOutcome::kAbortReorderer, now);
      NotifyEarlyAbort(channel, tx,
                       proto::TxValidationCode::kAbortedByReorderer);
    }
    final_order.clear();
    for (const uint32_t pos : reorder.order) {
      final_order.push_back(survivors[pos]);
    }
    service += cost.reorder_per_tx * reorder.stats.num_transactions +
               cost.reorder_per_cycle * reorder.stats.num_cycles_found;
  }

  if (final_order.empty()) {
    // Nothing survived; no block to distribute and no pipeline slot taken —
    // the admission loop in MaybeProcessNextBatch continues to the next
    // queued batch.
    return;
  }

  auto block = std::make_shared<proto::Block>();
  block->transactions.reserve(final_order.size());
  for (const uint32_t i : final_order) {
    block->transactions.push_back(std::move(txs[i]));
  }

  // Seal at admission: batches are admitted in cut order, so numbering and
  // hash-chaining here keeps the chain identical for any pipeline depth
  // even though a deeper pipeline lets several blocks' ordering costs
  // overlap below.
  ChannelState& ch = channels_[channel];
  block->header.number = ch.next_block_number++;
  block->header.previous_hash = ch.prev_hash;
  block->SealDataHash();
  ch.prev_hash = block->header.Hash();
  blocks_cut_.fetch_add(1, std::memory_order_relaxed);

  if (cfg.ship_commit_schedule) {
    // Attach the commit-stage wave schedule (DESIGN.md §13, carried inside
    // the block — see src/node/wire.h). Sealed *after* the data hash on
    // purpose: the schedule is advisory (peers validate or recompute), so
    // it stays outside the integrity envelope and the chain hashes are
    // unchanged by shipping it. Its wire bytes do enlarge block_bytes
    // below, deterministically feeding the network/append cost model.
    std::vector<const proto::ReadWriteSet*> schedule_rwsets;
    schedule_rwsets.reserve(block->transactions.size());
    for (const proto::Transaction& tx : block->transactions) {
      schedule_rwsets.push_back(&tx.rwset);
    }
    block->commit_waves = ordering::ComputeCommitWaves(schedule_rwsets);
    // One linear pass over the rwsets, folded into the per-tx order cost.
    service += cost.order_per_tx * block->transactions.size();
  }

  if (cfg.fair_conflict_penalty > 0) {
    // Feed the conflict-aware scheduler the block's write keys: keys
    // written often across recent blocks become "hot", and queued
    // transactions touching them pay extra deficit.
    std::vector<std::string> write_keys;
    for (const proto::Transaction& tx : block->transactions) {
      for (const proto::WriteItem& w : tx.rwset.writes) {
        write_keys.push_back(w.key);
      }
    }
    ch.admission.NoteSealedBatch(write_keys);
  }

  const uint64_t block_bytes = block->ByteSize() + kMessageOverhead;
  service += cost.hash_per_kb * (block_bytes / 1024 + 1);

  const uint64_t seq = ch.next_stage_seq++;
  ++ch.stage_inflight;
  cpu_for(channel).Submit(
      service, [this, channel, seq, block, block_bytes]() {
        FinishBatchStage(channel, seq, StagedBlock{block, block_bytes});
      });
}

void OrdererNode::FinishBatchStage(uint32_t channel, uint64_t seq,
                                   StagedBlock done) {
  ChannelState& ch = channels_[channel];
  --ch.stage_inflight;
  ch.staged.emplace(seq, std::move(done));
  // Blocks enter consensus strictly in chain order even when a later,
  // lighter block pays off its ordering cost before a heavy predecessor.
  while (true) {
    const auto it = ch.staged.find(ch.next_submit_seq);
    if (it == ch.staged.end()) break;
    StagedBlock ready = std::move(it->second);
    ch.staged.erase(it);
    ++ch.next_submit_seq;
    SubmitToConsensus(channel, std::move(ready.block), ready.block_bytes);
  }
  MaybeProcessNextBatch(channel);
}

}  // namespace fabricpp::node
