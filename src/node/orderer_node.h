#ifndef FABRICPP_NODE_ORDERER_NODE_H_
#define FABRICPP_NODE_ORDERER_NODE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "node/consensus.h"
#include "node/fair_scheduler.h"
#include "node/node_context.h"
#include "ordering/batch_cutter.h"
#include "ordering/reorderer.h"
#include "proto/block.h"
#include "proto/transaction.h"
#include "runtime/runtime.h"

namespace fabricpp::node {

/// The (trusted) ordering service: receives endorsed transactions, cuts
/// batches, optionally early-aborts and reorders (Fabric++), seals blocks,
/// hands them to the consensus backend, and distributes committed blocks to
/// every peer.
///
/// Execution contexts: every handler for a channel runs on that channel's
/// lane endpoint. Under the simulation runtime (and with one channel) there
/// is exactly one lane — the historical single-endpoint orderer, event
/// order untouched. Under the thread runtime with multiple channels, the
/// pipeline is sharded across ChannelLaneCount lanes (per-lane endpoint,
/// executor, and reorder pool; channels round-robin), so independent
/// channels order in parallel instead of serializing on one mailbox
/// thread. Per-channel state stays single-writer: a channel's entire
/// pipeline lives on exactly one lane.
class OrdererNode {
 public:
  explicit OrdererNode(const NodeContext& ctx);

  /// Wires the consensus backend (composition root, before any traffic).
  /// The service's deliver callback is pointed at DispatchBlock.
  void SetConsensus(ConsensusService* consensus);

  runtime::Endpoint& endpoint() { return *endpoint_; }
  runtime::NodeId node_id() const { return endpoint_->id(); }
  /// The lane endpoint channel `channel`'s pipeline runs on (== endpoint()
  /// under sim or with a single lane). Messages for the channel must be
  /// delivered here.
  runtime::Endpoint& endpoint_for(uint32_t channel) {
    return *lane_endpoints_[channel % lane_endpoints_.size()];
  }
  size_t num_lanes() const { return lane_endpoints_.size(); }

  /// Delivery of a transaction from a client.
  void HandleTransaction(uint32_t channel, proto::Transaction tx);

  /// A peer's catch-up request: re-send dispatched blocks of `channel`
  /// numbered >= `from_number` (bounded per request), then report the
  /// highest dispatched number so the peer knows whether it is caught up.
  void HandleBlockRequest(uint32_t channel, uint32_t peer_index,
                          uint64_t from_number);

  /// Ships a consensus-committed block to every peer. Public because it is
  /// the consensus backend's delivery entry; runs on the orderer's context.
  void DispatchBlock(uint32_t channel, std::shared_ptr<proto::Block> block,
                     uint64_t block_bytes);

  uint64_t blocks_cut() const {
    return blocks_cut_.load(std::memory_order_relaxed);
  }
  /// Stats of the channel's most recent reordering pass (channel 0 by
  /// default, matching the historical single-channel accessor).
  const ordering::ReorderStats& last_reorder_stats(uint32_t channel = 0) const {
    return channels_[channel].last_reorder_stats;
  }

 private:
  /// A cut batch waiting for the reorder stage, stamped with its cut time
  /// so the pipeline-stall metric can measure how long it sat.
  struct PendingBatch {
    ordering::Batch batch;
    runtime::TimeMicros enqueued_at;
  };

  /// A block whose reorder stage finished, awaiting its turn at consensus.
  struct StagedBlock {
    std::shared_ptr<proto::Block> block;
    uint64_t block_bytes;
  };

  struct ChannelState {
    ChannelState(ordering::BatchCutConfig config,
                 FairScheduler::Options admission_options)
        : cutter(config), admission(admission_options) {}
    ordering::BatchCutter cutter;
    /// Bounded per-client admission queues in front of the verify stage
    /// (admission_queue_depth > 0; unused otherwise). Offer refusals turn
    /// into BUSY replies, never silent drops.
    FairScheduler admission;
    /// Admitted transactions whose verify+order CPU cost is in flight.
    /// PumpAdmission keeps this at most 2 * orderer_cores so the admission
    /// queue — not the executor — holds the backlog.
    uint32_t verify_inflight = 0;
    uint64_t next_block_number = 1;
    crypto::Digest prev_hash{};
    uint64_t timer_generation = 0;
    /// Single-producer queue between the batch cutter and the reorder
    /// stage. Admission is bounded by ordering_pipeline_depth: with depth
    /// 1 this is the seed's strictly serial behavior, with depth d the
    /// reorder+hash of up to d consecutive blocks overlaps on the
    /// orderer's cores while block N+d's batch accumulates.
    std::deque<PendingBatch> batch_queue;
    /// Batches currently inside the reorder stage (their virtual CPU cost
    /// has been submitted but not completed).
    uint32_t stage_inflight = 0;
    /// Stage sequence numbers, assigned at admission in cut order. Blocks
    /// are sealed (numbered + hash-chained) at admission, but a deeper
    /// pipeline can finish a light block's stage before a heavy
    /// predecessor's — the staged map + next_submit_seq drain re-imposes
    /// chain order on consensus submission.
    uint64_t next_stage_seq = 0;
    uint64_t next_submit_seq = 0;
    std::map<uint64_t, StagedBlock> staged;
    /// Every dispatched block, keyed by number — the delivery service peers
    /// fetch from when they detect a gap or recover from a crash.
    std::map<uint64_t, std::shared_ptr<proto::Block>> dispatched;
    /// The channel's most recent reordering pass (per channel: lanes run
    /// passes concurrently under the thread runtime).
    ordering::ReorderStats last_reorder_stats;
  };

  void Enqueue(uint32_t channel, proto::Transaction tx);
  void NotifyEarlyAbort(uint32_t channel, const proto::Transaction& tx,
                        proto::TxValidationCode code);
  /// Tells `client_name` its transaction was refused for overload, with the
  /// configured retry-after hint. External clients (not in the directory)
  /// are only counted.
  void NotifyBusy(uint32_t channel, const std::string& client_name,
                  uint64_t proposal_id);
  /// Drains the fair scheduler into the verify stage while the per-channel
  /// verify window and the batch queue have room — the backpressure valve
  /// that keeps the backlog in the bounded admission queues.
  void PumpAdmission(uint32_t channel);
  void ArmTimer(uint32_t channel);
  /// Admits queued batches into the reorder stage while the pipeline has
  /// capacity, recording a stall for each batch that had to wait.
  void MaybeProcessNextBatch(uint32_t channel);
  /// Runs the Fabric++ ordering-phase logic on a cut batch (early abort +
  /// reordering), seals the block, and charges its virtual cost; the block
  /// proceeds to consensus via FinishBatchStage when the cost is paid.
  void ProcessBatch(uint32_t channel, ordering::Batch batch);
  /// Stage-completion: queues the block for in-order consensus submission,
  /// drains every consecutively finished block, and refills the stage.
  void FinishBatchStage(uint32_t channel, uint64_t seq, StagedBlock done);
  /// Hands a sealed block to the configured consensus backend; distribution
  /// happens on consensus commit (immediately for solo).
  void SubmitToConsensus(uint32_t channel,
                         std::shared_ptr<proto::Block> block,
                         uint64_t block_bytes);

  const fabric::FabricConfig& config() const { return *ctx_.config; }
  fabric::Metrics& metrics() { return *ctx_.metrics; }
  runtime::Transport& transport() { return ctx_.runtime->transport(); }

  // --- Per-lane context (index 0 is the primary endpoint/cpu/pool) ---
  uint32_t lane_for(uint32_t channel) const {
    return channel % static_cast<uint32_t>(lane_endpoints_.size());
  }
  runtime::Clock& clock_for(uint32_t channel) {
    return lane_endpoints_[lane_for(channel)]->clock();
  }
  runtime::Executor& cpu_for(uint32_t channel) {
    return *lane_cpus_[lane_for(channel)];
  }
  ThreadPool* reorder_pool_for(uint32_t channel) {
    return lane_reorder_pools_[lane_for(channel)];
  }

  NodeContext ctx_;
  runtime::Endpoint* endpoint_;
  runtime::Executor* cpu_;
  /// Pool running the real reordering work (null when reorder_workers == 1).
  ThreadPool* reorder_pool_;
  /// Lane contexts; [0] aliases the primary endpoint_/cpu_/reorder_pool_.
  std::vector<runtime::Endpoint*> lane_endpoints_;
  std::vector<runtime::Executor*> lane_cpus_;
  std::vector<ThreadPool*> lane_reorder_pools_;
  ConsensusService* consensus_ = nullptr;
  std::vector<ChannelState> channels_;
  /// Atomic: lanes cut blocks concurrently under the thread runtime.
  std::atomic<uint64_t> blocks_cut_{0};
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_ORDERER_NODE_H_
