#include "node/peer_node.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "node/client_node.h"
#include "node/lanes.h"
#include "node/mesh.h"
#include "node/orderer_node.h"
#include "node/wire.h"

namespace fabricpp::node {

PeerNode::PeerNode(const NodeContext& ctx, uint32_t index, std::string name,
                   std::string org)
    : ctx_(ctx),
      index_(index),
      name_(std::move(name)),
      org_(std::move(org)),
      endpoint_(&ctx.runtime->AddEndpoint(name_)),
      cpu_(&ctx.runtime->AddExecutor(*endpoint_, name_ + "-cpu",
                                     ctx.config->peer_cores)),
      endorser_(name_, org_, ctx.config->seed, ctx.registry),
      validator_(ctx.config->seed, ctx.policies,
                 ctx.runtime->RequestPool(runtime::PoolKind::kValidator,
                                          ctx.config->validator_workers)),
      channels_(ctx.config->num_channels) {
  // Commit-stage wave fan-out (DESIGN.md §13): its own pool kind — the
  // verify fan-out has joined before the commit stage starts, but
  // ParallelFor is single-user and the two must never share a pool.
  validator_.set_commit_pool(ctx.runtime->RequestPool(
      runtime::PoolKind::kCommit, ctx.config->commit_workers));
  validator_.set_verify_shipped_schedule(ctx.config->verify_commit_schedule);
  // Lane 0 is the primary context; extra lanes (thread runtime,
  // multi-channel) each get their own endpoint thread, executor, and
  // validator, so independent channels endorse and commit in parallel.
  // The validator is per lane because its ParallelFor pools are
  // single-user; the endorser is shared (const, internally synchronized).
  lane_endpoints_.push_back(endpoint_);
  lane_cpus_.push_back(cpu_);
  const uint32_t lanes = ChannelLaneCount(*ctx.config, ctx.runtime->mode());
  for (uint32_t lane = 1; lane < lanes; ++lane) {
    runtime::Endpoint& ep = ctx.runtime->AddEndpoint(
        StrFormat("%s-lane-%u", name_.c_str(), lane));
    lane_endpoints_.push_back(&ep);
    lane_cpus_.push_back(&ctx.runtime->AddExecutor(
        ep, StrFormat("%s-lane-%u-cpu", name_.c_str(), lane),
        ctx.config->peer_cores));
    auto validator = std::make_unique<peer::Validator>(
        ctx.config->seed, ctx.policies,
        ctx.runtime->RequestPool(runtime::PoolKind::kValidator,
                                 ctx.config->validator_workers));
    validator->set_commit_pool(ctx.runtime->RequestPool(
        runtime::PoolKind::kCommit, ctx.config->commit_workers));
    validator->set_verify_shipped_schedule(
        ctx.config->verify_commit_schedule);
    extra_validators_.push_back(std::move(validator));
  }
}

void PeerNode::HandleProposal(uint32_t channel, proto::Proposal proposal,
                              uint32_t client_index) {
  if (crashed_) return;
  ChannelState& ch = channels_[channel];
  const uint32_t depth = config().admission_queue_depth;
  if (depth != 0 && ch.active_sims + ch.pending_sims.size() >= depth) {
    // Endorser admission control: the simulation stage is saturated, so
    // refuse explicitly with a retry-after hint. The refusal costs no CPU
    // (shedding must stay cheap) — the proposal never enters simulation.
    metrics().NoteEndorserAdmission(false);
    const BusyResponse busy{proposal.proposal_id, config().busy_retry_hint};
    ctx_.mesh->SendBusy(endpoint_for(channel), client_index, busy);
    return;
  }
  if (depth != 0) metrics().NoteEndorserAdmission(true);
  PendingSim sim{std::move(proposal), client_index};
  if (config().concurrency == fabric::ConcurrencyMode::kCoarseLock &&
      ch.commit_phase) {
    // Vanilla: a block's commit stage wants (or holds) the exclusive state
    // lock; the simulation's read lock must wait (paper §4.2.1).
    ch.pending_sims.push_back(std::move(sim));
    return;
  }
  StartSimulation(channel, std::move(sim));
}

void PeerNode::StartSimulation(uint32_t channel, PendingSim sim) {
  ChannelState& ch = channels_[channel];
  ++ch.active_sims;

  // The chaincode's effects are determined by the state at simulation
  // start; the CPU job then models the wall time the simulation occupies.
  const bool stale_checks = config().enable_early_abort_sim;
  Result<peer::EndorsementResponse> response =
      endorser_.Endorse(sim.proposal, ctx_.directory->default_policy_id(),
                        ch.db, stale_checks);

  const fabric::CostModel& cost = config().cost;
  runtime::TimeMicros service = cost.verify + cost.chaincode_base;
  if (response.ok()) {
    service += cost.per_read * response->rwset.reads.size() +
               cost.per_write * response->rwset.writes.size() + cost.sign;
  }
  const uint64_t proposal_id = sim.proposal.proposal_id;
  const uint32_t client_index = sim.client_index;
  const uint64_t epoch = crash_epoch_;
  cpu_for(channel).Submit(
      service, [this, channel, client_index, proposal_id, epoch,
                response = std::move(response)]() mutable {
        if (crashed_ || epoch != crash_epoch_) return;
        FinishSimulation(channel, client_index, proposal_id,
                         std::move(response));
      });
}

void PeerNode::FinishSimulation(uint32_t channel, uint32_t client_index,
                                uint64_t proposal_id,
                                Result<peer::EndorsementResponse> response) {
  ChannelState& ch = channels_[channel];
  --ch.active_sims;

  // Fabric++ early abort in the simulation phase (paper §5.2.1): with the
  // fine-grained concurrency control, a block may have committed while this
  // simulation ran; re-checking the read versions detects exactly the stale
  // reads the vanilla version would only discover in its validation phase.
  if (response.ok() && config().enable_early_abort_sim) {
    for (const proto::ReadItem& r : response->rwset.reads) {
      if (ch.db.GetVersion(r.key) != r.version) {
        response = Status::StaleRead("overtaken by commit during simulation");
        break;
      }
    }
  }

  uint64_t reply_size = kMessageOverhead;
  if (response.ok()) reply_size += response->rwset.ByteSize();
  ctx_.mesh->SendEndorsementReply(endpoint_for(channel), client_index,
                                  proposal_id, std::move(response),
                                  reply_size);

  if (config().concurrency == fabric::ConcurrencyMode::kCoarseLock &&
      ch.active_sims == 0 && ch.commit_phase) {
    TryStartCommit(channel);
  }
}

void PeerNode::HandleBlock(uint32_t channel,
                           std::shared_ptr<proto::Block> block) {
  if (crashed_) return;
  ChannelState& ch = channels_[channel];
  const uint64_t number = block->header.number;
  if (number < ch.next_accept || ch.reorder_buffer.count(number) != 0) {
    // Already admitted (or waiting): duplicated delivery, discard.
    metrics().NoteDuplicateBlock();
    return;
  }
  // Integrity at admission: a block whose payload does not match its sealed
  // data hash was tampered with in flight; reject it and fetch a clean copy.
  if (!block->VerifyDataHash()) {
    metrics().NoteCorruptedBlock();
    FABRICPP_LOG(Warn) << name_ << ": rejecting block " << number
                       << " on channel " << channel
                       << " with mismatched data hash";
    RequestMissingBlocks(channel);
    ArmFetchTimer(channel);
    return;
  }
  ch.reorder_buffer[number] = std::move(block);
  DrainReorderBuffer(channel);
  // Anything left is out of order: a predecessor was lost or is still in
  // flight. Fetch right away the first time the gap is seen — waiting a
  // full retry interval would stall every transaction of the lost block,
  // and with tight client commit timeouts that turns one lost delivery
  // into a resubmission storm. The timer covers lost fetches.
  if (!ch.reorder_buffer.empty() && !ch.fetch_timer_armed) {
    RequestMissingBlocks(channel);
    ArmFetchTimer(channel);
  }
}

void PeerNode::DrainReorderBuffer(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  while (true) {
    const auto it = ch.reorder_buffer.find(ch.next_accept);
    if (it == ch.reorder_buffer.end()) break;
    ch.pending_blocks.push_back(std::move(it->second));
    ch.reorder_buffer.erase(it);
    ++ch.next_accept;
  }
  MaybeStartValidation(channel);
}

void PeerNode::RequestMissingBlocks(uint32_t channel) {
  if (crashed_) return;
  const uint64_t from = channels_[channel].next_accept;
  ctx_.mesh->SendBlockRequest(endpoint_for(channel), channel, index_,
                              from);
}

void PeerNode::ArmFetchTimer(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (crashed_ || ch.fetch_timer_armed) return;
  ch.fetch_timer_armed = true;
  const uint64_t epoch = crash_epoch_;
  clock_for(channel).Schedule(
      config().peer_fetch_retry_interval, [this, channel, epoch]() {
        if (crashed_ || epoch != crash_epoch_) return;
        ChannelState& state = channels_[channel];
        state.fetch_timer_armed = false;
        if (!state.reorder_buffer.empty() || state.recovering) {
          RequestMissingBlocks(channel);
          ArmFetchTimer(channel);
        }
      });
}

void PeerNode::HandleChainInfo(uint32_t channel, uint64_t orderer_height) {
  if (crashed_) return;
  ChannelState& ch = channels_[channel];
  if (ch.next_accept <= orderer_height) {
    // Still behind the orderer's dispatched chain: keep fetching.
    ArmFetchTimer(channel);
    return;
  }
  if (ch.recovering) {
    ch.recovering = false;
    const runtime::TimeMicros took =
        clock_for(channel).Now() - ch.restart_time;
    metrics().NoteRecovery(took);
    FABRICPP_LOG(Info) << name_ << ": caught up on channel " << channel
                       << " " << took / 1000 << "ms after restart";
  }
}

void PeerNode::ResyncChannel(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  ch.validating = false;
  ch.commit_phase = false;
  ch.commit_submitted = false;
  ch.current_block.reset();
  ch.pending_blocks.clear();
  ch.reorder_buffer.clear();
  ch.next_accept = ch.ledger.Height();
  RequestMissingBlocks(channel);
  ArmFetchTimer(channel);
}

void PeerNode::Crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crash_epoch_;
  for (ChannelState& ch : channels_) {
    // The process dies: running simulations, queued work and undelivered
    // blocks are gone. Ledger and state database are durable and survive.
    ch.active_sims = 0;
    ch.validating = false;
    ch.commit_phase = false;
    ch.commit_submitted = false;
    ch.current_block.reset();
    ch.pending_sims.clear();
    ch.pending_blocks.clear();
    ch.reorder_buffer.clear();
    ch.fetch_timer_armed = false;
    ch.recovering = false;
    ch.next_accept = ch.ledger.Height();
  }
  FABRICPP_LOG(Info) << name_ << ": crashed at "
                     << clock().Now() / 1000 << "ms";
}

void PeerNode::Restart() {
  if (!crashed_) return;
  crashed_ = false;
  const runtime::TimeMicros now = clock().Now();
  FABRICPP_LOG(Info) << name_ << ": restarting at " << now / 1000 << "ms";
  for (uint32_t c = 0; c < channels_.size(); ++c) {
    channels_[c].recovering = true;
    channels_[c].restart_time = now;
    RequestMissingBlocks(c);
    ArmFetchTimer(c);
  }
}

void PeerNode::MaybeStartValidation(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (ch.validating || ch.pending_blocks.empty()) return;
  ch.validating = true;
  ch.current_block = ch.pending_blocks.front();
  ch.pending_blocks.pop_front();

  const fabric::CostModel& cost = config().cost;
  const size_t num_txs = ch.current_block->transactions.size();

  // Endorsement-policy evaluation parallelizes across the peer's cores
  // (Fabric 1.2's validator workers) and runs *outside* the state lock;
  // only the subsequent commit stage needs exclusivity.
  auto on_policy_done = [this, channel]() {
    ChannelState& state = channels_[channel];
    state.commit_phase = true;
    TryStartCommit(channel);
  };

  if (num_txs == 0) {
    on_policy_done();
    return;
  }
  auto remaining = std::make_shared<size_t>(num_txs);
  const uint64_t epoch = crash_epoch_;
  for (const proto::Transaction& tx : ch.current_block->transactions) {
    const runtime::TimeMicros policy_service =
        cost.validate_per_tx + cost.verify * tx.endorsements.size();
    cpu_for(channel).Submit(
        policy_service, [this, epoch, remaining, on_policy_done]() {
          if (crashed_ || epoch != crash_epoch_) return;
          if (--*remaining == 0) on_policy_done();
        });
  }
}

void PeerNode::TryStartCommit(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  if (ch.commit_submitted) return;
  if (config().concurrency == fabric::ConcurrencyMode::kCoarseLock &&
      ch.active_sims > 0) {
    // Vanilla: the exclusive lock waits for running simulations
    // (paper §4.2.1's "the block has to wait").
    return;
  }
  ch.commit_submitted = true;
  const fabric::CostModel& cost = config().cost;
  const std::shared_ptr<proto::Block>& block = ch.current_block;
  runtime::TimeMicros commit_service =
      cost.block_fixed_commit +
      cost.ledger_append_per_kb * (block->ByteSize() / 1024 + 1);
  for (const proto::Transaction& tx : block->transactions) {
    commit_service += cost.per_read * tx.rwset.reads.size() +
                      cost.commit_per_write * tx.rwset.writes.size();
  }
  const uint64_t epoch = crash_epoch_;
  cpu_for(channel).Submit(commit_service, [this, channel, epoch]() {
    if (crashed_ || epoch != crash_epoch_) return;
    FinishCommit(channel);
  });
}

void PeerNode::FinishCommit(uint32_t channel) {
  ChannelState& ch = channels_[channel];
  const std::shared_ptr<proto::Block> block = std::move(ch.current_block);

  // Integrity gate before any state mutation: the block must extend our
  // chain (number + previous-hash link) and carry the data it was sealed
  // with. ValidateAndCommit applies state writes before the ledger append,
  // so a tampered block caught only there would already have leaked writes.
  const bool intact = block->header.number == ch.ledger.Height() &&
                      block->header.previous_hash == ch.ledger.LastHash() &&
                      block->VerifyDataHash();
  if (!intact) {
    metrics().NoteCorruptedBlock();
    FABRICPP_LOG(Warn) << name_ << ": rejecting corrupted block "
                       << block->header.number << " on channel " << channel
                       << " at commit (bad chain link or data hash)";
    ResyncChannel(channel);
    if (config().concurrency == fabric::ConcurrencyMode::kCoarseLock) {
      std::deque<PendingSim> sims;
      sims.swap(ch.pending_sims);
      for (PendingSim& sim : sims) StartSimulation(channel, std::move(sim));
    }
    return;
  }

  const peer::BlockValidationResult result =
      validator_for(channel).ValidateAndCommit(*block, &ch.db, &ch.ledger);

  if (ctx_.directory->IsObserver(*this)) {
    // Host wall-clock of the two validation stages (plus the commit path's
    // wave breakdown) — kept outside the deterministic RunReport (it varies
    // with validator_workers / commit_workers).
    metrics().NoteValidationWallClock(result.verify_wall_ns,
                                      result.commit_wall_ns,
                                      result.commit_waves,
                                      result.commit_wave_wall_ns,
                                      result.commit_wave_max_ns);
    const runtime::TimeMicros now = clock_for(channel).Now();
    for (uint32_t i = 0; i < block->transactions.size(); ++i) {
      const proto::Transaction& tx = block->transactions[i];
      const fabric::TxOutcome outcome =
          fabric::OutcomeFromValidationCode(result.codes[i]);
      const std::string key = fabric::ProposalKey(tx.client, tx.proposal_id);
      const bool routed = ctx_.mesh->RoutesToClient(tx.client);
      if (routed) {
        // Client-fired work resolves at most once, even when a client-side
        // timeout raced this commit.
        metrics().ResolveFired(key, outcome, now);
      } else {
        // Externally injected transactions have no NoteFired entry.
        metrics().Resolve(key, outcome, now);
      }
      // Commit-event notification to the submitting client (Fabric's event
      // service); an aborted transaction triggers resubmission there.
      if (routed) {
        ctx_.mesh->SendOutcome(endpoint_for(channel), tx.client,
                               tx.proposal_id, result.codes[i]);
      }
    }
    metrics().NoteBlockCommitted(
        static_cast<uint32_t>(block->transactions.size()), now);
  }

  ch.validating = false;
  ch.commit_phase = false;
  ch.commit_submitted = false;
  // Vanilla: admit the queued simulations before the next block's commit
  // takes the exclusive lock again (reader batch between writers).
  if (config().concurrency == fabric::ConcurrencyMode::kCoarseLock) {
    std::deque<PendingSim> sims;
    sims.swap(ch.pending_sims);
    for (PendingSim& sim : sims) StartSimulation(channel, std::move(sim));
  }
  MaybeStartValidation(channel);
}

}  // namespace fabricpp::node
