#ifndef FABRICPP_NODE_PEER_NODE_H_
#define FABRICPP_NODE_PEER_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ledger/ledger.h"
#include "node/node_context.h"
#include "peer/endorser.h"
#include "peer/validator.h"
#include "proto/block.h"
#include "proto/transaction.h"
#include "runtime/runtime.h"
#include "statedb/state_db.h"

namespace fabricpp::node {

/// One peer of the network: endorsement (simulation phase) and validation +
/// commit, per channel.
///
/// Execution contexts: every handler and callback for a channel runs on
/// that channel's lane endpoint. Under the simulation runtime (and with
/// one channel) there is a single lane — the historical one-endpoint peer,
/// event order untouched. Under the thread runtime with multiple channels
/// the peer runs ChannelLaneCount commit lanes (per-lane endpoint,
/// executor, and validator; channels round-robin), so independent
/// channels endorse and commit in parallel. A channel's entire state lives
/// on exactly one lane — still single-writer, no locks on peer state.
/// Crash()/Restart() remain simulation-only (single lane).
class PeerNode {
 public:
  PeerNode(const NodeContext& ctx, uint32_t index, std::string name,
           std::string org);

  const std::string& name() const { return name_; }
  const std::string& org() const { return org_; }
  uint32_t index() const { return index_; }
  runtime::Endpoint& endpoint() { return *endpoint_; }
  runtime::NodeId node_id() const { return endpoint_->id(); }
  /// The lane endpoint channel `channel`'s pipeline runs on (== endpoint()
  /// under sim or with a single lane). Messages for the channel must be
  /// delivered here.
  runtime::Endpoint& endpoint_for(uint32_t channel) {
    return *lane_endpoints_[channel % lane_endpoints_.size()];
  }
  size_t num_lanes() const { return lane_endpoints_.size(); }

  /// Delivery of a proposal from a client (simulation phase entry).
  void HandleProposal(uint32_t channel, proto::Proposal proposal,
                      uint32_t client_index);

  /// Delivery of a block from the ordering service (validation entry).
  /// Blocks are admitted strictly in chain order: duplicates are discarded,
  /// out-of-order arrivals are buffered, tampered payloads are rejected, and
  /// a detected gap triggers a re-fetch from the orderer.
  void HandleBlock(uint32_t channel, std::shared_ptr<proto::Block> block);

  /// Orderer's reply to a block-fetch request: the highest block number it
  /// has dispatched so far on `channel`.
  void HandleChainInfo(uint32_t channel, uint64_t orderer_height);

  /// Asks the orderer to re-send blocks from next_accept on. Also the
  /// anti-entropy entry the composition root's SyncPeers drives.
  void RequestMissingBlocks(uint32_t channel);

  /// Crash simulation. Crash() drops everything in flight (running
  /// simulations, queued blocks, the validation pipeline) but keeps the
  /// durable state — ledger and state database — like a process kill on a
  /// machine with an intact disk. Restart() rejoins and catches up on
  /// missed blocks by fetching them from the orderer.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  /// Pre-warms every lane validator's verification-identity cache
  /// (composition root, once the full peer roster is known).
  void PrewarmIdentities(const std::vector<std::string>& names) {
    validator_.PrewarmIdentities(names);
    for (const auto& v : extra_validators_) v->PrewarmIdentities(names);
  }

  const ledger::Ledger& ledger(uint32_t channel) const {
    return channels_[channel].ledger;
  }
  const statedb::StateDb& state_db(uint32_t channel) const {
    return channels_[channel].db;
  }
  statedb::StateDb* mutable_state_db(uint32_t channel) {
    return &channels_[channel].db;
  }

  runtime::Executor& cpu() { return *cpu_; }

 private:
  struct PendingSim {
    proto::Proposal proposal;
    uint32_t client_index;
  };

  /// Per-channel peer state, including the vanilla coarse-lock bookkeeping
  /// (paper §4.2.1): simulations hold the shared side of the state lock;
  /// the block's *commit stage* (MVCC check + state update) needs the
  /// exclusive side. Endorsement-policy verification does not touch the
  /// state and runs outside the lock, as in Fabric 1.2.
  struct ChannelState {
    statedb::StateDb db;
    ledger::Ledger ledger;
    uint32_t active_sims = 0;
    /// A block is in the validation pipeline (serializes blocks).
    bool validating = false;
    /// The block finished policy checks and is waiting for / holding the
    /// exclusive lock; simulations queue while set (coarse mode).
    bool commit_phase = false;
    bool commit_submitted = false;
    std::shared_ptr<proto::Block> current_block;
    std::deque<PendingSim> pending_sims;
    std::deque<std::shared_ptr<proto::Block>> pending_blocks;
    /// Next block number this peer will admit into its pipeline. Blocks
    /// below it are duplicates; blocks above it wait in reorder_buffer.
    uint64_t next_accept = 1;
    /// Out-of-order arrivals, keyed by block number.
    std::map<uint64_t, std::shared_ptr<proto::Block>> reorder_buffer;
    bool fetch_timer_armed = false;
    /// Crash-recovery bookkeeping: set between Restart() and chain parity.
    bool recovering = false;
    runtime::TimeMicros restart_time = 0;
  };

  void StartSimulation(uint32_t channel, PendingSim sim);
  void FinishSimulation(uint32_t channel, uint32_t client_index,
                        uint64_t proposal_id,
                        Result<peer::EndorsementResponse> response);
  void MaybeStartValidation(uint32_t channel);
  void TryStartCommit(uint32_t channel);
  void FinishCommit(uint32_t channel);
  /// Moves contiguous buffered blocks into the validation queue.
  void DrainReorderBuffer(uint32_t channel);
  /// Arms a one-shot retry timer that re-fetches while a gap persists.
  void ArmFetchTimer(uint32_t channel);
  /// Resets the channel's block pipeline after a rejected (corrupted)
  /// block, so a clean copy can be re-fetched and admitted.
  void ResyncChannel(uint32_t channel);

  const fabric::FabricConfig& config() const { return *ctx_.config; }
  fabric::Metrics& metrics() { return *ctx_.metrics; }
  runtime::Clock& clock() { return endpoint_->clock(); }
  runtime::Transport& transport() { return ctx_.runtime->transport(); }

  // --- Per-lane context (index 0 is the primary endpoint/cpu/validator) ---
  uint32_t lane_for(uint32_t channel) const {
    return channel % static_cast<uint32_t>(lane_endpoints_.size());
  }
  runtime::Clock& clock_for(uint32_t channel) {
    return lane_endpoints_[lane_for(channel)]->clock();
  }
  runtime::Executor& cpu_for(uint32_t channel) {
    return *lane_cpus_[lane_for(channel)];
  }
  /// Validators are per lane: ParallelFor pools are single-user, so lanes
  /// committing concurrently must not share one.
  peer::Validator& validator_for(uint32_t channel) {
    const uint32_t lane = lane_for(channel);
    return lane == 0 ? validator_ : *extra_validators_[lane - 1];
  }

  NodeContext ctx_;
  uint32_t index_;
  std::string name_;
  std::string org_;
  runtime::Endpoint* endpoint_;
  runtime::Executor* cpu_;
  /// Shared across lanes: Endorse is const and the identity cache is
  /// internally synchronized.
  peer::Endorser endorser_;
  peer::Validator validator_;
  /// Lane contexts; [0] aliases the primary endpoint_/cpu_/validator_, and
  /// extra_validators_[i] belongs to lane i + 1.
  std::vector<runtime::Endpoint*> lane_endpoints_;
  std::vector<runtime::Executor*> lane_cpus_;
  std::vector<std::unique_ptr<peer::Validator>> extra_validators_;
  std::vector<ChannelState> channels_;
  /// Crash simulation is sim-only (single lane, single thread): never
  /// written under the thread runtime, so the cross-lane reads race-free.
  bool crashed_ = false;
  /// Bumped on every crash; CPU-job callbacks from before the crash carry
  /// the old epoch and turn into no-ops (the work died with the process).
  uint64_t crash_epoch_ = 0;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_PEER_NODE_H_
