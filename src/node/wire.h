#ifndef FABRICPP_NODE_WIRE_H_
#define FABRICPP_NODE_WIRE_H_

#include <cstdint>

namespace fabricpp::node {

/// Fixed per-message envelope overhead (headers, signatures) in bytes.
inline constexpr uint64_t kMessageOverhead = 300;

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_WIRE_H_
