#ifndef FABRICPP_NODE_WIRE_H_
#define FABRICPP_NODE_WIRE_H_

#include <cstdint>

namespace fabricpp::node {

/// Fixed per-message envelope overhead (headers, signatures) in bytes.
inline constexpr uint64_t kMessageOverhead = 300;

/// Explicit overload refusal from an endorser or the orderer: the node's
/// bounded admission queue is full, so instead of silently dropping the
/// proposal/transaction it tells the client to come back after
/// `retry_after_us`. The client treats this as an abort (kAbortBusy) and
/// resubmits no earlier than the hint — end-to-end backpressure, shedding
/// load back to the edge instead of collapsing the middle.
struct BusyResponse {
  uint64_t proposal_id = 0;
  /// Server-suggested minimum backoff before the retry, microseconds
  /// (config().busy_retry_hint). The client takes the max of this and its
  /// own exponential-backoff delay.
  uint64_t retry_after_us = 0;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_WIRE_H_
