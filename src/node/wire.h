#ifndef FABRICPP_NODE_WIRE_H_
#define FABRICPP_NODE_WIRE_H_

#include <cstdint>

#include "proto/block.h"

namespace fabricpp::node {

/// Fixed per-message envelope overhead (headers, signatures) in bytes.
inline constexpr uint64_t kMessageOverhead = 300;

/// Commit-schedule carriage (DESIGN.md §13). When
/// FabricConfig::ship_commit_schedule is on, the orderer attaches the
/// commit-stage wave partition to every block it cuts as the tagged
/// trailing section of the block encoding (proto::Block::commit_waves) —
/// *inside* the block rather than as a sibling message, so every path a
/// block travels (direct dispatch, gossip forwarding, refetch after loss,
/// peer reorder buffers, the ledger's block store) replicates the schedule
/// with it for free. The section is excluded from the sealed data hash:
/// peers treat it as an untrusted hint, validate it against the rwsets in
/// O(total-rwset), and recompute on any mismatch
/// (ordering::ValidateCommitWaves), so tampering with it in flight can at
/// worst cost the receiving peer that recompute. Schedule bytes do count
/// toward Block::ByteSize and therefore toward the modeled network and
/// ledger-append costs — which is why the knob defaults off and runs
/// without it stay byte-identical to pre-schedule builds.
inline constexpr uint8_t kCommitScheduleTag = proto::kCommitScheduleTag;

/// Explicit overload refusal from an endorser or the orderer: the node's
/// bounded admission queue is full, so instead of silently dropping the
/// proposal/transaction it tells the client to come back after
/// `retry_after_us`. The client treats this as an abort (kAbortBusy) and
/// resubmits no earlier than the hint — end-to-end backpressure, shedding
/// load back to the edge instead of collapsing the middle.
struct BusyResponse {
  uint64_t proposal_id = 0;
  /// Server-suggested minimum backoff before the retry, microseconds
  /// (config().busy_retry_hint). The client takes the max of this and its
  /// own exponential-backoff delay.
  uint64_t retry_after_us = 0;
};

}  // namespace fabricpp::node

#endif  // FABRICPP_NODE_WIRE_H_
