#include "ordering/alive_graph.h"

#include <algorithm>

#include "ordering/tarjan.h"

namespace fabricpp::ordering {

namespace {

/// Swap-with-back erase of one occurrence of `value` (lists hold no
/// duplicate neighbors, so one is all there is).
void SwapErase(std::vector<uint32_t>* list, uint32_t value) {
  const auto it = std::find(list->begin(), list->end(), value);
  if (it == list->end()) return;
  *it = list->back();
  list->pop_back();
}

}  // namespace

AliveGraph::AliveGraph(const ConflictGraph& graph)
    : adj_(graph.num_nodes()),
      radj_(graph.num_nodes()),
      alive_(graph.num_nodes(), true),
      num_alive_(graph.num_nodes()) {
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    adj_[v] = graph.Children(v);
    radj_[v] = graph.Parents(v);
  }
}

void AliveGraph::Kill(uint32_t v) {
  if (!alive_[v]) return;
  alive_[v] = false;
  --num_alive_;
  for (const uint32_t parent : radj_[v]) SwapErase(&adj_[parent], v);
  for (const uint32_t child : adj_[v]) SwapErase(&radj_[child], v);
  adj_[v].clear();
  adj_[v].shrink_to_fit();
  radj_[v].clear();
  radj_[v].shrink_to_fit();
}

std::vector<std::vector<uint32_t>> AliveGraph::NontrivialSccs() const {
  // Dead nodes have empty adjacency, so they fall out as trivial singleton
  // components — no alive-filtering pass needed.
  const auto sccs = StronglyConnectedComponents(
      static_cast<uint32_t>(adj_.size()),
      [this](uint32_t v) -> const std::vector<uint32_t>& { return adj_[v]; });
  std::vector<std::vector<uint32_t>> out;
  for (const auto& scc : sccs) {
    if (scc.size() > 1) out.push_back(scc);
  }
  return out;
}

}  // namespace fabricpp::ordering
