#ifndef FABRICPP_ORDERING_ALIVE_GRAPH_H_
#define FABRICPP_ORDERING_ALIVE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "ordering/conflict_graph.h"

namespace fabricpp::ordering {

/// Mutable view of a ConflictGraph restricted to the still-alive nodes,
/// with incremental edge/degree maintenance as victims die.
///
/// The reorderer's break-and-re-enumerate loop used to rebuild the whole
/// filtered adjacency from scratch every round (O(V+E) per round even when
/// a single victim died); this structure instead prunes exactly the dying
/// node's incident edges on Kill(), so a round's cost is proportional to
/// the degrees of that round's victims.
///
/// Adjacency lists are maintained *unsorted* (removal is a swap-with-back
/// erase). That is safe because every downstream consumer is neighbor-order
/// independent: Tarjan sorts its components and Johnson re-sorts its local
/// adjacency, so SCCs and enumerated cycles come out identical regardless
/// of list order — the determinism tests pin this down.
class AliveGraph {
 public:
  explicit AliveGraph(const ConflictGraph& graph);

  size_t num_nodes() const { return adj_.size(); }
  size_t num_alive() const { return num_alive_; }
  bool IsAlive(uint32_t v) const { return alive_[v]; }

  /// Alive children of v, unsorted. Empty for dead v.
  const std::vector<uint32_t>& Children(uint32_t v) const { return adj_[v]; }
  size_t OutDegree(uint32_t v) const { return adj_[v].size(); }
  size_t InDegree(uint32_t v) const { return radj_[v].size(); }

  /// The full children adjacency (dead nodes have empty lists) — the shape
  /// FindElementaryCycles and Tarjan consume.
  const std::vector<std::vector<uint32_t>>& adjacency() const { return adj_; }

  /// Removes v and its incident edges. Cost: O(deg(v) + sum of the
  /// neighbors' degrees touched by the swap-erase scans).
  void Kill(uint32_t v);

  /// Strongly connected components of the alive subgraph with more than one
  /// node, sorted ascending internally and ordered by smallest member
  /// (Tarjan's deterministic output contract).
  std::vector<std::vector<uint32_t>> NontrivialSccs() const;

 private:
  std::vector<std::vector<uint32_t>> adj_;   ///< Children among alive.
  std::vector<std::vector<uint32_t>> radj_;  ///< Parents among alive.
  std::vector<bool> alive_;
  size_t num_alive_ = 0;
};

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_ALIVE_GRAPH_H_
