#include "ordering/batch_cutter.h"

namespace fabricpp::ordering {

std::string_view CutReasonToString(CutReason reason) {
  switch (reason) {
    case CutReason::kTransactionCount:
      return "TRANSACTION_COUNT";
    case CutReason::kBytes:
      return "BYTES";
    case CutReason::kTimeout:
      return "TIMEOUT";
    case CutReason::kUniqueKeys:
      return "UNIQUE_KEYS";
  }
  return "UNKNOWN";
}

std::optional<Batch> BatchCutter::Add(proto::Transaction tx) {
  pending_bytes_ += tx.ByteSize();
  for (const proto::ReadItem& r : tx.rwset.reads) pending_keys_.insert(r.key);
  for (const proto::WriteItem& w : tx.rwset.writes) {
    pending_keys_.insert(w.key);
  }
  pending_.push_back(std::move(tx));

  if (pending_.size() >= config_.max_transactions) {
    return Flush(CutReason::kTransactionCount);
  }
  if (pending_bytes_ >= config_.max_bytes) {
    return Flush(CutReason::kBytes);
  }
  if (config_.max_unique_keys > 0 &&
      pending_keys_.size() >= config_.max_unique_keys) {
    return Flush(CutReason::kUniqueKeys);
  }
  return std::nullopt;
}

std::optional<Batch> BatchCutter::Flush(CutReason reason) {
  if (pending_.empty()) return std::nullopt;
  Batch batch;
  batch.transactions = std::move(pending_);
  batch.reason = reason;
  pending_.clear();
  pending_keys_.clear();
  pending_bytes_ = 0;
  return batch;
}

}  // namespace fabricpp::ordering
