#ifndef FABRICPP_ORDERING_BATCH_CUTTER_H_
#define FABRICPP_ORDERING_BATCH_CUTTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "proto/transaction.h"
#include "sim/time.h"

namespace fabricpp::ordering {

/// Why a batch was cut (paper §5.1.2 conditions (a)-(d)).
enum class CutReason {
  kTransactionCount,  ///< (a) the batch holds max_transactions.
  kBytes,             ///< (b) the batch reached max_bytes.
  kTimeout,           ///< (c) batch_timeout elapsed since the first tx.
  kUniqueKeys,        ///< (d) Fabric++ only: too many unique keys accessed.
};

std::string_view CutReasonToString(CutReason reason);

/// Batch-cutting configuration. The defaults mirror the paper's Table 5
/// system parameters (1024 txs, 2 MB, 1 s, 16384 unique keys).
struct BatchCutConfig {
  uint32_t max_transactions = 1024;
  uint64_t max_bytes = 2 * 1024 * 1024;
  sim::SimTime batch_timeout = 1 * sim::kSecond;
  /// Condition (d); 0 disables it (vanilla Fabric has no such condition —
  /// it exists to bound the reorderer's conflict-graph work).
  uint32_t max_unique_keys = 16384;
};

/// A finalized batch of transactions, ready to become a block.
struct Batch {
  std::vector<proto::Transaction> transactions;
  CutReason reason = CutReason::kTimeout;
};

/// Accumulates the orderer's incoming transaction stream and decides when
/// to "cut" a batch (paper §5.1.2). Pure logic: the timeout condition is
/// driven by the caller (fabric::OrdererNode owns the virtual-time timer
/// and calls Flush when it fires).
class BatchCutter {
 public:
  explicit BatchCutter(BatchCutConfig config) : config_(config) {}

  /// Adds a transaction. Returns a cut batch when the addition completed
  /// one (conditions (a), (b) or (d)); the new batch is then already empty.
  std::optional<Batch> Add(proto::Transaction tx);

  /// Cuts whatever is pending (the timeout path); nullopt when empty.
  std::optional<Batch> Flush(CutReason reason = CutReason::kTimeout);

  size_t pending_transactions() const { return pending_.size(); }
  uint64_t pending_bytes() const { return pending_bytes_; }
  size_t pending_unique_keys() const { return pending_keys_.size(); }
  const BatchCutConfig& config() const { return config_; }

 private:
  BatchCutConfig config_;
  std::vector<proto::Transaction> pending_;
  std::unordered_set<std::string> pending_keys_;
  uint64_t pending_bytes_ = 0;
};

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_BATCH_CUTTER_H_
