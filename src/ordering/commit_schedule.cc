#include "ordering/commit_schedule.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace fabricpp::ordering {

namespace {

/// Last-seen wave of the writers / readers of one key, while scanning the
/// block in order. Waves are monotone per key (a later toucher is never
/// forced *below* an earlier one), so maxima are enough.
struct KeyWaves {
  int64_t max_writer_wave = -1;
  int64_t max_reader_wave = -1;
};

/// The earliest wave rwsets[i] may occupy given the keys touched so far.
/// Keys are viewed, not copied — the map borrows the rwsets' storage.
int64_t EarliestWave(
    const proto::ReadWriteSet& set,
    const std::unordered_map<std::string_view, KeyWaves>& key_waves) {
  int64_t wave = 0;
  for (const proto::ReadItem& r : set.reads) {
    const auto it = key_waves.find(std::string_view(r.key));
    if (it != key_waves.end()) {
      // True dependency: an earlier writer's barrier must precede this
      // transaction's snapshot.
      wave = std::max(wave, it->second.max_writer_wave + 1);
    }
  }
  for (const proto::WriteItem& w : set.writes) {
    const auto it = key_waves.find(std::string_view(w.key));
    if (it != key_waves.end()) {
      // Output dependency: never overtake an earlier writer's barrier.
      // Anti dependency: never bump a version an earlier reader's wave has
      // not checked yet. Both allow sharing the wave (>=, not >).
      wave = std::max(wave, it->second.max_writer_wave);
      wave = std::max(wave, it->second.max_reader_wave);
    }
  }
  return wave;
}

void RecordWave(const proto::ReadWriteSet& set, int64_t wave,
                std::unordered_map<std::string_view, KeyWaves>* key_waves) {
  for (const proto::ReadItem& r : set.reads) {
    KeyWaves& kw = (*key_waves)[std::string_view(r.key)];
    kw.max_reader_wave = std::max(kw.max_reader_wave, wave);
  }
  for (const proto::WriteItem& w : set.writes) {
    KeyWaves& kw = (*key_waves)[std::string_view(w.key)];
    kw.max_writer_wave = std::max(kw.max_writer_wave, wave);
  }
}

}  // namespace

std::vector<uint32_t> ComputeCommitWaves(
    const std::vector<const proto::ReadWriteSet*>& rwsets) {
  std::vector<uint32_t> waves(rwsets.size(), 0);
  std::unordered_map<std::string_view, KeyWaves> key_waves;
  key_waves.reserve(rwsets.size());
  for (size_t i = 0; i < rwsets.size(); ++i) {
    const int64_t wave = EarliestWave(*rwsets[i], key_waves);
    waves[i] = static_cast<uint32_t>(wave);
    RecordWave(*rwsets[i], wave, &key_waves);
  }
  return waves;
}

bool ValidateCommitWaves(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const std::vector<uint32_t>& waves) {
  if (waves.size() != rwsets.size()) return false;
  std::unordered_map<std::string_view, KeyWaves> key_waves;
  key_waves.reserve(rwsets.size());
  for (size_t i = 0; i < rwsets.size(); ++i) {
    const int64_t wave = static_cast<int64_t>(waves[i]);
    // A valid partition never needs more waves than transactions; anything
    // above is either garbage or an attempt to stall the commit stage.
    if (waves[i] >= rwsets.size()) return false;
    if (wave < EarliestWave(*rwsets[i], key_waves)) return false;
    RecordWave(*rwsets[i], wave, &key_waves);
  }
  return true;
}

uint32_t NumCommitWaves(const std::vector<uint32_t>& waves) {
  uint32_t num = 0;
  for (const uint32_t w : waves) num = std::max(num, w + 1);
  return num;
}

}  // namespace fabricpp::ordering
