#ifndef FABRICPP_ORDERING_COMMIT_SCHEDULE_H_
#define FABRICPP_ORDERING_COMMIT_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "proto/rwset.h"

namespace fabricpp::ordering {

/// Dependency-aware commit scheduling (DESIGN.md §13): a wave / level
/// partition of a block's residual read-write conflict graph. Transactions
/// in the same wave can have their MVCC checks evaluated concurrently
/// against a snapshot of the versions visible at the wave boundary; valid
/// writes are then applied sequentially, in block order, at the barrier
/// between waves. Grounded in "Dependency-Aware Execution Mechanism in
/// Hyperledger Fabric" (arXiv 2509.07425) and OXII's lockless isolation
/// (arXiv 1911.12711).
///
/// Wave invariants, for block positions i < j (earlier tx first):
///  - writes(i) ∩ reads(j) ≠ ∅  =>  wave[j] >  wave[i]   (true dependency:
///    j's MVCC check must see i's version bump, which lands at i's barrier)
///  - reads(i) ∩ writes(j) ≠ ∅  =>  wave[j] >= wave[i]   (anti dependency:
///    i must not see j's bump — same wave is fine, checks read a snapshot)
///  - writes(i) ∩ writes(j) ≠ ∅ =>  wave[j] >= wave[i]   (output dependency:
///    the barrier applies same-wave writes in block order, so j still wins)
///
/// Any wave assignment satisfying these yields verdicts and final state
/// identical to the sequential commit loop — which is why a schedule shipped
/// by an untrusted orderer only needs to be *validated* (one O(total-rwset)
/// pass), never trusted: a bogus schedule is discarded and recomputed, and
/// the worst a malicious orderer can do is serialize the commit stage.
///
/// Duplicate-txid verdicts are intentionally not modeled here: they are a
/// pure function of the ledger and the block order (schedule-independent),
/// so the validator resolves them in a sequential pre-pass.

/// Computes the canonical (greedy, earliest-possible) wave for every
/// transaction: waves[i] is the 0-based wave of rwsets[i]. Single pass,
/// O(total rwset size) expected. A conflict-free block collapses to one
/// wave; a single-hot-key write workload degenerates to waves[i] == i
/// (sequential). Deterministic in the rwsets alone.
std::vector<uint32_t> ComputeCommitWaves(
    const std::vector<const proto::ReadWriteSet*>& rwsets);

/// Checks a (possibly orderer-shipped) wave assignment against the three
/// invariants above. Same single pass as ComputeCommitWaves; accepts any
/// valid partition, not just the canonical one, but rejects waves beyond
/// rwsets.size() (a valid schedule never needs more waves than
/// transactions). Returns false on size mismatch.
bool ValidateCommitWaves(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const std::vector<uint32_t>& waves);

/// Number of waves in an assignment (max + 1; 0 for an empty block).
uint32_t NumCommitWaves(const std::vector<uint32_t>& waves);

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_COMMIT_SCHEDULE_H_
