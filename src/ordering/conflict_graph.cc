#include "ordering/conflict_graph.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace fabricpp::ordering {

namespace {

/// What one worker extracts from its contiguous transaction shard: a local
/// key dictionary plus the shard's slice of the inverted index. Local key
/// ids are in shard-local first-seen order; the merge below renumbers them
/// into the global first-seen order.
struct ShardScan {
  KeyDictionary dict;
  std::vector<std::string_view> keys;  ///< local id -> key.
  std::vector<std::vector<uint32_t>> readers;  ///< local id -> global tx ids.
  std::vector<std::vector<uint32_t>> writers;
  /// Per transaction (shard offset), the local ids of the keys it writes —
  /// kept so edge generation can run per-transaction without re-hashing.
  std::vector<std::vector<uint32_t>> tx_write_keys;
};

}  // namespace

void ConflictGraph::Finalize(ThreadPool* pool) {
  auto sort_one = [this](size_t i) {
    auto& c = children_[i];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  };
  if (pool != nullptr && pool->parallelism() > 1 && children_.size() > 1) {
    pool->ParallelFor(children_.size(), sort_one);
  } else {
    for (size_t i = 0; i < children_.size(); ++i) sort_one(i);
  }
  num_edges_ = 0;
  for (const auto& c : children_) num_edges_ += c.size();
  parents_.assign(children_.size(), {});
  for (uint32_t i = 0; i < children_.size(); ++i) {
    for (const uint32_t j : children_[i]) parents_[j].push_back(i);
  }
  // Parents come out sorted because children are visited in ascending i.
}

ConflictGraph ConflictGraph::Build(
    const std::vector<const proto::ReadWriteSet*>& rwsets, ThreadPool* pool) {
  ConflictGraph g;
  const uint32_t n = static_cast<uint32_t>(rwsets.size());
  g.children_.assign(n, {});

  const uint32_t shards =
      pool == nullptr ? 1 : std::min<uint32_t>(pool->parallelism(), n);

  if (shards <= 1) {
    // Serial path (also the reference the parallel path must match).
    KeyDictionary dict;
    std::vector<std::vector<uint32_t>> readers;
    std::vector<std::vector<uint32_t>> writers;
    auto ensure = [&](uint32_t key_id) {
      if (key_id >= readers.size()) {
        readers.resize(key_id + 1);
        writers.resize(key_id + 1);
      }
    };
    for (uint32_t i = 0; i < n; ++i) {
      for (const proto::ReadItem& r : rwsets[i]->reads) {
        const uint32_t k = dict.Intern(r.key);
        ensure(k);
        readers[k].push_back(i);
      }
      for (const proto::WriteItem& w : rwsets[i]->writes) {
        const uint32_t k = dict.Intern(w.key);
        ensure(k);
        writers[k].push_back(i);
      }
    }
    g.num_unique_keys_ = dict.size();

    for (uint32_t k = 0; k < readers.size(); ++k) {
      if (readers[k].empty() || writers[k].empty()) continue;
      for (const uint32_t w : writers[k]) {
        for (const uint32_t r : readers[k]) {
          if (w != r) g.children_[w].push_back(r);
        }
      }
    }
    g.Finalize();
    return g;
  }

  // --- Parallel build ---
  //
  // Phase 1 (parallel): each worker scans a contiguous transaction range
  // into a private dictionary + inverted index. No shared state.
  const uint32_t per_shard = (n + shards - 1) / shards;
  auto shard_begin = [&](uint32_t s) { return std::min(n, s * per_shard); };
  std::vector<ShardScan> scans(shards);
  pool->ParallelFor(shards, [&](size_t s) {
    ShardScan& scan = scans[s];
    const uint32_t begin = shard_begin(static_cast<uint32_t>(s));
    const uint32_t end = shard_begin(static_cast<uint32_t>(s) + 1);
    scan.tx_write_keys.resize(end - begin);
    auto intern = [&scan](std::string_view key) {
      const uint32_t k = scan.dict.Intern(key);
      if (k == scan.keys.size()) {
        scan.keys.push_back(key);
        scan.readers.emplace_back();
        scan.writers.emplace_back();
      }
      return k;
    };
    for (uint32_t i = begin; i < end; ++i) {
      for (const proto::ReadItem& r : rwsets[i]->reads) {
        scan.readers[intern(r.key)].push_back(i);
      }
      for (const proto::WriteItem& w : rwsets[i]->writes) {
        const uint32_t k = intern(w.key);
        scan.writers[k].push_back(i);
        scan.tx_write_keys[i - begin].push_back(k);
      }
    }
  });

  // Phase 2 (serial, the deterministic merge boundary): renumber the shard
  // dictionaries into one global dictionary, visiting shards in transaction
  // order. A key's global id is therefore its batch-wide first-seen rank and
  // the concatenated reader/writer lists stay ascending — byte-identical to
  // the serial build, independent of how phase 1's workers interleaved.
  KeyDictionary dict;
  std::vector<std::vector<uint32_t>> readers;
  std::vector<std::vector<uint32_t>> writers;
  std::vector<std::vector<uint32_t>> local_to_global(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    ShardScan& scan = scans[s];
    local_to_global[s].resize(scan.keys.size());
    for (uint32_t l = 0; l < scan.keys.size(); ++l) {
      const uint32_t k = dict.Intern(scan.keys[l]);
      local_to_global[s][l] = k;
      if (k >= readers.size()) {
        readers.resize(k + 1);
        writers.resize(k + 1);
      }
      auto append = [](std::vector<uint32_t>* dst, std::vector<uint32_t>* src) {
        if (dst->empty()) {
          *dst = std::move(*src);
        } else {
          dst->insert(dst->end(), src->begin(), src->end());
        }
      };
      append(&readers[k], &scan.readers[l]);
      append(&writers[k], &scan.writers[l]);
    }
  }
  g.num_unique_keys_ = dict.size();

  // Phase 3 (parallel): edge generation. Each worker owns the adjacency of
  // its own transaction range, reading the now-immutable inverted index.
  pool->ParallelFor(shards, [&](size_t s) {
    const ShardScan& scan = scans[s];
    const uint32_t begin = shard_begin(static_cast<uint32_t>(s));
    const uint32_t end = shard_begin(static_cast<uint32_t>(s) + 1);
    for (uint32_t i = begin; i < end; ++i) {
      for (const uint32_t l : scan.tx_write_keys[i - begin]) {
        for (const uint32_t r : readers[local_to_global[s][l]]) {
          if (r != i) g.children_[i].push_back(r);
        }
      }
    }
  });

  g.Finalize(pool);
  return g;
}

ConflictGraph ConflictGraph::BuildDense(
    const std::vector<const proto::ReadWriteSet*>& rwsets) {
  ConflictGraph g;
  const uint32_t n = static_cast<uint32_t>(rwsets.size());
  g.children_.assign(n, {});

  KeyDictionary dict;
  // Bit-vectors vec_r(Ti) / vec_w(Ti) over the unique keys, as in the
  // paper's Table 3.
  std::vector<std::vector<uint64_t>> read_bits(n);
  std::vector<std::vector<uint64_t>> write_bits(n);
  auto set_bit = [](std::vector<uint64_t>& bits, uint32_t k) {
    const size_t word = k / 64;
    if (word >= bits.size()) bits.resize(word + 1, 0);
    bits[word] |= (1ULL << (k % 64));
  };
  for (uint32_t i = 0; i < n; ++i) {
    for (const proto::ReadItem& r : rwsets[i]->reads) {
      set_bit(read_bits[i], dict.Intern(r.key));
    }
    for (const proto::WriteItem& w : rwsets[i]->writes) {
      set_bit(write_bits[i], dict.Intern(w.key));
    }
  }
  g.num_unique_keys_ = dict.size();

  auto intersects = [](const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
    const size_t words = std::min(a.size(), b.size());
    for (size_t w = 0; w < words; ++w) {
      if ((a[w] & b[w]) != 0) return true;
    }
    return false;
  };

  // Edge i -> j iff vec_w(Ti) & vec_r(Tj) != 0 (paper step 1).
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (intersects(write_bits[i], read_bits[j])) g.children_[i].push_back(j);
    }
  }
  g.Finalize();
  return g;
}

bool ConflictGraph::HasEdge(uint32_t from, uint32_t to) const {
  const auto& c = children_[from];
  return std::binary_search(c.begin(), c.end(), to);
}

}  // namespace fabricpp::ordering
