#include "ordering/conflict_graph.h"

#include <algorithm>

namespace fabricpp::ordering {

namespace {

/// Assigns a dense index to every distinct key in the batch.
struct KeyDictionary {
  std::unordered_map<std::string, uint32_t> index;

  uint32_t Intern(const std::string& key) {
    const auto [it, inserted] =
        index.emplace(key, static_cast<uint32_t>(index.size()));
    (void)inserted;
    return it->second;
  }
};

}  // namespace

void ConflictGraph::Finalize() {
  num_edges_ = 0;
  for (auto& c : children_) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    num_edges_ += c.size();
  }
  parents_.assign(children_.size(), {});
  for (uint32_t i = 0; i < children_.size(); ++i) {
    for (const uint32_t j : children_[i]) parents_[j].push_back(i);
  }
  // Parents come out sorted because children are visited in ascending i.
}

ConflictGraph ConflictGraph::Build(
    const std::vector<const proto::ReadWriteSet*>& rwsets) {
  ConflictGraph g;
  const uint32_t n = static_cast<uint32_t>(rwsets.size());
  g.children_.assign(n, {});

  KeyDictionary dict;
  // Inverted index: key -> (readers, writers).
  std::vector<std::vector<uint32_t>> readers;
  std::vector<std::vector<uint32_t>> writers;
  auto ensure = [&](uint32_t key_id) {
    if (key_id >= readers.size()) {
      readers.resize(key_id + 1);
      writers.resize(key_id + 1);
    }
  };
  for (uint32_t i = 0; i < n; ++i) {
    for (const proto::ReadItem& r : rwsets[i]->reads) {
      const uint32_t k = dict.Intern(r.key);
      ensure(k);
      readers[k].push_back(i);
    }
    for (const proto::WriteItem& w : rwsets[i]->writes) {
      const uint32_t k = dict.Intern(w.key);
      ensure(k);
      writers[k].push_back(i);
    }
  }
  g.num_unique_keys_ = dict.index.size();

  for (uint32_t k = 0; k < readers.size(); ++k) {
    if (readers[k].empty() || writers[k].empty()) continue;
    for (const uint32_t w : writers[k]) {
      for (const uint32_t r : readers[k]) {
        if (w != r) g.children_[w].push_back(r);
      }
    }
  }
  g.Finalize();
  return g;
}

ConflictGraph ConflictGraph::BuildDense(
    const std::vector<const proto::ReadWriteSet*>& rwsets) {
  ConflictGraph g;
  const uint32_t n = static_cast<uint32_t>(rwsets.size());
  g.children_.assign(n, {});

  KeyDictionary dict;
  // Bit-vectors vec_r(Ti) / vec_w(Ti) over the unique keys, as in the
  // paper's Table 3.
  std::vector<std::vector<uint64_t>> read_bits(n);
  std::vector<std::vector<uint64_t>> write_bits(n);
  auto set_bit = [](std::vector<uint64_t>& bits, uint32_t k) {
    const size_t word = k / 64;
    if (word >= bits.size()) bits.resize(word + 1, 0);
    bits[word] |= (1ULL << (k % 64));
  };
  for (uint32_t i = 0; i < n; ++i) {
    for (const proto::ReadItem& r : rwsets[i]->reads) {
      set_bit(read_bits[i], dict.Intern(r.key));
    }
    for (const proto::WriteItem& w : rwsets[i]->writes) {
      set_bit(write_bits[i], dict.Intern(w.key));
    }
  }
  g.num_unique_keys_ = dict.index.size();

  auto intersects = [](const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
    const size_t words = std::min(a.size(), b.size());
    for (size_t w = 0; w < words; ++w) {
      if ((a[w] & b[w]) != 0) return true;
    }
    return false;
  };

  // Edge i -> j iff vec_w(Ti) & vec_r(Tj) != 0 (paper step 1).
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (intersects(write_bits[i], read_bits[j])) g.children_[i].push_back(j);
    }
  }
  g.Finalize();
  return g;
}

bool ConflictGraph::HasEdge(uint32_t from, uint32_t to) const {
  const auto& c = children_[from];
  return std::binary_search(c.begin(), c.end(), to);
}

}  // namespace fabricpp::ordering
