#ifndef FABRICPP_ORDERING_CONFLICT_GRAPH_H_
#define FABRICPP_ORDERING_CONFLICT_GRAPH_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "proto/rwset.h"

namespace fabricpp {
class ThreadPool;
}  // namespace fabricpp

namespace fabricpp::ordering {

/// Assigns a dense index to every distinct key in a batch, in first-seen
/// order. Interns by std::string_view over the caller's key storage — the
/// batch's read/write sets own their key strings and outlive the graph
/// build, so no per-key copies or allocations beyond the hash table are
/// made (the seed version keyed the map by std::string, copying every key).
class KeyDictionary {
 public:
  /// Returns the key's dense id, assigning the next one on first sight.
  /// The view must stay valid for the dictionary's lifetime.
  uint32_t Intern(std::string_view key) {
    const auto [it, inserted] =
        index_.emplace(key, static_cast<uint32_t>(index_.size()));
    (void)inserted;
    return it->second;
  }

  size_t size() const { return index_.size(); }

 private:
  std::unordered_map<std::string_view, uint32_t> index_;
};

/// Read-write conflict graph of a batch of transactions (paper §5.1
/// step 1 / Figure 3).
///
/// Nodes are batch positions 0..n-1. There is an edge i -> j iff
/// transaction i *writes* a key that transaction j *reads* (i != j). In the
/// paper's notation this is the conflict Ti ⤳ Tj, which forces Tj to be
/// ordered *before* Ti in a serializable schedule (the reader must commit
/// before the writer invalidates its read). Following the paper's Figure 5
/// traversal we call i the *parent* (writer) and j the *child* (reader).
///
/// Construction uses a per-key inverted index (writers x readers) instead
/// of the paper's n^2 bit-vector intersection: identical output, but the
/// cost scales with the number of actual conflicts rather than always
/// quadratically. A bit-vector build is kept for differential testing
/// (BuildDense) and matches the paper's Table 3 description.
class ConflictGraph {
 public:
  /// Builds the graph from the batch's read/write sets (not owned; they
  /// must outlive the call — key interning borrows their storage).
  ///
  /// With a non-null `pool`, the rwset scan, edge generation and adjacency
  /// finalization fan out across its workers. The transaction range is
  /// sharded contiguously and the per-shard key dictionaries are merged in
  /// shard order, so key ids, inverted-index entries and the resulting
  /// adjacency are byte-identical to the serial build for any worker count
  /// (see DESIGN.md §10 on the deterministic merge boundary).
  static ConflictGraph Build(
      const std::vector<const proto::ReadWriteSet*>& rwsets,
      ThreadPool* pool = nullptr);

  /// Reference n^2 bit-vector construction (paper §5.1 step 1).
  static ConflictGraph BuildDense(
      const std::vector<const proto::ReadWriteSet*>& rwsets);

  size_t num_nodes() const { return children_.size(); }
  size_t num_edges() const { return num_edges_; }
  size_t num_unique_keys() const { return num_unique_keys_; }

  /// Outgoing edges of node i (readers of keys i writes), ascending.
  const std::vector<uint32_t>& Children(uint32_t i) const {
    return children_[i];
  }
  /// Incoming edges of node i (writers of keys i reads), ascending.
  const std::vector<uint32_t>& Parents(uint32_t i) const {
    return parents_[i];
  }

  bool HasEdge(uint32_t from, uint32_t to) const;

 private:
  ConflictGraph() = default;
  void Finalize(ThreadPool* pool = nullptr);

  std::vector<std::vector<uint32_t>> children_;
  std::vector<std::vector<uint32_t>> parents_;
  size_t num_edges_ = 0;
  size_t num_unique_keys_ = 0;
};

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_CONFLICT_GRAPH_H_
