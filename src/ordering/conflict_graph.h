#ifndef FABRICPP_ORDERING_CONFLICT_GRAPH_H_
#define FABRICPP_ORDERING_CONFLICT_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/rwset.h"

namespace fabricpp::ordering {

/// Read-write conflict graph of a batch of transactions (paper §5.1
/// step 1 / Figure 3).
///
/// Nodes are batch positions 0..n-1. There is an edge i -> j iff
/// transaction i *writes* a key that transaction j *reads* (i != j). In the
/// paper's notation this is the conflict Ti ⤳ Tj, which forces Tj to be
/// ordered *before* Ti in a serializable schedule (the reader must commit
/// before the writer invalidates its read). Following the paper's Figure 5
/// traversal we call i the *parent* (writer) and j the *child* (reader).
///
/// Construction uses a per-key inverted index (writers x readers) instead
/// of the paper's n^2 bit-vector intersection: identical output, but the
/// cost scales with the number of actual conflicts rather than always
/// quadratically. A bit-vector build is kept for differential testing
/// (BuildDense) and matches the paper's Table 3 description.
class ConflictGraph {
 public:
  /// Builds the graph from the batch's read/write sets (not owned).
  static ConflictGraph Build(
      const std::vector<const proto::ReadWriteSet*>& rwsets);

  /// Reference n^2 bit-vector construction (paper §5.1 step 1).
  static ConflictGraph BuildDense(
      const std::vector<const proto::ReadWriteSet*>& rwsets);

  size_t num_nodes() const { return children_.size(); }
  size_t num_edges() const { return num_edges_; }
  size_t num_unique_keys() const { return num_unique_keys_; }

  /// Outgoing edges of node i (readers of keys i writes), ascending.
  const std::vector<uint32_t>& Children(uint32_t i) const {
    return children_[i];
  }
  /// Incoming edges of node i (writers of keys i reads), ascending.
  const std::vector<uint32_t>& Parents(uint32_t i) const {
    return parents_[i];
  }

  bool HasEdge(uint32_t from, uint32_t to) const;

 private:
  ConflictGraph() = default;
  void Finalize();

  std::vector<std::vector<uint32_t>> children_;
  std::vector<std::vector<uint32_t>> parents_;
  size_t num_edges_ = 0;
  size_t num_unique_keys_ = 0;
};

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_CONFLICT_GRAPH_H_
