#include "ordering/early_abort.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "proto/version.h"

namespace fabricpp::ordering {

std::vector<uint32_t> FindVersionSkewAborts(
    const std::vector<const proto::ReadWriteSet*>& rwsets) {
  // Newest version observed per key across the whole batch.
  std::unordered_map<std::string, proto::Version> newest;
  for (const proto::ReadWriteSet* set : rwsets) {
    for (const proto::ReadItem& r : set->reads) {
      auto [it, inserted] = newest.emplace(r.key, r.version);
      if (!inserted && it->second < r.version) it->second = r.version;
    }
  }

  std::vector<uint32_t> aborts;
  for (uint32_t i = 0; i < rwsets.size(); ++i) {
    for (const proto::ReadItem& r : rwsets[i]->reads) {
      if (r.version < newest.at(r.key)) {
        // This transaction simulated against a state older than a sibling
        // in the same block: it is doomed (paper §5.2.2, corrected).
        aborts.push_back(i);
        break;
      }
    }
  }
  return aborts;  // Already ascending by construction.
}

}  // namespace fabricpp::ordering
