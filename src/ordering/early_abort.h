#ifndef FABRICPP_ORDERING_EARLY_ABORT_H_
#define FABRICPP_ORDERING_EARLY_ABORT_H_

#include <cstdint>
#include <vector>

#include "proto/rwset.h"

namespace fabricpp::ordering {

/// Early abort in the ordering phase (paper §5.2.2): within one block, all
/// transactions that read a key must have read the *same version* of it —
/// the block commits atomically, so two different versions prove that a
/// block committed between the two simulations and the transaction holding
/// the OLDER version can never pass validation.
///
/// (The paper's example text says the later transaction aborts; its
/// published correction clarifies it is the transaction with the older read
/// version — T6, not T7 — and that is what we implement.)
///
/// Returns the batch positions to abort, sorted ascending.
std::vector<uint32_t> FindVersionSkewAborts(
    const std::vector<const proto::ReadWriteSet*>& rwsets);

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_EARLY_ABORT_H_
