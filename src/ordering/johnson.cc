#include "ordering/johnson.h"

#include <algorithm>
#include <unordered_set>

#include "ordering/tarjan.h"

namespace fabricpp::ordering {

namespace {

/// Johnson's elementary-circuit search over a local (dense-index) graph.
class JohnsonEnumerator {
 public:
  JohnsonEnumerator(std::vector<std::vector<uint32_t>> local_adj,
                    std::vector<uint32_t> local_to_global, uint64_t max_cycles)
      : adj_(std::move(local_adj)),
        local_to_global_(std::move(local_to_global)),
        max_cycles_(max_cycles),
        n_(static_cast<uint32_t>(adj_.size())),
        blocked_(n_, false),
        b_sets_(n_) {}

  CycleEnumeration Run() {
    // Classic Johnson outer loop: for ascending start vertex s, work on the
    // SCC (within the subgraph induced by vertices >= s) that contains the
    // least vertex; enumerate all circuits through that vertex; advance s.
    uint32_t s = 0;
    while (s < n_ && !out_.budget_exhausted) {
      const auto scc = LeastScc(s);
      if (scc.empty()) break;
      const uint32_t start = *std::min_element(scc.begin(), scc.end());
      in_current_scc_.assign(n_, false);
      for (const uint32_t v : scc) in_current_scc_[v] = true;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& b : b_sets_) b.clear();
      s = start;
      Circuit(start, start);
      ++s;
    }
    return std::move(out_);
  }

 private:
  /// Returns the nodes of the SCC containing the smallest vertex >= s that
  /// lies in a non-trivial SCC of the induced subgraph; empty if none.
  std::vector<uint32_t> LeastScc(uint32_t s) {
    // Children filtered to the subgraph {v >= s}.
    std::vector<std::vector<uint32_t>> filtered(n_);
    for (uint32_t v = s; v < n_; ++v) {
      for (const uint32_t w : adj_[v]) {
        if (w >= s) filtered[v].push_back(w);
      }
    }
    const auto sccs = StronglyConnectedComponents(
        n_, [&](uint32_t v) -> const std::vector<uint32_t>& {
          return filtered[v];
        });
    std::vector<uint32_t> best;
    uint32_t best_min = ~0u;
    for (const auto& comp : sccs) {
      if (comp.size() < 2) continue;
      if (comp.front() < s) continue;  // Entirely within the subgraph only.
      if (comp.front() < best_min) {
        best_min = comp.front();
        best = comp;
      }
    }
    return best;
  }

  bool Circuit(uint32_t v, uint32_t start) {
    if (out_.budget_exhausted) return false;
    bool found = false;
    stack_.push_back(v);
    blocked_[v] = true;
    for (const uint32_t w : adj_[v]) {
      if (!in_current_scc_[w] || w < start) continue;
      if (w == start) {
        EmitCycle();
        found = true;
        if (out_.cycles.size() >= max_cycles_) {
          out_.budget_exhausted = true;
          break;
        }
      } else if (!blocked_[w]) {
        if (Circuit(w, start)) found = true;
        if (out_.budget_exhausted) break;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (const uint32_t w : adj_[v]) {
        if (!in_current_scc_[w] || w < start) continue;
        b_sets_[w].insert(v);
      }
    }
    stack_.pop_back();
    return found;
  }

  void Unblock(uint32_t v) {
    blocked_[v] = false;
    auto pending = std::move(b_sets_[v]);
    b_sets_[v].clear();
    for (const uint32_t w : pending) {
      if (blocked_[w]) Unblock(w);
    }
  }

  void EmitCycle() {
    std::vector<uint32_t> cycle;
    cycle.reserve(stack_.size());
    for (const uint32_t v : stack_) cycle.push_back(local_to_global_[v]);
    // The stack starts at the smallest vertex of the SCC search, so the
    // cycle is already rotated to its smallest local id.
    out_.cycles.push_back(std::move(cycle));
  }

  std::vector<std::vector<uint32_t>> adj_;
  std::vector<uint32_t> local_to_global_;
  uint64_t max_cycles_;
  uint32_t n_;
  std::vector<bool> blocked_;
  std::vector<std::unordered_set<uint32_t>> b_sets_;
  std::vector<bool> in_current_scc_;
  std::vector<uint32_t> stack_;
  CycleEnumeration out_;
};

}  // namespace

CycleEnumeration FindElementaryCycles(
    const std::vector<std::vector<uint32_t>>& adjacency,
    const std::vector<uint32_t>& nodes, uint64_t max_cycles) {
  // Re-index the SCC's nodes densely.
  std::vector<uint32_t> sorted_nodes = nodes;
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  std::vector<uint32_t> global_to_local(
      sorted_nodes.empty() ? 0 : sorted_nodes.back() + 1, ~0u);
  for (uint32_t i = 0; i < sorted_nodes.size(); ++i) {
    global_to_local[sorted_nodes[i]] = i;
  }
  std::vector<std::vector<uint32_t>> local_adj(sorted_nodes.size());
  for (uint32_t i = 0; i < sorted_nodes.size(); ++i) {
    for (const uint32_t w : adjacency[sorted_nodes[i]]) {
      if (w < global_to_local.size() && global_to_local[w] != ~0u) {
        local_adj[i].push_back(global_to_local[w]);
      }
    }
    std::sort(local_adj[i].begin(), local_adj[i].end());
  }
  JohnsonEnumerator enumerator(std::move(local_adj), std::move(sorted_nodes),
                               max_cycles);
  return enumerator.Run();
}

}  // namespace fabricpp::ordering
