#ifndef FABRICPP_ORDERING_JOHNSON_H_
#define FABRICPP_ORDERING_JOHNSON_H_

#include <cstdint>
#include <vector>

namespace fabricpp::ordering {

/// Result of elementary-cycle enumeration.
struct CycleEnumeration {
  /// Each cycle is the list of node ids along it (no repeated endpoint).
  std::vector<std::vector<uint32_t>> cycles;
  /// True when enumeration stopped early because `max_cycles` was reached.
  /// The caller (the reorderer) must then iterate: break the cycles found so
  /// far and re-run, since uncounted cycles may remain (DESIGN.md §5).
  bool budget_exhausted = false;
};

/// Johnson's algorithm for all elementary circuits of a directed graph
/// (paper §5.1 step 2, citing [15]), bounded by `max_cycles`.
///
/// `adjacency` is the full graph; `nodes` restricts enumeration to the
/// induced subgraph on those node ids (the strongly connected subgraphs
/// Tarjan produced — cycles cannot cross SCCs). Output cycles are rotated
/// so each starts at its smallest node id, and cycle order is deterministic.
CycleEnumeration FindElementaryCycles(
    const std::vector<std::vector<uint32_t>>& adjacency,
    const std::vector<uint32_t>& nodes, uint64_t max_cycles);

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_JOHNSON_H_
