#include "ordering/reorderer.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <queue>

#include "common/thread_pool.h"
#include "ordering/alive_graph.h"
#include "ordering/johnson.h"
#include "ordering/tarjan.h"

namespace fabricpp::ordering {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point* mark) {
  const auto now = std::chrono::steady_clock::now();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - *mark)
          .count();
  *mark = now;
  return static_cast<uint64_t>(us);
}

/// Splits the round's cycle budget across its non-trivial SCCs up front:
/// proportional to SCC size, allocated largest-SCC-first (ties to the one
/// with the smallest member), at least one cycle per SCC while budget
/// remains, leftover to the largest. Fixed shares make each SCC's
/// enumeration independent of the others — the precondition for running
/// them as parallel tasks without changing the joined cycle list. (The old
/// sequential greedy hand-off gave SCC k whatever SCCs 0..k-1 left over,
/// which would differ under any reordering of completion.)
std::vector<uint64_t> PartitionCycleBudget(
    const std::vector<std::vector<uint32_t>>& sccs, uint64_t budget) {
  std::vector<uint64_t> share(sccs.size(), 0);
  if (sccs.empty() || budget == 0) return share;
  // Keep the proportional arithmetic overflow-free for any config value;
  // 2^32 cycles per round is far beyond any practical budget.
  budget = std::min<uint64_t>(budget, uint64_t{1} << 32);

  std::vector<uint32_t> by_size(sccs.size());
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(), [&](uint32_t a, uint32_t b) {
    if (sccs[a].size() != sccs[b].size()) {
      return sccs[a].size() > sccs[b].size();
    }
    return sccs[a].front() < sccs[b].front();
  });

  size_t total_nodes = 0;
  for (const auto& scc : sccs) total_nodes += scc.size();

  uint64_t remaining = budget;
  for (const uint32_t idx : by_size) {
    if (remaining == 0) break;
    uint64_t s = budget * sccs[idx].size() / total_nodes;
    if (s == 0) s = 1;
    s = std::min(s, remaining);
    share[idx] = s;
    remaining -= s;
  }
  share[by_size.front()] += remaining;
  return share;
}

/// Steps 3+4 of Algorithm 1: greedily removes the transaction occurring in
/// the most (enumerated) cycles until every enumerated cycle is broken.
/// Ties go to the smallest batch position ("the one with the smaller
/// subscript"), keeping the algorithm deterministic. Victims are killed in
/// the alive graph (pruning their edges incrementally) and appended to
/// `aborted`.
void BreakCycles(const std::vector<std::vector<uint32_t>>& cycles,
                 AliveGraph* ag, std::vector<uint32_t>* aborted) {
  const size_t n = ag->num_nodes();
  std::vector<uint32_t> count(n, 0);
  std::vector<std::vector<uint32_t>> tx_to_cycles(n);
  for (uint32_t c = 0; c < cycles.size(); ++c) {
    for (const uint32_t tx : cycles[c]) {
      ++count[tx];
      tx_to_cycles[tx].push_back(c);
    }
  }

  // Max-heap keyed by (count desc, index asc) with lazy invalidation.
  using Entry = std::pair<uint32_t, uint32_t>;  // (count, tx)
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // Smaller index pops first on equal count.
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (uint32_t tx = 0; tx < n; ++tx) {
    if (count[tx] > 0) heap.push({count[tx], tx});
  }

  std::vector<bool> cycle_open(cycles.size(), true);
  size_t open_cycles = cycles.size();

  while (open_cycles > 0 && !heap.empty()) {
    const auto [heap_count, tx] = heap.top();
    heap.pop();
    if (heap_count != count[tx] || count[tx] == 0) continue;  // Stale entry.
    // Abort tx: every open cycle through it is now broken.
    ag->Kill(tx);
    aborted->push_back(tx);
    for (const uint32_t c : tx_to_cycles[tx]) {
      if (!cycle_open[c]) continue;
      cycle_open[c] = false;
      --open_cycles;
      for (const uint32_t member : cycles[c]) {
        if (count[member] > 0) {
          --count[member];
          if (member != tx && count[member] > 0) {
            heap.push({count[member], member});
          }
        }
      }
    }
    count[tx] = 0;
  }
}

/// Last-resort fallback for adversarial graphs: repeatedly removes the
/// highest-degree decile of every remaining non-trivial SCC until the graph
/// is acyclic. Aborts more transactions than the cycle-count heuristic but
/// runs in near-linear time per round (degrees come straight off the
/// incrementally maintained alive graph).
void ShatterSccs(AliveGraph* ag, std::vector<uint32_t>* aborted) {
  while (true) {
    const auto sccs = ag->NontrivialSccs();
    if (sccs.empty()) return;
    for (const auto& scc : sccs) {
      // Degree within the alive subgraph.
      std::vector<std::pair<size_t, uint32_t>> degree;  // (degree, node)
      degree.reserve(scc.size());
      for (const uint32_t v : scc) {
        degree.push_back({ag->OutDegree(v) + ag->InDegree(v), v});
      }
      std::sort(degree.begin(), degree.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      const size_t to_remove = std::max<size_t>(1, scc.size() / 10);
      for (size_t i = 0; i < to_remove && i < degree.size(); ++i) {
        const uint32_t victim = degree[i].second;
        ag->Kill(victim);
        aborted->push_back(victim);
      }
    }
  }
}

}  // namespace

std::vector<uint32_t> ScheduleAcyclic(const ConflictGraph& graph,
                                      const std::vector<uint32_t>& alive) {
  // Step 5 of Algorithm 1: repeatedly chase parent pointers upward to a
  // source (a transaction none of whose alive, unscheduled parents remain),
  // schedule it, then walk back down through its children. The accumulated
  // order is inverted at the end, so sources — transactions that overwrite
  // others' reads — commit last.
  //
  // Each node keeps a monotonic scan position into its parent and child
  // lists: entries behind the position were seen to be dead or already
  // scheduled, and both conditions are permanent, so no revisit ever has to
  // rescan them. The first eligible neighbor from the position is therefore
  // the same node the paper's full front-to-back rescan would pick, and the
  // whole traversal amortizes to O(V + E) instead of the rescan's
  // worst-case O(V^2) (hot-reader graphs; see bench_reorder_micro).
  const size_t n = graph.num_nodes();
  std::vector<bool> in_alive(n, false);
  for (const uint32_t v : alive) in_alive[v] = true;
  std::vector<bool> scheduled(n, false);
  std::vector<uint32_t> parent_pos(n, 0);
  std::vector<uint32_t> child_pos(n, 0);

  std::vector<uint32_t> order;
  order.reserve(alive.size());
  if (alive.empty()) return order;

  // getNextNode(): the smallest-position alive transaction not yet
  // scheduled (the paper starts at "the node representing the transaction
  // with the smallest subscript").
  size_t scan = 0;  // Index into `alive` (which is kept sorted by caller).
  auto next_node = [&]() -> uint32_t {
    while (scan < alive.size() && scheduled[alive[scan]]) ++scan;
    return alive[scan];
  };

  uint32_t start_node = next_node();
  while (order.size() < alive.size()) {
    if (scheduled[start_node]) {
      start_node = next_node();
      continue;
    }
    const uint32_t node = start_node;
    bool add_node = true;
    // Traverse upwards to find a source. The position is not advanced past
    // an eligible parent: it stays eligible until scheduled, after which
    // the revisit skips it.
    const std::vector<uint32_t>& parents = graph.Parents(node);
    for (uint32_t& pp = parent_pos[node]; pp < parents.size(); ++pp) {
      const uint32_t parent = parents[pp];
      if (in_alive[parent] && !scheduled[parent]) {
        start_node = parent;
        add_node = false;
        break;
      }
    }
    if (add_node) {
      scheduled[node] = true;
      order.push_back(node);
      // A source has been scheduled; traverse downwards.
      const std::vector<uint32_t>& children = graph.Children(node);
      for (uint32_t& cp = child_pos[node]; cp < children.size(); ++cp) {
        const uint32_t child = children[cp];
        if (in_alive[child] && !scheduled[child]) {
          start_node = child;
          break;
        }
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

ReorderResult ReorderTransactions(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const ReorderConfig& config, ThreadPool* pool) {
  const auto t0 = std::chrono::steady_clock::now();
  auto mark = t0;
  ReorderResult result;
  const size_t n = rwsets.size();
  result.stats.num_transactions = n;

  // Step 1: conflict graph (sharded scan + deterministic merge when a pool
  // is supplied).
  const ConflictGraph graph = ConflictGraph::Build(rwsets, pool);
  result.stats.num_edges = graph.num_edges();
  result.stats.num_unique_keys = graph.num_unique_keys();
  result.stage_wall.build_us += MicrosSince(&mark);

  AliveGraph ag(graph);

  // Steps 2-4, iterated: enumerate cycles (budgeted), break them, and loop
  // until the alive subgraph is acyclic.
  for (uint32_t round = 1;; ++round) {
    result.stats.rounds = round;
    const auto sccs = ag.NontrivialSccs();
    if (round == 1) result.stats.num_nontrivial_sccs = sccs.size();
    if (sccs.empty()) {
      result.stage_wall.enumerate_us += MicrosSince(&mark);
      break;  // Acyclic — proceed to scheduling.
    }

    if (round > config.max_rounds) {
      result.stage_wall.enumerate_us += MicrosSince(&mark);
      ShatterSccs(&ag, &result.aborted);
      result.stats.fallback_used = true;
      result.stage_wall.break_us += MicrosSince(&mark);
      break;
    }

    // Step 2: elementary cycles of every strongly connected subgraph, with
    // the round budget partitioned up front so each SCC enumerates
    // independently (in parallel when a pool is supplied). Joining in SCC
    // order reproduces the serial cycle list exactly.
    const std::vector<uint64_t> share =
        PartitionCycleBudget(sccs, config.max_cycles_per_round);
    std::vector<CycleEnumeration> per_scc(sccs.size());
    auto enumerate_one = [&](size_t i) {
      if (share[i] > 0) {
        per_scc[i] = FindElementaryCycles(ag.adjacency(), sccs[i], share[i]);
      }
    };
    if (pool != nullptr && pool->parallelism() > 1 && sccs.size() > 1) {
      pool->ParallelFor(sccs.size(), enumerate_one);
    } else {
      for (size_t i = 0; i < sccs.size(); ++i) enumerate_one(i);
    }
    std::vector<std::vector<uint32_t>> cycles;
    for (auto& enumeration : per_scc) {
      for (auto& c : enumeration.cycles) cycles.push_back(std::move(c));
    }
    result.stats.num_cycles_found += cycles.size();
    result.stage_wall.enumerate_us += MicrosSince(&mark);

    // Steps 3+4: greedy cycle cover removal.
    BreakCycles(cycles, &ag, &result.aborted);
    result.stage_wall.break_us += MicrosSince(&mark);
    // If enumeration was complete, the next round's SCC pass will find the
    // graph acyclic and exit; if the budget tripped, it re-enumerates.
  }

  // Step 5: serializable schedule of the survivors.
  std::vector<uint32_t> alive_list;
  alive_list.reserve(ag.num_alive());
  for (uint32_t i = 0; i < n; ++i) {
    if (ag.IsAlive(i)) alive_list.push_back(i);
  }
  result.order = ScheduleAcyclic(graph, alive_list);
  std::sort(result.aborted.begin(), result.aborted.end());
  result.stage_wall.schedule_us += MicrosSince(&mark);

  result.elapsed_wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

std::string ReorderStats::ToString() const {
  return "reorder{txs=" + std::to_string(num_transactions) +
         " edges=" + std::to_string(num_edges) +
         " unique_keys=" + std::to_string(num_unique_keys) +
         " sccs=" + std::to_string(num_nontrivial_sccs) +
         " cycles=" + std::to_string(num_cycles_found) +
         " rounds=" + std::to_string(rounds) +
         " fallback=" + (fallback_used ? "1" : "0") + "}";
}

}  // namespace fabricpp::ordering
