#include "ordering/reorderer.h"

#include <algorithm>
#include <chrono>
#include <queue>

#include "ordering/johnson.h"
#include "ordering/tarjan.h"

namespace fabricpp::ordering {

namespace {

/// Filtered adjacency: edges of `graph` restricted to alive nodes.
std::vector<std::vector<uint32_t>> FilterAdjacency(
    const ConflictGraph& graph, const std::vector<bool>& alive) {
  std::vector<std::vector<uint32_t>> adj(graph.num_nodes());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    if (!alive[i]) continue;
    for (const uint32_t j : graph.Children(i)) {
      if (alive[j]) adj[i].push_back(j);
    }
  }
  return adj;
}

std::vector<std::vector<uint32_t>> NontrivialSccs(
    const std::vector<std::vector<uint32_t>>& adj) {
  const auto sccs = StronglyConnectedComponents(
      static_cast<uint32_t>(adj.size()),
      [&](uint32_t v) -> const std::vector<uint32_t>& { return adj[v]; });
  std::vector<std::vector<uint32_t>> out;
  for (const auto& scc : sccs) {
    if (scc.size() > 1) out.push_back(scc);
  }
  return out;
}

/// Steps 3+4 of Algorithm 1: greedily removes the transaction occurring in
/// the most (enumerated) cycles until every enumerated cycle is broken.
/// Ties go to the smallest batch position ("the one with the smaller
/// subscript"), keeping the algorithm deterministic. Appends removed nodes
/// to `aborted` and clears them in `alive`.
void BreakCycles(const std::vector<std::vector<uint32_t>>& cycles,
                 std::vector<bool>* alive, std::vector<uint32_t>* aborted) {
  const size_t n = alive->size();
  std::vector<uint32_t> count(n, 0);
  std::vector<std::vector<uint32_t>> tx_to_cycles(n);
  for (uint32_t c = 0; c < cycles.size(); ++c) {
    for (const uint32_t tx : cycles[c]) {
      ++count[tx];
      tx_to_cycles[tx].push_back(c);
    }
  }

  // Max-heap keyed by (count desc, index asc) with lazy invalidation.
  using Entry = std::pair<uint32_t, uint32_t>;  // (count, tx)
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // Smaller index pops first on equal count.
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (uint32_t tx = 0; tx < n; ++tx) {
    if (count[tx] > 0) heap.push({count[tx], tx});
  }

  std::vector<bool> cycle_open(cycles.size(), true);
  size_t open_cycles = cycles.size();

  while (open_cycles > 0 && !heap.empty()) {
    const auto [heap_count, tx] = heap.top();
    heap.pop();
    if (heap_count != count[tx] || count[tx] == 0) continue;  // Stale entry.
    // Abort tx: every open cycle through it is now broken.
    (*alive)[tx] = false;
    aborted->push_back(tx);
    for (const uint32_t c : tx_to_cycles[tx]) {
      if (!cycle_open[c]) continue;
      cycle_open[c] = false;
      --open_cycles;
      for (const uint32_t member : cycles[c]) {
        if (count[member] > 0) {
          --count[member];
          if (member != tx && count[member] > 0) {
            heap.push({count[member], member});
          }
        }
      }
    }
    count[tx] = 0;
  }
}

/// Last-resort fallback for adversarial graphs: repeatedly removes the
/// highest-degree decile of every remaining non-trivial SCC until the graph
/// is acyclic. Aborts more transactions than the cycle-count heuristic but
/// runs in near-linear time per round.
void ShatterSccs(const ConflictGraph& graph, std::vector<bool>* alive,
                 std::vector<uint32_t>* aborted) {
  while (true) {
    const auto adj = FilterAdjacency(graph, *alive);
    const auto sccs = NontrivialSccs(adj);
    if (sccs.empty()) return;
    for (const auto& scc : sccs) {
      // Degree within the alive subgraph.
      std::vector<std::pair<size_t, uint32_t>> degree;  // (degree, node)
      degree.reserve(scc.size());
      for (const uint32_t v : scc) {
        size_t in_degree = 0;
        for (const uint32_t p : graph.Parents(v)) {
          if ((*alive)[p]) ++in_degree;
        }
        degree.push_back({adj[v].size() + in_degree, v});
      }
      std::sort(degree.begin(), degree.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      const size_t to_remove = std::max<size_t>(1, scc.size() / 10);
      for (size_t i = 0; i < to_remove && i < degree.size(); ++i) {
        const uint32_t victim = degree[i].second;
        (*alive)[victim] = false;
        aborted->push_back(victim);
      }
    }
  }
}

}  // namespace

std::vector<uint32_t> ScheduleAcyclic(const ConflictGraph& graph,
                                      const std::vector<uint32_t>& alive) {
  // Step 5 of Algorithm 1: repeatedly chase parent pointers upward to a
  // source (a transaction none of whose alive, unscheduled parents remain),
  // schedule it, then walk back down through its children. The accumulated
  // order is inverted at the end, so sources — transactions that overwrite
  // others' reads — commit last.
  const size_t n = graph.num_nodes();
  std::vector<bool> in_alive(n, false);
  for (const uint32_t v : alive) in_alive[v] = true;
  std::vector<bool> scheduled(n, false);

  std::vector<uint32_t> order;
  order.reserve(alive.size());
  if (alive.empty()) return order;

  // getNextNode(): the smallest-position alive transaction not yet
  // scheduled (the paper starts at "the node representing the transaction
  // with the smallest subscript").
  size_t scan = 0;  // Index into `alive` (which is kept sorted by caller).
  auto next_node = [&]() -> uint32_t {
    while (scan < alive.size() && scheduled[alive[scan]]) ++scan;
    return alive[scan];
  };

  uint32_t start_node = next_node();
  while (order.size() < alive.size()) {
    if (scheduled[start_node]) {
      start_node = next_node();
      continue;
    }
    bool add_node = true;
    // Traverse upwards to find a source.
    for (const uint32_t parent : graph.Parents(start_node)) {
      if (in_alive[parent] && !scheduled[parent]) {
        start_node = parent;
        add_node = false;
        break;
      }
    }
    if (add_node) {
      scheduled[start_node] = true;
      order.push_back(start_node);
      // A source has been scheduled; traverse downwards.
      for (const uint32_t child : graph.Children(start_node)) {
        if (in_alive[child] && !scheduled[child]) {
          start_node = child;
          break;
        }
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

ReorderResult ReorderTransactions(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const ReorderConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReorderResult result;
  const size_t n = rwsets.size();
  result.stats.num_transactions = n;

  // Step 1: conflict graph.
  const ConflictGraph graph = ConflictGraph::Build(rwsets);
  result.stats.num_edges = graph.num_edges();
  result.stats.num_unique_keys = graph.num_unique_keys();

  std::vector<bool> alive(n, true);

  // Steps 2-4, iterated: enumerate cycles (budgeted), break them, and loop
  // until the alive subgraph is acyclic.
  for (uint32_t round = 1;; ++round) {
    result.stats.rounds = round;
    const auto adj = FilterAdjacency(graph, alive);
    const auto sccs = NontrivialSccs(adj);
    if (round == 1) result.stats.num_nontrivial_sccs = sccs.size();
    if (sccs.empty()) break;  // Acyclic — proceed to scheduling.

    if (round > config.max_rounds) {
      ShatterSccs(graph, &alive, &result.aborted);
      result.stats.fallback_used = true;
      break;
    }

    // Step 2: all elementary cycles of every strongly connected subgraph.
    std::vector<std::vector<uint32_t>> cycles;
    uint64_t budget = config.max_cycles_per_round;
    for (const auto& scc : sccs) {
      if (budget == 0) break;
      CycleEnumeration enumeration = FindElementaryCycles(adj, scc, budget);
      budget -= std::min<uint64_t>(budget, enumeration.cycles.size());
      for (auto& c : enumeration.cycles) cycles.push_back(std::move(c));
    }
    result.stats.num_cycles_found += cycles.size();

    // Steps 3+4: greedy cycle cover removal.
    BreakCycles(cycles, &alive, &result.aborted);
    // If enumeration was complete, the next round's SCC pass will find the
    // graph acyclic and exit; if the budget tripped, it re-enumerates.
  }

  // Step 5: serializable schedule of the survivors.
  std::vector<uint32_t> alive_list;
  alive_list.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (alive[i]) alive_list.push_back(i);
  }
  result.order = ScheduleAcyclic(graph, alive_list);
  std::sort(result.aborted.begin(), result.aborted.end());

  result.elapsed_wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return result;
}

std::string ReorderStats::ToString() const {
  return "reorder{txs=" + std::to_string(num_transactions) +
         " edges=" + std::to_string(num_edges) +
         " unique_keys=" + std::to_string(num_unique_keys) +
         " sccs=" + std::to_string(num_nontrivial_sccs) +
         " cycles=" + std::to_string(num_cycles_found) +
         " rounds=" + std::to_string(rounds) +
         " fallback=" + (fallback_used ? "1" : "0") + "}";
}

}  // namespace fabricpp::ordering
