#ifndef FABRICPP_ORDERING_REORDERER_H_
#define FABRICPP_ORDERING_REORDERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ordering/conflict_graph.h"
#include "proto/rwset.h"

namespace fabricpp {
class ThreadPool;
}  // namespace fabricpp

namespace fabricpp::ordering {

/// Tuning knobs for the reordering mechanism.
struct ReorderConfig {
  /// Johnson enumeration budget per round. The paper bounds reordering cost
  /// through the unique-keys batch-cutting condition (§5.1.2); the budget is
  /// our additional safety net for adversarially dense conflict graphs —
  /// when it trips, the reorderer breaks the cycles found so far and
  /// re-enumerates (see ReorderStats::rounds). The reorderer is a stage of
  /// the ordering pipeline, so the budget directly bounds per-block latency;
  /// the default keeps worst-case hot-key blocks in the low hundreds of
  /// milliseconds (the regime of the paper's Figure 16 timings).
  ///
  /// The budget is partitioned across a round's non-trivial SCCs *up front*
  /// (proportional to SCC size, largest first, at least one per SCC while
  /// any budget remains), so each SCC's enumeration is independent of the
  /// others and can run on a worker thread without changing the joined
  /// cycle list — see DESIGN.md §10.
  uint64_t max_cycles_per_round = 2048;
  /// Hard cap on break-and-re-enumerate rounds; beyond it the reorderer
  /// falls back to degree-based SCC shattering, which is abort-heavier but
  /// near-linear.
  uint32_t max_rounds = 4;
};

/// Statistics of one reordering run. Every field is a *deterministic*
/// function of the input batch — pure counts of the algorithm's work, never
/// host time — so the stats may feed virtual-time cost models and
/// byte-identical determinism fingerprints. Wall-clock measurement of the
/// pass lives in ReorderResult::elapsed_wall_us / stage_wall instead.
struct ReorderStats {
  size_t num_transactions = 0;
  size_t num_edges = 0;
  size_t num_unique_keys = 0;
  size_t num_nontrivial_sccs = 0;
  size_t num_cycles_found = 0;
  uint32_t rounds = 1;
  bool fallback_used = false;

  /// Deterministic one-line rendering (determinism tests fingerprint it).
  std::string ToString() const;
};

/// Host wall-clock of one reordering pass, broken down by stage. Like
/// ReorderResult::elapsed_wall_us these are real measurements: they vary
/// run-to-run and with the worker count, and must never feed virtual time
/// or the deterministic stats (Metrics accumulates them on its wall-clock
/// side; the micro benches report them per stage).
struct ReorderStageWallClock {
  uint64_t build_us = 0;      ///< Conflict-graph construction (step 1).
  uint64_t enumerate_us = 0;  ///< SCC decomposition + cycle enumeration.
  uint64_t break_us = 0;      ///< Greedy cycle breaking (+ shatter fallback).
  uint64_t schedule_us = 0;   ///< Acyclic schedule generation (step 5).
};

/// Output of the reorderer.
struct ReorderResult {
  /// Serializable schedule: positions into the input batch, in final commit
  /// order. For every remaining conflict "i writes a key j reads", j comes
  /// before i.
  std::vector<uint32_t> order;
  /// Input positions aborted to break conflict cycles (paper step 4); the
  /// orderer drops these from the block and they count as
  /// kAbortedByReorderer.
  std::vector<uint32_t> aborted;
  ReorderStats stats;
  /// Host (real) microseconds spent reordering — what the Appendix B
  /// micro-benchmarks plot. A measurement, not simulation state: it varies
  /// run-to-run and must never feed virtual time or the deterministic
  /// stats/report (Metrics keeps it on the wall-clock side, like the
  /// validator's stage timings).
  uint64_t elapsed_wall_us = 0;
  /// Per-stage split of elapsed_wall_us (same measurement-only contract).
  ReorderStageWallClock stage_wall;
};

/// The Fabric++ transaction reordering mechanism (paper §5.1, Algorithm 1):
///
///   (1) build the conflict graph of the batch,
///   (2) Tarjan-decompose it into strongly connected subgraphs and
///       enumerate each subgraph's elementary cycles with Johnson,
///   (3) count, per transaction, the number of cycles it participates in,
///   (4) greedily abort the transaction in the most cycles (smallest batch
///       position on ties — the paper's determinism rule) until no cycle
///       remains,
///   (5) emit a serializable schedule of the survivors via the paper's
///       parent-chasing source traversal, inverted.
///
/// With a non-null `pool`, graph construction fans out over sharded rwset
/// scans and each SCC's cycle enumeration runs as an independent worker
/// task; results are merged at deterministic boundaries, so the returned
/// ReorderResult (order, aborted set, stats) is byte-identical for any
/// worker count — the pool accelerates host wall-clock only. Must be called
/// from one thread at a time per pool (ThreadPool::ParallelFor is not
/// reentrant).
///
/// The returned schedule is asserted against the paper's worked example
/// (Table 3 -> T5, T1, T3, T4) in tests/ordering_test.cc.
ReorderResult ReorderTransactions(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const ReorderConfig& config = {}, ThreadPool* pool = nullptr);

/// Step 5 in isolation: builds a serializable schedule for an *acyclic*
/// conflict graph restricted to `alive` (batch positions, sorted ascending).
/// Exposed for unit testing and for the micro-benchmarks.
///
/// Runs in O(V + E): the paper's parent-chasing traversal re-scanned every
/// visited node's parent list from the front, which degenerates to O(V^2)
/// on hot-reader graphs (one transaction reading n keys written by n
/// writers); per-node monotonic scan positions over the parent/child lists
/// skip the already-scheduled prefix instead, provably picking the same
/// neighbor (tests/ordering_test.cc cross-checks against the quadratic
/// reference).
std::vector<uint32_t> ScheduleAcyclic(const ConflictGraph& graph,
                                      const std::vector<uint32_t>& alive);

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_REORDERER_H_
