#include "ordering/tarjan.h"

#include <algorithm>

namespace fabricpp::ordering {

std::vector<std::vector<uint32_t>> StronglyConnectedComponents(
    uint32_t num_nodes,
    const std::function<const std::vector<uint32_t>&(uint32_t)>& children) {
  constexpr uint32_t kUnvisited = ~0u;
  std::vector<uint32_t> index(num_nodes, kUnvisited);
  std::vector<uint32_t> lowlink(num_nodes, 0);
  std::vector<bool> on_stack(num_nodes, false);
  std::vector<uint32_t> stack;
  std::vector<std::vector<uint32_t>> components;
  uint32_t next_index = 0;

  // Explicit DFS frame: node plus position within its child list.
  struct Frame {
    uint32_t node;
    size_t child_pos;
  };
  std::vector<Frame> dfs;

  for (uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const uint32_t v = frame.node;
      const std::vector<uint32_t>& kids = children(v);
      if (frame.child_pos < kids.size()) {
        const uint32_t w = kids[frame.child_pos++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        // All children explored: close v.
        if (lowlink[v] == index[v]) {
          std::vector<uint32_t> component;
          while (true) {
            const uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          const uint32_t parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return components;
}

}  // namespace fabricpp::ordering
