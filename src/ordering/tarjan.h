#ifndef FABRICPP_ORDERING_TARJAN_H_
#define FABRICPP_ORDERING_TARJAN_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace fabricpp::ordering {

/// Tarjan's strongly-connected-components algorithm (paper §5.1 step 2,
/// citing [22]), iterative so deep graphs cannot overflow the call stack.
///
/// `num_nodes` nodes 0..n-1; `children(i)` yields the outgoing neighbours of
/// node i (the callback form lets callers run Tarjan on filtered subgraphs
/// without materializing them). Returns the components; nodes within a
/// component are sorted ascending, and the component list itself is sorted
/// by its smallest node, so output is deterministic.
std::vector<std::vector<uint32_t>> StronglyConnectedComponents(
    uint32_t num_nodes,
    const std::function<const std::vector<uint32_t>&(uint32_t)>& children);

}  // namespace fabricpp::ordering

#endif  // FABRICPP_ORDERING_TARJAN_H_
