#include "peer/endorser.h"

namespace fabricpp::peer {

Bytes EndorsementPayload(const std::string& channel,
                         const std::string& chaincode,
                         const std::string& policy_id,
                         const proto::ReadWriteSet& rwset) {
  proto::Transaction stub;
  stub.channel = channel;
  stub.chaincode = chaincode;
  stub.policy_id = policy_id;
  stub.rwset = rwset;
  return stub.SignedPayload();
}

Endorser::Endorser(std::string peer_name, std::string org,
                   uint64_t network_seed,
                   const chaincode::ChaincodeRegistry* registry)
    : peer_name_(std::move(peer_name)),
      org_(std::move(org)),
      identity_(network_seed, peer_name_),
      registry_(registry) {}

Result<EndorsementResponse> Endorser::Endorse(const proto::Proposal& proposal,
                                              const std::string& policy_id,
                                              const statedb::StateDb& db,
                                              bool stale_check_enabled) const {
  FABRICPP_ASSIGN_OR_RETURN(const chaincode::Chaincode* contract,
                            registry_->Get(proposal.chaincode));

  chaincode::TxContext ctx(&db, db.last_committed_block(),
                           stale_check_enabled);
  FABRICPP_RETURN_IF_ERROR(contract->Invoke(ctx, proposal.args));

  EndorsementResponse response;
  response.rwset = ctx.TakeRwSet();
  response.endorsement.peer = peer_name_;
  response.endorsement.org = org_;
  response.endorsement.signature = identity_.Sign(EndorsementPayload(
      proposal.channel, proposal.chaincode, policy_id, response.rwset));
  return response;
}

}  // namespace fabricpp::peer
