#ifndef FABRICPP_PEER_ENDORSER_H_
#define FABRICPP_PEER_ENDORSER_H_

#include <string>

#include "chaincode/chaincode.h"
#include "common/result.h"
#include "crypto/identity.h"
#include "proto/transaction.h"
#include "statedb/state_db.h"

namespace fabricpp::peer {

/// Result of simulating one proposal on one endorsement peer.
struct EndorsementResponse {
  proto::ReadWriteSet rwset;
  proto::Endorsement endorsement;
};

/// The simulation-phase logic of an endorsement peer (paper §2.2.1 /
/// Appendix A.1): run the proposal's chaincode against the local current
/// state, record the read/write sets, and sign them.
///
/// Pure logic — virtual-time costs (chaincode execution, signing) and the
/// vanilla simulation/validation lock live in fabric::PeerNode.
class Endorser {
 public:
  /// `registry` and `db` are borrowed and must outlive the endorser.
  Endorser(std::string peer_name, std::string org, uint64_t network_seed,
           const chaincode::ChaincodeRegistry* registry);

  /// Simulates `proposal` against `db`.
  ///
  /// `stale_check_enabled` turns on the Fabric++ simulation-phase early
  /// abort (paper §5.2.1): the TxContext then compares every read's version
  /// against the snapshot's last-block-id and the simulation fails fast with
  /// kStaleRead when a concurrent commit invalidated it.
  ///
  /// On success the returned endorsement signs the canonical payload
  /// (channel, chaincode, policy, read/write set) with this peer's identity.
  Result<EndorsementResponse> Endorse(const proto::Proposal& proposal,
                                      const std::string& policy_id,
                                      const statedb::StateDb& db,
                                      bool stale_check_enabled) const;

  const std::string& peer_name() const { return peer_name_; }
  const std::string& org() const { return org_; }

 private:
  std::string peer_name_;
  std::string org_;
  crypto::Identity identity_;
  const chaincode::ChaincodeRegistry* registry_;
};

/// The canonical byte payload an endorser signs for the given effects: must
/// match proto::Transaction::SignedPayload so validators can recompute it.
Bytes EndorsementPayload(const std::string& channel,
                         const std::string& chaincode,
                         const std::string& policy_id,
                         const proto::ReadWriteSet& rwset);

}  // namespace fabricpp::peer

#endif  // FABRICPP_PEER_ENDORSER_H_
