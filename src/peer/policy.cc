#include "peer/policy.h"

namespace fabricpp::peer {

Status PolicyRegistry::Register(EndorsementPolicy policy) {
  const std::string id = policy.id;
  const auto [it, inserted] = map_.emplace(id, std::move(policy));
  (void)it;
  if (!inserted) return Status::AlreadyExists("policy exists: " + id);
  return Status::OK();
}

Result<const EndorsementPolicy*> PolicyRegistry::Get(
    const std::string& id) const {
  const auto it = map_.find(id);
  if (it == map_.end()) return Status::NotFound("unknown policy: " + id);
  return static_cast<const EndorsementPolicy*>(&it->second);
}

}  // namespace fabricpp::peer
