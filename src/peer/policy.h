#ifndef FABRICPP_PEER_POLICY_H_
#define FABRICPP_PEER_POLICY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fabricpp::peer {

/// An endorsement policy: which organizations must endorse a proposal
/// (paper §2.2.1: "typically ... at least one peer of each involved
/// organization has to simulate the transaction proposal").
struct EndorsementPolicy {
  std::string id;
  /// The policy is satisfied iff for every listed org at least one verified
  /// endorsement from a peer of that org is present.
  std::vector<std::string> required_orgs;
};

/// Policy id -> policy lookup shared by clients and validators.
class PolicyRegistry {
 public:
  Status Register(EndorsementPolicy policy);
  Result<const EndorsementPolicy*> Get(const std::string& id) const;

 private:
  std::unordered_map<std::string, EndorsementPolicy> map_;
};

}  // namespace fabricpp::peer

#endif  // FABRICPP_PEER_POLICY_H_
