#include "peer/validator.h"

#include "common/logging.h"

#include <unordered_set>

#include "peer/endorser.h"

namespace fabricpp::peer {

Validator::Validator(uint64_t network_seed, const PolicyRegistry* policies)
    : network_seed_(network_seed), policies_(policies) {}

const crypto::Identity& Validator::IdentityFor(
    const std::string& peer_name) const {
  auto it = identity_cache_.find(peer_name);
  if (it == identity_cache_.end()) {
    it = identity_cache_
             .emplace(peer_name, crypto::Identity(network_seed_, peer_name))
             .first;
  }
  return it->second;
}

bool Validator::CheckEndorsementPolicy(const proto::Transaction& tx) const {
  const auto policy = policies_->Get(tx.policy_id);
  if (!policy.ok()) return false;

  // Recompute the signed payload from the *received* effects; tampering
  // with the rwset invalidates every honest signature.
  const Bytes payload =
      EndorsementPayload(tx.channel, tx.chaincode, tx.policy_id, tx.rwset);

  std::unordered_set<std::string> endorsing_orgs;
  for (const proto::Endorsement& e : tx.endorsements) {
    if (IdentityFor(e.peer).Verify(payload, e.signature)) {
      endorsing_orgs.insert(e.org);
    }
  }
  for (const std::string& org : (*policy)->required_orgs) {
    if (endorsing_orgs.find(org) == endorsing_orgs.end()) return false;
  }
  return true;
}

BlockValidationResult Validator::ValidateAndCommit(
    const proto::Block& block, statedb::StateDb* db,
    ledger::Ledger* ledger) const {
  BlockValidationResult result;
  result.codes.resize(block.transactions.size(),
                      proto::TxValidationCode::kNotValidated);

  std::unordered_set<std::string> block_tx_ids;
  for (uint32_t i = 0; i < block.transactions.size(); ++i) {
    const proto::Transaction& tx = block.transactions[i];

    // Replay protection (Fabric's DUPLICATE_TXID check): a transaction id
    // already on the ledger — or earlier in this very block — must not
    // commit again. Without this, a network-duplicated read-only
    // transaction passes MVCC every time (its reads bump no versions).
    if (!tx.tx_id.empty() &&
        ((ledger != nullptr && ledger->FindTransaction(tx.tx_id).ok()) ||
         !block_tx_ids.insert(tx.tx_id).second)) {
      result.codes[i] = proto::TxValidationCode::kDuplicateTxId;
      ++result.num_duplicate_txids;
      continue;
    }

    // First check: endorsement policy + signatures (Appendix A.3.1).
    if (!CheckEndorsementPolicy(tx)) {
      result.codes[i] = proto::TxValidationCode::kEndorsementPolicyFailure;
      ++result.num_policy_failures;
      continue;
    }

    // Second check: MVCC serializability (Appendix A.3.2). Earlier valid
    // transactions of this block have already bumped versions in `db`, so
    // within-block read-write conflicts fail here too.
    bool serializable = true;
    for (const proto::ReadItem& r : tx.rwset.reads) {
      if (db->GetVersion(r.key) != r.version) {
        serializable = false;
        break;
      }
    }
    if (!serializable) {
      result.codes[i] = proto::TxValidationCode::kMvccConflict;
      ++result.num_mvcc_conflicts;
      continue;
    }

    result.codes[i] = proto::TxValidationCode::kValid;
    ++result.num_valid;
    db->ApplyWrites(tx.rwset.writes,
                    proto::Version{block.header.number, i});
  }

  db->set_last_committed_block(block.header.number);

  if (ledger != nullptr) {
    ledger::StoredBlock stored;
    stored.block = block;
    stored.validation_codes = result.codes;
    // Blocks reach peers in chain order, so an append failure is a pipeline
    // wiring bug — surface it loudly.
    const Status append_status = ledger->Append(std::move(stored));
    if (!append_status.ok()) {
      FABRICPP_LOG(Error) << "ledger append failed: "
                          << append_status.ToString();
    }
  }
  return result;
}

uint32_t CountValidUnderCommonSnapshot(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const std::vector<uint32_t>& order) {
  std::unordered_set<std::string> written;
  uint32_t valid = 0;
  for (const uint32_t idx : order) {
    const proto::ReadWriteSet* set = rwsets[idx];
    bool ok = true;
    for (const proto::ReadItem& r : set->reads) {
      if (written.count(r.key) != 0) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++valid;
    for (const proto::WriteItem& w : set->writes) written.insert(w.key);
  }
  return valid;
}

}  // namespace fabricpp::peer
