#include "peer/validator.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <unordered_set>

#include "common/logging.h"
#include "ordering/commit_schedule.h"
#include "peer/endorser.h"

namespace fabricpp::peer {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Validator::Validator(uint64_t network_seed, const PolicyRegistry* policies,
                     ThreadPool* pool)
    : network_seed_(network_seed), policies_(policies), pool_(pool) {}

void Validator::PrewarmIdentities(
    const std::vector<std::string>& peer_names) {
  std::unique_lock<std::shared_mutex> lock(identity_mu_);
  for (const std::string& name : peer_names) {
    if (identity_cache_.find(name) == identity_cache_.end()) {
      identity_cache_.emplace(name, crypto::Identity(network_seed_, name));
    }
  }
}

const crypto::Identity& Validator::IdentityFor(
    const std::string& peer_name) const {
  {
    std::shared_lock<std::shared_mutex> lock(identity_mu_);
    const auto it = identity_cache_.find(peer_name);
    if (it != identity_cache_.end()) return it->second;
  }
  // Cache miss (a signer that was not pre-warmed): derive outside any lock —
  // key derivation hashes — then publish under the exclusive lock. A racing
  // inserter wins harmlessly: emplace keeps the existing entry, and both
  // derivations are deterministic in (seed, name).
  crypto::Identity identity(network_seed_, peer_name);
  std::unique_lock<std::shared_mutex> lock(identity_mu_);
  return identity_cache_.emplace(peer_name, std::move(identity))
      .first->second;
}

bool Validator::CheckEndorsementPolicy(const proto::Transaction& tx) const {
  const auto policy = policies_->Get(tx.policy_id);
  if (!policy.ok()) return false;

  // Recompute the signed payload from the *received* effects; tampering
  // with the rwset invalidates every honest signature.
  const Bytes payload =
      EndorsementPayload(tx.channel, tx.chaincode, tx.policy_id, tx.rwset);

  std::unordered_set<std::string> endorsing_orgs;
  for (const proto::Endorsement& e : tx.endorsements) {
    if (IdentityFor(e.peer).Verify(payload, e.signature)) {
      endorsing_orgs.insert(e.org);
    }
  }
  for (const std::string& org : (*policy)->required_orgs) {
    if (endorsing_orgs.find(org) == endorsing_orgs.end()) return false;
  }
  return true;
}

std::vector<uint8_t> Validator::VerifyEndorsements(
    const proto::Block& block) const {
  std::vector<uint8_t> ok(block.transactions.size(), 0);
  const auto verify_one = [this, &block, &ok](size_t i) {
    // Each worker writes only its own index; joined in transaction order,
    // so the verdict vector is identical for any worker count.
    ok[i] = CheckEndorsementPolicy(block.transactions[i]) ? 1 : 0;
  };
  if (pool_ != nullptr && pool_->extra_threads() > 0) {
    pool_->ParallelFor(ok.size(), verify_one);
  } else {
    for (size_t i = 0; i < ok.size(); ++i) verify_one(i);
  }
  return ok;
}

BlockValidationResult Validator::ValidateAndCommit(
    const proto::Block& block, statedb::StateStore* db,
    ledger::Ledger* ledger) const {
  BlockValidationResult result;
  result.codes.resize(block.transactions.size(),
                      proto::TxValidationCode::kNotValidated);

  // Stage 1 — verify (pure, parallel): per-transaction endorsement policy
  // + signature checks. This dominates real validation cost (Appendix
  // A.3.1) and shares no mutable state, so it fans out across the attached
  // pool. Duplicate-txid transactions are verified too (their verdict is
  // simply unused): skipping them would require the sequential ledger scan
  // first and serialize the stages.
  const auto verify_start = std::chrono::steady_clock::now();
  const std::vector<uint8_t> policy_ok = VerifyEndorsements(block);
  result.verify_wall_ns = ElapsedNs(verify_start);

  // Stage 2 — commit: replay protection, MVCC, write application, ledger
  // append. Writes are *deferred* on both paths: valid transactions
  // accumulate into one block-level batch that is applied atomically at the
  // end, so a crash mid-block can never leave the store with some
  // transactions' writes but not others (or writes ahead of the recorded
  // height).
  const auto commit_start = std::chrono::steady_clock::now();
  std::vector<statedb::VersionedWrite> block_writes;
  if (commit_pool_ == nullptr) {
    CommitSequential(block, policy_ok, *db, ledger, &result, &block_writes);
  } else {
    CommitWaves(block, policy_ok, *db, ledger, &result, &block_writes);
  }

  // One atomic commit for the whole block: every valid write and the new
  // height land together (a persistent store turns this into a single WAL
  // append + group-commit fsync).
  const Status apply_status = db->ApplyBlock(block_writes,
                                             block.header.number);
  if (!apply_status.ok()) {
    FABRICPP_LOG(Error) << "block " << block.header.number
                        << " state commit failed: "
                        << apply_status.ToString();
  }

  if (ledger != nullptr) {
    ledger::StoredBlock stored;
    stored.block = block;
    stored.validation_codes = result.codes;
    // Blocks reach peers in chain order, so an append failure is a pipeline
    // wiring bug — surface it loudly.
    const Status append_status = ledger->Append(std::move(stored));
    if (!append_status.ok()) {
      FABRICPP_LOG(Error) << "ledger append failed: "
                          << append_status.ToString();
    }
  }
  result.commit_wall_ns = ElapsedNs(commit_start);
  return result;
}

void Validator::CommitSequential(
    const proto::Block& block, const std::vector<uint8_t>& policy_ok,
    const statedb::StateStore& db, const ledger::Ledger* ledger,
    BlockValidationResult* result,
    std::vector<statedb::VersionedWrite>* block_writes) const {
  // The classic ordered loop — each valid transaction's writes feed the
  // next one's MVCC check via the `pending` overlay, which keeps the check
  // seeing earlier same-block version bumps exactly as the old
  // write-through path did. Single-threaded and lock-free.
  std::unordered_set<std::string> block_tx_ids;
  std::unordered_map<std::string, proto::Version> pending;
  const auto current_version = [&](const std::string& key) {
    const auto it = pending.find(key);
    return it != pending.end() ? it->second : db.GetVersion(key);
  };
  for (uint32_t i = 0; i < block.transactions.size(); ++i) {
    const proto::Transaction& tx = block.transactions[i];

    // Replay protection (Fabric's DUPLICATE_TXID check): a transaction id
    // already on the ledger — or earlier in this very block — must not
    // commit again. Without this, a network-duplicated read-only
    // transaction passes MVCC every time (its reads bump no versions).
    if (!tx.tx_id.empty() &&
        ((ledger != nullptr && ledger->FindTransaction(tx.tx_id).ok()) ||
         !block_tx_ids.insert(tx.tx_id).second)) {
      result->codes[i] = proto::TxValidationCode::kDuplicateTxId;
      ++result->num_duplicate_txids;
      continue;
    }

    // First check: endorsement policy + signatures (Appendix A.3.1),
    // computed by the verify stage.
    if (!policy_ok[i]) {
      result->codes[i] = proto::TxValidationCode::kEndorsementPolicyFailure;
      ++result->num_policy_failures;
      continue;
    }

    // Second check: MVCC serializability (Appendix A.3.2). Earlier valid
    // transactions of this block have already bumped versions in the
    // overlay, so within-block read-write conflicts fail here too.
    bool serializable = true;
    for (const proto::ReadItem& r : tx.rwset.reads) {
      if (current_version(r.key) != r.version) {
        serializable = false;
        break;
      }
    }
    if (!serializable) {
      result->codes[i] = proto::TxValidationCode::kMvccConflict;
      ++result->num_mvcc_conflicts;
      continue;
    }

    result->codes[i] = proto::TxValidationCode::kValid;
    ++result->num_valid;
    const proto::Version version{block.header.number, i};
    for (const proto::WriteItem& w : tx.rwset.writes) {
      block_writes->push_back(statedb::VersionedWrite{w, version});
      // A delete leaves no version behind — a later same-block read of the
      // key must see kNilVersion, matching the store after the erase.
      pending[w.key] = w.is_delete ? proto::kNilVersion : version;
    }
  }
}

void Validator::CommitWaves(
    const proto::Block& block, const std::vector<uint8_t>& policy_ok,
    const statedb::StateStore& db, const ledger::Ledger* ledger,
    BlockValidationResult* result,
    std::vector<statedb::VersionedWrite>* block_writes) const {
  const size_t n = block.transactions.size();

  // Dup-txid pre-pass, sequential. The verdict is a pure function of the
  // ledger and the *block order* — independent of any wave schedule — so it
  // is resolved up front instead of adding txid edges to the waves. The
  // short-circuit mirrors CommitSequential exactly: an id already on the
  // ledger is not inserted into the block-local set (its later in-block
  // duplicates still fail the ledger probe).
  std::vector<uint8_t> dup(n, 0);
  {
    std::unordered_set<std::string> block_tx_ids;
    for (uint32_t i = 0; i < n; ++i) {
      const proto::Transaction& tx = block.transactions[i];
      if (!tx.tx_id.empty() &&
          ((ledger != nullptr && ledger->FindTransaction(tx.tx_id).ok()) ||
           !block_tx_ids.insert(tx.tx_id).second)) {
        dup[i] = 1;
      }
    }
  }

  // Wave schedule: take the orderer-shipped one when it is present and
  // passes validation (or validation is waived — the trusted-orderer
  // posture); otherwise recompute. Any valid partition yields identical
  // output (see ordering/commit_schedule.h), so a discarded schedule costs
  // one local recompute, never correctness.
  std::vector<const proto::ReadWriteSet*> rwsets;
  rwsets.reserve(n);
  for (const proto::Transaction& tx : block.transactions) {
    rwsets.push_back(&tx.rwset);
  }
  std::vector<uint32_t> computed;
  const std::vector<uint32_t>* waves = nullptr;
  if (block.commit_waves.size() == n && n > 0 &&
      (!verify_shipped_schedule_ ||
       ordering::ValidateCommitWaves(rwsets, block.commit_waves))) {
    waves = &block.commit_waves;
  } else {
    computed = ordering::ComputeCommitWaves(rwsets);
    waves = &computed;
  }
  const uint32_t num_waves = ordering::NumCommitWaves(*waves);
  std::vector<std::vector<uint32_t>> wave_members(num_waves);
  for (uint32_t i = 0; i < n; ++i) {
    // Ascending block index within each wave — barrier order relies on it.
    wave_members[(*waves)[i]].push_back(i);
  }

  // Per-key version map: every read key's base version is prefetched
  // sequentially (StateStore::GetVersion makes no concurrency promise; the
  // in-memory map does), then the map is the single source the wave
  // workers read. During a wave it is immutable — workers only find();
  // barriers (sequential) fold the wave's valid writes in. The store is
  // untouched until the final ApplyBlock, so base versions cannot move
  // under the block.
  std::unordered_map<std::string, proto::Version> version_map;
  for (const proto::Transaction& tx : block.transactions) {
    for (const proto::ReadItem& r : tx.rwset.reads) {
      if (version_map.find(r.key) == version_map.end()) {
        version_map.emplace(r.key, db.GetVersion(r.key));
      }
    }
  }

  // Waves: parallel snapshot checks, then a sequential barrier. A wave's
  // checks never see a same-wave writer (the schedule forbids
  // write->read pairs inside a wave), so reading the snapshot matches the
  // sequential loop's check-before-later-writes order; the barrier applies
  // valid writes in block order, so same-wave write-write pairs resolve
  // with the later transaction winning, again as in the loop.
  std::vector<uint8_t> mvcc_ok(n, 0);
  for (uint32_t w = 0; w < num_waves; ++w) {
    const auto wave_start = std::chrono::steady_clock::now();
    const std::vector<uint32_t>& members = wave_members[w];
    const auto check_one = [&](size_t k) {
      const uint32_t i = members[k];
      if (dup[i] || !policy_ok[i]) return;  // Verdict already decided.
      bool serializable = true;
      for (const proto::ReadItem& r : block.transactions[i].rwset.reads) {
        // Every read key was prefetched above.
        if (version_map.find(r.key)->second != r.version) {
          serializable = false;
          break;
        }
      }
      mvcc_ok[i] = serializable ? 1 : 0;
    };
    if (members.size() > 1 && commit_pool_->extra_threads() > 0) {
      commit_pool_->ParallelFor(members.size(), check_one);
    } else {
      for (size_t k = 0; k < members.size(); ++k) check_one(k);
    }
    // Barrier: verdicts and overlay bumps, in block order within the wave.
    for (const uint32_t i : members) {
      if (dup[i] || !policy_ok[i] || !mvcc_ok[i]) continue;
      const proto::Version version{block.header.number, i};
      for (const proto::WriteItem& item : block.transactions[i].rwset.writes) {
        version_map[item.key] =
            item.is_delete ? proto::kNilVersion : version;
      }
    }
    const uint64_t wave_ns = ElapsedNs(wave_start);
    ++result->commit_waves;
    result->commit_wave_wall_ns += wave_ns;
    result->commit_wave_max_ns = std::max(result->commit_wave_max_ns, wave_ns);
  }

  // Codes, counters and the write batch in block order — byte-identical to
  // what CommitSequential builds, whatever the wave partition was.
  for (uint32_t i = 0; i < n; ++i) {
    if (dup[i]) {
      result->codes[i] = proto::TxValidationCode::kDuplicateTxId;
      ++result->num_duplicate_txids;
    } else if (!policy_ok[i]) {
      result->codes[i] = proto::TxValidationCode::kEndorsementPolicyFailure;
      ++result->num_policy_failures;
    } else if (!mvcc_ok[i]) {
      result->codes[i] = proto::TxValidationCode::kMvccConflict;
      ++result->num_mvcc_conflicts;
    } else {
      result->codes[i] = proto::TxValidationCode::kValid;
      ++result->num_valid;
      const proto::Version version{block.header.number, i};
      for (const proto::WriteItem& item : block.transactions[i].rwset.writes) {
        block_writes->push_back(statedb::VersionedWrite{item, version});
      }
    }
  }
}

uint32_t CountValidUnderCommonSnapshot(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const std::vector<uint32_t>& order) {
  std::unordered_set<std::string> written;
  uint32_t valid = 0;
  for (const uint32_t idx : order) {
    const proto::ReadWriteSet* set = rwsets[idx];
    bool ok = true;
    for (const proto::ReadItem& r : set->reads) {
      if (written.count(r.key) != 0) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++valid;
    for (const proto::WriteItem& w : set->writes) written.insert(w.key);
  }
  return valid;
}

}  // namespace fabricpp::peer
