#ifndef FABRICPP_PEER_VALIDATOR_H_
#define FABRICPP_PEER_VALIDATOR_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "ledger/ledger.h"
#include "peer/policy.h"
#include "proto/block.h"
#include "statedb/state_db.h"

namespace fabricpp::peer {

/// Per-block validation outcome.
struct BlockValidationResult {
  std::vector<proto::TxValidationCode> codes;
  uint32_t num_valid = 0;
  uint32_t num_mvcc_conflicts = 0;
  uint32_t num_policy_failures = 0;
  uint32_t num_duplicate_txids = 0;
  /// Host wall-clock (std::chrono::steady_clock) spent in the two stages,
  /// nanoseconds. These are *measurements of the real crypto work*, not
  /// simulation state: they vary run-to-run and with the worker count, and
  /// must never feed back into virtual time or validation decisions.
  uint64_t verify_wall_ns = 0;
  uint64_t commit_wall_ns = 0;
  /// Wave-level breakdown of the dependency-aware commit path (DESIGN.md
  /// §13): number of waves executed, host nanoseconds summed across the
  /// waves (check fan-out + barrier apply, excluding the dup pre-pass and
  /// the final batch build), and the single slowest wave. All zero on the
  /// sequential path (commit_workers == 1). Same measurement-only contract
  /// as the wall-clock fields above.
  uint32_t commit_waves = 0;
  uint64_t commit_wave_wall_ns = 0;
  uint64_t commit_wave_max_ns = 0;
};

/// The validation + commit phase of a peer (paper §2.2.3-§2.2.4 /
/// Appendix A.3): endorsement-policy evaluation, the MVCC serializability
/// check, state updates for valid transactions, and the ledger append.
///
/// Signature verification follows the paper's trust model: the validator
/// *recomputes* each endorser's signature over the received read/write set
/// and compares — a client that tampered with the effects (Appendix A.3.1)
/// fails here because honest endorsers signed different bytes.
///
/// ValidateAndCommit is split into two stages, mirroring Fabric 1.2's
/// validator-worker fan-out (and "Optimizing Validation Phase of
/// Hyperledger Fabric"):
///  - **verify** (pure, parallel): per-transaction endorsement-policy +
///    signature checks. No shared mutable state; when a ThreadPool is
///    attached the checks fan out across its workers and the verdicts are
///    joined in transaction order, so the outcome is byte-identical to the
///    serial loop regardless of worker count.
///  - **commit**: duplicate-txid replay protection, the MVCC check, write
///    application, and the ledger append. With no commit pool attached it
///    is the classic sequential loop (each valid transaction's writes feed
///    the next one's MVCC check), single-threaded and lock-free as in
///    "Lockless Transaction Isolation in Hyperledger Fabric". With a commit
///    pool it runs the dependency-aware wave schedule (DESIGN.md §13,
///    ordering/commit_schedule.h): MVCC checks of one conflict-free wave
///    fan out across the pool against a version snapshot, and the barrier
///    between waves applies the wave's valid writes to the overlay in block
///    order — verdicts, the write batch handed to the store, and the ledger
///    append are byte-identical to the sequential loop for any worker
///    count and any valid wave partition.
class Validator {
 public:
  /// `policies` is borrowed; `network_seed` lets the validator reconstruct
  /// endorser verification identities. `pool` (borrowed, may be null =
  /// serial) runs the verify stage; it may be shared across validators.
  Validator(uint64_t network_seed, const PolicyRegistry* policies,
            ThreadPool* pool = nullptr);

  /// Attaches/detaches the verify-stage pool. Not thread-safe; call before
  /// validation begins.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Attaches/detaches the commit-stage pool (null = the sequential commit
  /// loop, byte-identical to pre-schedule builds). Must be a different pool
  /// from the verify stage's (ParallelFor is single-user). Not thread-safe;
  /// call before validation begins.
  void set_commit_pool(ThreadPool* pool) { commit_pool_ = pool; }
  ThreadPool* commit_pool() const { return commit_pool_; }

  /// Whether a schedule shipped inside a block (Block::commit_waves) is
  /// re-validated against the rwsets before the commit stage uses it — the
  /// untrusted-orderer posture (default). An invalid or missing schedule is
  /// recomputed locally either way, so this never changes verdicts.
  void set_verify_shipped_schedule(bool verify) {
    verify_shipped_schedule_ = verify;
  }

  /// Derives and caches the verification identities for `peer_names` up
  /// front, so the verify stage's cache accesses are read-only in the
  /// common case (no writer contention on the hot path).
  void PrewarmIdentities(const std::vector<std::string>& peer_names);

  /// Checks one transaction against its endorsement policy. Thread-safe:
  /// may be called concurrently from verify-stage workers.
  bool CheckEndorsementPolicy(const proto::Transaction& tx) const;

  /// Stage 1 (pure, parallelizable): the endorsement-policy verdict for
  /// every transaction of `block`, in transaction order. Touches neither
  /// the state database nor the ledger.
  std::vector<uint8_t> VerifyEndorsements(const proto::Block& block) const;

  /// Validates every transaction of `block` in order, applies the write
  /// sets of valid ones to `db` (bumping versions to {block, tx index}),
  /// advances the db's last-committed-block, and appends the block with its
  /// validation flags to `ledger`.
  ///
  /// The MVCC rule (Appendix A.3.2): a transaction is valid iff the version
  /// of every key in its read set still matches the current state —
  /// including updates made by *earlier valid transactions of the same
  /// block*, which is exactly the within-block conflict the Fabric++
  /// reorderer minimizes. In-block updates are tracked in a version
  /// overlay; the store itself is mutated exactly once, by a single atomic
  /// StateStore::ApplyBlock carrying every valid write plus the new height
  /// (group commit — one WAL append, at most one fsync on a persistent
  /// store).
  BlockValidationResult ValidateAndCommit(const proto::Block& block,
                                          statedb::StateStore* db,
                                          ledger::Ledger* ledger) const;

 private:
  /// Returns the cached verification identity for `peer_name`, deriving it
  /// on first use. Thread-safe (shared_mutex-guarded cache); the returned
  /// reference stays valid for the validator's lifetime because
  /// unordered_map never invalidates references on rehash.
  const crypto::Identity& IdentityFor(const std::string& peer_name) const;

  /// The classic sequential commit loop: fills `result` codes/counters and
  /// appends every valid transaction's writes to `block_writes` in block
  /// order. Used when no commit pool is attached.
  void CommitSequential(const proto::Block& block,
                        const std::vector<uint8_t>& policy_ok,
                        const statedb::StateStore& db,
                        const ledger::Ledger* ledger,
                        BlockValidationResult* result,
                        std::vector<statedb::VersionedWrite>* block_writes)
      const;

  /// The dependency-aware commit (DESIGN.md §13): dup-txid pre-pass, wave
  /// schedule selection (shipped / recomputed), per-wave parallel MVCC
  /// checks against a prefetched per-key version map, barrier apply.
  /// Produces codes/counters/writes byte-identical to CommitSequential.
  void CommitWaves(const proto::Block& block,
                   const std::vector<uint8_t>& policy_ok,
                   const statedb::StateStore& db, const ledger::Ledger* ledger,
                   BlockValidationResult* result,
                   std::vector<statedb::VersionedWrite>* block_writes) const;

  uint64_t network_seed_;
  const PolicyRegistry* policies_;
  ThreadPool* pool_;
  /// Commit-stage wave fan-out pool (borrowed, may be null = sequential).
  ThreadPool* commit_pool_ = nullptr;
  bool verify_shipped_schedule_ = true;
  /// Guards identity_cache_. Invariant: verify-stage workers only ever
  /// take the shared side unless a signer was not pre-warmed; the exclusive
  /// side is taken solely to insert a missing identity.
  mutable std::shared_mutex identity_mu_;
  /// Verification identities, derived on demand (or pre-warmed) and cached.
  mutable std::unordered_map<std::string, crypto::Identity> identity_cache_;
};

/// Counts how many transactions commit when the given read/write sets are
/// applied in `order`, assuming all of them simulated against one common
/// snapshot (so a read is stale iff an earlier *valid* transaction in the
/// sequence wrote the key). This is the validation model of the paper's
/// Tables 1-2 and the Appendix B micro-benchmarks.
uint32_t CountValidUnderCommonSnapshot(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const std::vector<uint32_t>& order);

}  // namespace fabricpp::peer

#endif  // FABRICPP_PEER_VALIDATOR_H_
