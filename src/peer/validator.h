#ifndef FABRICPP_PEER_VALIDATOR_H_
#define FABRICPP_PEER_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ledger/ledger.h"
#include "peer/policy.h"
#include "proto/block.h"
#include "statedb/state_db.h"

namespace fabricpp::peer {

/// Per-block validation outcome.
struct BlockValidationResult {
  std::vector<proto::TxValidationCode> codes;
  uint32_t num_valid = 0;
  uint32_t num_mvcc_conflicts = 0;
  uint32_t num_policy_failures = 0;
  uint32_t num_duplicate_txids = 0;
};

/// The validation + commit phase of a peer (paper §2.2.3-§2.2.4 /
/// Appendix A.3): endorsement-policy evaluation, the MVCC serializability
/// check, state updates for valid transactions, and the ledger append.
///
/// Signature verification follows the paper's trust model: the validator
/// *recomputes* each endorser's signature over the received read/write set
/// and compares — a client that tampered with the effects (Appendix A.3.1)
/// fails here because honest endorsers signed different bytes.
class Validator {
 public:
  /// `policies` is borrowed; `network_seed` lets the validator reconstruct
  /// endorser verification identities.
  Validator(uint64_t network_seed, const PolicyRegistry* policies);

  /// Checks one transaction against its endorsement policy.
  bool CheckEndorsementPolicy(const proto::Transaction& tx) const;

  /// Validates every transaction of `block` in order, applies the write
  /// sets of valid ones to `db` (bumping versions to {block, tx index}),
  /// advances the db's last-committed-block, and appends the block with its
  /// validation flags to `ledger`.
  ///
  /// The MVCC rule (Appendix A.3.2): a transaction is valid iff the version
  /// of every key in its read set still matches the current state —
  /// including updates made by *earlier valid transactions of the same
  /// block*, which is exactly the within-block conflict the Fabric++
  /// reorderer minimizes.
  BlockValidationResult ValidateAndCommit(const proto::Block& block,
                                          statedb::StateDb* db,
                                          ledger::Ledger* ledger) const;

 private:
  const crypto::Identity& IdentityFor(const std::string& peer_name) const;

  uint64_t network_seed_;
  const PolicyRegistry* policies_;
  /// Verification identities are derived on demand and cached.
  mutable std::unordered_map<std::string, crypto::Identity> identity_cache_;
};

/// Counts how many transactions commit when the given read/write sets are
/// applied in `order`, assuming all of them simulated against one common
/// snapshot (so a read is stale iff an earlier *valid* transaction in the
/// sequence wrote the key). This is the validation model of the paper's
/// Tables 1-2 and the Appendix B micro-benchmarks.
uint32_t CountValidUnderCommonSnapshot(
    const std::vector<const proto::ReadWriteSet*>& rwsets,
    const std::vector<uint32_t>& order);

}  // namespace fabricpp::peer

#endif  // FABRICPP_PEER_VALIDATOR_H_
