#include "proto/block.h"

namespace fabricpp::proto {

Bytes BlockHeader::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU64(number);
  w.PutRaw(previous_hash.data(), previous_hash.size());
  w.PutRaw(data_hash.data(), data_hash.size());
  return out;
}

crypto::Digest BlockHeader::Hash() const {
  return crypto::Sha256::Hash(Encode());
}

void Block::SealDataHash() {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) {
    leaves.push_back(tx.ContentDigest());
  }
  header.data_hash = crypto::MerkleRoot(leaves);
}

bool Block::VerifyDataHash() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) {
    leaves.push_back(tx.ContentDigest());
  }
  return crypto::MerkleRoot(leaves) == header.data_hash;
}

Bytes Block::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU64(header.number);
  w.PutRaw(header.previous_hash.data(), header.previous_hash.size());
  w.PutRaw(header.data_hash.data(), header.data_hash.size());
  w.PutVarint(transactions.size());
  for (const Transaction& tx : transactions) tx.EncodeTo(&w);
  // Optional trailing section: the commit-stage dependency schedule. Only
  // present when an orderer shipped one (ship_commit_schedule) — an empty
  // schedule encodes to exactly the legacy block bytes, which is what keeps
  // schedule-less runs byte-identical across versions.
  if (!commit_waves.empty()) {
    w.PutU8(kCommitScheduleTag);
    w.PutVarint(commit_waves.size());
    for (const uint32_t wave : commit_waves) w.PutVarint(wave);
  }
  return out;
}

Result<Block> Block::Decode(ByteReader* r) {
  Block block;
  FABRICPP_ASSIGN_OR_RETURN(block.header.number, r->GetU64());
  for (size_t i = 0; i < block.header.previous_hash.size(); ++i) {
    FABRICPP_ASSIGN_OR_RETURN(block.header.previous_hash[i], r->GetU8());
  }
  for (size_t i = 0; i < block.header.data_hash.size(); ++i) {
    FABRICPP_ASSIGN_OR_RETURN(block.header.data_hash[i], r->GetU8());
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_txs, r->GetVarint());
  // Bound before reserve(): a hostile count (say 2^60) must produce a decode
  // error, not a length_error/OOM abort. Every transaction costs well over
  // one encoded byte, so a count beyond the bytes left is garbage.
  if (num_txs > r->remaining()) {
    return Status::DataLoss("implausible transaction count in encoded block");
  }
  block.transactions.reserve(num_txs);
  for (uint64_t i = 0; i < num_txs; ++i) {
    FABRICPP_ASSIGN_OR_RETURN(Transaction tx, Transaction::Decode(r));
    block.transactions.push_back(std::move(tx));
  }
  // Trailing optional commit schedule. Callers length-frame block bytes
  // (ledger::BlockStore hands Decode an isolated reader), so "bytes left"
  // is unambiguous: either the tagged schedule section or nothing.
  if (!r->AtEnd()) {
    FABRICPP_ASSIGN_OR_RETURN(const uint8_t tag, r->GetU8());
    if (tag != kCommitScheduleTag) {
      return Status::DataLoss("unknown trailing block section");
    }
    FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_waves, r->GetVarint());
    if (num_waves != num_txs) {
      return Status::DataLoss("commit schedule size mismatch");
    }
    block.commit_waves.reserve(num_waves);
    for (uint64_t i = 0; i < num_waves; ++i) {
      FABRICPP_ASSIGN_OR_RETURN(const uint64_t wave, r->GetVarint());
      block.commit_waves.push_back(static_cast<uint32_t>(wave));
    }
  }
  return block;
}

uint64_t Block::ByteSize() const { return Encode().size(); }

}  // namespace fabricpp::proto
