#include "proto/block.h"

namespace fabricpp::proto {

Bytes BlockHeader::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU64(number);
  w.PutRaw(previous_hash.data(), previous_hash.size());
  w.PutRaw(data_hash.data(), data_hash.size());
  return out;
}

crypto::Digest BlockHeader::Hash() const {
  return crypto::Sha256::Hash(Encode());
}

void Block::SealDataHash() {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) {
    leaves.push_back(tx.ContentDigest());
  }
  header.data_hash = crypto::MerkleRoot(leaves);
}

bool Block::VerifyDataHash() const {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) {
    leaves.push_back(tx.ContentDigest());
  }
  return crypto::MerkleRoot(leaves) == header.data_hash;
}

Bytes Block::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU64(header.number);
  w.PutRaw(header.previous_hash.data(), header.previous_hash.size());
  w.PutRaw(header.data_hash.data(), header.data_hash.size());
  w.PutVarint(transactions.size());
  for (const Transaction& tx : transactions) tx.EncodeTo(&w);
  return out;
}

Result<Block> Block::Decode(ByteReader* r) {
  Block block;
  FABRICPP_ASSIGN_OR_RETURN(block.header.number, r->GetU64());
  for (size_t i = 0; i < block.header.previous_hash.size(); ++i) {
    FABRICPP_ASSIGN_OR_RETURN(block.header.previous_hash[i], r->GetU8());
  }
  for (size_t i = 0; i < block.header.data_hash.size(); ++i) {
    FABRICPP_ASSIGN_OR_RETURN(block.header.data_hash[i], r->GetU8());
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_txs, r->GetVarint());
  block.transactions.reserve(num_txs);
  for (uint64_t i = 0; i < num_txs; ++i) {
    FABRICPP_ASSIGN_OR_RETURN(Transaction tx, Transaction::Decode(r));
    block.transactions.push_back(std::move(tx));
  }
  return block;
}

uint64_t Block::ByteSize() const { return Encode().size(); }

}  // namespace fabricpp::proto
