#ifndef FABRICPP_PROTO_BLOCK_H_
#define FABRICPP_PROTO_BLOCK_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "proto/transaction.h"

namespace fabricpp::proto {

/// Block header: number + hash chain link + Merkle root of the transaction
/// contents.
struct BlockHeader {
  uint64_t number = 0;
  crypto::Digest previous_hash{};
  crypto::Digest data_hash{};

  Bytes Encode() const;
  /// The hash referenced by the next block's previous_hash.
  crypto::Digest Hash() const;
};

/// Wire tag of the optional trailing commit-schedule section of an encoded
/// Block (see Block::commit_waves). Deliberately not a small varint: a
/// truncated/corrupted tail is overwhelmingly unlikely to alias it.
inline constexpr uint8_t kCommitScheduleTag = 0xC5;

/// A block as distributed by the ordering service (paper §2.2.2): an ordered
/// list of transactions. Validation flags are *not* part of the distributed
/// block — each peer computes them in its own validation phase and stores
/// them alongside in the ledger (see ledger::Ledger).
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Optional dependency schedule for the peer's commit stage
  /// (ordering::ComputeCommitWaves, DESIGN.md §13): commit_waves[i] is the
  /// wave of transactions[i]. Empty = not shipped (the wire encoding is then
  /// byte-identical to a schedule-less block). Advisory metadata: it is
  /// excluded from the data hash (peers validate it against the rwsets
  /// before use and recompute on mismatch, so it needs no integrity
  /// protection — see the trust model in ordering/commit_schedule.h), which
  /// also keeps chain hashes independent of whether an orderer ships it.
  std::vector<uint32_t> commit_waves;

  /// Recomputes header.data_hash from the transactions' Merkle root.
  void SealDataHash();

  /// True iff header.data_hash matches the transactions.
  bool VerifyDataHash() const;

  Bytes Encode() const;
  static Result<Block> Decode(ByteReader* r);

  /// Wire size for the network cost model.
  uint64_t ByteSize() const;
};

}  // namespace fabricpp::proto

#endif  // FABRICPP_PROTO_BLOCK_H_
