#ifndef FABRICPP_PROTO_BLOCK_H_
#define FABRICPP_PROTO_BLOCK_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "proto/transaction.h"

namespace fabricpp::proto {

/// Block header: number + hash chain link + Merkle root of the transaction
/// contents.
struct BlockHeader {
  uint64_t number = 0;
  crypto::Digest previous_hash{};
  crypto::Digest data_hash{};

  Bytes Encode() const;
  /// The hash referenced by the next block's previous_hash.
  crypto::Digest Hash() const;
};

/// A block as distributed by the ordering service (paper §2.2.2): an ordered
/// list of transactions. Validation flags are *not* part of the distributed
/// block — each peer computes them in its own validation phase and stores
/// them alongside in the ledger (see ledger::Ledger).
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Recomputes header.data_hash from the transactions' Merkle root.
  void SealDataHash();

  /// True iff header.data_hash matches the transactions.
  bool VerifyDataHash() const;

  Bytes Encode() const;
  static Result<Block> Decode(ByteReader* r);

  /// Wire size for the network cost model.
  uint64_t ByteSize() const;
};

}  // namespace fabricpp::proto

#endif  // FABRICPP_PROTO_BLOCK_H_
