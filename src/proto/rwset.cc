#include "proto/rwset.h"

#include <algorithm>

#include "common/strings.h"

namespace fabricpp::proto {

std::string Version::ToString() const {
  return StrFormat("v(%llu,%u)", static_cast<unsigned long long>(block_num),
                   tx_num);
}

void ReadWriteSet::EncodeTo(ByteWriter* w) const {
  w->PutVarint(reads.size());
  for (const ReadItem& r : reads) {
    w->PutString(r.key);
    w->PutVarint(r.version.block_num);
    w->PutVarint(r.version.tx_num);
  }
  w->PutVarint(writes.size());
  for (const WriteItem& wr : writes) {
    w->PutString(wr.key);
    w->PutU8(wr.is_delete ? 1 : 0);
    w->PutString(wr.value);
  }
}

Bytes ReadWriteSet::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  EncodeTo(&w);
  return out;
}

namespace {

/// Bounds a decoded element count before reserve(): every element costs at
/// least one encoded byte, so a count beyond the bytes left is garbage. A
/// hostile varint must yield a decode error, never a length_error/OOM abort.
Status CheckCount(uint64_t count, const ByteReader& r, const char* what) {
  if (count > r.remaining()) {
    return Status::DataLoss(std::string("implausible ") + what +
                            " count in encoded rwset");
  }
  return Status::OK();
}

}  // namespace

Result<ReadWriteSet> ReadWriteSet::Decode(ByteReader* r) {
  ReadWriteSet set;
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_reads, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(CheckCount(num_reads, *r, "read"));
  set.reads.reserve(num_reads);
  for (uint64_t i = 0; i < num_reads; ++i) {
    ReadItem item;
    FABRICPP_ASSIGN_OR_RETURN(item.key, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(item.version.block_num, r->GetVarint());
    FABRICPP_ASSIGN_OR_RETURN(const uint64_t tx_num, r->GetVarint());
    item.version.tx_num = static_cast<uint32_t>(tx_num);
    set.reads.push_back(std::move(item));
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_writes, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(CheckCount(num_writes, *r, "write"));
  set.writes.reserve(num_writes);
  for (uint64_t i = 0; i < num_writes; ++i) {
    WriteItem item;
    FABRICPP_ASSIGN_OR_RETURN(item.key, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(const uint8_t is_delete, r->GetU8());
    item.is_delete = is_delete != 0;
    FABRICPP_ASSIGN_OR_RETURN(item.value, r->GetString());
    set.writes.push_back(std::move(item));
  }
  return set;
}

uint64_t ReadWriteSet::ByteSize() const { return Encode().size(); }

bool ReadWriteSet::ReadsKey(const std::string& key) const {
  return std::any_of(reads.begin(), reads.end(),
                     [&](const ReadItem& r) { return r.key == key; });
}

bool ReadWriteSet::WritesKey(const std::string& key) const {
  return std::any_of(writes.begin(), writes.end(),
                     [&](const WriteItem& w) { return w.key == key; });
}

}  // namespace fabricpp::proto
