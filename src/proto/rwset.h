#ifndef FABRICPP_PROTO_RWSET_H_
#define FABRICPP_PROTO_RWSET_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "proto/version.h"

namespace fabricpp::proto {

/// One read recorded during simulation: the key and the version observed.
struct ReadItem {
  std::string key;
  Version version;

  friend bool operator==(const ReadItem& a, const ReadItem& b) {
    return a.key == b.key && a.version == b.version;
  }
};

/// One write recorded during simulation. A delete is a write with
/// `is_delete` set (the value is ignored).
struct WriteItem {
  std::string key;
  std::string value;
  bool is_delete = false;

  friend bool operator==(const WriteItem& a, const WriteItem& b) {
    return a.key == b.key && a.value == b.value && a.is_delete == b.is_delete;
  }
};

/// The read set and write set a transaction's simulation produced
/// (paper §2.2.1). Reads and writes are kept in first-access order; a key
/// appears at most once in each set (TxContext deduplicates).
struct ReadWriteSet {
  std::vector<ReadItem> reads;
  std::vector<WriteItem> writes;

  /// Canonical byte encoding — the payload endorsers sign. Two endorsers
  /// producing equal sets produce byte-identical encodings.
  void EncodeTo(ByteWriter* w) const;
  Bytes Encode() const;
  static Result<ReadWriteSet> Decode(ByteReader* r);

  /// Wire size in bytes (used by the network cost model).
  uint64_t ByteSize() const;

  bool ReadsKey(const std::string& key) const;
  bool WritesKey(const std::string& key) const;

  friend bool operator==(const ReadWriteSet& a, const ReadWriteSet& b) {
    return a.reads == b.reads && a.writes == b.writes;
  }
};

}  // namespace fabricpp::proto

#endif  // FABRICPP_PROTO_RWSET_H_
