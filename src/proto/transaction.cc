#include "proto/transaction.h"

namespace fabricpp::proto {

namespace {

/// Bounds a decoded element count before reserve(): every element costs at
/// least one encoded byte, so a count beyond the bytes left is garbage. A
/// hostile varint must yield a decode error, never a length_error/OOM abort.
Status CheckCount(uint64_t count, const ByteReader& r, const char* what) {
  if (count > r.remaining()) {
    return Status::DataLoss(std::string("implausible ") + what +
                            " count in encoded transaction");
  }
  return Status::OK();
}

}  // namespace

Bytes Proposal::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutVarint(proposal_id);
  w.PutString(client);
  w.PutString(channel);
  w.PutString(chaincode);
  w.PutVarint(args.size());
  for (const std::string& a : args) w.PutString(a);
  w.PutU64(nonce);
  return out;
}

Result<Proposal> Proposal::Decode(ByteReader* r) {
  Proposal p;
  FABRICPP_ASSIGN_OR_RETURN(p.proposal_id, r->GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(p.client, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(p.channel, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(p.chaincode, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_args, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(CheckCount(num_args, *r, "arg"));
  p.args.reserve(num_args);
  for (uint64_t i = 0; i < num_args; ++i) {
    FABRICPP_ASSIGN_OR_RETURN(std::string arg, r->GetString());
    p.args.push_back(std::move(arg));
  }
  FABRICPP_ASSIGN_OR_RETURN(p.nonce, r->GetU64());
  return p;
}

std::string_view TxValidationCodeToString(TxValidationCode code) {
  switch (code) {
    case TxValidationCode::kValid:
      return "VALID";
    case TxValidationCode::kMvccConflict:
      return "MVCC_CONFLICT";
    case TxValidationCode::kEndorsementPolicyFailure:
      return "ENDORSEMENT_POLICY_FAILURE";
    case TxValidationCode::kAbortedByReorderer:
      return "ABORTED_BY_REORDERER";
    case TxValidationCode::kAbortedVersionSkew:
      return "ABORTED_VERSION_SKEW";
    case TxValidationCode::kAbortedStaleSimulation:
      return "ABORTED_STALE_SIMULATION";
    case TxValidationCode::kDuplicateTxId:
      return "DUPLICATE_TXID";
    case TxValidationCode::kNotValidated:
      return "NOT_VALIDATED";
  }
  return "UNKNOWN";
}

bool IsAbort(TxValidationCode code) {
  return code != TxValidationCode::kValid &&
         code != TxValidationCode::kNotValidated;
}

Bytes Transaction::SignedPayload() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutString(channel);
  w.PutString(chaincode);
  w.PutString(policy_id);
  rwset.EncodeTo(&w);
  return out;
}

void Transaction::ComputeTxId(const Proposal& proposal) {
  crypto::Sha256 h;
  h.Update(proposal.Encode());
  h.Update(rwset.Encode());
  tx_id = crypto::DigestToHex(h.Finalize());
}

void Transaction::EncodeTo(ByteWriter* w) const {
  w->PutString(tx_id);
  w->PutVarint(proposal_id);
  w->PutString(client);
  w->PutString(channel);
  w->PutString(chaincode);
  w->PutString(policy_id);
  rwset.EncodeTo(w);
  w->PutVarint(endorsements.size());
  for (const Endorsement& e : endorsements) {
    w->PutString(e.peer);
    w->PutString(e.org);
    w->PutString(e.signature.signer);
    w->PutRaw(e.signature.tag.data(), e.signature.tag.size());
  }
}

Bytes Transaction::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  EncodeTo(&w);
  return out;
}

Result<Transaction> Transaction::Decode(ByteReader* r) {
  Transaction tx;
  FABRICPP_ASSIGN_OR_RETURN(tx.tx_id, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(tx.proposal_id, r->GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(tx.client, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(tx.channel, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(tx.chaincode, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(tx.policy_id, r->GetString());
  {
    FABRICPP_ASSIGN_OR_RETURN(tx.rwset, ReadWriteSet::Decode(r));
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_endorsements, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(CheckCount(num_endorsements, *r, "endorsement"));
  tx.endorsements.reserve(num_endorsements);
  for (uint64_t i = 0; i < num_endorsements; ++i) {
    Endorsement e;
    FABRICPP_ASSIGN_OR_RETURN(e.peer, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(e.org, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(e.signature.signer, r->GetString());
    for (size_t b = 0; b < e.signature.tag.size(); ++b) {
      FABRICPP_ASSIGN_OR_RETURN(e.signature.tag[b], r->GetU8());
    }
    tx.endorsements.push_back(std::move(e));
  }
  return tx;
}

uint64_t Transaction::ByteSize() const { return Encode().size(); }

crypto::Digest Transaction::ContentDigest() const {
  return crypto::Sha256::Hash(Encode());
}

}  // namespace fabricpp::proto
