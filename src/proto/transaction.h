#ifndef FABRICPP_PROTO_TRANSACTION_H_
#define FABRICPP_PROTO_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/identity.h"
#include "crypto/sha256.h"
#include "proto/rwset.h"

namespace fabricpp::proto {

/// A client's transaction proposal: which chaincode to run with which
/// arguments (paper §2.2.1 / Appendix A.1). The proposal itself carries no
/// effects — endorsers produce those by simulation.
struct Proposal {
  uint64_t proposal_id = 0;  ///< Client-unique id (client name + counter).
  std::string client;
  std::string channel;
  std::string chaincode;
  std::vector<std::string> args;
  uint64_t nonce = 0;  ///< Random per-proposal value; salts the tx id.

  /// Canonical encoding (hashed into the transaction id).
  Bytes Encode() const;
  static Result<Proposal> Decode(ByteReader* r);
  uint64_t ByteSize() const { return Encode().size(); }
};

/// One endorsement: the simulating peer's signature over the proposal's
/// chaincode, the produced read/write set, and the endorsement policy.
struct Endorsement {
  std::string peer;
  std::string org;
  crypto::Signature signature;
};

enum class TxValidationCode : uint8_t {
  kValid = 0,
  /// Failed the validator's MVCC check (read an outdated version).
  kMvccConflict,
  /// Endorsement policy not satisfied or a signature failed to verify.
  kEndorsementPolicyFailure,
  /// Fabric++: dropped by the orderer because it participated in conflict
  /// cycles broken by the reorderer (paper §5.1 step 4).
  kAbortedByReorderer,
  /// Fabric++: dropped by the orderer's within-block version-skew check
  /// (paper §5.2.2).
  kAbortedVersionSkew,
  /// Fabric++: the simulation itself detected a stale read and the proposal
  /// never became a transaction (paper §5.2.1).
  kAbortedStaleSimulation,
  /// Replay protection: this transaction id is already on the ledger (or
  /// appeared earlier in the same block). Catches duplicated submissions —
  /// a read-only transaction would otherwise pass MVCC any number of times.
  kDuplicateTxId,
  kNotValidated,
};

std::string_view TxValidationCodeToString(TxValidationCode code);
/// True for every abort code (anything except kValid/kNotValidated).
bool IsAbort(TxValidationCode code);

/// A full transaction as submitted to the ordering service: the simulated
/// effects (read/write set) plus the endorsements that vouch for them.
struct Transaction {
  std::string tx_id;  ///< Hex SHA-256 of proposal + rwset.
  uint64_t proposal_id = 0;
  std::string client;
  std::string channel;
  std::string chaincode;
  std::string policy_id;  ///< Name of the endorsement policy used.
  ReadWriteSet rwset;
  std::vector<Endorsement> endorsements;

  /// The byte string each endorser signs: chaincode identity, policy, and
  /// the canonical read/write set encoding. A client that tampers with the
  /// write set (Appendix A.3.1's malicious example) invalidates every honest
  /// endorser signature because validators recompute this payload.
  Bytes SignedPayload() const;

  /// Computes and assigns tx_id from the content.
  void ComputeTxId(const Proposal& proposal);

  /// Canonical encoding for block hashing / ledger storage.
  void EncodeTo(ByteWriter* w) const;
  Bytes Encode() const;
  static Result<Transaction> Decode(ByteReader* r);

  /// Wire size in bytes — drives the network cost model and the orderer's
  /// max-block-bytes batch-cutting condition.
  uint64_t ByteSize() const;

  /// Digest used as the transaction's Merkle leaf.
  crypto::Digest ContentDigest() const;
};

}  // namespace fabricpp::proto

#endif  // FABRICPP_PROTO_TRANSACTION_H_
