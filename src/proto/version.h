#ifndef FABRICPP_PROTO_VERSION_H_
#define FABRICPP_PROTO_VERSION_H_

#include <cstdint>
#include <string>

namespace fabricpp::proto {

/// MVCC version of a state-database value.
///
/// As in Fabric (paper §5.2.1): "the version-number is actually composed of
/// the ID of the transaction that performed the update, as well as the ID of
/// the block that contains the transaction". The block id is what the
/// Fabric++ fine-grained concurrency control compares against the simulation
/// snapshot's last-block-id to detect stale reads.
struct Version {
  uint64_t block_num = 0;
  uint32_t tx_num = 0;

  friend bool operator==(const Version& a, const Version& b) {
    return a.block_num == b.block_num && a.tx_num == b.tx_num;
  }
  friend bool operator!=(const Version& a, const Version& b) {
    return !(a == b);
  }
  /// Commit order: block first, then transaction position within the block.
  friend bool operator<(const Version& a, const Version& b) {
    if (a.block_num != b.block_num) return a.block_num < b.block_num;
    return a.tx_num < b.tx_num;
  }

  std::string ToString() const;
};

/// Version of a key that has never been written (Fabric's "nil version"):
/// block 0 is the genesis block, which carries no user transactions.
inline constexpr Version kNilVersion{0, 0};

}  // namespace fabricpp::proto

#endif  // FABRICPP_PROTO_VERSION_H_
