#include "proto/wire_format.h"

#include "storage/crc32.h"

namespace fabricpp::proto {

namespace {

/// Reads back the little-endian u32 ByteWriter::PutU32 produced, from a raw
/// buffer position (the frame decoder peeks before committing bytes).
uint32_t ReadU32At(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

/// Guards a decoded element count before reserve(): a hostile varint (say
/// 2^60) must produce a decode error, not a std::length_error / OOM abort.
/// Every element costs at least one byte on the wire, so a count exceeding
/// the bytes left is provably garbage.
Status CheckCount(uint64_t count, const ByteReader& r, const char* what) {
  if (count > r.remaining()) {
    return Status::DataLoss(std::string("implausible ") + what +
                            " count in encoded message");
  }
  return Status::OK();
}

Result<crypto::Digest> DecodeDigest(ByteReader* r) {
  crypto::Digest d{};
  for (size_t i = 0; i < d.size(); ++i) {
    FABRICPP_ASSIGN_OR_RETURN(d[i], r->GetU8());
  }
  return d;
}

Status ExpectAtEnd(const ByteReader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::DataLoss(std::string("trailing garbage after ") + what +
                            " payload");
  }
  return Status::OK();
}

}  // namespace

bool IsKnownWireType(uint8_t type) {
  return type >= static_cast<uint8_t>(WireMessageType::kHello) &&
         type <= static_cast<uint8_t>(WireMessageType::kShutdown);
}

std::string_view WireMessageTypeName(WireMessageType type) {
  switch (type) {
    case WireMessageType::kHello:
      return "HELLO";
    case WireMessageType::kProposal:
      return "PROPOSAL";
    case WireMessageType::kEndorsementReply:
      return "ENDORSEMENT_REPLY";
    case WireMessageType::kBusy:
      return "BUSY";
    case WireMessageType::kTransaction:
      return "TRANSACTION";
    case WireMessageType::kBlock:
      return "BLOCK";
    case WireMessageType::kChainInfo:
      return "CHAIN_INFO";
    case WireMessageType::kBlockRequest:
      return "BLOCK_REQUEST";
    case WireMessageType::kOutcome:
      return "OUTCOME";
    case WireMessageType::kStateRequest:
      return "STATE_REQUEST";
    case WireMessageType::kStateReport:
      return "STATE_REPORT";
    case WireMessageType::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

void AppendFrame(Bytes* out, WireMessageType type, const Bytes& payload) {
  ByteWriter w(out);
  const uint64_t frame_len = kMinFrameLen - 4 + payload.size() + 4;
  w.PutU32(static_cast<uint32_t>(frame_len));
  const size_t crc_begin = out->size();
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(0);
  w.PutU8(0);
  w.PutRaw(payload.data(), payload.size());
  const uint32_t crc =
      storage::Crc32(out->data() + crc_begin, out->size() - crc_begin);
  w.PutU32(crc);
}

Bytes EncodeFrame(WireMessageType type, const Bytes& payload) {
  Bytes out;
  out.reserve(FramedSize(payload.size()));
  AppendFrame(&out, type, payload);
  return out;
}

FrameDecoder::FrameDecoder(uint64_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(const uint8_t* data, size_t size) {
  // Compact the consumed prefix before growing; keeps the buffer bounded by
  // one partial frame plus whatever the last recv delivered.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (poisoned_) {
    return Status::DataLoss("frame decoder poisoned by earlier stream error");
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const uint8_t* base = buffer_.data() + consumed_;
  const uint64_t frame_len = ReadU32At(base);
  if (frame_len < kMinFrameLen ||
      frame_len + 4 > max_frame_bytes_) {
    poisoned_ = true;
    return Status::DataLoss("frame length " + std::to_string(frame_len) +
                            " outside [" + std::to_string(kMinFrameLen) +
                            ", max_frame_bytes]");
  }
  if (available < 4 + frame_len) return false;
  const uint8_t version = base[4];
  if (version != kWireVersion) {
    poisoned_ = true;
    return Status::DataLoss("unsupported wire version " +
                            std::to_string(version));
  }
  const size_t payload_size = frame_len - kMinFrameLen;
  const uint32_t want_crc = ReadU32At(base + 4 + frame_len - 4);
  const uint32_t got_crc = storage::Crc32(base + 4, frame_len - 4);
  if (want_crc != got_crc) {
    poisoned_ = true;
    return Status::DataLoss("frame CRC mismatch");
  }
  out->type = base[5];
  out->payload.assign(base + kFrameHeaderBytes,
                      base + kFrameHeaderBytes + payload_size);
  consumed_ += 4 + frame_len;
  return true;
}

Bytes HelloMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU8(static_cast<uint8_t>(role));
  w.PutU32(index);
  w.PutString(name);
  return out;
}

Result<HelloMsg> HelloMsg::Decode(ByteReader* r) {
  HelloMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(const uint8_t role, r->GetU8());
  if (role > static_cast<uint8_t>(NodeRole::kOrderer)) {
    return Status::DataLoss("unknown node role in HELLO");
  }
  msg.role = static_cast<NodeRole>(role);
  FABRICPP_ASSIGN_OR_RETURN(msg.index, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.name, r->GetString());
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "HELLO"));
  return msg;
}

Bytes ProposalMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(channel);
  w.PutU32(client_index);
  w.PutBytes(proposal.Encode());
  return out;
}

Result<ProposalMsg> ProposalMsg::Decode(ByteReader* r) {
  ProposalMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.channel, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.client_index, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(const Bytes body, r->GetBytes());
  ByteReader pr(body);
  FABRICPP_ASSIGN_OR_RETURN(msg.proposal, Proposal::Decode(&pr));
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(pr, "proposal"));
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "PROPOSAL"));
  return msg;
}

Bytes EndorsementReplyMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(client_index);
  w.PutVarint(proposal_id);
  w.PutU8(ok ? 1 : 0);
  if (ok) {
    rwset.EncodeTo(&w);
    w.PutString(endorsement.peer);
    w.PutString(endorsement.org);
    w.PutString(endorsement.signature.signer);
    w.PutRaw(endorsement.signature.tag.data(),
             endorsement.signature.tag.size());
  } else {
    w.PutU8(status_code);
    w.PutString(status_message);
  }
  return out;
}

Result<EndorsementReplyMsg> EndorsementReplyMsg::Decode(ByteReader* r) {
  EndorsementReplyMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.client_index, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.proposal_id, r->GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(const uint8_t ok, r->GetU8());
  if (ok > 1) return Status::DataLoss("bad ok flag in ENDORSEMENT_REPLY");
  msg.ok = ok == 1;
  if (msg.ok) {
    FABRICPP_ASSIGN_OR_RETURN(msg.rwset, ReadWriteSet::Decode(r));
    FABRICPP_ASSIGN_OR_RETURN(msg.endorsement.peer, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(msg.endorsement.org, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(msg.endorsement.signature.signer,
                              r->GetString());
    for (size_t i = 0; i < msg.endorsement.signature.tag.size(); ++i) {
      FABRICPP_ASSIGN_OR_RETURN(msg.endorsement.signature.tag[i], r->GetU8());
    }
  } else {
    FABRICPP_ASSIGN_OR_RETURN(msg.status_code, r->GetU8());
    FABRICPP_ASSIGN_OR_RETURN(msg.status_message, r->GetString());
  }
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "ENDORSEMENT_REPLY"));
  return msg;
}

Bytes BusyMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(client_index);
  w.PutVarint(proposal_id);
  w.PutVarint(retry_after_us);
  return out;
}

Result<BusyMsg> BusyMsg::Decode(ByteReader* r) {
  BusyMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.client_index, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.proposal_id, r->GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(msg.retry_after_us, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "BUSY"));
  return msg;
}

Bytes TransactionMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(channel);
  tx.EncodeTo(&w);
  return out;
}

Result<TransactionMsg> TransactionMsg::Decode(ByteReader* r) {
  TransactionMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.channel, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.tx, Transaction::Decode(r));
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "TRANSACTION"));
  return msg;
}

Bytes BlockMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(channel);
  w.PutBytes(block.Encode());
  return out;
}

Result<BlockMsg> BlockMsg::Decode(ByteReader* r) {
  BlockMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.channel, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(const Bytes body, r->GetBytes());
  ByteReader br(body);
  FABRICPP_ASSIGN_OR_RETURN(msg.block, Block::Decode(&br));
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(br, "block"));
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "BLOCK"));
  return msg;
}

Bytes ChainInfoMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(channel);
  w.PutVarint(height);
  return out;
}

Result<ChainInfoMsg> ChainInfoMsg::Decode(ByteReader* r) {
  ChainInfoMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.channel, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.height, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "CHAIN_INFO"));
  return msg;
}

Bytes BlockRequestMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(channel);
  w.PutU32(peer_index);
  w.PutVarint(from_number);
  return out;
}

Result<BlockRequestMsg> BlockRequestMsg::Decode(ByteReader* r) {
  BlockRequestMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.channel, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.peer_index, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.from_number, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "BLOCK_REQUEST"));
  return msg;
}

Bytes OutcomeMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutString(client);
  w.PutVarint(proposal_id);
  w.PutU8(static_cast<uint8_t>(code));
  return out;
}

Result<OutcomeMsg> OutcomeMsg::Decode(ByteReader* r) {
  OutcomeMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.client, r->GetString());
  FABRICPP_ASSIGN_OR_RETURN(msg.proposal_id, r->GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(const uint8_t code, r->GetU8());
  if (code > static_cast<uint8_t>(TxValidationCode::kNotValidated)) {
    return Status::DataLoss("unknown validation code in OUTCOME");
  }
  msg.code = static_cast<TxValidationCode>(code);
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "OUTCOME"));
  return msg;
}

Bytes StateRequestMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutVarint(token);
  return out;
}

Result<StateRequestMsg> StateRequestMsg::Decode(ByteReader* r) {
  StateRequestMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.token, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "STATE_REQUEST"));
  return msg;
}

Bytes StateReportMsg::Encode() const {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(peer_index);
  w.PutVarint(token);
  w.PutVarint(channels.size());
  for (const ChannelStateInfo& c : channels) {
    w.PutVarint(c.height);
    w.PutRaw(c.tip_hash.data(), c.tip_hash.size());
    w.PutString(c.state_fingerprint);
    w.PutVarint(c.num_keys);
  }
  return out;
}

Result<StateReportMsg> StateReportMsg::Decode(ByteReader* r) {
  StateReportMsg msg;
  FABRICPP_ASSIGN_OR_RETURN(msg.peer_index, r->GetU32());
  FABRICPP_ASSIGN_OR_RETURN(msg.token, r->GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_channels, r->GetVarint());
  FABRICPP_RETURN_IF_ERROR(CheckCount(num_channels, *r, "channel"));
  msg.channels.reserve(num_channels);
  for (uint64_t i = 0; i < num_channels; ++i) {
    ChannelStateInfo c;
    FABRICPP_ASSIGN_OR_RETURN(c.height, r->GetVarint());
    FABRICPP_ASSIGN_OR_RETURN(c.tip_hash, DecodeDigest(r));
    FABRICPP_ASSIGN_OR_RETURN(c.state_fingerprint, r->GetString());
    FABRICPP_ASSIGN_OR_RETURN(c.num_keys, r->GetVarint());
    msg.channels.push_back(std::move(c));
  }
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "STATE_REPORT"));
  return msg;
}

Bytes ShutdownMsg::Encode() const { return Bytes(); }

Result<ShutdownMsg> ShutdownMsg::Decode(ByteReader* r) {
  FABRICPP_RETURN_IF_ERROR(ExpectAtEnd(*r, "SHUTDOWN"));
  return ShutdownMsg{};
}

}  // namespace fabricpp::proto
