#ifndef FABRICPP_PROTO_WIRE_FORMAT_H_
#define FABRICPP_PROTO_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/identity.h"
#include "crypto/sha256.h"
#include "proto/block.h"
#include "proto/rwset.h"
#include "proto/transaction.h"

namespace fabricpp::proto {

/// The socket wire protocol (DESIGN.md §15). Every node-layer message that
/// crosses a process boundary travels as one frame:
///
///   offset 0  u32  frame_len   — count of every byte after this field
///   offset 4  u8   version     — kWireVersion
///   offset 5  u8   type        — WireMessageType
///   offset 6  u16  reserved    — must be 0
///   offset 8  ...  payload     — frame_len - 8 bytes of message encoding
///   tail      u32  crc32       — IEEE CRC-32 over [version .. payload]
///
/// All fixed-width integers little-endian (ByteWriter convention). A frame
/// with a bad length (< kMinFrameLen or > max_frame_bytes), unknown version,
/// or CRC mismatch is a *stream* error: the connection is poisoned and must
/// be closed, because framing can no longer be trusted. A frame that passes
/// those checks but whose payload fails to decode is a *message* error: the
/// frame is dropped and counted, the stream stays up.

inline constexpr uint8_t kWireVersion = 1;

/// Bytes before the payload (frame_len + version + type + reserved).
inline constexpr uint64_t kFrameHeaderBytes = 8;
/// Total framing overhead added to a payload (header + trailing CRC).
inline constexpr uint64_t kFrameOverheadBytes = kFrameHeaderBytes + 4;
/// Smallest legal frame_len value (empty payload: ver+type+reserved+crc).
inline constexpr uint64_t kMinFrameLen = 8;

/// Registry of node-layer message types. Values are wire-stable: never
/// renumber, only append.
enum class WireMessageType : uint8_t {
  kHello = 1,             ///< Connection handshake: who is dialing.
  kProposal = 2,          ///< Client -> peer: endorse this proposal.
  kEndorsementReply = 3,  ///< Peer -> client: rwset + endorsement, or error.
  kBusy = 4,              ///< Peer/orderer -> client: admission refused.
  kTransaction = 5,       ///< Client -> orderer: endorsed transaction.
  kBlock = 6,             ///< Orderer -> peer: a cut block.
  kChainInfo = 7,         ///< Orderer -> peer: current chain height.
  kBlockRequest = 8,      ///< Peer -> orderer: re-send from this number.
  kOutcome = 9,           ///< Peer/orderer -> client: final validation code.
  kStateRequest = 10,     ///< Load driver -> peer: report your state.
  kStateReport = 11,      ///< Peer -> load driver: heights + fingerprints.
  kShutdown = 12,         ///< Load driver -> cluster: drain and exit.
};

bool IsKnownWireType(uint8_t type);
std::string_view WireMessageTypeName(WireMessageType type);

/// Roles a process can announce in its HELLO. Values are wire-stable.
enum class NodeRole : uint8_t {
  kClientHost = 0,  ///< The load driver hosting every client state machine.
  kPeer = 1,
  kOrderer = 2,
};

/// ---- Framing --------------------------------------------------------------

/// Appends one complete frame (header + payload + CRC) to `out`.
void AppendFrame(Bytes* out, WireMessageType type, const Bytes& payload);
Bytes EncodeFrame(WireMessageType type, const Bytes& payload);

/// Wire bytes a payload of `payload_size` occupies once framed.
inline uint64_t FramedSize(uint64_t payload_size) {
  return payload_size + kFrameOverheadBytes;
}

struct Frame {
  uint8_t type = 0;  ///< Raw type byte; may be unknown to this build.
  Bytes payload;
};

/// Incremental frame reassembly over an untrusted byte stream. Feed()
/// arbitrary chunk boundaries (a frame may arrive one byte at a time or
/// many frames in one recv); Next() pops complete frames.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint64_t max_frame_bytes);

  void Feed(const uint8_t* data, size_t size);

  /// Pops the next complete frame into `out`. Returns true if a frame was
  /// produced, false if more bytes are needed. A Status error means the
  /// stream itself is corrupt (bad length / version / CRC) and the
  /// connection must be dropped; the decoder is poisoned afterwards.
  Result<bool> Next(Frame* out);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint64_t max_frame_bytes_;
  Bytes buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// ---- Message payloads -----------------------------------------------------
///
/// Each struct encodes to / decodes from the payload section of its frame.
/// Decoders treat input as untrusted: any truncation, trailing garbage, or
/// implausible count returns an error Status, never aborts.

struct HelloMsg {
  NodeRole role = NodeRole::kClientHost;
  uint32_t index = 0;  ///< Peer index; 0 for orderer / client host.
  std::string name;    ///< Diagnostic label ("A1", "orderer", "load").

  Bytes Encode() const;
  static Result<HelloMsg> Decode(ByteReader* r);
};

struct ProposalMsg {
  uint32_t channel = 0;
  uint32_t client_index = 0;  ///< Global client index (directory order).
  Proposal proposal;

  Bytes Encode() const;
  static Result<ProposalMsg> Decode(ByteReader* r);
};

/// Peer -> client endorsement outcome. `ok` selects which arm is encoded:
/// a successful simulation carries the rwset + endorsement, a failed one
/// carries the error status.
struct EndorsementReplyMsg {
  uint32_t client_index = 0;
  uint64_t proposal_id = 0;
  bool ok = false;
  ReadWriteSet rwset;        ///< Valid iff ok.
  Endorsement endorsement;   ///< Valid iff ok.
  uint8_t status_code = 0;   ///< StatusCode, valid iff !ok.
  std::string status_message;

  Bytes Encode() const;
  static Result<EndorsementReplyMsg> Decode(ByteReader* r);
};

struct BusyMsg {
  uint32_t client_index = 0;
  uint64_t proposal_id = 0;
  uint64_t retry_after_us = 0;

  Bytes Encode() const;
  static Result<BusyMsg> Decode(ByteReader* r);
};

struct TransactionMsg {
  uint32_t channel = 0;
  Transaction tx;

  Bytes Encode() const;
  static Result<TransactionMsg> Decode(ByteReader* r);
};

struct BlockMsg {
  uint32_t channel = 0;
  Block block;

  Bytes Encode() const;
  static Result<BlockMsg> Decode(ByteReader* r);
};

struct ChainInfoMsg {
  uint32_t channel = 0;
  uint64_t height = 0;  ///< Highest block number the orderer dispatched.

  Bytes Encode() const;
  static Result<ChainInfoMsg> Decode(ByteReader* r);
};

struct BlockRequestMsg {
  uint32_t channel = 0;
  uint32_t peer_index = 0;
  uint64_t from_number = 0;

  Bytes Encode() const;
  static Result<BlockRequestMsg> Decode(ByteReader* r);
};

/// Final validation outcome for one proposal, routed to the client host.
/// Carries the client *name* (not index) because the orderer's early-abort
/// path only knows the name from the transaction.
struct OutcomeMsg {
  std::string client;
  uint64_t proposal_id = 0;
  TxValidationCode code = TxValidationCode::kNotValidated;

  Bytes Encode() const;
  static Result<OutcomeMsg> Decode(ByteReader* r);
};

struct StateRequestMsg {
  uint64_t token = 0;  ///< Echoed in the report; pairs requests and replies.

  Bytes Encode() const;
  static Result<StateRequestMsg> Decode(ByteReader* r);
};

struct ChannelStateInfo {
  uint64_t height = 0;             ///< Committed chain height.
  crypto::Digest tip_hash{};       ///< Header hash of the tip block.
  std::string state_fingerprint;   ///< statedb::StateDb::Fingerprint().
  uint64_t num_keys = 0;

  friend bool operator==(const ChannelStateInfo& a, const ChannelStateInfo& b) {
    return a.height == b.height && a.tip_hash == b.tip_hash &&
           a.state_fingerprint == b.state_fingerprint &&
           a.num_keys == b.num_keys;
  }
};

struct StateReportMsg {
  uint32_t peer_index = 0;
  uint64_t token = 0;
  std::vector<ChannelStateInfo> channels;

  Bytes Encode() const;
  static Result<StateReportMsg> Decode(ByteReader* r);
};

struct ShutdownMsg {
  Bytes Encode() const;
  static Result<ShutdownMsg> Decode(ByteReader* r);
};

}  // namespace fabricpp::proto

#endif  // FABRICPP_PROTO_WIRE_FORMAT_H_
