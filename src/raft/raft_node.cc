#include "raft/raft_node.h"

#include <algorithm>
#include <variant>

#include "raft/sim_transport.h"
#include "raft/thread_transport.h"
#include "sim/fault_injector.h"

namespace fabricpp::raft {

std::string_view RoleToString(Role role) {
  switch (role) {
    case Role::kFollower:
      return "FOLLOWER";
    case Role::kCandidate:
      return "CANDIDATE";
    case Role::kLeader:
      return "LEADER";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RaftNode
// ---------------------------------------------------------------------------

RaftNode::RaftNode(uint32_t id, uint32_t cluster_size, uint64_t seed,
                   const Params* params, runtime::Clock* clock,
                   Transport* transport, HardState* stable)
    : id_(id),
      cluster_size_(cluster_size),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))),
      params_(params),
      clock_(clock),
      transport_(transport),
      stable_(stable) {}

void RaftNode::Start() { ResetElectionTimer(); }

runtime::TimeMicros RaftNode::ElectionTimeout() {
  const Params& p = *params_;
  return p.election_timeout_min +
         rng_.NextUint64(p.election_timeout_max - p.election_timeout_min + 1);
}

void RaftNode::ResetElectionTimer() {
  const uint64_t generation = ++election_timer_generation_;
  clock_->Schedule(ElectionTimeout(), [this, generation]() {
    if (stopped_ || generation != election_timer_generation_) return;
    if (role_ != Role::kLeader) StartElection();
    // Leaders don't use election timers; their heartbeats are separate.
  });
}

void RaftNode::PersistHardState() {
  if (stable_ == nullptr) return;
  stable_->term = current_term_;
  stable_->voted_for = voted_for_;
}

void RaftNode::Resume() {
  stopped_ = false;
  role_ = Role::kFollower;
  if (persist_hard_state_ && stable_ != nullptr) {
    // Reload the durable fraction: without this a restarted replica rejoins
    // at term 0 with no vote on record and can grant a second vote in a
    // term it already voted in — two leaders in one term.
    current_term_ = stable_->term;
    voted_for_ = stable_->voted_for;
  }
  ResetElectionTimer();
}

void RaftNode::Crash() {
  stopped_ = true;
  role_ = Role::kFollower;
  votes_received_ = 0;
  next_index_.clear();
  match_index_.clear();
  // Process death wipes volatile memory: the in-memory (term, vote) are
  // gone; Resume() restores them from stable storage. The log survives
  // (persisted in real Raft).
  current_term_ = 0;
  voted_for_.reset();
  // Invalidate any armed election timer; Resume() arms a fresh one.
  ++election_timer_generation_;
}

void RaftNode::BecomeFollower(uint64_t term) {
  current_term_ = term;
  role_ = Role::kFollower;
  voted_for_.reset();
  PersistHardState();
  ResetElectionTimer();
}

void RaftNode::StartElection() {
  role_ = Role::kCandidate;
  ++current_term_;
  voted_for_ = id_;
  PersistHardState();
  votes_received_ = 1;  // Own vote.
  ResetElectionTimer();  // Retry with a fresh timeout on a split vote.
  for (uint32_t peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    transport_->Send(id_, peer, 64,
                     RequestVote{current_term_, id_, LastLogIndex(),
                                 LastLogTerm()});
  }
  if (cluster_size_ == 1) BecomeLeader();
}

void RaftNode::Handle(const RequestVote& msg) {
  if (stopped_) return;
  if (msg.term > current_term_) BecomeFollower(msg.term);
  bool granted = false;
  if (msg.term == current_term_ &&
      (!voted_for_.has_value() || *voted_for_ == msg.candidate)) {
    // Election restriction (§5.4.1): candidate's log must be at least as
    // up-to-date as ours.
    const bool candidate_up_to_date =
        msg.last_log_term > LastLogTerm() ||
        (msg.last_log_term == LastLogTerm() &&
         msg.last_log_index >= LastLogIndex());
    if (candidate_up_to_date) {
      granted = true;
      voted_for_ = msg.candidate;
      PersistHardState();
      ResetElectionTimer();
    }
  }
  transport_->Send(id_, msg.candidate, 32,
                   VoteReply{current_term_, id_, granted});
}

void RaftNode::Handle(const VoteReply& msg) {
  if (stopped_) return;
  if (msg.term > current_term_) {
    BecomeFollower(msg.term);
    return;
  }
  if (role_ != Role::kCandidate || msg.term != current_term_ || !msg.granted) {
    return;
  }
  if (++votes_received_ > cluster_size_ / 2) BecomeLeader();
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  next_index_.assign(cluster_size_, LastLogIndex() + 1);
  match_index_.assign(cluster_size_, 0);
  match_index_[id_] = LastLogIndex();
  BroadcastAppendEntries();
}

std::optional<uint64_t> RaftNode::Propose(Bytes payload) {
  if (stopped_ || role_ != Role::kLeader) return std::nullopt;
  log_.push_back(LogEntry{current_term_, std::move(payload)});
  match_index_[id_] = LastLogIndex();
  if (cluster_size_ == 1) {
    AdvanceCommitIndex();
  } else {
    BroadcastAppendEntries();
  }
  return LastLogIndex();
}

void RaftNode::BroadcastAppendEntries() {
  if (stopped_ || role_ != Role::kLeader) return;
  for (uint32_t peer = 0; peer < cluster_size_; ++peer) {
    if (peer != id_) SendAppendEntriesTo(peer);
  }
  // Heartbeat rearm: keeps followers' election timers at bay.
  const uint64_t term = current_term_;
  clock_->Schedule(params_->heartbeat_interval, [this, term]() {
    if (!stopped_ && role_ == Role::kLeader && current_term_ == term) {
      BroadcastAppendEntries();
    }
  });
}

void RaftNode::SendAppendEntriesTo(uint32_t peer) {
  const uint64_t next = next_index_[peer];
  AppendEntries msg;
  msg.term = current_term_;
  msg.leader = id_;
  msg.prev_log_index = next - 1;
  msg.prev_log_term = TermAt(next - 1);
  msg.leader_commit = commit_index_;
  uint64_t payload_bytes = 64;
  for (uint64_t i = next; i <= LastLogIndex(); ++i) {
    msg.entries.push_back(log_[i - 1]);
    payload_bytes += log_[i - 1].payload.size() + 16;
  }
  transport_->Send(id_, peer, payload_bytes, std::move(msg));
}

void RaftNode::Handle(const AppendEntries& msg) {
  if (stopped_) return;
  if (msg.term > current_term_) BecomeFollower(msg.term);
  if (msg.term < current_term_) {
    transport_->Send(id_, msg.leader, 32,
                     AppendReply{current_term_, id_, false, 0});
    return;
  }
  // Valid leader for our term.
  if (role_ != Role::kFollower) role_ = Role::kFollower;
  ResetElectionTimer();

  // Consistency check (§5.3).
  if (msg.prev_log_index > LastLogIndex() ||
      TermAt(msg.prev_log_index) != msg.prev_log_term) {
    transport_->Send(id_, msg.leader, 32,
                     AppendReply{current_term_, id_, false, 0});
    return;
  }
  // Append/overwrite entries.
  uint64_t index = msg.prev_log_index;
  for (const LogEntry& entry : msg.entries) {
    ++index;
    if (index <= LastLogIndex()) {
      if (TermAt(index) != entry.term) {
        log_.resize(index - 1);  // Conflict: truncate our divergent suffix.
        log_.push_back(entry);
      }
    } else {
      log_.push_back(entry);
    }
  }
  if (msg.leader_commit > commit_index_) {
    commit_index_ = std::min(msg.leader_commit, LastLogIndex());
    ApplyCommitted();
  }
  transport_->Send(id_, msg.leader, 32,
                   AppendReply{current_term_, id_, true, index});
}

void RaftNode::Handle(const AppendReply& msg) {
  if (stopped_) return;
  if (msg.term > current_term_) {
    BecomeFollower(msg.term);
    return;
  }
  if (role_ != Role::kLeader || msg.term != current_term_) return;
  if (msg.success) {
    match_index_[msg.follower] =
        std::max(match_index_[msg.follower], msg.match_index);
    next_index_[msg.follower] = match_index_[msg.follower] + 1;
    AdvanceCommitIndex();
  } else {
    // Log repair: back next_index off and retry immediately.
    if (next_index_[msg.follower] > 1) --next_index_[msg.follower];
    SendAppendEntriesTo(msg.follower);
  }
}

void RaftNode::AdvanceCommitIndex() {
  // Largest N with a majority of match_index >= N and log[N].term ==
  // current term (§5.4.2: only current-term entries commit by counting).
  for (uint64_t n = LastLogIndex(); n > commit_index_; --n) {
    if (TermAt(n) != current_term_) break;
    uint32_t replicas = 0;
    for (uint32_t peer = 0; peer < cluster_size_; ++peer) {
      if (match_index_[peer] >= n) ++replicas;
    }
    if (replicas > cluster_size_ / 2) {
      commit_index_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (on_commit_) on_commit_(last_applied_, log_[last_applied_ - 1].payload);
  }
}

// ---------------------------------------------------------------------------
// RaftCluster
// ---------------------------------------------------------------------------

RaftCluster::RaftCluster(sim::Environment* env, uint32_t num_nodes,
                         uint64_t seed)
    : RaftCluster(env, num_nodes, seed, Params{}) {}

RaftCluster::RaftCluster(sim::Environment* env, uint32_t num_nodes,
                         uint64_t seed, Params params)
    : env_(env), params_(params) {
  env_clock_ = std::make_unique<EnvClock>(env);
  auto transport =
      std::make_unique<SimRaftTransport>(env, &params_, &messages_sent_);
  sim_transport_ = transport.get();
  transport_ = std::move(transport);
  sim_transport_->SetDeliver([this](uint32_t to, const RaftMessage& msg) {
    std::visit([this, to](const auto& m) { nodes_[to]->Handle(m); }, msg);
  });
  BuildNodes(num_nodes, seed);
}

RaftCluster::RaftCluster(runtime::Transport* transport,
                         std::vector<runtime::Endpoint*> endpoints,
                         uint64_t seed, Params params)
    : params_(params), endpoints_(std::move(endpoints)) {
  auto thread_transport = std::make_unique<ThreadRaftTransport>(
      transport, endpoints_, &messages_sent_);
  thread_transport->SetDeliver([this](uint32_t to, const RaftMessage& msg) {
    std::visit([this, to](const auto& m) { nodes_[to]->Handle(m); }, msg);
  });
  transport_ = std::move(thread_transport);
  BuildNodes(static_cast<uint32_t>(endpoints_.size()), seed);
}

void RaftCluster::BuildNodes(uint32_t num_nodes, uint64_t seed) {
  hard_states_.resize(num_nodes);
  for (uint32_t id = 0; id < num_nodes; ++id) {
    runtime::Clock* clock =
        env_ != nullptr ? env_clock_.get() : &endpoints_[id]->clock();
    nodes_.push_back(std::make_unique<RaftNode>(id, num_nodes, seed, &params_,
                                                clock, transport_.get(),
                                                &hard_states_[id]));
  }
}

void RaftCluster::Start() {
  if (env_ != nullptr) {
    for (auto& node : nodes_) node->Start();
    return;
  }
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    RaftNode* node = nodes_[id].get();
    endpoints_[id]->Post([node]() { node->Start(); });
  }
}

std::optional<uint64_t> RaftCluster::Propose(Bytes payload) {
  const auto leader = FindLeader();
  if (!leader.has_value()) return std::nullopt;
  return nodes_[*leader]->Propose(std::move(payload));
}

void RaftCluster::ProposeOnAll(Bytes payload) {
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    RaftNode* node = nodes_[id].get();
    endpoints_[id]->Post([node, payload]() mutable {
      node->Propose(std::move(payload));
    });
  }
}

std::optional<uint32_t> RaftCluster::FindLeader() const {
  std::optional<uint32_t> leader;
  uint64_t best_term = 0;
  for (const auto& node : nodes_) {
    if (node->stopped() || node->role() != Role::kLeader) continue;
    if (node->current_term() > best_term) {
      best_term = node->current_term();
      leader = node->id();
    }
  }
  return leader;
}

void RaftCluster::SetCommitCallbackOnAll(const RaftNode::CommitCallback& cb) {
  for (auto& node : nodes_) node->set_commit_callback(cb);
}

void RaftCluster::SetPersistHardStateOnAll(bool persist) {
  for (auto& node : nodes_) node->set_persist_hard_state(persist);
}

void RaftCluster::SetFaultInjector(sim::FaultInjector* injector,
                                   std::vector<sim::NodeId> node_ids) {
  if (sim_transport_ != nullptr) {
    sim_transport_->SetFaultInjector(injector, std::move(node_ids));
  }
}

void RaftCluster::ScheduleCrash(uint32_t id, runtime::TimeMicros start,
                                runtime::TimeMicros end) {
  if (env_ != nullptr) {
    if (sim_transport_ != nullptr && sim_transport_->injector() != nullptr) {
      sim_transport_->injector()->CrashNode(sim_transport_->MappedId(id),
                                            start, end);
    }
    env_->ScheduleAt(start, [this, id]() { nodes_[id]->Crash(); });
    env_->ScheduleAt(end, [this, id]() { nodes_[id]->Resume(); });
    return;
  }
  RaftNode* node = nodes_[id].get();
  runtime::Clock& clock = endpoints_[id]->clock();
  clock.ScheduleAt(start, [node]() { node->Crash(); });
  clock.ScheduleAt(end, [node]() { node->Resume(); });
}

void RaftCluster::ScheduleLeaderCrash(runtime::TimeMicros at,
                                      runtime::TimeMicros duration) {
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    RaftNode* node = nodes_[id].get();
    runtime::Clock* clock = &endpoints_[id]->clock();
    clock->ScheduleAt(at, [this, node, clock, duration]() {
      if (node->stopped() || node->role() != Role::kLeader) return;
      bool expected = false;
      if (!leader_crash_claimed_.compare_exchange_strong(expected, true)) {
        return;
      }
      node->Crash();
      clock->Schedule(duration, [node]() { node->Resume(); });
    });
  }
  // Fallback: if the election hasn't converged by `at` no replica claims
  // the crash — kill replica 0 so the chaos window still exercises a
  // failover.
  RaftNode* fallback = nodes_[0].get();
  runtime::Clock* clock0 = &endpoints_[0]->clock();
  clock0->ScheduleAt(
      at + 50 * runtime::kMillisecond, [this, fallback, clock0, duration]() {
        bool expected = false;
        if (!leader_crash_claimed_.compare_exchange_strong(expected, true)) {
          return;
        }
        fallback->Crash();
        clock0->Schedule(duration, [fallback]() { fallback->Resume(); });
      });
}

}  // namespace fabricpp::raft
