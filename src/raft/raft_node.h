#ifndef FABRICPP_RAFT_RAFT_NODE_H_
#define FABRICPP_RAFT_RAFT_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "raft/transport.h"
#include "runtime/runtime.h"
#include "sim/environment.h"
#include "sim/network.h"

namespace fabricpp::raft {

/// Raft replica role.
enum class Role { kFollower = 0, kCandidate, kLeader };
std::string_view RoleToString(Role role);

class SimRaftTransport;

/// A single Raft replica (Ongaro & Ousterhout, "In Search of an
/// Understandable Consensus Algorithm", 2014) written against the runtime
/// seam: timers go through an abstract runtime::Clock and RPCs through the
/// narrow raft::Transport interface, so the same state machine runs inside
/// the deterministic discrete-event simulation (SimRaftTransport) and on
/// real OS threads (ThreadRaftTransport, one mailbox thread per replica).
///
/// Implements leader election with randomized timeouts, log replication
/// with the AppendEntries consistency check, commit-index advancement by
/// majority match, and follower log repair. This is the consensus substrate
/// behind the crash-fault-tolerant ordering-service option — Fabric's
/// ordering service is such a cluster (Kafka in 1.2, Raft from 1.4); the
/// paper treats it as a trustworthy black box (§2.1).
///
/// Thread-safety: every entry point (Handle, Propose, timers, Crash/Resume)
/// must run on the replica's own execution context — the sim event loop, or
/// the replica's endpoint thread under ThreadRuntime. The node itself takes
/// no locks.
///
/// Persistence: (current_term, voted_for) are written through to a
/// HardState on every change and restored on Resume(), so a replica that
/// crashes inside a chaos window cannot vote twice in the same term. The
/// log also survives crashes (persistent in real Raft); snapshotting/log
/// compaction remain out of scope.
class RaftNode {
 public:
  /// `on_commit(index, payload)` fires on every node, in log order, exactly
  /// once per committed entry, on the node's own execution context.
  using CommitCallback = std::function<void(uint64_t, const Bytes&)>;

  RaftNode(uint32_t id, uint32_t cluster_size, uint64_t seed,
           const Params* params, runtime::Clock* clock, Transport* transport,
           HardState* stable);

  uint32_t id() const { return id_; }
  Role role() const { return role_; }
  uint64_t current_term() const { return current_term_; }
  std::optional<uint32_t> voted_for() const { return voted_for_; }
  uint64_t commit_index() const { return commit_index_; }
  const std::vector<LogEntry>& log() const { return log_; }
  bool stopped() const { return stopped_; }

  void set_commit_callback(CommitCallback cb) { on_commit_ = std::move(cb); }

  /// Test hook: when false, Resume() does not restore (term, vote) from
  /// stable storage — reproducing the historical double-vote gap the
  /// persistence path closes.
  void set_persist_hard_state(bool persist) { persist_hard_state_ = persist; }

  /// Client entry point: appends to the leader's log and starts
  /// replication. Returns the assigned (1-based) log index, or nullopt on
  /// non-leaders — callers retry via RaftCluster::Propose, which routes to
  /// the current leader.
  std::optional<uint64_t> Propose(Bytes payload);

  /// Crash simulation: a stopped node ignores timers and messages.
  void Stop() { stopped_ = true; }
  void Resume();

  /// Crash is Stop plus loss of volatile memory: candidate vote tallies,
  /// leader replication indices, and the in-memory (term, vote) are gone
  /// when the process dies. Restart via Resume(), which reloads (term,
  /// vote) from the HardState ("stable storage") and rejoins as a follower.
  void Crash();

  // --- Message handlers (invoked by the transport on delivery) ---
  using RequestVote = raft::RequestVote;
  using VoteReply = raft::VoteReply;
  using AppendEntries = raft::AppendEntries;
  using AppendReply = raft::AppendReply;

  void Handle(const RequestVote& msg);
  void Handle(const VoteReply& msg);
  void Handle(const AppendEntries& msg);
  void Handle(const AppendReply& msg);

  /// Arms the initial election timer (called once by the cluster, on this
  /// replica's execution context).
  void Start();

 private:
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void BroadcastAppendEntries();
  void SendAppendEntriesTo(uint32_t peer);
  void AdvanceCommitIndex();
  void ApplyCommitted();
  void ResetElectionTimer();
  runtime::TimeMicros ElectionTimeout();
  void PersistHardState();

  uint64_t LastLogIndex() const { return log_.size(); }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }
  /// Term of the entry at 1-based `index` (0 for index 0).
  uint64_t TermAt(uint64_t index) const {
    return index == 0 ? 0 : log_[index - 1].term;
  }

  uint32_t id_;
  uint32_t cluster_size_;
  Rng rng_;
  const Params* params_;
  runtime::Clock* clock_;
  Transport* transport_;
  HardState* stable_;
  bool persist_hard_state_ = true;

  Role role_ = Role::kFollower;
  bool stopped_ = false;
  uint64_t current_term_ = 0;
  std::optional<uint32_t> voted_for_;
  std::vector<LogEntry> log_;  // 1-based indexing via helpers.
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;

  // Candidate state.
  uint32_t votes_received_ = 0;

  // Leader state (1-based indices).
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;

  uint64_t election_timer_generation_ = 0;
  CommitCallback on_commit_;
};

/// A fully wired Raft cluster: replica construction plus the transport and
/// clock wiring for one of the two substrates.
///
/// Sim mode (the historical constructors): every replica shares the one
/// event loop; Propose/FindLeader/ScheduleCrash poke nodes directly.
///
/// Thread mode: each replica lives on its own runtime endpoint (mailbox
/// thread) and RPCs ride runtime::Transport. Cross-thread access goes
/// through endpoint posts — Start()/ProposeOnAll()/ScheduleCrash()/
/// ScheduleLeaderCrash() do that internally; direct node(i) state reads are
/// only safe before the runtime starts or after it quiesces.
class RaftCluster {
 public:
  using Params = raft::Params;  // Historical nested-name compatibility.

  RaftCluster(sim::Environment* env, uint32_t num_nodes, uint64_t seed);
  RaftCluster(sim::Environment* env, uint32_t num_nodes, uint64_t seed,
              Params params);

  /// Thread-mode cluster: one replica per endpoint, RPCs over `transport`.
  RaftCluster(runtime::Transport* transport,
              std::vector<runtime::Endpoint*> endpoints, uint64_t seed,
              Params params);

  /// Arms all election timers (sim: inline; thread: via endpoint posts).
  void Start();

  /// Routes a proposal to the current leader (if any). Returns the
  /// assigned log index, or nullopt when no live leader exists — the
  /// caller retries after a delay. Sim mode only (reads node state
  /// directly).
  std::optional<uint64_t> Propose(Bytes payload);

  /// Thread-mode proposal: posts a propose-if-leader task to every
  /// replica. Non-leaders ignore it; duplicate log entries for the same
  /// payload are deduplicated by the consensus layer's pending-erase.
  void ProposeOnAll(Bytes payload);

  RaftNode& node(uint32_t id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  const Params& params() const { return params_; }
  sim::Environment& env() { return *env_; }
  bool thread_mode() const { return env_ == nullptr; }
  runtime::Endpoint* endpoint(uint32_t id) {
    return id < endpoints_.size() ? endpoints_[id] : nullptr;
  }

  /// The current leader id, if exactly one live node believes it leads in
  /// the highest term. Sim mode (or quiesced thread runtime) only.
  std::optional<uint32_t> FindLeader() const;

  /// Sets one commit callback on every node (tests usually only need the
  /// leader's, but the ordering service wants every replica's view). Call
  /// before Start().
  void SetCommitCallbackOnAll(const RaftNode::CommitCallback& cb);

  /// Test hook: toggles (term, vote) restore-on-resume on every replica.
  void SetPersistHardStateOnAll(bool persist);

  /// Routes the cluster's transport through a fault injector (sim mode).
  /// `node_ids` maps replica id -> sim network node id (one entry per
  /// replica); the injector then sees Raft traffic on those ids and can
  /// drop, duplicate, delay or partition it like any other link.
  void SetFaultInjector(sim::FaultInjector* injector,
                        std::vector<sim::NodeId> node_ids);

  /// Crashes replica `id` over the window [start, end): the node loses
  /// volatile state at `start` and rejoins as a follower at `end`. Sim
  /// mode additionally blackholes the replica's traffic through the fault
  /// injector; thread mode schedules both transitions on the replica's own
  /// endpoint clock.
  void ScheduleCrash(uint32_t id, runtime::TimeMicros start,
                     runtime::TimeMicros end);

  /// Thread-mode leader kill: at time `at` (endpoint-clock time) whichever
  /// replica believes it leads crashes itself for `duration`; if no replica
  /// claims leadership within 50ms of `at` (election still converging),
  /// replica 0 crashes as a fallback so the chaos window always exercises a
  /// failover.
  void ScheduleLeaderCrash(runtime::TimeMicros at,
                           runtime::TimeMicros duration);

  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 private:
  void BuildNodes(uint32_t num_nodes, uint64_t seed);

  sim::Environment* env_ = nullptr;  // Sim mode only (null under threads).
  Params params_;
  std::unique_ptr<runtime::Clock> env_clock_;    // Sim mode.
  std::unique_ptr<Transport> transport_;         // Owned transport adapter.
  SimRaftTransport* sim_transport_ = nullptr;    // Downcast view (sim mode).
  std::vector<runtime::Endpoint*> endpoints_;    // Thread mode.
  std::vector<HardState> hard_states_;           // Stable storage, 1/replica.
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<bool> leader_crash_claimed_{false};
};

}  // namespace fabricpp::raft

#endif  // FABRICPP_RAFT_RAFT_NODE_H_
