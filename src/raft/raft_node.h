#ifndef FABRICPP_RAFT_RAFT_NODE_H_
#define FABRICPP_RAFT_RAFT_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "sim/network.h"

namespace fabricpp::raft {

/// Raft replica role.
enum class Role { kFollower = 0, kCandidate, kLeader };
std::string_view RoleToString(Role role);

/// One replicated log entry.
struct LogEntry {
  uint64_t term = 0;
  Bytes payload;
};

class RaftCluster;

/// A single Raft replica (Ongaro & Ousterhout, "In Search of an
/// Understandable Consensus Algorithm", 2014) running inside the
/// discrete-event simulation.
///
/// Implements leader election with randomized timeouts, log replication
/// with the AppendEntries consistency check, commit-index advancement by
/// majority match, and follower log repair. This is the consensus substrate
/// behind the crash-fault-tolerant ordering-service option — Fabric's
/// ordering service is such a cluster (Kafka in 1.2, Raft from 1.4); the
/// paper treats it as a trustworthy black box (§2.1).
///
/// Omitted relative to full Raft: persistence of term/vote across restarts
/// and snapshotting/log compaction — crash-recovery with disk state is out
/// of scope for the simulation (a stopped node that resumes rejoins with
/// its in-memory state intact).
class RaftNode {
 public:
  /// `on_commit(index, payload)` fires on every node, in log order, exactly
  /// once per committed entry.
  using CommitCallback = std::function<void(uint64_t, const Bytes&)>;

  RaftNode(RaftCluster* cluster, uint32_t id, uint32_t cluster_size,
           uint64_t seed);

  uint32_t id() const { return id_; }
  Role role() const { return role_; }
  uint64_t current_term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  const std::vector<LogEntry>& log() const { return log_; }
  bool stopped() const { return stopped_; }

  void set_commit_callback(CommitCallback cb) { on_commit_ = std::move(cb); }

  /// Client entry point: appends to the leader's log and starts
  /// replication. Returns the assigned (1-based) log index, or nullopt on
  /// non-leaders — callers retry via RaftCluster::Propose, which routes to
  /// the current leader.
  std::optional<uint64_t> Propose(Bytes payload);

  /// Crash simulation: a stopped node ignores timers and messages.
  void Stop() { stopped_ = true; }
  void Resume();

  /// Crash is Stop plus loss of volatile state: candidate vote tallies and
  /// leader replication indices are gone when the process dies. The log,
  /// term and vote survive (they are persisted in real Raft). Restart via
  /// Resume(), which rejoins as a follower.
  void Crash();

  // --- Message handlers (invoked by RaftCluster on delivery) ---
  struct RequestVote {
    uint64_t term;
    uint32_t candidate;
    uint64_t last_log_index;
    uint64_t last_log_term;
  };
  struct VoteReply {
    uint64_t term;
    uint32_t voter;
    bool granted;
  };
  struct AppendEntries {
    uint64_t term;
    uint32_t leader;
    uint64_t prev_log_index;
    uint64_t prev_log_term;
    std::vector<LogEntry> entries;
    uint64_t leader_commit;
  };
  struct AppendReply {
    uint64_t term;
    uint32_t follower;
    bool success;
    uint64_t match_index;
  };

  void Handle(const RequestVote& msg);
  void Handle(const VoteReply& msg);
  void Handle(const AppendEntries& msg);
  void Handle(const AppendReply& msg);

  /// Arms the initial election timer (called once by the cluster).
  void Start();

 private:
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void BroadcastAppendEntries();
  void SendAppendEntriesTo(uint32_t peer);
  void AdvanceCommitIndex();
  void ApplyCommitted();
  void ResetElectionTimer();
  sim::SimTime ElectionTimeout();

  uint64_t LastLogIndex() const { return log_.size(); }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }
  /// Term of the entry at 1-based `index` (0 for index 0).
  uint64_t TermAt(uint64_t index) const {
    return index == 0 ? 0 : log_[index - 1].term;
  }

  RaftCluster* cluster_;
  uint32_t id_;
  uint32_t cluster_size_;
  Rng rng_;

  Role role_ = Role::kFollower;
  bool stopped_ = false;
  uint64_t current_term_ = 0;
  std::optional<uint32_t> voted_for_;
  std::vector<LogEntry> log_;  // 1-based indexing via helpers.
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;

  // Candidate state.
  uint32_t votes_received_ = 0;

  // Leader state (1-based indices).
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;

  uint64_t election_timer_generation_ = 0;
  CommitCallback on_commit_;
};

/// A fully wired Raft cluster inside one simulation Environment.
class RaftCluster {
 public:
  /// Message-delay model: one-way latency plus payload transmission cost.
  struct Params {
    sim::SimTime message_latency = 300;
    double bytes_per_us = 125.0;
    sim::SimTime election_timeout_min = 150 * sim::kMillisecond;
    sim::SimTime election_timeout_max = 300 * sim::kMillisecond;
    sim::SimTime heartbeat_interval = 50 * sim::kMillisecond;
  };

  RaftCluster(sim::Environment* env, uint32_t num_nodes, uint64_t seed);
  RaftCluster(sim::Environment* env, uint32_t num_nodes, uint64_t seed,
              Params params);

  /// Arms all election timers.
  void Start();

  /// Routes a proposal to the current leader (if any). Returns the
  /// assigned log index, or nullopt when no live leader exists — the
  /// caller retries after a delay.
  std::optional<uint64_t> Propose(Bytes payload);

  RaftNode& node(uint32_t id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  const Params& params() const { return params_; }
  sim::Environment& env() { return *env_; }

  /// The current leader id, if exactly one live node believes it leads in
  /// the highest term.
  std::optional<uint32_t> FindLeader() const;

  /// Sets one commit callback on every node (tests usually only need the
  /// leader's, but the ordering service wants every replica's view).
  void SetCommitCallbackOnAll(const RaftNode::CommitCallback& cb);

  /// Routes the cluster's transport through a fault injector. `node_ids`
  /// maps replica id -> sim network node id (one entry per replica); the
  /// injector then sees Raft traffic on those ids and can drop, duplicate,
  /// delay or partition it like any other link.
  void SetFaultInjector(sim::FaultInjector* injector,
                        std::vector<sim::NodeId> node_ids) {
    injector_ = injector;
    node_ids_ = std::move(node_ids);
  }

  /// Crashes replica `id` over the virtual-time window [start, end): the
  /// injector blackholes its traffic and the node loses volatile state at
  /// `start`, then rejoins as a follower at `end`.
  void ScheduleCrash(uint32_t id, sim::SimTime start, sim::SimTime end);

  // --- Transport (used by RaftNode) ---
  template <typename Message>
  void Send(uint32_t from, uint32_t to, uint64_t payload_bytes, Message msg) {
    sim::SimTime delay =
        params_.message_latency +
        static_cast<sim::SimTime>(payload_bytes / params_.bytes_per_us);
    if (injector_ == nullptr) {
      env_->Schedule(delay, [this, to, msg = std::move(msg)]() {
        nodes_[to]->Handle(msg);
      });
      return;
    }
    const sim::FaultInjector::SendDecision decision =
        injector_->OnSend(MappedId(from), MappedId(to));
    if (!decision.deliver) return;
    delay += decision.extra_delay;
    if (decision.duplicate) {
      // Raft handlers are idempotent, so a duplicated RPC is harmless —
      // which is exactly the property the chaos suite exercises.
      Message copy = msg;
      env_->Schedule(
          delay + params_.message_latency + decision.duplicate_extra_delay,
          [this, to, copy = std::move(copy)]() {
            if (injector_->OnDeliver(MappedId(to))) nodes_[to]->Handle(copy);
          });
    }
    env_->Schedule(delay, [this, to, msg = std::move(msg)]() {
      if (injector_->OnDeliver(MappedId(to))) nodes_[to]->Handle(msg);
    });
  }

  uint64_t messages_sent() const { return messages_sent_; }
  void CountMessage() { ++messages_sent_; }

 private:
  sim::NodeId MappedId(uint32_t replica) const {
    return replica < node_ids_.size() ? node_ids_[replica]
                                      : static_cast<sim::NodeId>(replica);
  }

  sim::Environment* env_;
  Params params_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  sim::FaultInjector* injector_ = nullptr;
  std::vector<sim::NodeId> node_ids_;
  uint64_t messages_sent_ = 0;
};

}  // namespace fabricpp::raft

#endif  // FABRICPP_RAFT_RAFT_NODE_H_
