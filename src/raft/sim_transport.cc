#include "raft/sim_transport.h"

#include "sim/fault_injector.h"

namespace fabricpp::raft {

void SimRaftTransport::Send(uint32_t from, uint32_t to, uint64_t payload_bytes,
                            RaftMessage msg) {
  messages_sent_->fetch_add(1, std::memory_order_relaxed);
  sim::SimTime delay =
      params_->message_latency +
      static_cast<sim::SimTime>(payload_bytes / params_->bytes_per_us);
  if (injector_ == nullptr) {
    env_->Schedule(delay, [this, to, msg = std::move(msg)]() {
      deliver_(to, msg);
    });
    return;
  }
  const sim::FaultInjector::SendDecision decision =
      injector_->OnSend(MappedId(from), MappedId(to));
  if (!decision.deliver) return;
  delay += decision.extra_delay;
  if (decision.duplicate) {
    // Raft handlers are idempotent, so a duplicated RPC is harmless —
    // which is exactly the property the chaos suite exercises. The copy is
    // scheduled before the original: event-insertion order is part of the
    // deterministic fingerprint and must match the historical transport.
    RaftMessage copy = msg;
    env_->Schedule(
        delay + params_->message_latency + decision.duplicate_extra_delay,
        [this, to, copy = std::move(copy)]() {
          if (injector_->OnDeliver(MappedId(to))) deliver_(to, copy);
        });
  }
  env_->Schedule(delay, [this, to, msg = std::move(msg)]() {
    if (injector_->OnDeliver(MappedId(to))) deliver_(to, msg);
  });
}

}  // namespace fabricpp::raft
