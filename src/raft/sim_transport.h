#ifndef FABRICPP_RAFT_SIM_TRANSPORT_H_
#define FABRICPP_RAFT_SIM_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "raft/transport.h"
#include "runtime/runtime.h"
#include "sim/environment.h"
#include "sim/network.h"

namespace fabricpp::raft {

/// Adapts sim::Environment to the runtime::Clock interface so RaftNode can
/// run its timers against the abstract clock while living inside the
/// discrete-event simulation. Scheduling order (and with it the event
/// sequence numbers that make runs byte-identical) is exactly the direct
/// env->Schedule call it replaces.
class EnvClock final : public runtime::Clock {
 public:
  explicit EnvClock(sim::Environment* env) : env_(env) {}

  runtime::TimeMicros Now() const override { return env_->Now(); }
  void Schedule(runtime::TimeMicros delay, runtime::Task fn) override {
    env_->Schedule(delay, std::move(fn));
  }
  void ScheduleAt(runtime::TimeMicros when, runtime::Task fn) override {
    env_->ScheduleAt(when, std::move(fn));
  }

 private:
  sim::Environment* env_;
};

/// The simulation-mode raft::Transport: latency + transmission-delay model
/// with optional fault injection (loss, duplication, extra delay,
/// partitions, crash blackholing). Replicates the historical
/// RaftCluster::Send event-insertion order exactly — the duplicate copy is
/// scheduled *before* the original — so existing sim fingerprints stay
/// byte-identical.
class SimRaftTransport final : public Transport {
 public:
  using DeliverFn = std::function<void(uint32_t to, const RaftMessage& msg)>;

  SimRaftTransport(sim::Environment* env, const Params* params,
                   std::atomic<uint64_t>* messages_sent)
      : env_(env), params_(params), messages_sent_(messages_sent) {}

  /// Delivery target (the cluster's dispatch-to-node hook). Must be set
  /// before any Send.
  void SetDeliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Routes traffic through a fault injector. `node_ids` maps replica id ->
  /// sim network node id, so a fault plan written against network ids hits
  /// consensus traffic too.
  void SetFaultInjector(sim::FaultInjector* injector,
                        std::vector<sim::NodeId> node_ids) {
    injector_ = injector;
    node_ids_ = std::move(node_ids);
  }

  sim::FaultInjector* injector() const { return injector_; }

  sim::NodeId MappedId(uint32_t replica) const {
    return replica < node_ids_.size() ? node_ids_[replica]
                                      : static_cast<sim::NodeId>(replica);
  }

  void Send(uint32_t from, uint32_t to, uint64_t payload_bytes,
            RaftMessage msg) override;

 private:
  sim::Environment* env_;
  const Params* params_;
  std::atomic<uint64_t>* messages_sent_;
  DeliverFn deliver_;
  sim::FaultInjector* injector_ = nullptr;
  std::vector<sim::NodeId> node_ids_;
};

}  // namespace fabricpp::raft

#endif  // FABRICPP_RAFT_SIM_TRANSPORT_H_
