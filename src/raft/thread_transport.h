#ifndef FABRICPP_RAFT_THREAD_TRANSPORT_H_
#define FABRICPP_RAFT_THREAD_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "raft/transport.h"
#include "runtime/runtime.h"

namespace fabricpp::raft {

/// The thread-mode raft::Transport: each replica is a runtime endpoint
/// (its own mailbox thread), and RPCs ride the runtime seam's transport —
/// delivery runs on the receiving replica's mailbox thread, preserving the
/// single-writer discipline RaftNode is written against. Deliveries are
/// sheddable under mailbox backpressure: Raft tolerates message loss by
/// design (retries, idempotent handlers, the consensus layer re-proposes).
class ThreadRaftTransport final : public Transport {
 public:
  using DeliverFn = std::function<void(uint32_t to, const RaftMessage& msg)>;

  ThreadRaftTransport(runtime::Transport* transport,
                      std::vector<runtime::Endpoint*> endpoints,
                      std::atomic<uint64_t>* messages_sent)
      : transport_(transport),
        endpoints_(std::move(endpoints)),
        messages_sent_(messages_sent) {}

  void SetDeliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  void Send(uint32_t from, uint32_t to, uint64_t payload_bytes,
            RaftMessage msg) override {
    messages_sent_->fetch_add(1, std::memory_order_relaxed);
    transport_->Send(*endpoints_[from], *endpoints_[to], payload_bytes,
                     [this, to, msg = std::move(msg)]() {
                       deliver_(to, msg);
                     });
  }

 private:
  runtime::Transport* transport_;
  std::vector<runtime::Endpoint*> endpoints_;
  std::atomic<uint64_t>* messages_sent_;
  DeliverFn deliver_;
};

}  // namespace fabricpp::raft

#endif  // FABRICPP_RAFT_THREAD_TRANSPORT_H_
