#ifndef FABRICPP_RAFT_TRANSPORT_H_
#define FABRICPP_RAFT_TRANSPORT_H_

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "runtime/time.h"

namespace fabricpp::raft {

/// One replicated log entry.
struct LogEntry {
  uint64_t term = 0;
  Bytes payload;
};

/// Message-delay model plus the protocol timing knobs. Times are in
/// microseconds and mean the same thing under virtual (sim) and real
/// (thread) clocks.
struct Params {
  runtime::TimeMicros message_latency = 300;
  double bytes_per_us = 125.0;
  runtime::TimeMicros election_timeout_min = 150 * runtime::kMillisecond;
  runtime::TimeMicros election_timeout_max = 300 * runtime::kMillisecond;
  runtime::TimeMicros heartbeat_interval = 50 * runtime::kMillisecond;
};

// --- Raft RPCs (Ongaro & Ousterhout, Fig. 2) ---
struct RequestVote {
  uint64_t term;
  uint32_t candidate;
  uint64_t last_log_index;
  uint64_t last_log_term;
};
struct VoteReply {
  uint64_t term;
  uint32_t voter;
  bool granted;
};
struct AppendEntries {
  uint64_t term;
  uint32_t leader;
  uint64_t prev_log_index;
  uint64_t prev_log_term;
  std::vector<LogEntry> entries;
  uint64_t leader_commit;
};
struct AppendReply {
  uint64_t term;
  uint32_t follower;
  bool success;
  uint64_t match_index;
};

/// Every Raft RPC in one deliverable value. Transports move these whole;
/// the wire size is modeled separately via `payload_bytes` (the in-process
/// transports never serialize).
using RaftMessage =
    std::variant<RequestVote, VoteReply, AppendEntries, AppendReply>;

/// The narrow seam RaftNode speaks instead of sim primitives: fire-and-
/// forget point-to-point delivery between replicas. `payload_bytes` is the
/// modeled wire size of the RPC (used for transmission-delay modeling and
/// byte accounting). Implementations deliver `msg` on the *receiving*
/// replica's execution context — the sim event loop, or the receiving
/// endpoint's mailbox thread — and may drop, duplicate or delay it (Raft
/// handlers are idempotent by design).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void Send(uint32_t from, uint32_t to, uint64_t payload_bytes,
                    RaftMessage msg) = 0;
};

/// The durable fraction of a replica's state (Raft Fig. 2 "persistent
/// state"): what must survive a crash so a restarted replica cannot vote
/// twice in the same term. The cluster owns one of these per replica as
/// simulated stable storage; RaftNode writes through on every term or vote
/// change and restores from it on restart. The log rides along with the
/// node (also persistent in real Raft; never wiped by Crash()).
struct HardState {
  uint64_t term = 0;
  std::optional<uint32_t> voted_for;
};

}  // namespace fabricpp::raft

#endif  // FABRICPP_RAFT_TRANSPORT_H_
