#include "runtime/runtime.h"

namespace fabricpp::runtime {

Result<RuntimeMode> ParseRuntimeMode(const std::string& mode) {
  if (mode == "sim") return RuntimeMode::kSim;
  if (mode == "thread") return RuntimeMode::kThread;
  if (mode == "socket") return RuntimeMode::kSocket;
  return Status::InvalidArgument(
      "unknown runtime mode \"" + mode +
      "\" (expected \"sim\", \"thread\" or \"socket\")");
}

std::string_view RuntimeModeToString(RuntimeMode mode) {
  switch (mode) {
    case RuntimeMode::kSim:
      return "sim";
    case RuntimeMode::kThread:
      return "thread";
    case RuntimeMode::kSocket:
      return "socket";
  }
  return "unknown";
}

}  // namespace fabricpp::runtime
