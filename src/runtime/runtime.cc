#include "runtime/runtime.h"

namespace fabricpp::runtime {

Result<RuntimeMode> ParseRuntimeMode(const std::string& mode) {
  if (mode == "sim") return RuntimeMode::kSim;
  if (mode == "thread") return RuntimeMode::kThread;
  return Status::InvalidArgument("unknown runtime mode \"" + mode +
                                 "\" (expected \"sim\" or \"thread\")");
}

std::string_view RuntimeModeToString(RuntimeMode mode) {
  switch (mode) {
    case RuntimeMode::kSim:
      return "sim";
    case RuntimeMode::kThread:
      return "thread";
  }
  return "unknown";
}

}  // namespace fabricpp::runtime
