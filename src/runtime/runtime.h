#ifndef FABRICPP_RUNTIME_RUNTIME_H_
#define FABRICPP_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "runtime/time.h"

namespace fabricpp {
class ThreadPool;
}

namespace fabricpp::runtime {

/// A unit of deferred work. Tasks are one-shot and run exactly once on the
/// execution context they were scheduled for (the simulation's event loop,
/// or one node's mailbox thread).
using Task = std::function<void()>;

/// Identifies a node endpoint within a runtime. Ids are dense, assigned in
/// AddEndpoint order, and shared with the simulator's fault-injection layer
/// (sim::NodeId) so a fault plan written against endpoint ids applies
/// unchanged.
using NodeId = uint32_t;

/// A clock plus one-shot timers.
///
/// Timers obtained through an Endpoint's clock() fire *on that endpoint's
/// execution context*: the single event-loop thread under the simulation
/// runtime, the endpoint's mailbox thread under the thread runtime. Node
/// code may therefore touch its own state from a timer callback without
/// any locking — the same single-writer discipline either way.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time (virtual or real, depending on the runtime).
  virtual TimeMicros Now() const = 0;

  /// Runs `fn` `delay` microseconds from now.
  virtual void Schedule(TimeMicros delay, Task fn) = 0;

  /// Runs `fn` at absolute time `when` (clamped to Now() if in the past —
  /// timers can never rewind the clock).
  virtual void ScheduleAt(TimeMicros when, Task fn) = 0;
};

/// One node's attachment point to a runtime: an identity, a clock whose
/// timers fire on this node's execution context, and a way to post work
/// onto that context directly.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual NodeId id() const = 0;
  virtual const std::string& name() const = 0;

  /// Timers created through this clock run on this endpoint's context.
  virtual Clock& clock() = 0;

  /// Runs `fn` on this endpoint's execution context as soon as possible
  /// (equivalent to a zero-delay timer).
  virtual void Post(Task fn) = 0;
};

/// One node's CPU: jobs carry a modeled cost in virtual microseconds and a
/// completion callback that runs on the owning endpoint's execution context.
///
/// The simulation runtime charges the cost against a queueing model of
/// `num_servers` cores (sim::Resource) and advances virtual time; the thread
/// runtime executes for real — the cost is the *model's* time, already paid
/// by the actual work the node did before submitting, so completion is
/// scheduled immediately and wall-clock speed is whatever the hardware
/// delivers.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Submits a job of `cost` virtual microseconds; `done` fires on the
  /// owning endpoint's context when the job completes.
  virtual void Submit(TimeMicros cost, Task done) = 0;

  virtual uint32_t num_servers() const = 0;
};

/// Typed async message passing between endpoints.
///
/// `on_deliver` runs on the *receiving* endpoint's execution context when
/// the message arrives; a delivery may be dropped, duplicated or delayed by
/// the simulation runtime's fault injector, which is exactly how real
/// message loss presents to the receiver. The thread runtime's in-process
/// transport is lossless and FIFO per (sender, receiver) pair.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void Send(Endpoint& from, Endpoint& to, uint64_t size_bytes,
                    Task on_deliver) = 0;
};

/// Fork-join worker pools for real (wall-clock-only) parallel work — the
/// validator's signature checks, the peer's commit-stage wave fan-out and
/// the orderer's reorder passes. Separate kinds because
/// ThreadPool::ParallelFor is single-user: these fan-outs can be live on
/// the same call stack and must never share a pool.
enum class PoolKind {
  kValidator,
  kReorder,
  kCommit,
};

/// Which substrate executes the node state machines.
enum class RuntimeMode {
  /// Deterministic single-threaded discrete-event simulation: virtual time,
  /// modeled network and CPUs, byte-identical replay from a seed.
  kSim,
  /// Real OS threads: one mailbox thread per endpoint, steady_clock time,
  /// lossless in-process transport. Not deterministic.
  kThread,
  /// Multi-process deployment: each process runs a ThreadRuntime for its
  /// local nodes and a SocketTransport (TCP, length-framed CRC'd wire
  /// format — DESIGN.md §15) toward every remote node. Not deterministic.
  kSocket,
};

/// Parses "sim" / "thread" / "socket" (the FabricConfig::runtime_mode
/// values).
Result<RuntimeMode> ParseRuntimeMode(const std::string& mode);
std::string_view RuntimeModeToString(RuntimeMode mode);

/// The execution substrate a node network runs on. Owns every endpoint,
/// executor and worker pool it hands out; all of them stay valid for the
/// runtime's lifetime.
///
/// Contract shared by all implementations:
///  - AddEndpoint ids are dense and assigned in call order (the composition
///    root registers endpoints in a fixed order, so ids — and with them the
///    fault-injection plans keyed on ids — are stable across runtimes).
///  - Everything a node does happens on its own endpoint's context: message
///    deliveries, timer callbacks and executor completions all funnel into
///    that one logical thread, so node state needs no locks.
///  - Cross-node interaction goes through Transport (or a pointer call made
///    *inside* a delivered task, which already runs on the target's
///    context).
class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual RuntimeMode mode() const = 0;

  /// Registers a node endpoint. The returned reference is owned by the
  /// runtime and valid for its lifetime.
  virtual Endpoint& AddEndpoint(const std::string& name) = 0;

  /// Creates the CPU executor of `owner` (`name` is for stats only).
  virtual Executor& AddExecutor(Endpoint& owner, const std::string& name,
                                uint32_t num_servers) = 0;

  virtual Transport& transport() = 0;

  virtual TimeMicros Now() const = 0;

  /// Returns a fork-join pool with `workers`-way parallelism (counting the
  /// caller), or nullptr when workers <= 1 (serial). The single-threaded
  /// simulation runtime shares one pool per kind across all requesters —
  /// only one fan-out of a kind can be live at a time there; the thread
  /// runtime returns a distinct pool per request, since requesters run
  /// concurrently and ParallelFor is single-user.
  virtual ThreadPool* RequestPool(PoolKind kind, uint32_t workers) = 0;
};

}  // namespace fabricpp::runtime

#endif  // FABRICPP_RUNTIME_RUNTIME_H_
