#include "runtime/sim_runtime.h"

namespace fabricpp::runtime {

SimRuntime::SimRuntime(const Options& options)
    : env_(),
      injector_(&env_, options.seed),
      net_(&env_, options.network),
      clock_(&env_),
      transport_(&net_) {
  // Every message flows through the injector; with no fault plan configured
  // it is pass-through and draws no randomness, so fault-free runs stay
  // bit-identical to a network without it.
  net_.set_fault_injector(&injector_);
}

Endpoint& SimRuntime::AddEndpoint(const std::string& name) {
  const NodeId id = net_.AddNode(name);
  endpoints_.push_back(std::make_unique<SimEndpoint>(id, name, &clock_));
  return *endpoints_.back();
}

Executor& SimRuntime::AddExecutor(Endpoint& owner, const std::string& name,
                                  uint32_t num_servers) {
  (void)owner;  // Execution context is the shared event loop either way.
  executors_.push_back(
      std::make_unique<SimExecutor>(&env_, name, num_servers));
  return *executors_.back();
}

ThreadPool* SimRuntime::RequestPool(PoolKind kind, uint32_t workers) {
  if (workers <= 1) return nullptr;
  // The requesting thread participates in ParallelFor, so a pool with
  // `workers`-way parallelism owns workers - 1 extra threads.
  std::unique_ptr<ThreadPool>& slot =
      kind == PoolKind::kValidator
          ? validator_pool_
          : kind == PoolKind::kReorder ? reorder_pool_ : commit_pool_;
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(workers - 1);
  return slot.get();
}

}  // namespace fabricpp::runtime
