#ifndef FABRICPP_RUNTIME_SIM_RUNTIME_H_
#define FABRICPP_RUNTIME_SIM_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/runtime.h"
#include "sim/environment.h"
#include "sim/fault_injector.h"
#include "sim/network.h"
#include "sim/resource.h"

namespace fabricpp::runtime {

/// The deterministic runtime: a thin adapter over the discrete-event
/// simulator. Every interface call forwards 1:1 onto the underlying
/// sim::Environment / sim::Network / sim::Resource call the pre-runtime
/// code made directly, so a node network driven through this adapter issues
/// the *identical* event sequence — runs are byte-for-byte reproducible
/// against the monolithic implementation and across refactors (the chaos
/// replay fingerprints are the regression gate).
class SimRuntime final : public Runtime {
 public:
  struct Options {
    uint64_t seed = 42;                ///< Fault-injector dice.
    sim::NetworkParams network;        ///< Latency/bandwidth model.
  };

  explicit SimRuntime(const Options& options);

  // --- Simulation-only facilities (fault plans, event-loop driving) ---
  sim::Environment& env() { return env_; }
  sim::Network& network() { return net_; }
  sim::FaultInjector& injector() { return injector_; }

  // --- Runtime interface ---
  RuntimeMode mode() const override { return RuntimeMode::kSim; }
  Endpoint& AddEndpoint(const std::string& name) override;
  Executor& AddExecutor(Endpoint& owner, const std::string& name,
                        uint32_t num_servers) override;
  Transport& transport() override { return transport_; }
  TimeMicros Now() const override { return env_.Now(); }
  ThreadPool* RequestPool(PoolKind kind, uint32_t workers) override;

 private:
  /// All endpoints share the event loop, hence one clock serves them all.
  class SimClock final : public Clock {
   public:
    explicit SimClock(sim::Environment* env) : env_(env) {}
    TimeMicros Now() const override { return env_->Now(); }
    void Schedule(TimeMicros delay, Task fn) override {
      env_->Schedule(delay, std::move(fn));
    }
    void ScheduleAt(TimeMicros when, Task fn) override {
      env_->ScheduleAt(when, std::move(fn));
    }

   private:
    sim::Environment* env_;
  };

  class SimEndpoint final : public Endpoint {
   public:
    SimEndpoint(NodeId id, std::string name, SimClock* clock)
        : id_(id), name_(std::move(name)), clock_(clock) {}
    NodeId id() const override { return id_; }
    const std::string& name() const override { return name_; }
    Clock& clock() override { return *clock_; }
    void Post(Task fn) override { clock_->Schedule(0, std::move(fn)); }

   private:
    NodeId id_;
    std::string name_;
    SimClock* clock_;
  };

  class SimTransport final : public Transport {
   public:
    explicit SimTransport(sim::Network* net) : net_(net) {}
    void Send(Endpoint& from, Endpoint& to, uint64_t size_bytes,
              Task on_deliver) override {
      net_->Send(from.id(), to.id(), size_bytes, std::move(on_deliver));
    }

   private:
    sim::Network* net_;
  };

  /// The queueing model of one node's CPU.
  class SimExecutor final : public Executor {
   public:
    SimExecutor(sim::Environment* env, const std::string& name,
                uint32_t num_servers)
        : resource_(env, name, num_servers) {}
    void Submit(TimeMicros cost, Task done) override {
      resource_.Submit(cost, std::move(done));
    }
    uint32_t num_servers() const override { return resource_.num_servers(); }

   private:
    sim::Resource resource_;
  };

  sim::Environment env_;
  sim::FaultInjector injector_;
  sim::Network net_;
  SimClock clock_;
  SimTransport transport_;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints_;
  std::vector<std::unique_ptr<SimExecutor>> executors_;
  /// One shared pool per kind — the event loop is single-threaded, so at
  /// most one fan-out of a kind is ever live (see Runtime::RequestPool).
  std::unique_ptr<ThreadPool> validator_pool_;
  std::unique_ptr<ThreadPool> reorder_pool_;
  std::unique_ptr<ThreadPool> commit_pool_;
};

}  // namespace fabricpp::runtime

#endif  // FABRICPP_RUNTIME_SIM_RUNTIME_H_
