#include "runtime/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace fabricpp::runtime {

namespace {

/// Frames coalesced into one writev call. Small messages (endorsement
/// replies, outcomes) dominate the wire; batching them amortizes the
/// syscall without adding latency — everything queued is already due.
constexpr size_t kMaxIovecs = 64;

/// Default epoll timeout when no dial/connect deadline is pending.
constexpr int kIdlePollMs = 200;

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::string SocketPeerKey::ToString() const {
  switch (role) {
    case proto::NodeRole::kClientHost:
      return "clients";
    case proto::NodeRole::kOrderer:
      return "orderer";
    case proto::NodeRole::kPeer:
      return StrFormat("peer:%u", index);
  }
  return StrFormat("role%u:%u", static_cast<uint32_t>(role), index);
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= address.size()) {
    return Status::InvalidArgument("address must be host:port, got \"" +
                                   address + "\"");
  }
  uint64_t port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid port in \"" + address + "\"");
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in \"" + address +
                                     "\"");
    }
  }
  return std::make_pair(address.substr(0, colon),
                        static_cast<uint16_t>(port));
}

SocketTransport::SocketTransport(Options options, FrameHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

SocketTransport::~SocketTransport() { Stop(); }

int64_t SocketTransport::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Bytes SocketTransport::EncodeHello() const {
  proto::HelloMsg hello;
  hello.role = options_.self_role;
  hello.index = options_.self_index;
  hello.name = options_.self_name;
  return proto::EncodeFrame(proto::WireMessageType::kHello, hello.Encode());
}

Status SocketTransport::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("transport already started");

  // On any failure below, release whatever was opened so far: started_
  // stays false, so Stop() will never reach its fd-closing path.
  const auto fail = [this](Status status) {
    for (int* fd : {&listen_fd_, &wake_fd_, &epoll_fd_}) {
      if (*fd >= 0) (void)close(*fd);
      *fd = -1;
    }
    return status;
  };

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(StrFormat("epoll_create1: %s", strerror(errno)));
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return fail(Status::Internal(StrFormat("eventfd: %s", strerror(errno))));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (!options_.listen_address.empty()) {
    auto host_port = ParseHostPort(options_.listen_address);
    if (!host_port.ok()) return fail(host_port.status());
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
    if (listen_fd_ < 0) {
      return fail(Status::Internal(StrFormat("socket: %s", strerror(errno))));
    }
    int one = 1;
    (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(host_port->second);
    if (host_port->first == "0.0.0.0" || host_port->first == "*") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (inet_pton(AF_INET, host_port->first.c_str(),
                         &addr.sin_addr) != 1) {
      // Resolve a name ("localhost"). Static addresses only; any latency
      // here is paid once at startup, before the loop runs.
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      if (getaddrinfo(host_port->first.c_str(), nullptr, &hints, &res) != 0 ||
          res == nullptr) {
        return fail(Status::InvalidArgument("cannot resolve listen host \"" +
                                            host_port->first + "\""));
      }
      addr.sin_addr =
          reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
      freeaddrinfo(res);
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return fail(Status::Internal(StrFormat("bind %s: %s",
                                             options_.listen_address.c_str(),
                                             strerror(errno))));
    }
    if (listen(listen_fd_, 128) != 0) {
      return fail(Status::Internal(StrFormat("listen: %s", strerror(errno))));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      listen_port_ = ntohs(bound.sin_port);
    }
    ev.data.fd = listen_fd_;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }

  started_ = true;
  loop_thread_ = std::thread([this]() { Loop(); });
  return Status::OK();
}

void SocketTransport::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
}

void SocketTransport::Dial(const SocketPeerKey& peer,
                           const std::string& address) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Route& route = routes_[peer];
    route.dial_address = address;
    route.next_dial_ms = 0;  // Dial on the next loop pass.
  }
  Wake();
}

bool SocketTransport::Send(const SocketPeerKey& peer,
                           proto::WireMessageType type, const Bytes& payload) {
  Bytes frame = proto::EncodeFrame(type, payload);
  if (frame.size() > options_.max_frame_bytes) {
    // The receiver's decoder treats an over-bound frame as a stream error,
    // so shipping it would poison the connection — and after the redial the
    // same frame would be re-sent on refetch, a permanent reconnect loop.
    // Shed it here instead; Validate() sizes the bound above any block the
    // orderer can cut, so this fires only on gross misconfiguration.
    messages_dropped_.fetch_add(1);
    FABRICPP_LOG(Error) << "socket: dropping "
                        << proto::WireMessageTypeName(type) << " frame to "
                        << peer.ToString() << ": " << frame.size()
                        << " bytes exceeds max_frame_bytes="
                        << options_.max_frame_bytes
                        << " (raise socket_max_frame_bytes)";
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || stop_) {
    messages_dropped_.fetch_add(1);
    return false;
  }
  const auto it = routes_.find(peer);
  if (it == routes_.end()) {
    // No dial target and no connection has ever identified as this peer:
    // the frame can never be delivered, so shed it instead of buffering.
    messages_dropped_.fetch_add(1);
    return false;
  }
  Route& route = it->second;
  if (route.conn != nullptr) {
    const bool was_idle = route.conn->write_queue.empty();
    route.conn->write_queue.push_back(std::move(frame));
    if (was_idle && !route.conn->connecting) UpdateEpoll(route.conn);
    return true;
  }
  if (route.pending.size() >= options_.max_pending_frames) {
    // Bounded like the thread runtime's mailboxes: the route is down and
    // the queue is full, so the newest frame is shed and counted. The node
    // layer recovers through timeouts and block refetch.
    messages_dropped_.fetch_add(1);
    return false;
  }
  route.pending.push_back(std::move(frame));
  return true;
}

bool SocketTransport::Connected(const SocketPeerKey& peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = routes_.find(peer);
  return it != routes_.end() && it->second.conn != nullptr;
}

bool SocketTransport::WaitConnected(const std::vector<SocketPeerKey>& peers,
                                    uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_until(lock, deadline, [&]() {
    if (stop_) return true;
    for (const SocketPeerKey& key : peers) {
      const auto it = routes_.find(key);
      if (it == routes_.end() || it->second.conn == nullptr) return false;
    }
    return true;
  }) && !stop_;
}

bool SocketTransport::Drain(uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_until(lock, deadline, [&]() {
    if (stop_) return true;
    for (const auto& [fd, conn] : conns_) {
      if (!conn->write_queue.empty()) return false;
    }
    return true;
  });
}

void SocketTransport::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) {
      stop_ = true;
      cv_.notify_all();
      return;
    }
    stop_ = true;
  }
  Wake();
  cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [fd, conn] : conns_) {
    (void)close(fd);
    delete conn;
  }
  conns_.clear();
  for (auto& [key, route] : routes_) route.conn = nullptr;
  if (listen_fd_ >= 0) (void)close(listen_fd_);
  if (wake_fd_ >= 0) (void)close(wake_fd_);
  if (epoll_fd_ >= 0) (void)close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

SocketTransport::Counters SocketTransport::counters() const {
  Counters c;
  c.frames_sent = frames_sent_.load();
  c.bytes_sent = bytes_sent_.load();
  c.frames_received = frames_received_.load();
  c.bytes_received = bytes_received_.load();
  c.writev_calls = writev_calls_.load();
  c.reconnects = reconnects_.load();
  c.messages_dropped = messages_dropped_.load();
  c.decode_errors = decode_errors_.load();
  return c;
}

void SocketTransport::UpdateEpoll(Conn* conn) {
  epoll_event ev{};
  ev.data.fd = conn->fd;
  ev.events = EPOLLIN;
  if (conn->connecting || !conn->write_queue.empty()) ev.events |= EPOLLOUT;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SocketTransport::StartDial(Route* route, const SocketPeerKey& key) {
  auto host_port = ParseHostPort(route->dial_address);
  if (!host_port.ok()) {
    FABRICPP_LOG(Error) << "socket: bad dial address for " << key.ToString()
                        << ": " << host_port.status();
    route->next_dial_ms = NowMs() + options_.backoff_max_ms;
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(host_port->second);
  if (inet_pton(AF_INET, host_port->first.c_str(), &addr.sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (getaddrinfo(host_port->first.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      route->next_dial_ms = NowMs() + options_.backoff_max_ms;
      return;
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
  }

  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    route->next_dial_ms = NowMs() + options_.backoff_max_ms;
    return;
  }
  SetNoDelay(fd);

  if (route->backoff_ms > 0) reconnects_.fetch_add(1);
  auto* conn = new Conn(options_.max_frame_bytes);
  conn->fd = fd;
  conn->identified = true;
  conn->peer = key;
  conn->write_queue.push_back(EncodeHello());
  conn->connect_deadline_ms = NowMs() + options_.connect_timeout_ms;
  conns_[fd] = conn;
  route->dialing = true;

  epoll_event ev{};
  ev.data.fd = fd;
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr));
  if (rc == 0) {
    conn->connecting = false;
    ev.events = EPOLLIN | EPOLLOUT;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    EstablishRoute(key, conn);
    return;
  }
  if (errno == EINPROGRESS) {
    conn->connecting = true;
    ev.events = EPOLLIN | EPOLLOUT;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    return;
  }
  CloseConn(conn, "connect failed");
}

void SocketTransport::FinishConnect(Conn* conn) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    CloseConn(conn, "connect failed");
    return;
  }
  conn->connecting = false;
  EstablishRoute(conn->peer, conn);
}

void SocketTransport::EstablishRoute(const SocketPeerKey& key, Conn* conn) {
  Route& route = routes_[key];
  if (route.conn != nullptr && route.conn != conn) {
    // A fresh connection supersedes the stale one (e.g. the remote redialed
    // before we noticed the old socket die). Drop the stale conn without
    // touching the route's redial state.
    Conn* stale = route.conn;
    route.conn = nullptr;
    stale->identified = false;  // Detach so CloseConn leaves the route alone.
    CloseConn(stale, "superseded");
  }
  route.conn = conn;
  route.dialing = false;
  route.backoff_ms = 0;
  while (!route.pending.empty()) {
    conn->write_queue.push_back(std::move(route.pending.front()));
    route.pending.pop_front();
  }
  if (FlushConn(conn)) UpdateEpoll(conn);
  cv_.notify_all();
}

void SocketTransport::CloseConn(Conn* conn, const char* why) {
  if (conn->identified) {
    const auto it = routes_.find(conn->peer);
    if (it != routes_.end() && it->second.conn == conn) {
      it->second.conn = nullptr;
    }
    if (it != routes_.end() && !it->second.dial_address.empty()) {
      Route& route = it->second;
      route.dialing = false;
      route.backoff_ms =
          route.backoff_ms == 0
              ? options_.backoff_min_ms
              : std::min<uint32_t>(route.backoff_ms * 2,
                                   options_.backoff_max_ms);
      route.next_dial_ms = NowMs() + route.backoff_ms;
      FABRICPP_LOG(Info) << "socket: connection to " << conn->peer.ToString()
                         << " closed (" << why << "), redial in "
                         << route.backoff_ms << "ms";
    }
  }
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  (void)close(conn->fd);
  conns_.erase(conn->fd);
  delete conn;
  cv_.notify_all();
}

void SocketTransport::AcceptAll() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient error; the loop retries.
    SetNoDelay(fd);
    auto* conn = new Conn(options_.max_frame_bytes);
    conn->fd = fd;
    conns_[fd] = conn;
    epoll_event ev{};
    ev.data.fd = fd;
    ev.events = EPOLLIN;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

bool SocketTransport::FlushConn(Conn* conn) {
  while (!conn->write_queue.empty()) {
    iovec iov[kMaxIovecs];
    size_t n = 0;
    size_t offset = conn->write_offset;
    for (const Bytes& frame : conn->write_queue) {
      if (n == kMaxIovecs) break;
      iov[n].iov_base =
          const_cast<uint8_t*>(frame.data()) + (n == 0 ? offset : 0);
      iov[n].iov_len = frame.size() - (n == 0 ? offset : 0);
      ++n;
    }
    // sendmsg rather than writev for MSG_NOSIGNAL: a peer that resets with
    // frames queued must surface as EPIPE (handled below), not as a
    // process-killing SIGPIPE.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    const ssize_t wrote = sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;
      }
      CloseConn(conn, "write error");
      return false;
    }
    writev_calls_.fetch_add(1);
    bytes_sent_.fetch_add(static_cast<uint64_t>(wrote));
    size_t left = static_cast<size_t>(wrote);
    while (left > 0 && !conn->write_queue.empty()) {
      const size_t frame_left =
          conn->write_queue.front().size() - conn->write_offset;
      if (left >= frame_left) {
        left -= frame_left;
        conn->write_queue.pop_front();
        conn->write_offset = 0;
        frames_sent_.fetch_add(1);
      } else {
        conn->write_offset += left;
        left = 0;
      }
    }
  }
  cv_.notify_all();  // Drain() watches for empty queues.
  return true;
}

void SocketTransport::HandleWritable(Conn* conn) {
  // FlushConn deletes conn when the write fails; only a surviving conn may
  // be touched again.
  if (FlushConn(conn)) UpdateEpoll(conn);
}

void SocketTransport::HandleReadable(Conn* conn) {
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t got = recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      bytes_received_.fetch_add(static_cast<uint64_t>(got));
      conn->decoder.Feed(buf, static_cast<size_t>(got));
      if (static_cast<size_t>(got) < sizeof(buf)) break;
      continue;
    }
    if (got == 0) {
      CloseConn(conn, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    CloseConn(conn, "read error");
    return;
  }

  proto::Frame frame;
  while (true) {
    Result<bool> next = conn->decoder.Next(&frame);
    if (!next.ok()) {
      decode_errors_.fetch_add(1);
      FABRICPP_LOG(Warn) << "socket: corrupt stream from "
                         << (conn->identified ? conn->peer.ToString()
                                              : std::string("<anonymous>"))
                         << ": " << next.status();
      CloseConn(conn, "stream error");
      return;
    }
    if (!*next) return;
    frames_received_.fetch_add(1);

    if (!conn->identified) {
      // First frame on an accepted connection must identify the dialer.
      if (frame.type != static_cast<uint8_t>(proto::WireMessageType::kHello)) {
        decode_errors_.fetch_add(1);
        CloseConn(conn, "no hello");
        return;
      }
      ByteReader r(frame.payload);
      Result<proto::HelloMsg> hello = proto::HelloMsg::Decode(&r);
      if (!hello.ok()) {
        decode_errors_.fetch_add(1);
        CloseConn(conn, "bad hello");
        return;
      }
      conn->identified = true;
      conn->peer = SocketPeerKey{hello->role, hello->index};
      FABRICPP_LOG(Info) << "socket: accepted " << conn->peer.ToString()
                         << " (\"" << hello->name << "\")";
      EstablishRoute(conn->peer, conn);
      continue;
    }
    if (frame.type == static_cast<uint8_t>(proto::WireMessageType::kHello)) {
      continue;  // Redundant hello on an identified stream.
    }
    // Dispatch without the lock: the handler may post into node contexts
    // whose tasks immediately call back into Send().
    const SocketPeerKey from = conn->peer;
    mu_.unlock();
    handler_(from, std::move(frame));
    mu_.lock();
    frame = proto::Frame{};
    // The handler ran unlocked; the connection may be gone by now.
    if (conns_.count(conn->fd) == 0 || conns_[conn->fd] != conn) return;
  }
}

void SocketTransport::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Dial pass: (re)connect every dialed route that is due.
    const int64_t now = NowMs();
    int timeout = kIdlePollMs;
    for (auto& [key, route] : routes_) {
      if (route.dial_address.empty() || route.conn != nullptr ||
          route.dialing) {
        continue;
      }
      if (route.next_dial_ms <= now) {
        StartDial(&route, key);
      } else {
        timeout = std::min<int64_t>(timeout, route.next_dial_ms - now);
      }
    }
    // Connect-timeout pass.
    std::vector<Conn*> timed_out;
    for (auto& [fd, conn] : conns_) {
      if (conn->connecting) {
        if (conn->connect_deadline_ms <= now) {
          timed_out.push_back(conn);
        } else {
          timeout = std::min<int64_t>(timeout, conn->connect_deadline_ms - now);
        }
      }
    }
    for (Conn* conn : timed_out) CloseConn(conn, "connect timeout");

    epoll_event events[64];
    lock.unlock();
    const int n = epoll_wait(epoll_fd_, events, 64, timeout);
    lock.lock();
    if (stop_) break;

    bool accept_pending = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        // Deferred past the batch: accepting now could hand a fresh
        // connection an fd number CloseConn freed earlier in this batch,
        // and later stale events for the dead socket would then be applied
        // to the fresh Conn. The listener is level-triggered, so nothing
        // is lost by waiting.
        accept_pending = true;
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier in this batch.
      Conn* conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          !conn->connecting) {
        CloseConn(conn, "socket error");
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (conn->connecting) {
          FinishConnect(conn);
        } else {
          HandleWritable(conn);
        }
        if (conns_.find(fd) == conns_.end()) continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
    }
    if (accept_pending) AcceptAll();
  }
}

}  // namespace fabricpp::runtime
