#ifndef FABRICPP_RUNTIME_SOCKET_TRANSPORT_H_
#define FABRICPP_RUNTIME_SOCKET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "proto/wire_format.h"

namespace fabricpp::runtime {

/// Identity of a remote process in the socket deployment. The orderer and
/// the client host use index 0; peers carry their global peer index.
struct SocketPeerKey {
  proto::NodeRole role = proto::NodeRole::kClientHost;
  uint32_t index = 0;

  friend bool operator==(const SocketPeerKey& a, const SocketPeerKey& b) {
    return a.role == b.role && a.index == b.index;
  }
  friend bool operator<(const SocketPeerKey& a, const SocketPeerKey& b) {
    if (a.role != b.role) return a.role < b.role;
    return a.index < b.index;
  }
  std::string ToString() const;
};

/// The TCP substrate of runtime_mode="socket" (DESIGN.md §15): one
/// background epoll event loop owning every socket, length-framed CRC'd
/// messages (proto/wire_format.h), per-connection write queues flushed with
/// writev corking, and dial-side reconnect with exponential backoff.
///
/// Threading model: the event loop is the only thread that touches file
/// descriptors. Public methods are thread-safe; Send() enqueues the encoded
/// frame under a lock and wakes the loop via an eventfd. Received frames
/// are handed to the FrameHandler *on the event-loop thread* — handlers
/// must stay cheap (decode + post onto a node's execution context).
///
/// Connection lifecycle: Dial() registers a persistent route that the loop
/// keeps connected — nonblocking connect with a timeout, a HELLO frame
/// announcing this process's identity as the first bytes on the wire, and
/// exponential-backoff redial on failure or disconnect. Accepted
/// connections are anonymous until their HELLO arrives, which binds them to
/// the announced key. Frames sent toward a route that is down queue up to
/// `max_pending_frames` and flush on (re)establishment; beyond the bound
/// the newest frame is dropped and counted — the node layer already
/// tolerates loss via timeouts and block refetch.
///
/// Stream errors (bad length / version / CRC) poison the connection: it is
/// closed and, for dialed routes, redialed from scratch. Payload decode
/// errors are the handler's business (NoteMessageDropped keeps the count
/// here so one report covers both).
class SocketTransport {
 public:
  struct Options {
    /// "host:port" to bind and listen on; empty = dial-only process.
    /// Port 0 binds an ephemeral port (see listen_port()).
    std::string listen_address;
    /// Frames larger than this poison the stream (decoder bound).
    uint64_t max_frame_bytes = 64ull << 20;
    uint32_t connect_timeout_ms = 5000;
    uint32_t backoff_min_ms = 50;
    uint32_t backoff_max_ms = 2000;
    /// Per-route bound on frames queued while the connection is down.
    size_t max_pending_frames = 4096;
    /// Identity announced in this process's HELLO.
    proto::NodeRole self_role = proto::NodeRole::kClientHost;
    uint32_t self_index = 0;
    std::string self_name;
  };

  /// Wire-level counters, mirrored into Metrics::TransportCounters by the
  /// composition root after a run.
  struct Counters {
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    uint64_t writev_calls = 0;
    uint64_t reconnects = 0;
    uint64_t messages_dropped = 0;
    uint64_t decode_errors = 0;
  };

  /// Invoked on the event-loop thread for every well-framed message from an
  /// identified connection.
  using FrameHandler =
      std::function<void(const SocketPeerKey& from, proto::Frame frame)>;

  SocketTransport(Options options, FrameHandler handler);
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Binds the listener (when configured) and starts the event loop.
  Status Start();

  /// Port the listener bound (resolves port 0); 0 when not listening.
  uint16_t listen_port() const { return listen_port_; }

  /// Registers a persistent dialed route to `peer` at "host:port". The
  /// event loop connects (and reconnects) in the background; frames may be
  /// sent immediately and queue until the connection is up.
  void Dial(const SocketPeerKey& peer, const std::string& address);

  /// Encodes `payload` as one frame and ships it toward `peer`. Returns
  /// false if the frame was dropped (unknown undialed route with no
  /// connection, bounded queue overflow, or after Stop()).
  bool Send(const SocketPeerKey& peer, proto::WireMessageType type,
            const Bytes& payload);

  /// True while an established connection to `peer` exists.
  bool Connected(const SocketPeerKey& peer) const;

  /// Blocks until every key in `peers` is connected, or `timeout_ms`
  /// elapses. Returns whether all connected.
  bool WaitConnected(const std::vector<SocketPeerKey>& peers,
                     uint32_t timeout_ms);

  /// Blocks until every write queue has flushed to the kernel (graceful
  /// drain before shutdown), or `timeout_ms` elapses.
  bool Drain(uint32_t timeout_ms);

  /// Closes everything and joins the loop. Idempotent.
  void Stop();

  /// Handler-side payload decode failure (message error, stream stays up).
  void NoteMessageDropped() { messages_dropped_.fetch_add(1); }

  Counters counters() const;

 private:
  struct Conn {
    int fd = -1;
    bool connecting = false;   ///< Nonblocking connect in flight.
    bool identified = false;   ///< Peer key known (dialer, or HELLO seen).
    SocketPeerKey peer;
    proto::FrameDecoder decoder;
    std::deque<Bytes> write_queue;
    size_t write_offset = 0;  ///< Bytes of write_queue.front() already sent.
    int64_t connect_deadline_ms = 0;

    explicit Conn(uint64_t max_frame_bytes) : decoder(max_frame_bytes) {}
  };

  struct Route {
    std::string dial_address;  ///< Empty for accept-side routes.
    Conn* conn = nullptr;      ///< Established connection, if any.
    std::deque<Bytes> pending; ///< Frames awaiting a connection.
    uint32_t backoff_ms = 0;
    int64_t next_dial_ms = 0;  ///< Steady-clock ms deadline for redial.
    bool dialing = false;      ///< A Conn is currently connecting.
  };

  void Loop();
  void Wake();
  int64_t NowMs() const;
  void StartDial(Route* route, const SocketPeerKey& key);
  void FinishConnect(Conn* conn);
  void EstablishRoute(const SocketPeerKey& key, Conn* conn);
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  /// Writes queued frames to the kernel. Returns false when a write error
  /// closed (and freed) the connection — the pointer is dead then.
  bool FlushConn(Conn* conn);
  void CloseConn(Conn* conn, const char* why);
  void AcceptAll();
  void UpdateEpoll(Conn* conn);
  Bytes EncodeHello() const;

  Options options_;
  FrameHandler handler_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<SocketPeerKey, Route> routes_;
  std::unordered_map<int, Conn*> conns_;  ///< fd -> connection, loop-owned.
  bool started_ = false;
  bool stop_ = false;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::thread loop_thread_;

  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> messages_dropped_{0};
  std::atomic<uint64_t> decode_errors_{0};
};

/// Splits "host:port". Fails on a missing/invalid port.
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& address);

}  // namespace fabricpp::runtime

#endif  // FABRICPP_RUNTIME_SOCKET_TRANSPORT_H_
