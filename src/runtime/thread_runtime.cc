#include "runtime/thread_runtime.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace fabricpp::runtime {

namespace {
/// How long a non-sheddable producer blocks at a full box before force-
/// enqueueing (deadlock freedom beats strict boundedness for local work).
constexpr auto kPushGracePeriod = std::chrono::milliseconds(100);
/// How long a transport delivery blocks before being shed. Short: a
/// saturated receiver should shed load quickly, not stall every sender.
constexpr auto kShedGracePeriod = std::chrono::milliseconds(5);
constexpr auto kQuiescePollInterval = std::chrono::microseconds(200);
}  // namespace

// --- Mailbox ---

ThreadRuntime::PushOutcome ThreadRuntime::Mailbox::Push(Task fn,
                                                        bool may_shed) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushOutcome::kShedClosed;
  bool forced = false;
  if (queue_.size() >= capacity_ &&
      std::this_thread::get_id() != consumer_) {
    // Backpressure: block briefly for a slot. The consumer never waits on
    // its own box (self-deadlock). Past the grace period, a sheddable task
    // (transport delivery) is dropped and reported — the box stays
    // bounded; a non-sheddable one (local post, timer, executor
    // completion) is force-enqueued rather than risk a producer cycle
    // deadlocking (A full waiting on B full waiting on A).
    const auto grace = may_shed ? kShedGracePeriod : kPushGracePeriod;
    if (!not_full_.wait_for(lock, grace, [this] {
          return queue_.size() < capacity_ || closed_;
        })) {
      if (may_shed) {
        runtime_->mailbox_shed_total_.fetch_add(1,
                                                std::memory_order_relaxed);
        runtime_->LogOverflow("shedding delivery", capacity_);
        return PushOutcome::kShedFull;
      }
      forced = true;
      runtime_->mailbox_forced_total_.fetch_add(1,
                                                std::memory_order_relaxed);
      runtime_->LogOverflow("forcing enqueue to avoid deadlock", capacity_);
    }
    if (closed_) return PushOutcome::kShedClosed;
  }
  runtime_->inflight_.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(std::move(fn));
  not_empty_.notify_one();
  return forced ? PushOutcome::kForced : PushOutcome::kOk;
}

bool ThreadRuntime::Mailbox::Pop(Task* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return true;
}

void ThreadRuntime::Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

// --- ThreadClock ---

TimeMicros ThreadRuntime::ThreadClock::Now() const { return runtime_->Now(); }

void ThreadRuntime::ThreadClock::Schedule(TimeMicros delay, Task fn) {
  runtime_->ScheduleTimer(owner_, runtime_->Now() + delay, std::move(fn));
}

void ThreadRuntime::ThreadClock::ScheduleAt(TimeMicros when, Task fn) {
  runtime_->ScheduleTimer(owner_, std::max(when, runtime_->Now()),
                          std::move(fn));
}

// --- ThreadEndpoint ---

ThreadRuntime::ThreadEndpoint::ThreadEndpoint(ThreadRuntime* runtime,
                                              NodeId id, std::string name)
    : runtime_(runtime),
      id_(id),
      name_(std::move(name)),
      clock_(runtime, this),
      mailbox_(runtime->options_.mailbox_capacity, runtime) {}

void ThreadRuntime::ThreadEndpoint::Post(Task fn) {
  mailbox_.Push(std::move(fn), /*may_shed=*/false);
}

ThreadRuntime::PushOutcome ThreadRuntime::ThreadEndpoint::PostDelivery(
    Task fn) {
  return mailbox_.Push(std::move(fn), /*may_shed=*/true);
}

void ThreadRuntime::ThreadEndpoint::StartThread() {
  thread_ = std::thread([this] { RunLoop(); });
}

void ThreadRuntime::ThreadEndpoint::CloseAndJoin() {
  mailbox_.Close();
  if (thread_.joinable()) thread_.join();
}

void ThreadRuntime::ThreadEndpoint::RunLoop() {
  mailbox_.BindConsumer();
  Task task;
  while (mailbox_.Pop(&task)) {
    task();
    // Destroy captured state before dropping the inflight count, so
    // Quiesce() returning implies all task captures are released too.
    task = nullptr;
    runtime_->inflight_.fetch_sub(1, std::memory_order_release);
  }
}

// --- ThreadTransport ---

void ThreadRuntime::ThreadTransport::Send(Endpoint& from, Endpoint& to,
                                          uint64_t size_bytes,
                                          Task on_deliver) {
  (void)from;
  runtime_->messages_sent_.fetch_add(1, std::memory_order_relaxed);
  runtime_->bytes_sent_.fetch_add(size_bytes, std::memory_order_relaxed);
  // Deliveries are sheddable: a saturated receiver drops the message (the
  // shed is counted, never silent) and node-level timeouts / catch-up
  // fetches recover — the same contract as the simulation's lossy network.
  static_cast<ThreadEndpoint&>(to).PostDelivery(std::move(on_deliver));
}

// --- ThreadRuntime ---

ThreadRuntime::ThreadRuntime(const Options& options)
    : options_(options), transport_(this) {
  epoch_ns_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ThreadRuntime::~ThreadRuntime() { Shutdown(); }

Endpoint& ThreadRuntime::AddEndpoint(const std::string& name) {
  const NodeId id = static_cast<NodeId>(endpoints_.size());
  endpoints_.push_back(std::make_unique<ThreadEndpoint>(this, id, name));
  endpoints_.back()->StartThread();
  return *endpoints_.back();
}

Executor& ThreadRuntime::AddExecutor(Endpoint& owner, const std::string& name,
                                     uint32_t num_servers) {
  (void)name;
  executors_.push_back(std::make_unique<ThreadExecutor>(
      static_cast<ThreadEndpoint*>(&owner), num_servers));
  return *executors_.back();
}

Transport& ThreadRuntime::transport() { return transport_; }

TimeMicros ThreadRuntime::Now() const {
  const int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const int64_t rel = now_ns - epoch_ns_.load(std::memory_order_relaxed);
  return rel <= 0 ? 0 : static_cast<TimeMicros>(rel / 1000);
}

ThreadPool* ThreadRuntime::RequestPool(PoolKind kind, uint32_t workers) {
  (void)kind;
  if (workers <= 1) return nullptr;
  // Requesters (peer validators, the orderer) run concurrently here, and
  // ThreadPool::ParallelFor is single-user — every requester gets its own
  // pool, unlike the simulation runtime's shared one per kind.
  pools_.push_back(std::make_unique<ThreadPool>(workers - 1));
  return pools_.back().get();
}

void ThreadRuntime::ResetEpoch() {
  epoch_ns_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  timer_cv_.notify_all();
}

std::chrono::steady_clock::time_point ThreadRuntime::TimePointFor(
    TimeMicros t) const {
  return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(
      epoch_ns_.load(std::memory_order_relaxed) +
      static_cast<int64_t>(t) * 1000));
}

void ThreadRuntime::SleepUntil(TimeMicros until) {
  std::this_thread::sleep_until(TimePointFor(until));
}

void ThreadRuntime::LogOverflow(const char* what, size_t capacity) {
  const int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  int64_t last = last_overflow_log_ns_.load(std::memory_order_relaxed);
  constexpr int64_t kLogIntervalNs = 1'000'000'000;
  if (now_ns - last < kLogIntervalNs) return;
  if (!last_overflow_log_ns_.compare_exchange_strong(
          last, now_ns, std::memory_order_relaxed)) {
    return;  // Another thread just logged.
  }
  std::fprintf(stderr, "[thread_runtime] mailbox overflow (capacity %zu): %s\n",
               capacity, what);
}

void ThreadRuntime::ScheduleTimer(ThreadEndpoint* target, TimeMicros when,
                                  Task fn) {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (timer_stop_) return;
    timers_.push(TimerEntry{when, timer_seq_++, target, std::move(fn)});
  }
  timer_cv_.notify_all();
}

void ThreadRuntime::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const TimeMicros due = timers_.top().when;
    if (Now() < due) {
      // Woken early by a new (possibly earlier) timer, ResetEpoch or stop;
      // re-evaluate the heap top either way.
      timer_cv_.wait_until(lock, TimePointFor(due));
      continue;
    }
    // Move the due entry out of the heap; `timer_posting_` keeps Quiesce
    // from declaring idle while the task is in flight to its mailbox.
    TimerEntry entry = std::move(const_cast<TimerEntry&>(timers_.top()));
    timers_.pop();
    ++timer_posting_;
    lock.unlock();
    entry.target->Post(std::move(entry.fn));
    lock.lock();
    --timer_posting_;
  }
}

bool ThreadRuntime::TimerBusyWithin(TimeMicros horizon) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  if (timer_posting_ > 0) return true;
  return !timers_.empty() && timers_.top().when <= Now() + horizon;
}

void ThreadRuntime::Quiesce(TimeMicros timer_horizon) {
  for (;;) {
    if (inflight_.load(std::memory_order_acquire) != 0 ||
        TimerBusyWithin(timer_horizon)) {
      std::this_thread::sleep_for(kQuiescePollInterval);
      continue;
    }
    // Idle right now — but a timer just past the poll may still fire work.
    // Require the idle state to hold across one more interval.
    std::this_thread::sleep_for(kQuiescePollInterval);
    if (inflight_.load(std::memory_order_acquire) == 0 &&
        !TimerBusyWithin(timer_horizon)) {
      return;
    }
  }
}

void ThreadRuntime::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
    while (!timers_.empty()) timers_.pop();
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Closing lets each consumer drain what is queued, then exit; tasks that
  // post to an already-closed mailbox during the drain are dropped.
  for (auto& ep : endpoints_) ep->CloseAndJoin();
}

}  // namespace fabricpp::runtime
