#ifndef FABRICPP_RUNTIME_THREAD_RUNTIME_H_
#define FABRICPP_RUNTIME_THREAD_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/runtime.h"

namespace fabricpp::runtime {

/// The concurrent runtime: every endpoint is an actor with a bounded MPSC
/// mailbox drained by its own OS thread, time is std::chrono::steady_clock
/// microseconds since the runtime's epoch, and the transport delivers
/// messages by enqueueing the delivery task into the receiver's mailbox
/// (lossless, FIFO per sender/receiver pair).
///
/// This preserves the simulation's single-writer discipline — all of a
/// node's message deliveries, timer callbacks and executor completions run
/// on its one mailbox thread — while letting distinct nodes execute in
/// parallel for real. Executor costs (the simulator's virtual service
/// times) are not charged: real work takes real time, so the pipeline runs
/// as fast as the hardware allows.
///
/// Not deterministic: cross-node interleavings depend on the scheduler.
/// Fault injection, virtual-time experiments and the Raft backend remain
/// simulation-only.
class ThreadRuntime final : public Runtime {
 public:
  struct Options {
    /// Mailbox slots per endpoint. A producer that finds the box full
    /// blocks briefly for backpressure; see Mailbox::Push for the
    /// deadlock-avoidance overflow rule.
    uint32_t mailbox_capacity = 8192;
  };

  /// What happened to a pushed task — reported to the caller instead of
  /// being swallowed (satellite fix for the former silent overflow).
  enum class PushOutcome {
    kOk,          ///< Enqueued within capacity.
    kForced,      ///< Box full past the grace period; enqueued anyway
                  ///< (non-sheddable tasks only — deadlock freedom).
    kShedFull,    ///< Box full past the grace period; task dropped.
    kShedClosed,  ///< Mailbox closed (shutdown); task dropped.
  };

  explicit ThreadRuntime(const Options& options);
  ~ThreadRuntime() override;

  // --- Runtime interface ---
  RuntimeMode mode() const override { return RuntimeMode::kThread; }
  Endpoint& AddEndpoint(const std::string& name) override;
  Executor& AddExecutor(Endpoint& owner, const std::string& name,
                        uint32_t num_servers) override;
  Transport& transport() override;
  TimeMicros Now() const override;
  ThreadPool* RequestPool(PoolKind kind, uint32_t workers) override;

  // --- Run control (driven by the composition root) ---

  /// Rebases Now() to 0. Call while the runtime is idle (no queued tasks),
  /// immediately before starting a run, so node code that schedules from
  /// absolute time 0 (e.g. staggered client firing) behaves as in the
  /// simulation.
  void ResetEpoch();

  /// Sleeps until runtime time `until` (wall clock), while node threads
  /// keep working.
  void SleepUntil(TimeMicros until);

  /// Blocks until the system is quiescent: no queued or running mailbox
  /// tasks, and no pending timer due within `timer_horizon` of now. Timers
  /// beyond the horizon (e.g. long client timeouts armed during the run)
  /// are left pending; their callbacks are defensive no-ops by then.
  void Quiesce(TimeMicros timer_horizon);

  /// Stops the timer thread (dropping pending timers), closes every
  /// mailbox, drains and joins all threads. Idempotent; called by the
  /// destructor. After shutdown, posts and timers are silently dropped.
  void Shutdown();

  uint64_t messages_sent() const { return messages_sent_.load(); }
  uint64_t bytes_sent() const { return bytes_sent_.load(); }
  /// Transport deliveries dropped at a full mailbox after the shed grace
  /// period. The composition root folds this into Metrics after a run —
  /// nonzero means receivers were saturated and the lossless-transport
  /// assumption did not hold (client timeouts / catch-up fetches recover).
  uint64_t mailbox_shed_total() const { return mailbox_shed_total_.load(); }
  /// Non-sheddable tasks (local posts, timers, executor completions)
  /// force-enqueued past capacity to preserve deadlock freedom.
  uint64_t mailbox_forced_total() const {
    return mailbox_forced_total_.load();
  }

 private:
  class ThreadEndpoint;

  /// Bounded multi-producer single-consumer task queue.
  class Mailbox {
   public:
    Mailbox(size_t capacity, ThreadRuntime* runtime)
        : capacity_(capacity), runtime_(runtime) {}

    /// Enqueues `fn` and reports what happened. A producer that finds the
    /// box full waits briefly for room — except the consumer thread
    /// itself, which always overflows: blocking it on its own full box
    /// would deadlock. Past the grace period the outcome splits on
    /// `may_shed`: transport deliveries (may_shed) are *dropped* and
    /// counted (kShedFull) — the box stays bounded and the loss is
    /// reported, never silent; local posts, timers and executor
    /// completions (!may_shed) are force-enqueued (kForced), trading
    /// strict boundedness for deadlock freedom on producer cycles —
    /// shedding those would wedge a node's own pipeline.
    PushOutcome Push(Task fn, bool may_shed);

    /// Blocks for the next task; returns false when closed and drained.
    bool Pop(Task* out);

    void BindConsumer() { consumer_ = std::this_thread::get_id(); }
    void Close();

   private:
    std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<Task> queue_;
    size_t capacity_;
    ThreadRuntime* runtime_;
    std::thread::id consumer_{};
    bool closed_ = false;
  };

  class ThreadClock final : public Clock {
   public:
    ThreadClock(ThreadRuntime* runtime, ThreadEndpoint* owner)
        : runtime_(runtime), owner_(owner) {}
    TimeMicros Now() const override;
    void Schedule(TimeMicros delay, Task fn) override;
    void ScheduleAt(TimeMicros when, Task fn) override;

   private:
    ThreadRuntime* runtime_;
    ThreadEndpoint* owner_;
  };

  class ThreadEndpoint final : public Endpoint {
   public:
    ThreadEndpoint(ThreadRuntime* runtime, NodeId id, std::string name);
    ~ThreadEndpoint() override = default;
    NodeId id() const override { return id_; }
    const std::string& name() const override { return name_; }
    Clock& clock() override { return clock_; }
    void Post(Task fn) override;

    /// Transport-delivery entry: unlike Post, the task may be shed at a
    /// full box (the network is allowed to lose a message; a node's own
    /// pipeline is not).
    PushOutcome PostDelivery(Task fn);

    void StartThread();
    void CloseAndJoin();

   private:
    void RunLoop();

    ThreadRuntime* runtime_;
    NodeId id_;
    std::string name_;
    ThreadClock clock_;
    Mailbox mailbox_;
    std::thread thread_;
  };

  /// Completion runs on the owning endpoint's mailbox thread; the modeled
  /// cost is ignored (real work already took real time).
  class ThreadExecutor final : public Executor {
   public:
    ThreadExecutor(ThreadEndpoint* owner, uint32_t num_servers)
        : owner_(owner), num_servers_(num_servers) {}
    void Submit(TimeMicros cost, Task done) override {
      (void)cost;
      owner_->Post(std::move(done));
    }
    uint32_t num_servers() const override { return num_servers_; }

   private:
    ThreadEndpoint* owner_;
    uint32_t num_servers_;
  };

  class ThreadTransport final : public Transport {
   public:
    explicit ThreadTransport(ThreadRuntime* runtime) : runtime_(runtime) {}
    void Send(Endpoint& from, Endpoint& to, uint64_t size_bytes,
              Task on_deliver) override;

   private:
    ThreadRuntime* runtime_;
  };

  struct TimerEntry {
    TimeMicros when;
    uint64_t seq;  ///< FIFO tie-break for equal deadlines.
    ThreadEndpoint* target;
    Task fn;
  };
  struct TimerCompare {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void ScheduleTimer(ThreadEndpoint* target, TimeMicros when, Task fn);
  /// Rate-limited (1/s) stderr note about mailbox overflow events.
  void LogOverflow(const char* what, size_t capacity);
  void TimerLoop();
  std::chrono::steady_clock::time_point TimePointFor(TimeMicros t) const;
  bool TimerBusyWithin(TimeMicros horizon);

  Options options_;
  /// steady_clock nanoseconds-since-clock-epoch of runtime time 0.
  std::atomic<int64_t> epoch_ns_;
  /// Queued + currently-executing mailbox tasks, across all endpoints.
  std::atomic<int64_t> inflight_{0};
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> mailbox_shed_total_{0};
  std::atomic<uint64_t> mailbox_forced_total_{0};
  /// steady_clock ns of the last overflow log line (rate limiting).
  std::atomic<int64_t> last_overflow_log_ns_{0};

  ThreadTransport transport_;
  std::vector<std::unique_ptr<ThreadEndpoint>> endpoints_;
  std::vector<std::unique_ptr<ThreadExecutor>> executors_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerCompare>
      timers_;
  uint64_t timer_seq_ = 0;
  /// Timers popped from the heap but not yet enqueued at their target.
  int64_t timer_posting_ = 0;
  bool timer_stop_ = false;
  std::thread timer_thread_;
  bool shutdown_ = false;
};

}  // namespace fabricpp::runtime

#endif  // FABRICPP_RUNTIME_THREAD_RUNTIME_H_
