#ifndef FABRICPP_RUNTIME_TIME_H_
#define FABRICPP_RUNTIME_TIME_H_

#include <cstdint>

namespace fabricpp::runtime {

/// Time in microseconds, as observed through a runtime's Clock.
///
/// Under the deterministic simulation runtime this is virtual time advanced
/// event by event (identical to sim::SimTime); under the thread runtime it
/// is real elapsed time measured from a std::chrono::steady_clock epoch.
/// Node state machines are written against this one type and never know
/// which clock is ticking underneath them.
using TimeMicros = uint64_t;

constexpr TimeMicros kMicrosecond = 1;
constexpr TimeMicros kMillisecond = 1000;
constexpr TimeMicros kSecond = 1000 * 1000;

/// Converts to floating-point seconds (for reporting).
inline double ToSeconds(TimeMicros t) { return static_cast<double>(t) / 1e6; }

}  // namespace fabricpp::runtime

#endif  // FABRICPP_RUNTIME_TIME_H_
