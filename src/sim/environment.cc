#include "sim/environment.h"

#include <utility>

namespace fabricpp::sim {

void Environment::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Environment::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the callback out before pop() is
  // safe because the comparator never inspects `fn`.
  Event& top = const_cast<Event&>(queue_.top());
  const SimTime time = top.time;
  Callback fn = std::move(top.fn);
  queue_.pop();
  now_ = time;
  ++executed_events_;
  fn();
  return true;
}

void Environment::Run() {
  while (Step()) {
  }
}

void Environment::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace fabricpp::sim
