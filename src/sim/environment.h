#ifndef FABRICPP_SIM_ENVIRONMENT_H_
#define FABRICPP_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace fabricpp::sim {

/// The discrete-event simulation engine: a virtual clock plus a priority
/// queue of pending events.
///
/// Events at equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), which keeps runs bit-for-bit
/// deterministic. The engine is single-threaded by design.
class Environment {
 public:
  using Callback = std::function<void()>;

  Environment() = default;
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now.
  void Schedule(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at an absolute virtual time (clamped to `Now()` if in
  /// the past — events can never rewind the clock).
  void ScheduleAt(SimTime when, Callback fn);

  /// Runs events until the queue drains.
  void Run();

  /// Runs events with timestamp <= `deadline`; afterwards Now() == deadline
  /// (unless the queue drained earlier with Now() already past it).
  void RunUntil(SimTime deadline);

  /// Executes the single next event; returns false when the queue is empty.
  bool Step();

  bool Empty() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_events_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // Min-heap on time.
      return a.seq > b.seq;                          // FIFO within a tick.
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace fabricpp::sim

#endif  // FABRICPP_SIM_ENVIRONMENT_H_
