#include "sim/fault_injector.h"

namespace fabricpp::sim {

void FaultInjector::PartitionLink(NodeId from, NodeId to, SimTime start,
                                  SimTime end) {
  partitions_[LinkKey(from, to)].push_back(Window{start, end});
}

void FaultInjector::PartitionPair(NodeId a, NodeId b, SimTime start,
                                  SimTime end) {
  PartitionLink(a, b, start, end);
  PartitionLink(b, a, start, end);
}

void FaultInjector::CrashNode(NodeId node, SimTime start, SimTime end) {
  crashes_[node].push_back(Window{start, end});
}

void FaultInjector::ClearLinkFaults() {
  default_faults_ = LinkFaults{};
  link_faults_.clear();
  targeted_drops_.clear();
}

bool FaultInjector::InAnyWindow(const std::vector<Window>& windows,
                                SimTime t) {
  for (const Window& w : windows) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

bool FaultInjector::IsCrashed(NodeId node) const {
  const auto it = crashes_.find(node);
  return it != crashes_.end() && InAnyWindow(it->second, env_->Now());
}

bool FaultInjector::IsPartitioned(NodeId from, NodeId to) const {
  const auto it = partitions_.find(LinkKey(from, to));
  return it != partitions_.end() && InAnyWindow(it->second, env_->Now());
}

FaultInjector::SendDecision FaultInjector::OnSend(NodeId from, NodeId to) {
  SendDecision decision;
  // A crashed sender transmits nothing. The receiver is checked at delivery
  // time (OnDeliver) so a message can race into a crash window.
  if (IsCrashed(from)) {
    ++stats_.dropped_crash;
    decision.deliver = false;
    return decision;
  }
  if (IsPartitioned(from, to)) {
    ++stats_.dropped_partition;
    decision.deliver = false;
    return decision;
  }
  if (!targeted_drops_.empty()) {
    const auto it = targeted_drops_.find(LinkKey(from, to));
    if (it != targeted_drops_.end() && it->second > 0) {
      if (--it->second == 0) targeted_drops_.erase(it);
      ++stats_.dropped_targeted;
      decision.deliver = false;
      return decision;
    }
  }
  const LinkFaults* faults = &default_faults_;
  if (!link_faults_.empty()) {
    const auto it = link_faults_.find(LinkKey(from, to));
    if (it != link_faults_.end()) faults = &it->second;
  }
  if (!faults->any()) return decision;
  if (faults->loss_prob > 0 && rng_.NextBool(faults->loss_prob)) {
    ++stats_.dropped_loss;
    decision.deliver = false;
    return decision;
  }
  if (faults->max_extra_delay > 0) {
    decision.extra_delay = rng_.NextUint64(faults->max_extra_delay + 1);
    if (decision.extra_delay > 0) ++stats_.delayed;
  }
  if (faults->duplicate_prob > 0 && rng_.NextBool(faults->duplicate_prob)) {
    decision.duplicate = true;
    if (faults->max_extra_delay > 0) {
      decision.duplicate_extra_delay =
          rng_.NextUint64(faults->max_extra_delay + 1);
    }
    ++stats_.duplicated;
  }
  return decision;
}

bool FaultInjector::OnDeliver(NodeId to) {
  if (IsCrashed(to)) {
    ++stats_.dropped_crash;
    return false;
  }
  return true;
}

}  // namespace fabricpp::sim
