#ifndef FABRICPP_SIM_FAULT_INJECTOR_H_
#define FABRICPP_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/environment.h"
#include "sim/time.h"

namespace fabricpp::sim {

/// Node handle within the simulated network (dense id). Defined here so the
/// fault layer does not depend on the message fabric; sim/network.h re-uses
/// this alias.
using NodeId = uint32_t;

/// Probabilistic per-link fault parameters. All probabilities are evaluated
/// per message with the injector's own seeded RNG, so a fault plan replays
/// bit-for-bit from its seed.
struct LinkFaults {
  /// Probability that a message is lost in flight (egress is still charged —
  /// the sender transmitted; the network ate it).
  double loss_prob = 0.0;
  /// Probability that a message is delivered twice (models retransmission
  /// races); the duplicate arrives one extra latency later.
  double duplicate_prob = 0.0;
  /// Uniform extra delivery jitter in [0, max_extra_delay] microseconds.
  SimTime max_extra_delay = 0;

  bool any() const {
    return loss_prob > 0 || duplicate_prob > 0 || max_extra_delay > 0;
  }
};

/// Counters for every fault the injector actually caused.
struct FaultStats {
  uint64_t dropped_loss = 0;       ///< Random per-link loss.
  uint64_t dropped_partition = 0;  ///< Link inside a partition window.
  uint64_t dropped_crash = 0;      ///< Sender or receiver crashed.
  uint64_t dropped_targeted = 0;   ///< DropNextMessages one-shots.
  uint64_t duplicated = 0;
  uint64_t delayed = 0;

  uint64_t TotalDropped() const {
    return dropped_loss + dropped_partition + dropped_crash + dropped_targeted;
  }
};

/// Deterministic fault-injection plan for the discrete-event simulation.
///
/// The injector sits between senders and the event queue: sim::Network (and
/// the Raft transport) consult it on every Send, so every component in the
/// pipeline inherits faults with zero call-site changes. Supported faults:
///
///  - per-link probabilistic loss, duplication and delay jitter
///    (SetDefaultLinkFaults / SetLinkFaults),
///  - directed link partitions over virtual-time windows, healing
///    automatically at window end (PartitionLink / PartitionPair),
///  - node crash windows: messages from a crashed node are dropped at send
///    time, messages to it at delivery time (CrashNode),
///  - targeted one-shot drops for tests (DropNextMessages).
///
/// Windows are half-open [start, end) and evaluated against the virtual
/// clock, so no heal events need to be scheduled and the whole plan is a
/// pure function of (seed, plan, message sequence) — the same seed replays
/// the identical fault schedule bit-for-bit.
class FaultInjector {
 public:
  FaultInjector(Environment* env, uint64_t seed)
      : env_(env), rng_(seed ^ 0xfa017c7ed5eedULL) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Plan construction ---

  /// Faults applied to every link without a per-link override.
  void SetDefaultLinkFaults(LinkFaults faults) { default_faults_ = faults; }

  /// Per-link override (directed: from -> to).
  void SetLinkFaults(NodeId from, NodeId to, LinkFaults faults) {
    link_faults_[LinkKey(from, to)] = faults;
  }

  /// Drops every from -> to message inside [start, end).
  void PartitionLink(NodeId from, NodeId to, SimTime start, SimTime end);

  /// Partitions both directions between `a` and `b` over [start, end).
  void PartitionPair(NodeId a, NodeId b, SimTime start, SimTime end);

  /// The node neither sends nor receives inside [start, end). This is the
  /// network view of a crash; component state (a peer's pipeline, a Raft
  /// replica's timers) is handled by the component's own Crash/Restart.
  void CrashNode(NodeId node, SimTime start, SimTime end);

  /// Deterministically drops the next `count` messages sent from -> to
  /// (evaluated before probabilistic faults). Test hook for targeted
  /// scenarios like "lose exactly this endorsement reply".
  void DropNextMessages(NodeId from, NodeId to, uint32_t count) {
    targeted_drops_[LinkKey(from, to)] += count;
  }

  /// Removes all probabilistic link faults and pending targeted drops.
  /// Partition and crash windows are left in place (they heal on their own
  /// at window end). Used by chaos drivers to heal the network for drain.
  void ClearLinkFaults();

  // --- Queries ---

  bool IsCrashed(NodeId node) const;
  bool IsPartitioned(NodeId from, NodeId to) const;

  /// Decision for one message send at Now().
  struct SendDecision {
    bool deliver = true;
    bool duplicate = false;
    SimTime extra_delay = 0;
    SimTime duplicate_extra_delay = 0;
  };
  SendDecision OnSend(NodeId from, NodeId to);

  /// Delivery-time check: false if the receiver is crashed (the message
  /// raced a crash window and must be dropped). Counts the drop.
  bool OnDeliver(NodeId to);

  const FaultStats& stats() const { return stats_; }

 private:
  struct Window {
    SimTime start;
    SimTime end;
  };

  static uint64_t LinkKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }
  static bool InAnyWindow(const std::vector<Window>& windows, SimTime t);

  Environment* env_;
  Rng rng_;
  LinkFaults default_faults_;
  std::unordered_map<uint64_t, LinkFaults> link_faults_;
  std::unordered_map<uint64_t, std::vector<Window>> partitions_;
  std::unordered_map<NodeId, std::vector<Window>> crashes_;
  std::unordered_map<uint64_t, uint32_t> targeted_drops_;
  FaultStats stats_;
};

}  // namespace fabricpp::sim

#endif  // FABRICPP_SIM_FAULT_INJECTOR_H_
