#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace fabricpp::sim {

NodeId Network::AddNode(std::string name) {
  nodes_.push_back(Node{std::move(name), 0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::Send(NodeId from, NodeId to, uint64_t size_bytes,
                   Callback on_deliver) {
  assert(from < nodes_.size() && to < nodes_.size());
  (void)to;
  Node& sender = nodes_[from];
  const SimTime start = std::max(sender.egress_free_at, env_->Now());
  const SimTime tx_time = static_cast<SimTime>(
      static_cast<double>(size_bytes) / params_.bandwidth_bytes_per_us);
  sender.egress_free_at = start + tx_time;
  const SimTime deliver_at = sender.egress_free_at + params_.latency;
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  env_->ScheduleAt(deliver_at, std::move(on_deliver));
}

}  // namespace fabricpp::sim
