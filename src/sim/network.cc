#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace fabricpp::sim {

NodeId Network::AddNode(std::string name) {
  nodes_.push_back(Node{std::move(name), 0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::Send(NodeId from, NodeId to, uint64_t size_bytes,
                   Callback on_deliver) {
  assert(from < nodes_.size() && to < nodes_.size());
  (void)to;
  Node& sender = nodes_[from];
  const SimTime start = std::max(sender.egress_free_at, env_->Now());
  const SimTime tx_time = static_cast<SimTime>(
      static_cast<double>(size_bytes) / params_.bandwidth_bytes_per_us);
  sender.egress_free_at = start + tx_time;
  SimTime deliver_at = sender.egress_free_at + params_.latency;
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  if (injector_ == nullptr) {
    env_->ScheduleAt(deliver_at, std::move(on_deliver));
    return;
  }
  const FaultInjector::SendDecision decision = injector_->OnSend(from, to);
  // Egress was already charged: a lost message was transmitted and then
  // eaten by the network, it does not refund the sender's NIC time.
  if (!decision.deliver) return;
  deliver_at += decision.extra_delay;
  FaultInjector* injector = injector_;
  if (decision.duplicate) {
    // The duplicate is a retransmission: it arrives one extra latency (plus
    // its own jitter) after the original. Each std::function copy owns its
    // captures, so delivering both copies is safe.
    Callback copy = on_deliver;
    env_->ScheduleAt(
        deliver_at + params_.latency + decision.duplicate_extra_delay,
        [injector, to, copy = std::move(copy)]() {
          if (injector->OnDeliver(to)) copy();
        });
  }
  env_->ScheduleAt(deliver_at,
                   [injector, to, cb = std::move(on_deliver)]() {
                     if (injector->OnDeliver(to)) cb();
                   });
}

}  // namespace fabricpp::sim
