#ifndef FABRICPP_SIM_NETWORK_H_
#define FABRICPP_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/environment.h"
#include "sim/fault_injector.h"
#include "sim/time.h"

namespace fabricpp::sim {

/// Network cost parameters modeling the paper's rack-local gigabit Ethernet
/// (§6.1: six servers in one rack).
struct NetworkParams {
  /// One-way propagation + protocol latency per message.
  SimTime latency = 150;  // 150 us — rack-local RPC round half.
  /// Egress bandwidth per node in bytes per microsecond (125 B/us = 1 Gbit/s).
  double bandwidth_bytes_per_us = 125.0;
};

/// Point-to-point message fabric with per-node egress serialization.
///
/// Delivery time = egress queueing (a node's NIC transmits one message at a
/// time at `bandwidth`) + transmission time + propagation latency. Gigabit
/// egress is the resource the paper's block distribution contends on; larger
/// blocks amortize per-message latency, which is exactly the Figure 7
/// block-size effect.
class Network {
 public:
  using Callback = std::function<void()>;

  Network(Environment* env, NetworkParams params)
      : env_(env), params_(params) {}

  /// Registers a node; returns its id.
  NodeId AddNode(std::string name);

  /// Sends `size_bytes` from `from` to `to`; `on_deliver` runs at the
  /// receiver when the message arrives. When a fault injector is attached,
  /// the message may be dropped, duplicated or delayed per the active fault
  /// plan — callers never see the difference beyond the missing/extra
  /// delivery, which is exactly how real message loss presents.
  void Send(NodeId from, NodeId to, uint64_t size_bytes, Callback on_deliver);

  /// Attaches a fault plan; nullptr (the default) is a perfect network.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  size_t num_nodes() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const { return nodes_[id].name; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Node {
    std::string name;
    SimTime egress_free_at = 0;  // When the NIC finishes its current send.
  };

  Environment* env_;
  NetworkParams params_;
  FaultInjector* injector_ = nullptr;
  std::vector<Node> nodes_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace fabricpp::sim

#endif  // FABRICPP_SIM_NETWORK_H_
