#include "sim/resource.h"

#include <utility>

namespace fabricpp::sim {

Resource::Resource(Environment* env, std::string name, uint32_t num_servers)
    : env_(env), name_(std::move(name)), num_servers_(num_servers) {}

void Resource::Submit(SimTime service_time, Callback on_complete) {
  Job job{service_time, std::move(on_complete)};
  if (busy_servers_ < num_servers_) {
    StartJob(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void Resource::StartJob(Job job) {
  ++busy_servers_;
  busy_time_ += job.service_time;
  // Completion callback runs after the service time elapses; then the next
  // queued job (if any) grabs the freed server.
  env_->Schedule(job.service_time,
                 [this, cb = std::move(job.on_complete)]() mutable {
                   OnJobDone();
                   cb();
                 });
}

void Resource::OnJobDone() {
  --busy_servers_;
  ++jobs_completed_;
  if (!queue_.empty() && busy_servers_ < num_servers_) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
}

double Resource::Utilization() const {
  const SimTime now = env_->Now();
  if (now == 0 || num_servers_ == 0) return 0.0;
  return static_cast<double>(busy_time_) /
         (static_cast<double>(now) * num_servers_);
}

}  // namespace fabricpp::sim
