#ifndef FABRICPP_SIM_RESOURCE_H_
#define FABRICPP_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/environment.h"
#include "sim/time.h"

namespace fabricpp::sim {

/// A FIFO service station with `num_servers` parallel servers — the queueing
/// model of a CPU (or thread pool) inside a peer or the ordering service.
///
/// Work submitted while all servers are busy queues up; this is what makes
/// peers saturate under load and produces the contention effects the paper
/// measures when scaling channels and clients (Figure 11).
class Resource {
 public:
  using Callback = std::function<void()>;

  /// `name` is used in stats reporting only.
  Resource(Environment* env, std::string name, uint32_t num_servers);

  /// Submits a job requiring `service_time` virtual microseconds of a
  /// server; `on_complete` fires when the job finishes.
  void Submit(SimTime service_time, Callback on_complete);

  const std::string& name() const { return name_; }
  uint32_t num_servers() const { return num_servers_; }
  uint64_t jobs_completed() const { return jobs_completed_; }
  size_t queue_length() const { return queue_.size(); }
  /// Aggregate busy server-time, for utilization reports.
  SimTime busy_time() const { return busy_time_; }
  /// Utilization in [0,1] over the window [0, now].
  double Utilization() const;

 private:
  struct Job {
    SimTime service_time;
    Callback on_complete;
  };

  void StartJob(Job job);
  void OnJobDone();

  Environment* env_;
  std::string name_;
  uint32_t num_servers_;
  uint32_t busy_servers_ = 0;
  uint64_t jobs_completed_ = 0;
  SimTime busy_time_ = 0;
  std::deque<Job> queue_;
};

}  // namespace fabricpp::sim

#endif  // FABRICPP_SIM_RESOURCE_H_
