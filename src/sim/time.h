#ifndef FABRICPP_SIM_TIME_H_
#define FABRICPP_SIM_TIME_H_

#include <cstdint>

namespace fabricpp::sim {

/// Virtual time in microseconds since simulation start.
///
/// All pipeline costs (crypto, chaincode execution, validation, network
/// transfer) are expressed in virtual microseconds; the simulator advances
/// this clock event by event, which makes every experiment deterministic and
/// independent of host speed (see DESIGN.md §2).
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

/// Converts virtual time to floating-point seconds (for reporting).
inline double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace fabricpp::sim

#endif  // FABRICPP_SIM_TIME_H_
