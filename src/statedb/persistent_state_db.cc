#include "statedb/persistent_state_db.h"

#include "common/bytes.h"
#include "common/logging.h"
#include "crypto/sha256.h"

namespace fabricpp::statedb {

namespace {
/// Reserved metadata key (the 0x00 prefix keeps it out of user key space —
/// chaincode keys are printable). Explicit length: the leading NUL would
/// otherwise terminate a C-string conversion.
const std::string kHeightKey("\x00__fabricpp_height", 18);
}  // namespace

Result<std::unique_ptr<PersistentStateDb>> PersistentStateDb::Open(
    const std::string& dir, storage::DbOptions options) {
  FABRICPP_ASSIGN_OR_RETURN(std::unique_ptr<storage::Db> raw,
                            storage::Db::Open(dir, options));
  std::unique_ptr<PersistentStateDb> db(
      new PersistentStateDb(std::move(raw)));
  const auto height = db->db_->Get(kHeightKey);
  if (height.ok()) {
    db->last_committed_block_ = std::strtoull(height->c_str(), nullptr, 10);
  } else if (height.status().code() != StatusCode::kNotFound) {
    return height.status();
  }
  return db;
}

Bytes PersistentStateDb::EncodeValue(const std::string& value,
                                     proto::Version version) {
  Bytes out;
  ByteWriter writer(&out);
  writer.PutVarint(version.block_num);
  writer.PutVarint(version.tx_num);
  writer.PutString(value);
  return out;
}

Result<VersionedValue> PersistentStateDb::DecodeValue(const std::string& raw) {
  ByteReader reader(reinterpret_cast<const uint8_t*>(raw.data()), raw.size());
  VersionedValue vv;
  FABRICPP_ASSIGN_OR_RETURN(vv.version.block_num, reader.GetVarint());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t tx_num, reader.GetVarint());
  vv.version.tx_num = static_cast<uint32_t>(tx_num);
  FABRICPP_ASSIGN_OR_RETURN(vv.value, reader.GetString());
  return vv;
}

Result<VersionedValue> PersistentStateDb::Get(const std::string& key) const {
  FABRICPP_ASSIGN_OR_RETURN(const std::string raw, db_->Get(key));
  return DecodeValue(raw);
}

proto::Version PersistentStateDb::GetVersion(const std::string& key) const {
  const auto vv = Get(key);
  return vv.ok() ? vv->version : proto::kNilVersion;
}

Status PersistentStateDb::SeedInitialState(const std::string& key,
                                           const std::string& value) {
  const Bytes encoded = EncodeValue(value, proto::kNilVersion);
  return db_->Put(key,
                  std::string_view(reinterpret_cast<const char*>(
                                       encoded.data()),
                                   encoded.size()));
}

Status PersistentStateDb::ApplyWrites(
    const std::vector<proto::WriteItem>& writes, proto::Version version) {
  for (const proto::WriteItem& w : writes) {
    if (w.is_delete) {
      FABRICPP_RETURN_IF_ERROR(db_->Delete(w.key));
    } else {
      const Bytes encoded = EncodeValue(w.value, version);
      FABRICPP_RETURN_IF_ERROR(
          db_->Put(w.key, std::string_view(reinterpret_cast<const char*>(
                                               encoded.data()),
                                           encoded.size())));
    }
  }
  return Status::OK();
}

Status PersistentStateDb::ApplyBlock(const std::vector<VersionedWrite>& writes,
                                     uint64_t height) {
  storage::WriteBatch batch;
  for (const VersionedWrite& vw : writes) {
    if (vw.write.is_delete) {
      batch.Delete(vw.write.key);
    } else {
      const Bytes encoded = EncodeValue(vw.write.value, vw.version);
      batch.Put(vw.write.key,
                std::string(reinterpret_cast<const char*>(encoded.data()),
                            encoded.size()));
    }
  }
  // The height rides in the same batch: state writes and the height
  // bookmark become durable together or not at all.
  batch.Put(kHeightKey, std::to_string(height));
  FABRICPP_RETURN_IF_ERROR(db_->ApplyBatch(batch));
  last_committed_block_ = height;
  MaybeCheckpoint(height);
  return Status::OK();
}

void PersistentStateDb::MaybeCheckpoint(uint64_t height) {
  const storage::DbOptions& options = db_->options();
  if (options.checkpoint_interval_blocks == 0 ||
      options.checkpoint_dir.empty() || height == 0 ||
      height % options.checkpoint_interval_blocks != 0) {
    return;
  }
  // Best-effort: the block is already durable (WAL), so a failed snapshot
  // only costs restart speed, never correctness.
  const Status status = db_->WriteCheckpoint(height);
  if (!status.ok()) {
    FABRICPP_LOG(Warn) << "statedb: checkpoint at height " << height
                       << " failed: " << status.ToString();
  }
}

Status PersistentStateDb::ApplyBlock(
    const std::vector<proto::WriteItem>& writes, proto::Version version,
    uint64_t height) {
  std::vector<VersionedWrite> versioned;
  versioned.reserve(writes.size());
  for (const proto::WriteItem& w : writes) {
    versioned.push_back(VersionedWrite{w, version});
  }
  return ApplyBlock(versioned, height);
}

Status PersistentStateDb::set_last_committed_block(uint64_t block) {
  last_committed_block_ = block;
  return db_->Put(kHeightKey, std::to_string(block));
}

void PersistentStateDb::ExportTo(StateDb* out) const {
  // Streaming Db::Iterator, not a key-space materialization: recovery-sized
  // exports stay O(1) beyond the iterator's per-source state.
  for (auto it = db_->NewIterator(); it.Valid(); it.Next()) {
    if (it.key() == kHeightKey) continue;
    const auto vv = DecodeValue(it.value());
    if (!vv.ok()) continue;
    // Replays both value and version (SeedInitialState would reset the
    // version, so apply as a one-entry write batch instead).
    out->ApplyWrites({proto::WriteItem{it.key(), vv->value, false}},
                     vv->version);
  }
  out->set_last_committed_block(last_committed_block_);
}

std::string PersistentStateDb::StateFingerprint() const {
  crypto::Sha256 hash;
  const auto update_framed = [&hash](std::string_view s) {
    uint8_t len[8];
    for (int i = 0; i < 8; ++i) {
      len[i] = static_cast<uint8_t>(s.size() >> (8 * i));
    }
    hash.Update(len, sizeof(len));
    hash.Update(s.data(), s.size());
  };
  for (auto it = db_->NewIterator(); it.Valid(); it.Next()) {
    if (it.key() == kHeightKey) continue;
    // The raw value already carries the MVCC version (EncodeValue), so the
    // digest covers (key, version, value) per entry.
    update_framed(it.key());
    update_framed(it.value());
  }
  update_framed(std::to_string(last_committed_block_));
  return crypto::DigestToHex(hash.Finalize());
}

}  // namespace fabricpp::statedb
