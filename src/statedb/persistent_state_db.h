#ifndef FABRICPP_STATEDB_PERSISTENT_STATE_DB_H_
#define FABRICPP_STATEDB_PERSISTENT_STATE_DB_H_

#include <memory>
#include <string>

#include "statedb/state_db.h"
#include "storage/db.h"

namespace fabricpp::statedb {

/// A peer state database persisted through the LSM storage engine — the
/// equivalent of Fabric's LevelDB-backed stateleveldb (paper §6.1).
///
/// Stores each key's value together with its MVCC version; survives process
/// restarts (WAL + SSTables) and recovers the last-committed-block height
/// from a reserved metadata key. Used by the durability tests and the
/// storage benches; the simulation's in-memory StateDb models its cost via
/// the CostModel constants (see DESIGN.md §2).
class PersistentStateDb : public StateStore {
 public:
  /// Opens (or creates) the database in `dir`.
  static Result<std::unique_ptr<PersistentStateDb>> Open(
      const std::string& dir, storage::DbOptions options = {});

  /// See StateDb::Get.
  Result<VersionedValue> Get(const std::string& key) const;
  proto::Version GetVersion(const std::string& key) const override;

  Status SeedInitialState(const std::string& key, const std::string& value);

  /// See StateDb::ApplyWrites. Per-key writes: each key is its own WAL
  /// record and the height is a separate write — a crash between them can
  /// strand state ahead of the recorded height. Kept for seeding and for
  /// the bench comparison; the commit path uses ApplyBlock.
  Status ApplyWrites(const std::vector<proto::WriteItem>& writes,
                     proto::Version version);

  /// See StateStore::ApplyBlock. All writes of the block *and* the height
  /// key are encoded into one storage::WriteBatch — a single WAL append,
  /// at most one fsync — so recovery yields either the pre-block or the
  /// post-block state, never a torn mixture.
  Status ApplyBlock(const std::vector<VersionedWrite>& writes,
                    uint64_t height) override;

  /// Convenience overload for block writes that share one version (the
  /// common single-transaction and test shape).
  Status ApplyBlock(const std::vector<proto::WriteItem>& writes,
                    proto::Version version, uint64_t height);

  uint64_t last_committed_block() const override {
    return last_committed_block_;
  }
  Status set_last_committed_block(uint64_t block);

  /// Copies the full state into an in-memory StateDb (tests compare the
  /// two implementations entry by entry). Streams through Db::Iterator —
  /// O(1) memory beyond the iterator, never materializing the key space.
  void ExportTo(StateDb* out) const;

  /// Deterministic digest of the full versioned state: every (key, version,
  /// value) in ascending key order plus the recovered height, hashed with
  /// SHA-256. Two stores hold byte-identical state iff their fingerprints
  /// match — how the restart tests assert checkpoint + WAL-tail recovery
  /// equals full replay.
  std::string StateFingerprint() const;

  /// Height of the checkpoint the underlying Db restored from at Open
  /// (0 = recovery used the live table set / plain WAL replay). When this
  /// is below the chain tip, the caller replays the remaining blocks from
  /// the ledger to catch up.
  uint64_t recovered_checkpoint_height() const {
    return db_->stats().recovered_checkpoint_height;
  }

  storage::Db& raw_db() { return *db_; }

 private:
  explicit PersistentStateDb(std::unique_ptr<storage::Db> db)
      : db_(std::move(db)) {}

  static Bytes EncodeValue(const std::string& value, proto::Version version);
  static Result<VersionedValue> DecodeValue(const std::string& raw);

  /// Snapshots the state when `height` crosses a checkpoint interval
  /// boundary (best-effort; see DbOptions::checkpoint_interval_blocks).
  void MaybeCheckpoint(uint64_t height);

  std::unique_ptr<storage::Db> db_;
  uint64_t last_committed_block_ = 0;
};

}  // namespace fabricpp::statedb

#endif  // FABRICPP_STATEDB_PERSISTENT_STATE_DB_H_
