#include "statedb/state_db.h"

#include <algorithm>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace fabricpp::statedb {

Result<VersionedValue> StateDb::Get(const std::string& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key not found: " + key);
  return it->second;
}

proto::Version StateDb::GetVersion(const std::string& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return proto::kNilVersion;
  return it->second.version;
}

void StateDb::SeedInitialState(const std::string& key, std::string value) {
  map_[key] = VersionedValue{std::move(value), proto::kNilVersion};
}

void StateDb::ApplyWrites(const std::vector<proto::WriteItem>& writes,
                          proto::Version version) {
  for (const proto::WriteItem& w : writes) {
    if (w.is_delete) {
      map_.erase(w.key);
    } else {
      map_[w.key] = VersionedValue{w.value, version};
    }
  }
}

Status StateDb::ApplyBlock(const std::vector<VersionedWrite>& writes,
                           uint64_t height) {
  for (const VersionedWrite& vw : writes) {
    if (vw.write.is_delete) {
      map_.erase(vw.write.key);
    } else {
      map_[vw.write.key] = VersionedValue{vw.write.value, vw.version};
    }
  }
  last_committed_block_ = height;
  return Status::OK();
}

void StateDb::ForEach(const std::function<void(const std::string&,
                                               const VersionedValue&)>& fn)
    const {
  for (const auto& [key, vv] : map_) fn(key, vv);
}

std::string StateDb::Fingerprint() const {
  std::vector<const std::pair<const std::string, VersionedValue>*> entries;
  entries.reserve(map_.size());
  for (const auto& entry : map_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  Bytes canonical;
  ByteWriter w(&canonical);
  w.PutU64(last_committed_block_);
  w.PutVarint(entries.size());
  for (const auto* entry : entries) {
    w.PutString(entry->first);
    w.PutString(entry->second.value);
    w.PutU64(entry->second.version.block_num);
    w.PutU32(entry->second.version.tx_num);
  }
  return crypto::DigestToHex(crypto::Sha256::Hash(canonical));
}

}  // namespace fabricpp::statedb
