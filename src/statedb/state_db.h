#ifndef FABRICPP_STATEDB_STATE_DB_H_
#define FABRICPP_STATEDB_STATE_DB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "proto/rwset.h"
#include "proto/version.h"

namespace fabricpp::statedb {

/// A value together with its MVCC version.
struct VersionedValue {
  std::string value;
  proto::Version version;
};

/// One write paired with the MVCC version it commits at — the unit of the
/// block-level atomic commit path (StateStore::ApplyBlock).
struct VersionedWrite {
  proto::WriteItem write;
  proto::Version version;
};

/// The commit-side contract a validator writes through, shared by the
/// in-memory StateDb and the LSM-backed PersistentStateDb: version lookups
/// for the MVCC check, the height bookmark, and the atomic block-level
/// write batch.
///
/// ApplyBlock is the *only* mutation on the commit path: all writes of a
/// block plus the new height are applied as one unit, so no observer (and,
/// for the persistent store, no crash) can see state writes at a stale
/// height — the invariant the Fabric++ fine-grained early abort (paper
/// §5.2.1) compares read versions against.
class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Returns the version of `key`, or kNilVersion if absent.
  virtual proto::Version GetVersion(const std::string& key) const = 0;

  /// The id of the last block whose writes have been fully applied.
  virtual uint64_t last_committed_block() const = 0;

  /// Atomically applies all `writes` of one block (in order — a later
  /// write to the same key wins) and advances last_committed_block to
  /// `height`. Either every write and the height take effect, or none do.
  virtual Status ApplyBlock(const std::vector<VersionedWrite>& writes,
                            uint64_t height) = 0;
};

/// The peer's current-state database: key -> (value, version).
///
/// Mirrors Fabric's LevelDB-backed state store (paper §2.1): the state is
/// the result of applying all *valid* transactions in ledger order, and
/// every value carries the (block, tx) version of the transaction that last
/// wrote it. The validator's MVCC serializability check and the Fabric++
/// fine-grained stale-read detection both compare against these versions.
///
/// Thread-safety: none required — the simulation substrate is
/// single-threaded (DESIGN.md §5); concurrency *semantics* (vanilla's
/// coarse simulation/validation lock vs Fabric++'s lock-free version
/// checks) are modeled in virtual time by fabric::PeerNode.
class StateDb : public StateStore {
 public:
  StateDb() = default;

  /// Reads a key. NotFound if the key was never written (reads of missing
  /// keys are recorded with kNilVersion by the TxContext, matching Fabric).
  Result<VersionedValue> Get(const std::string& key) const;

  /// Returns the version of `key`, or kNilVersion if absent.
  proto::Version GetVersion(const std::string& key) const override;

  /// Direct write used for genesis/bootstrap state (version = kNilVersion's
  /// block, i.e. block 0). Workloads use this to install initial balances.
  void SeedInitialState(const std::string& key, std::string value);

  /// Applies the write set of one committed transaction with version
  /// {block_num, tx_num}. Called by the committer for each *valid*
  /// transaction, in block order.
  void ApplyWrites(const std::vector<proto::WriteItem>& writes,
                   proto::Version version);

  /// See StateStore::ApplyBlock. In memory the atomicity is trivial (no
  /// crash to tear it), but routing commits through the same entry point
  /// keeps the validator's commit stage identical for both backends.
  Status ApplyBlock(const std::vector<VersionedWrite>& writes,
                    uint64_t height) override;

  /// Height bookkeeping: the id of the last block whose writes have been
  /// fully applied. Fabric++'s simulation-phase early abort compares read
  /// versions against the value this had when the simulation started
  /// ("last-block-ID", paper Figure 6).
  uint64_t last_committed_block() const override {
    return last_committed_block_;
  }
  void set_last_committed_block(uint64_t b) { last_committed_block_ = b; }

  size_t NumKeys() const { return map_.size(); }

  /// Canonical digest of the full state: every (key, value, version) entry
  /// hashed in sorted key order, returned as a SHA-256 hex string. Two
  /// replicas converged on the same state produce the same fingerprint —
  /// the cross-process equality check the socket deployment's load driver
  /// asserts after a run.
  std::string Fingerprint() const;

  /// Iterates all entries (test/inspection helper; unspecified order).
  void ForEach(const std::function<void(const std::string&,
                                        const VersionedValue&)>& fn) const;

 private:
  std::unordered_map<std::string, VersionedValue> map_;
  uint64_t last_committed_block_ = 0;
};

}  // namespace fabricpp::statedb

#endif  // FABRICPP_STATEDB_STATE_DB_H_
