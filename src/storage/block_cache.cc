#include "storage/block_cache.h"

#include <algorithm>

namespace fabricpp::storage {

BlockCache::BlockCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(std::max<size_t>(1, capacity_bytes /
                                              std::max<size_t>(1, num_shards))) {
  shards_.reserve(std::max<size_t>(1, num_shards));
  for (size_t i = 0; i < std::max<size_t>(1, num_shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t BlockCache::NextTableId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t BlockCache::PackKey(uint64_t table_id, uint32_t block_index) {
  // Table ids are process-unique allocation counters (small); a table's
  // block count is bounded by its entry count / 16. 40 + 24 bits never
  // collide in practice; the mix below keeps shard selection uniform.
  return (table_id << 24) ^ block_index;
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t key) {
  // Fibonacci hash: consecutive block indexes of one table spread across
  // shards instead of clustering.
  const uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
  return *shards_[(mixed >> 32) % shards_.size()];
}

BlockCache::Handle BlockCache::Lookup(uint64_t table_id,
                                      uint32_t block_index) {
  const uint64_t key = PackKey(table_id, block_index);
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->block;
}

BlockCache::Handle BlockCache::Insert(uint64_t table_id, uint32_t block_index,
                                      Bytes block) {
  const uint64_t key = PackKey(table_id, block_index);
  Handle handle = std::make_shared<const Bytes>(std::move(block));
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.map.find(key); it != shard.map.end()) {
    shard.charge -= it->second->block->size();
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Entry{key, handle});
  shard.map[key] = shard.lru.begin();
  shard.charge += handle->size();
  // Evict from the cold end; the newly inserted block itself is only evicted
  // when it alone exceeds the shard budget (callers keep their handle).
  while (shard.charge > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.charge -= victim.block->size();
    shard.map.erase(victim.key);
    shard.lru.pop_back();
  }
  return handle;
}

size_t BlockCache::charge_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->charge;
  }
  return total;
}

}  // namespace fabricpp::storage
