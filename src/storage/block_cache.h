#ifndef FABRICPP_STORAGE_BLOCK_CACHE_H_
#define FABRICPP_STORAGE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"

namespace fabricpp::storage {

/// A sharded LRU cache for SSTable data blocks, keyed by
/// (table cache id, block index). Blocks are the spans between two
/// consecutive sparse-index points of a table (~16 entries), so hot-key
/// MVCC reads that keep landing in the same span stop re-reading the file.
///
/// Sharding: the key hashes to one of `num_shards` independent LRU lists,
/// each with its own mutex and capacity_bytes / num_shards budget, so
/// concurrent readers (validator / commit worker pools) do not serialize on
/// one lock. Hit/miss counters are process-wide atomics.
///
/// Entries of dropped tables (after compaction) are not evicted eagerly —
/// table cache ids are never reused, so stale entries can never be returned
/// and simply age out of the LRU.
class BlockCache {
 public:
  using Handle = std::shared_ptr<const Bytes>;

  explicit BlockCache(size_t capacity_bytes, size_t num_shards = 8);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached block, bumping it to most-recently-used, or null on
  /// a miss. Counts a hit or a miss.
  Handle Lookup(uint64_t table_id, uint32_t block_index);

  /// Inserts (or replaces) a block and returns a handle to it, evicting
  /// least-recently-used entries of the same shard over budget. The handle
  /// stays valid after eviction (shared ownership).
  Handle Insert(uint64_t table_id, uint32_t block_index, Bytes block);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }
  /// Total bytes currently cached across all shards.
  size_t charge_bytes() const;

  /// Allocates a process-unique table id (monotonic, never reused).
  static uint64_t NextTableId();

 private:
  struct Entry {
    uint64_t key;
    Handle block;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    size_t charge = 0;
  };

  Shard& ShardFor(uint64_t key);
  static uint64_t PackKey(uint64_t table_id, uint32_t block_index);

  const size_t capacity_bytes_;
  const size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_BLOCK_CACHE_H_
