#include "storage/bloom.h"

#include <algorithm>
#include <cmath>

namespace fabricpp::storage {

namespace {

/// 64-bit string hash (FNV-1a core with a splitmix finalizer).
uint64_t HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

BloomFilter::BloomFilter(size_t num_keys, uint32_t bits_per_key) {
  // k = ln(2) * bits/key rounded, clamped to [1, 30].
  num_probes_ = std::clamp<uint32_t>(
      static_cast<uint32_t>(bits_per_key * 0.69), 1, 30);
  size_t bits = std::max<size_t>(64, num_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
}

BloomFilter BloomFilter::Deserialize(const Bytes& data) {
  BloomFilter filter;
  if (data.empty()) {
    filter.num_probes_ = 1;
    filter.bits_.assign(8, 0);
    return filter;
  }
  filter.num_probes_ = data[0];
  filter.bits_.assign(data.begin() + 1, data.end());
  if (filter.bits_.empty()) filter.bits_.assign(8, 0);
  return filter;
}

Bytes BloomFilter::Serialize() const {
  Bytes out;
  out.reserve(1 + bits_.size());
  out.push_back(static_cast<uint8_t>(num_probes_));
  out.insert(out.end(), bits_.begin(), bits_.end());
  return out;
}

void BloomFilter::Add(std::string_view key) {
  const uint64_t h = HashKey(key);
  const uint64_t h1 = h;
  const uint64_t h2 = (h >> 33) | (h << 31);
  const size_t bits = bits_.size() * 8;
  for (uint32_t i = 0; i < num_probes_; ++i) {
    const size_t bit = (h1 + i * h2) % bits;
    bits_[bit / 8] |= (1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  const uint64_t h = HashKey(key);
  const uint64_t h1 = h;
  const uint64_t h2 = (h >> 33) | (h << 31);
  const size_t bits = bits_.size() * 8;
  for (uint32_t i = 0; i < num_probes_; ++i) {
    const size_t bit = (h1 + i * h2) % bits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

}  // namespace fabricpp::storage
