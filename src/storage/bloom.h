#ifndef FABRICPP_STORAGE_BLOOM_H_
#define FABRICPP_STORAGE_BLOOM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace fabricpp::storage {

/// Blocked-less classic Bloom filter used by SSTables to skip files that
/// cannot contain a key. Double hashing (Kirsch-Mitzenmacher) over two
/// 64-bit hashes derived from one mixing pass.
class BloomFilter {
 public:
  /// Builds a filter sized for `num_keys` keys at `bits_per_key`.
  BloomFilter(size_t num_keys, uint32_t bits_per_key);

  /// Reconstructs a filter from its serialized form.
  static BloomFilter Deserialize(const Bytes& data);

  void Add(std::string_view key);

  /// False positives possible, false negatives impossible.
  bool MayContain(std::string_view key) const;

  Bytes Serialize() const;

  size_t num_bits() const { return bits_.size() * 8; }

 private:
  BloomFilter() = default;

  uint32_t num_probes_ = 1;
  std::vector<uint8_t> bits_;
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_BLOOM_H_
