#include "storage/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/strings.h"
#include "storage/crc32.h"

namespace fabricpp::storage {

namespace fs = std::filesystem;

namespace {

constexpr uint64_t kCheckpointMagic = 0xfabc4ec9057a7e01ULL;
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kManifestBasename[] = "CHECKPOINT";
constexpr char kDirPrefix[] = "ckpt-";

}  // namespace

Bytes CheckpointManifest::Encode() const {
  Bytes out;
  ByteWriter writer(&out);
  writer.PutU64(kCheckpointMagic);
  writer.PutU32(kCheckpointVersion);
  writer.PutU64(height);
  writer.PutVarint(chunks.size());
  for (const CheckpointChunk& chunk : chunks) {
    writer.PutString(chunk.file);
    writer.PutVarint(chunk.num_entries);
    writer.PutVarint(chunk.bytes);
  }
  writer.PutU32(Crc32(out.data(), out.size()));
  return out;
}

Result<CheckpointManifest> CheckpointManifest::Decode(const Bytes& raw) {
  if (raw.size() < 4) {
    return Status::DataLoss("checkpoint manifest truncated");
  }
  if (Crc32(raw.data(), raw.size() - 4) !=
      (static_cast<uint32_t>(raw[raw.size() - 4]) |
       static_cast<uint32_t>(raw[raw.size() - 3]) << 8 |
       static_cast<uint32_t>(raw[raw.size() - 2]) << 16 |
       static_cast<uint32_t>(raw[raw.size() - 1]) << 24)) {
    return Status::DataLoss("checkpoint manifest crc mismatch");
  }
  ByteReader reader(raw.data(), raw.size() - 4);
  CheckpointManifest manifest;
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t magic, reader.GetU64());
  if (magic != kCheckpointMagic) {
    return Status::DataLoss("checkpoint manifest bad magic");
  }
  FABRICPP_ASSIGN_OR_RETURN(const uint32_t version, reader.GetU32());
  if (version != kCheckpointVersion) {
    return Status::DataLoss(
        StrFormat("checkpoint manifest unsupported version %u", version));
  }
  FABRICPP_ASSIGN_OR_RETURN(manifest.height, reader.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t count, reader.GetVarint());
  manifest.chunks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CheckpointChunk chunk;
    FABRICPP_ASSIGN_OR_RETURN(chunk.file, reader.GetString());
    FABRICPP_ASSIGN_OR_RETURN(chunk.num_entries, reader.GetVarint());
    FABRICPP_ASSIGN_OR_RETURN(chunk.bytes, reader.GetVarint());
    manifest.chunks.push_back(std::move(chunk));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("checkpoint manifest trailing bytes");
  }
  return manifest;
}

std::string CheckpointDirName(const std::string& root, uint64_t height) {
  return root + "/" + kDirPrefix +
         StrFormat("%llu", static_cast<unsigned long long>(height));
}

std::vector<uint64_t> ListCheckpoints(const std::string& root) {
  std::vector<uint64_t> heights;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) break;
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kDirPrefix, 0) != 0) continue;
    const std::string digits = name.substr(std::strlen(kDirPrefix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    if (!fs::exists(entry.path() / kManifestBasename)) continue;
    heights.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(heights.begin(), heights.end());
  return heights;
}

Status WriteCheckpointManifest(const std::string& dir,
                               const CheckpointManifest& manifest) {
  const Bytes encoded = manifest.Encode();
  const std::string path = dir + "/" + kManifestBasename;
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot write checkpoint manifest: " + tmp +
                            ": " + std::strerror(errno));
  }
  const bool ok =
      std::fwrite(encoded.data(), 1, encoded.size(), file) == encoded.size();
  std::fclose(file);
  if (!ok) return Status::Internal("checkpoint manifest write failed");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::Internal("checkpoint manifest rename failed");
  return Status::OK();
}

Result<CheckpointManifest> ReadCheckpointManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestBasename;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("checkpoint manifest missing: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  Bytes raw(static_cast<size_t>(size));
  const bool ok = std::fread(raw.data(), 1, raw.size(), file) == raw.size();
  std::fclose(file);
  if (!ok) return Status::Internal("checkpoint manifest read failed");
  FABRICPP_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                            CheckpointManifest::Decode(raw));
  // Chunk presence + size cross-check: a chunk that was never renamed into
  // place or got truncated fails here before any sstable parse.
  for (const CheckpointChunk& chunk : manifest.chunks) {
    std::error_code ec;
    const uint64_t bytes = fs::file_size(fs::path(dir) / chunk.file, ec);
    if (ec || bytes != chunk.bytes) {
      return Status::DataLoss("checkpoint chunk missing or resized: " +
                              chunk.file);
    }
  }
  return manifest;
}

void PruneCheckpoints(const std::string& root, uint32_t retain) {
  std::vector<uint64_t> heights = ListCheckpoints(root);
  std::error_code ec;
  // Abandoned tmp dirs (crash mid-write) are always reclaimed.
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && name.rfind(kDirPrefix, 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      fs::remove_all(entry.path(), ec);
    }
  }
  if (heights.size() <= retain) return;
  for (size_t i = 0; i + retain < heights.size(); ++i) {
    fs::remove_all(CheckpointDirName(root, heights[i]), ec);
  }
}

}  // namespace fabricpp::storage
