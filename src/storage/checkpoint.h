#ifndef FABRICPP_STORAGE_CHECKPOINT_H_
#define FABRICPP_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace fabricpp::storage {

/// One sorted, non-overlapping chunk of a state checkpoint (an ordinary
/// sstable file inside the checkpoint directory).
struct CheckpointChunk {
  std::string file;  ///< Basename within the checkpoint directory.
  uint64_t num_entries = 0;
  uint64_t bytes = 0;  ///< File size, cross-checked at load.
};

/// The CHECKPOINT manifest: a CRC-protected, versioned description of a
/// snapshot of the whole live key space at a block height. Chunks are
/// written in ascending key order (a streaming Db::Iterator pass), so a
/// restored checkpoint is a sorted non-overlapping run — it installs
/// directly as an L1 level.
struct CheckpointManifest {
  uint64_t height = 0;
  std::vector<CheckpointChunk> chunks;

  Bytes Encode() const;
  static Result<CheckpointManifest> Decode(const Bytes& raw);
};

/// `<root>/ckpt-<height>`. Written as `<dir>.tmp` then renamed, so a
/// directory without the `.tmp` suffix is complete-or-absent.
std::string CheckpointDirName(const std::string& root, uint64_t height);

/// Heights of all complete checkpoints under `root`, ascending. A missing
/// root directory is an empty list, not an error.
std::vector<uint64_t> ListCheckpoints(const std::string& root);

/// Writes `manifest` to `<dir>/CHECKPOINT` (tmp + rename within dir).
Status WriteCheckpointManifest(const std::string& dir,
                               const CheckpointManifest& manifest);

/// Reads and validates `<dir>/CHECKPOINT`.
Result<CheckpointManifest> ReadCheckpointManifest(const std::string& dir);

/// Deletes all checkpoints under `root` except the newest `retain` ones,
/// plus any abandoned `.tmp` directories.
void PruneCheckpoints(const std::string& root, uint32_t retain);

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_CHECKPOINT_H_
