#include "storage/crc32.h"

namespace fabricpp::storage {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = Table().entries[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Extend(0, data, size);
}

}  // namespace fabricpp::storage
