#ifndef FABRICPP_STORAGE_CRC32_H_
#define FABRICPP_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fabricpp::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Protects WAL records and
/// SSTable footers against torn writes and bit rot.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: `crc` is the running value (start with 0).
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t size);

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_CRC32_H_
