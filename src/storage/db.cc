#include "storage/db.h"

#include <filesystem>
#include <optional>

#include "common/bytes.h"
#include "common/strings.h"

namespace fabricpp::storage {

namespace fs = std::filesystem;

Db::Db(std::string dir, DbOptions options)
    : dir_(std::move(dir)),
      options_(options),
      memtable_(std::make_unique<SkipList<MemEntry>>()) {}

Db::~Db() { wal_.Close(); }

std::string Db::TableFileName(uint64_t number) const {
  return dir_ + "/" + StrFormat("%06llu.sst",
                                static_cast<unsigned long long>(number));
}
std::string Db::WalFileName() const { return dir_ + "/wal.log"; }
std::string Db::ManifestFileName() const { return dir_ + "/MANIFEST"; }

Result<std::unique_ptr<Db>> Db::Open(const std::string& dir,
                                     DbOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create db dir: " + dir);

  std::unique_ptr<Db> db(new Db(dir, options));
  FABRICPP_RETURN_IF_ERROR(db->LoadManifest());

  // Recover the memtable from the WAL (idempotent against a completed but
  // not yet truncated flush: replayed writes simply overwrite). Records
  // passed their CRC, so any decode failure is corruption and must fail
  // recovery — silently dropping a record mid-log would lose committed
  // writes while keeping later ones, exactly the torn-state bug the batch
  // path exists to prevent.
  const auto replayed =
      ReplayWal(db->WalFileName(), [&](const Bytes& rec) -> Status {
        if (!rec.empty() && rec[0] == kWalBatchTag) {
          // A block-level batch: applied whole (the record framing already
          // guarantees all-or-nothing; decode re-checks internal shape).
          FABRICPP_ASSIGN_OR_RETURN(const WriteBatch batch,
                                    WriteBatch::DecodeFromWal(rec));
          for (const WriteBatch::Entry& entry : batch.entries()) {
            db->InsertMem(entry.key, entry.type, entry.value);
          }
          return Status::OK();
        }
        ByteReader reader(rec);
        FABRICPP_ASSIGN_OR_RETURN(const uint8_t type, reader.GetU8());
        if (type > static_cast<uint8_t>(EntryType::kDelete)) {
          return Status::DataLoss("wal record with bad entry type");
        }
        FABRICPP_ASSIGN_OR_RETURN(const std::string key, reader.GetString());
        FABRICPP_ASSIGN_OR_RETURN(std::string value, reader.GetString());
        if (!reader.AtEnd()) {
          return Status::DataLoss("wal record with trailing bytes");
        }
        db->InsertMem(key, static_cast<EntryType>(type), std::move(value));
        return Status::OK();
      });
  FABRICPP_RETURN_IF_ERROR(replayed.status());
  db->wal_records_replayed_ = *replayed;

  FABRICPP_RETURN_IF_ERROR(db->wal_.Open(db->WalFileName()));
  return db;
}

Status Db::LoadManifest() {
  std::FILE* file = std::fopen(ManifestFileName().c_str(), "rb");
  if (file == nullptr) return Status::OK();  // Fresh database.
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    const uint64_t number = std::strtoull(line, nullptr, 10);
    if (number == 0) continue;
    auto table = Sstable::Open(TableFileName(number));
    if (!table.ok()) {
      std::fclose(file);
      return table.status();
    }
    tables_.push_back(std::move(table).value());
    table_numbers_.push_back(number);
    next_file_number_ = std::max(next_file_number_, number + 1);
  }
  std::fclose(file);
  return Status::OK();
}

Status Db::WriteManifest() {
  // Atomic replace: write a temp file, then rename over the manifest.
  const std::string tmp = ManifestFileName() + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::Internal("cannot write manifest");
  for (const uint64_t number : table_numbers_) {
    std::fprintf(file, "%llu\n", static_cast<unsigned long long>(number));
  }
  std::fclose(file);
  std::error_code ec;
  fs::rename(tmp, ManifestFileName(), ec);
  if (ec) return Status::Internal("manifest rename failed");
  return Status::OK();
}

Status Db::AppendToWal(const Bytes& record, bool sync) {
  FABRICPP_RETURN_IF_ERROR(wal_.Append(record, sync));
  ++wal_appends_;
  if (sync) ++wal_syncs_;
  return Status::OK();
}

void Db::InsertMem(std::string_view key, EntryType type, std::string value) {
  memtable_bytes_ += key.size() + value.size() + 16;
  memtable_->Insert(key, MemEntry{type, std::move(value)});
}

Status Db::Write(EntryType type, std::string_view key,
                 std::string_view value) {
  Bytes record;
  ByteWriter writer(&record);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutString(key);
  writer.PutString(value);
  FABRICPP_RETURN_IF_ERROR(AppendToWal(
      record, options_.sync_mode == WalSyncMode::kEveryWrite));
  InsertMem(key, type, std::string(value));
  return MaybeFlushAndCompact();
}

Status Db::ApplyBatch(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  // Group commit: the entire batch is one WAL record — one Append and (in
  // kBlock / kEveryWrite modes) one fsync, independent of batch size. Only
  // after the record is durable do the entries reach the memtable, so
  // recovery can never observe a prefix of the batch.
  FABRICPP_RETURN_IF_ERROR(AppendToWal(
      batch.EncodeForWal(), options_.sync_mode != WalSyncMode::kNone));
  for (const WriteBatch::Entry& entry : batch.entries()) {
    InsertMem(entry.key, entry.type, entry.value);
  }
  return MaybeFlushAndCompact();
}

Status Db::Put(std::string_view key, std::string_view value) {
  return Write(EntryType::kPut, key, value);
}

Status Db::Delete(std::string_view key) {
  return Write(EntryType::kDelete, key, "");
}

Result<std::string> Db::Get(std::string_view key) const {
  if (const MemEntry* entry = memtable_->Find(key)) {
    if (entry->type == EntryType::kDelete) {
      return Status::NotFound("deleted: " + std::string(key));
    }
    return entry->value;
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    const auto entry = it->Get(key);
    if (entry.has_value()) {
      if (entry->type == EntryType::kDelete) {
        return Status::NotFound("deleted: " + std::string(key));
      }
      return entry->value;
    }
  }
  return Status::NotFound("no such key: " + std::string(key));
}

Status Db::Flush() {
  if (memtable_->empty()) return Status::OK();
  SstableBuilder builder(options_.bloom_bits_per_key);
  for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
    builder.Add(it.key(), it.value().type, it.value().value);
  }
  const uint64_t number = next_file_number_++;
  FABRICPP_RETURN_IF_ERROR(builder.Finish(TableFileName(number)));
  FABRICPP_ASSIGN_OR_RETURN(Sstable table, Sstable::Open(TableFileName(number)));
  tables_.push_back(std::move(table));
  table_numbers_.push_back(number);
  FABRICPP_RETURN_IF_ERROR(WriteManifest());

  // Reset memtable + WAL. Crash before the WAL truncation replays writes
  // that are already in the new table — harmless (overwrites).
  memtable_ = std::make_unique<SkipList<MemEntry>>();
  memtable_bytes_ = 0;
  wal_.Close();
  std::error_code ec;
  fs::remove(WalFileName(), ec);
  return wal_.Open(WalFileName());
}

Status Db::CompactAll() {
  FABRICPP_RETURN_IF_ERROR(Flush());
  if (tables_.size() <= 1) return Status::OK();

  // Full merge through the lazy k-way iterator (newest source wins,
  // tombstones drop out): streaming memory — O(sources) iterator state
  // instead of materializing the whole key space in a std::map.
  SstableBuilder builder(options_.bloom_bits_per_key);
  for (auto it = NewIterator(); it.Valid(); it.Next()) {
    builder.Add(it.key(), EntryType::kPut, it.value());
  }
  const uint64_t number = next_file_number_++;
  FABRICPP_RETURN_IF_ERROR(builder.Finish(TableFileName(number)));
  FABRICPP_ASSIGN_OR_RETURN(Sstable table, Sstable::Open(TableFileName(number)));

  const std::vector<uint64_t> old_numbers = table_numbers_;
  tables_.clear();
  table_numbers_.clear();
  tables_.push_back(std::move(table));
  table_numbers_.push_back(number);
  FABRICPP_RETURN_IF_ERROR(WriteManifest());
  for (const uint64_t old_number : old_numbers) {
    std::error_code ec;
    fs::remove(TableFileName(old_number), ec);
  }
  return Status::OK();
}

Status Db::MaybeFlushAndCompact() {
  if (memtable_bytes_ >= options_.memtable_max_bytes) {
    FABRICPP_RETURN_IF_ERROR(Flush());
  }
  if (tables_.size() >= options_.compaction_trigger) {
    FABRICPP_RETURN_IF_ERROR(CompactAll());
  }
  return Status::OK();
}

void Db::ForEach(const std::function<void(const std::string&,
                                          const std::string&)>& fn) const {
  // Streaming k-way merge — same visit order as before (ascending keys,
  // live entries only) without materializing the database in a std::map.
  for (auto it = NewIterator(); it.Valid(); it.Next()) {
    fn(it.key(), it.value());
  }
}

// ---------------------------------------------------------------------------
// Db::Iterator — lazy k-way merge.
// ---------------------------------------------------------------------------

struct Db::Iterator::Source {
  /// Higher priority = newer data (memtable > newest table > ... > oldest).
  int priority = 0;
  std::optional<SkipList<MemEntry>::Iterator> mem;
  std::optional<Sstable::Iterator> table;

  bool Valid() const {
    return mem.has_value() ? mem->Valid() : table->Valid();
  }
  const std::string& key() const {
    return mem.has_value() ? mem->key() : table->entry().key;
  }
  EntryType type() const {
    return mem.has_value() ? mem->value().type : table->entry().type;
  }
  const std::string& value() const {
    return mem.has_value() ? mem->value().value : table->entry().value;
  }
  void Next() {
    if (mem.has_value()) {
      mem->Next();
    } else {
      table->Next();
    }
  }
};

Db::Iterator::Iterator(const Db* db) {
  int priority = 0;
  for (const Sstable& table : db->tables_) {  // Oldest first.
    auto source = std::make_shared<Source>();
    source->priority = priority++;
    source->table.emplace(table.NewIterator());
    sources_.push_back(std::move(source));
  }
  auto mem_source = std::make_shared<Source>();
  mem_source->priority = priority;
  mem_source->mem.emplace(db->memtable_->NewIterator());
  sources_.push_back(std::move(mem_source));
  Advance();
}

void Db::Iterator::Next() { Advance(); }

void Db::Iterator::Advance() {
  while (true) {
    // Smallest key among valid sources; newest source wins ties.
    Source* winner = nullptr;
    for (const auto& source : sources_) {
      if (!source->Valid()) continue;
      if (winner == nullptr || source->key() < winner->key() ||
          (source->key() == winner->key() &&
           source->priority > winner->priority)) {
        winner = source.get();
      }
    }
    if (winner == nullptr) {
      valid_ = false;
      return;
    }
    const std::string key = winner->key();
    const EntryType type = winner->type();
    const std::string value = winner->value();
    // Consume this key from every source that carries it.
    for (const auto& source : sources_) {
      while (source->Valid() && source->key() == key) source->Next();
    }
    if (type == EntryType::kDelete) continue;  // Shadowed by tombstone.
    key_ = key;
    value_ = value;
    valid_ = true;
    return;
  }
}

}  // namespace fabricpp::storage
