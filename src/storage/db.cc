#include "storage/db.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <unordered_set>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/strings.h"

namespace fabricpp::storage {

namespace fs = std::filesystem;

namespace {
constexpr char kManifestHeaderV2[] = "fabricpp-manifest-v2";
}  // namespace

Db::Db(std::string dir, DbOptions options)
    : dir_(std::move(dir)),
      options_(options),
      memtable_(std::make_unique<SkipList<MemEntry>>()) {
  if (options_.block_cache_bytes > 0) {
    cache_ = std::make_shared<BlockCache>(options_.block_cache_bytes);
  }
  levels_.resize(1);
}

Db::~Db() { wal_.Close(); }

std::string Db::TableFileName(uint64_t number) const {
  return dir_ + "/" + StrFormat("%06llu.sst",
                                static_cast<unsigned long long>(number));
}
std::string Db::WalFileName() const { return dir_ + "/wal.log"; }
std::string Db::ManifestFileName() const { return dir_ + "/MANIFEST"; }

Result<std::unique_ptr<Db>> Db::Open(const std::string& dir,
                                     DbOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create db dir: " + dir);

  std::unique_ptr<Db> db(new Db(dir, options));
  bool manifest_found = false;
  FABRICPP_RETURN_IF_ERROR(db->LoadManifest(&manifest_found));
  if (!manifest_found && !options.checkpoint_dir.empty()) {
    // Fast restart: no live manifest (fresh replica, or the table set was
    // lost) — install the newest valid checkpoint and let the WAL tail
    // replay on top of it.
    FABRICPP_RETURN_IF_ERROR(db->TryRecoverFromCheckpoint());
  }
  // Reclaim .sst files no manifest entry references: a crash between a
  // table write and the manifest update (or between the manifest update
  // and the old-file removes after compaction) leaks them forever
  // otherwise. Runs before WAL replay so a subsequent flush cannot reuse a
  // leaked number's file.
  db->RemoveOrphanTables();

  // Recover the memtable from the WAL (idempotent against a completed but
  // not yet truncated flush: replayed writes simply overwrite). Records
  // passed their CRC, so any decode failure is corruption and must fail
  // recovery — silently dropping a record mid-log would lose committed
  // writes while keeping later ones, exactly the torn-state bug the batch
  // path exists to prevent.
  const auto replayed =
      ReplayWal(db->WalFileName(), [&](const Bytes& rec) -> Status {
        if (!rec.empty() && rec[0] == kWalBatchTag) {
          // A block-level batch: applied whole (the record framing already
          // guarantees all-or-nothing; decode re-checks internal shape).
          FABRICPP_ASSIGN_OR_RETURN(const WriteBatch batch,
                                    WriteBatch::DecodeFromWal(rec));
          for (const WriteBatch::Entry& entry : batch.entries()) {
            db->InsertMem(entry.key, entry.type, entry.value);
          }
          return Status::OK();
        }
        ByteReader reader(rec);
        FABRICPP_ASSIGN_OR_RETURN(const uint8_t type, reader.GetU8());
        if (type > static_cast<uint8_t>(EntryType::kDelete)) {
          return Status::DataLoss("wal record with bad entry type");
        }
        FABRICPP_ASSIGN_OR_RETURN(const std::string key, reader.GetString());
        FABRICPP_ASSIGN_OR_RETURN(std::string value, reader.GetString());
        if (!reader.AtEnd()) {
          return Status::DataLoss("wal record with trailing bytes");
        }
        db->InsertMem(key, static_cast<EntryType>(type), std::move(value));
        return Status::OK();
      });
  FABRICPP_RETURN_IF_ERROR(replayed.status());
  db->wal_records_replayed_ = *replayed;

  FABRICPP_RETURN_IF_ERROR(db->wal_.Open(db->WalFileName()));
  return db;
}

Status Db::LoadManifest(bool* found) {
  *found = false;
  std::FILE* file = std::fopen(ManifestFileName().c_str(), "rb");
  if (file == nullptr) return Status::OK();  // Fresh database.
  *found = true;
  char line[256];
  bool v2 = false;
  bool first = true;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (first) {
      first = false;
      if (std::strncmp(line, kManifestHeaderV2,
                       std::strlen(kManifestHeaderV2)) == 0) {
        v2 = true;
        continue;
      }
    }
    uint64_t level = 0;
    uint64_t number = 0;
    if (v2) {
      unsigned long long a = 0, b = 0;
      if (std::sscanf(line, "next %llu", &a) == 1) {
        next_file_number_ = std::max<uint64_t>(next_file_number_, a);
        continue;
      }
      if (std::sscanf(line, "file %llu %llu", &a, &b) != 2) continue;
      level = a;
      number = b;
      if (level > 64) {
        std::fclose(file);
        return Status::Internal("manifest level out of range");
      }
    } else {
      // Legacy (v1) manifest: one table number per line, oldest first —
      // loaded as L0 (every pre-leveled table may overlap any other).
      number = std::strtoull(line, nullptr, 10);
      if (number == 0) continue;
    }
    auto table = Sstable::Open(TableFileName(number), cache_);
    if (!table.ok()) {
      std::fclose(file);
      return table.status();
    }
    EnsureLevel(level);
    levels_[level].push_back(LevelFile{number, std::move(table).value()});
    next_file_number_ = std::max(next_file_number_, number + 1);
  }
  std::fclose(file);
  return Status::OK();
}

Status Db::WriteManifest() {
  // Atomic replace: write a temp file, then rename over the manifest.
  const std::string tmp = ManifestFileName() + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::Internal("cannot write manifest");
  std::fprintf(file, "%s\n", kManifestHeaderV2);
  std::fprintf(file, "next %llu\n",
               static_cast<unsigned long long>(next_file_number_));
  for (size_t level = 0; level < levels_.size(); ++level) {
    for (const LevelFile& f : levels_[level]) {
      std::fprintf(file, "file %zu %llu\n", level,
                   static_cast<unsigned long long>(f.number));
    }
  }
  std::fclose(file);
  std::error_code ec;
  fs::rename(tmp, ManifestFileName(), ec);
  if (ec) return Status::Internal("manifest rename failed");
  return Status::OK();
}

void Db::RemoveOrphanTables() {
  std::unordered_set<uint64_t> live;
  for (const auto& level : levels_) {
    for (const LevelFile& f : level) live.insert(f.number);
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.substr(name.size() - 4) != ".sst") continue;
    const std::string digits = name.substr(0, name.size() - 4);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    const uint64_t number = std::strtoull(digits.c_str(), nullptr, 10);
    if (live.count(number) != 0) continue;
    std::error_code rm_ec;
    fs::remove(entry.path(), rm_ec);
    if (!rm_ec) {
      ++stats_.orphaned_tables_removed;
      FABRICPP_LOG(Info) << "storage: reclaimed orphaned table " << name;
    }
  }
}

Status Db::TryRecoverFromCheckpoint() {
  const std::vector<uint64_t> heights =
      ListCheckpoints(options_.checkpoint_dir);
  for (auto it = heights.rbegin(); it != heights.rend(); ++it) {
    const std::string ckpt_dir =
        CheckpointDirName(options_.checkpoint_dir, *it);
    const auto manifest = ReadCheckpointManifest(ckpt_dir);
    if (!manifest.ok()) {
      FABRICPP_LOG(Warn) << "storage: skipping checkpoint " << ckpt_dir
                         << ": " << manifest.status().ToString();
      continue;
    }
    // Chunks are copied into the live dir and validated there (Sstable::Open
    // re-checks the CRC), so later compactions own the copies and the
    // checkpoint stays immutable. A failed chunk abandons this checkpoint;
    // the copies become orphans and RemoveOrphanTables reclaims them.
    std::vector<LevelFile> files;
    bool ok = true;
    for (const CheckpointChunk& chunk : manifest->chunks) {
      const uint64_t number = next_file_number_++;
      std::error_code ec;
      fs::copy_file(fs::path(ckpt_dir) / chunk.file, TableFileName(number),
                    fs::copy_options::overwrite_existing, ec);
      if (ec) {
        ok = false;
        break;
      }
      auto table = Sstable::Open(TableFileName(number), cache_);
      if (!table.ok() || table->num_entries() != chunk.num_entries) {
        ok = false;
        break;
      }
      files.push_back(LevelFile{number, std::move(table).value()});
    }
    if (!ok) {
      FABRICPP_LOG(Warn) << "storage: checkpoint " << ckpt_dir
                         << " failed validation; trying an older one";
      continue;
    }
    // Chunks were written by one ascending-key iterator pass: a sorted,
    // non-overlapping run — exactly an L1 level.
    EnsureLevel(1);
    levels_[1] = std::move(files);
    stats_.recovered_checkpoint_height = manifest->height;
    FABRICPP_RETURN_IF_ERROR(WriteManifest());
    FABRICPP_LOG(Info) << "storage: recovered from checkpoint at height "
                       << manifest->height;
    return Status::OK();
  }
  return Status::OK();  // No usable checkpoint: plain WAL recovery.
}

Status Db::AppendToWal(const Bytes& record, bool sync) {
  FABRICPP_RETURN_IF_ERROR(wal_.Append(record, sync));
  ++wal_appends_;
  if (sync) ++wal_syncs_;
  return Status::OK();
}

void Db::InsertMem(std::string_view key, EntryType type, std::string value) {
  memtable_bytes_ += key.size() + value.size() + 16;
  memtable_->Insert(key, MemEntry{type, std::move(value)});
}

Status Db::Write(EntryType type, std::string_view key,
                 std::string_view value) {
  Bytes record;
  ByteWriter writer(&record);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutString(key);
  writer.PutString(value);
  FABRICPP_RETURN_IF_ERROR(AppendToWal(
      record, options_.sync_mode == WalSyncMode::kEveryWrite));
  InsertMem(key, type, std::string(value));
  return MaybeFlushAndCompact();
}

Status Db::ApplyBatch(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  // Group commit: the entire batch is one WAL record — one Append and (in
  // kBlock / kEveryWrite modes) one fsync, independent of batch size. Only
  // after the record is durable do the entries reach the memtable, so
  // recovery can never observe a prefix of the batch.
  FABRICPP_RETURN_IF_ERROR(AppendToWal(
      batch.EncodeForWal(), options_.sync_mode != WalSyncMode::kNone));
  for (const WriteBatch::Entry& entry : batch.entries()) {
    InsertMem(entry.key, entry.type, entry.value);
  }
  return MaybeFlushAndCompact();
}

Status Db::Put(std::string_view key, std::string_view value) {
  return Write(EntryType::kPut, key, value);
}

Status Db::Delete(std::string_view key) {
  return Write(EntryType::kDelete, key, "");
}

Result<std::string> Db::Get(std::string_view key) const {
  if (const MemEntry* entry = memtable_->Find(key)) {
    if (entry->type == EntryType::kDelete) {
      return Status::NotFound("deleted: " + std::string(key));
    }
    return entry->value;
  }
  // L0: files may overlap, newest shadows.
  const auto& l0 = levels_[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    const auto entry = it->table.Get(key);
    if (entry.has_value()) {
      if (entry->type == EntryType::kDelete) {
        return Status::NotFound("deleted: " + std::string(key));
      }
      return entry->value;
    }
  }
  // Deeper levels: non-overlapping sorted runs — at most one candidate file
  // per level (greatest smallest_key <= key).
  for (size_t level = 1; level < levels_.size(); ++level) {
    const auto& files = levels_[level];
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (files[mid].table.smallest_key() <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) continue;
    const Sstable& table = files[lo - 1].table;
    if (key > table.largest_key()) continue;
    const auto entry = table.Get(key);
    if (entry.has_value()) {
      if (entry->type == EntryType::kDelete) {
        return Status::NotFound("deleted: " + std::string(key));
      }
      return entry->value;
    }
  }
  return Status::NotFound("no such key: " + std::string(key));
}

Status Db::Flush() {
  if (memtable_->empty()) return Status::OK();
  SstableBuilder builder(options_.bloom_bits_per_key);
  for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
    builder.Add(it.key(), it.value().type, it.value().value);
  }
  const uint64_t number = next_file_number_++;
  FABRICPP_RETURN_IF_ERROR(builder.Finish(TableFileName(number)));
  FABRICPP_ASSIGN_OR_RETURN(Sstable table,
                            Sstable::Open(TableFileName(number), cache_));
  levels_[0].push_back(LevelFile{number, std::move(table)});
  ++stats_.flushes;
  FABRICPP_RETURN_IF_ERROR(WriteManifest());

  // Reset memtable + WAL. Crash before the WAL truncation replays writes
  // that are already in the new table — harmless (overwrites).
  memtable_ = std::make_unique<SkipList<MemEntry>>();
  memtable_bytes_ = 0;
  wal_.Close();
  std::error_code ec;
  fs::remove(WalFileName(), ec);
  return wal_.Open(WalFileName());
}

void Db::EnsureLevel(size_t level) {
  if (levels_.size() <= level) levels_.resize(level + 1);
}

void Db::DropEmptyDeepLevels() {
  while (levels_.size() > 1 && levels_.back().empty()) levels_.pop_back();
}

uint64_t Db::level_bytes(size_t level) const {
  if (level >= levels_.size()) return 0;
  uint64_t total = 0;
  for (const LevelFile& f : levels_[level]) total += f.table.data_bytes();
  return total;
}

size_t Db::num_sstables() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

bool Db::AnyOverlapAtOrBelow(size_t level, const std::string& min_key,
                             const std::string& max_key) const {
  for (size_t l = level; l < levels_.size(); ++l) {
    for (const LevelFile& f : levels_[l]) {
      if (f.table.largest_key() < min_key || f.table.smallest_key() > max_key) {
        continue;
      }
      return true;
    }
  }
  return false;
}

Status Db::MergeTables(const std::vector<const Sstable*>& inputs,
                       bool drop_tombstones, size_t max_output_bytes,
                       std::vector<LevelFile>* outputs) {
  std::vector<Sstable::Iterator> iters;
  iters.reserve(inputs.size());
  for (const Sstable* table : inputs) iters.push_back(table->NewIterator());

  SstableBuilder builder(options_.bloom_bits_per_key);
  size_t chunk_bytes = 0;
  const auto finish_chunk = [&]() -> Status {
    if (builder.num_entries() == 0) return Status::OK();
    const uint64_t number = next_file_number_++;
    FABRICPP_RETURN_IF_ERROR(builder.Finish(TableFileName(number)));
    FABRICPP_ASSIGN_OR_RETURN(Sstable table,
                              Sstable::Open(TableFileName(number), cache_));
    stats_.compaction_bytes_written += table.file_bytes();
    outputs->push_back(LevelFile{number, std::move(table)});
    chunk_bytes = 0;
    return Status::OK();
  };

  while (true) {
    // Smallest key among valid inputs; the later (newer) input wins ties.
    int winner = -1;
    for (int i = 0; i < static_cast<int>(iters.size()); ++i) {
      if (!iters[i].Valid()) continue;
      if (winner < 0 || iters[i].entry().key <= iters[winner].entry().key) {
        winner = i;
      }
    }
    if (winner < 0) break;
    const TableEntry entry = iters[winner].entry();
    for (auto& it : iters) {
      while (it.Valid() && it.entry().key == entry.key) it.Next();
    }
    if (drop_tombstones && entry.type == EntryType::kDelete) continue;
    builder.Add(entry.key, entry.type, entry.value);
    chunk_bytes += entry.key.size() + entry.value.size() + 8;
    if (chunk_bytes >= max_output_bytes) {
      FABRICPP_RETURN_IF_ERROR(finish_chunk());
    }
  }
  return finish_chunk();
}

Status Db::CompactLevel(size_t level) {
  EnsureLevel(level + 1);

  // Victims: all of L0 (its files overlap each other), or the
  // oldest-numbered file of a deeper level (deterministic pick).
  std::vector<LevelFile> victims;
  if (level == 0) {
    victims = std::move(levels_[0]);
    levels_[0].clear();
  } else {
    size_t vi = 0;
    for (size_t i = 1; i < levels_[level].size(); ++i) {
      if (levels_[level][i].number < levels_[level][vi].number) vi = i;
    }
    victims.push_back(std::move(levels_[level][vi]));
    levels_[level].erase(levels_[level].begin() +
                         static_cast<ptrdiff_t>(vi));
  }
  if (victims.empty()) return Status::OK();

  std::string min_key = victims[0].table.smallest_key();
  std::string max_key = victims[0].table.largest_key();
  for (const LevelFile& f : victims) {
    min_key = std::min(min_key, f.table.smallest_key());
    max_key = std::max(max_key, f.table.largest_key());
  }

  // Partition level+1 into the files the victims overlap and the rest.
  std::vector<LevelFile> overlap;
  std::vector<LevelFile> keep;
  for (LevelFile& f : levels_[level + 1]) {
    if (f.table.largest_key() < min_key || f.table.smallest_key() > max_key) {
      keep.push_back(std::move(f));
    } else {
      overlap.push_back(std::move(f));
    }
  }

  const auto install = [&](std::vector<LevelFile> files) {
    for (LevelFile& f : files) keep.push_back(std::move(f));
    std::sort(keep.begin(), keep.end(),
              [](const LevelFile& a, const LevelFile& b) {
                return a.table.smallest_key() < b.table.smallest_key();
              });
    levels_[level + 1] = std::move(keep);
    ++stats_.compactions;
    DropEmptyDeepLevels();
  };

  // Trivial move: a single victim with nothing to merge against just
  // changes level (no rewrite, no write amplification).
  if (victims.size() == 1 && overlap.empty()) {
    install(std::move(victims));
    return WriteManifest();
  }

  // A tombstone may be dropped only when no level below the output can
  // still hold an older value for its key range.
  const bool drop_tombstones =
      !AnyOverlapAtOrBelow(level + 2, min_key, max_key);

  // Inputs oldest-first: the deeper (older) overlap files, then the victims
  // (L0 is kept oldest-first, so later index = newer there too).
  std::vector<const Sstable*> inputs;
  inputs.reserve(overlap.size() + victims.size());
  for (const LevelFile& f : overlap) inputs.push_back(&f.table);
  for (const LevelFile& f : victims) inputs.push_back(&f.table);

  std::vector<LevelFile> outputs;
  FABRICPP_RETURN_IF_ERROR(MergeTables(inputs, drop_tombstones,
                                       options_.target_file_bytes, &outputs));
  install(std::move(outputs));
  FABRICPP_RETURN_IF_ERROR(WriteManifest());

  // Inputs die only after the manifest references the outputs; a crash in
  // the window leaves orphans that Open reclaims.
  for (const LevelFile& f : victims) {
    std::error_code ec;
    fs::remove(TableFileName(f.number), ec);
  }
  for (const LevelFile& f : overlap) {
    std::error_code ec;
    fs::remove(TableFileName(f.number), ec);
  }
  return Status::OK();
}

Status Db::CompactAll() {
  FABRICPP_RETURN_IF_ERROR(Flush());
  if (num_sstables() <= 1) return Status::OK();

  // Full merge through the chunk-less k-way path (newest input wins,
  // tombstones drop out): streaming memory — O(inputs) iterator state
  // instead of materializing the whole key space.
  std::vector<const Sstable*> inputs;
  std::vector<uint64_t> old_numbers;
  for (size_t l = levels_.size(); l-- > 1;) {  // Deepest (oldest) first.
    for (const LevelFile& f : levels_[l]) {
      inputs.push_back(&f.table);
      old_numbers.push_back(f.number);
    }
  }
  for (const LevelFile& f : levels_[0]) {  // Oldest first; newest last.
    inputs.push_back(&f.table);
    old_numbers.push_back(f.number);
  }

  std::vector<LevelFile> outputs;
  FABRICPP_RETURN_IF_ERROR(MergeTables(
      inputs, /*drop_tombstones=*/true,
      /*max_output_bytes=*/std::numeric_limits<size_t>::max(), &outputs));
  levels_.clear();
  levels_.resize(2);
  levels_[1] = std::move(outputs);
  ++stats_.compactions;
  DropEmptyDeepLevels();
  FABRICPP_RETURN_IF_ERROR(WriteManifest());
  for (const uint64_t old_number : old_numbers) {
    std::error_code ec;
    fs::remove(TableFileName(old_number), ec);
  }
  return Status::OK();
}

Status Db::MaybeFlushAndCompact() {
  if (memtable_bytes_ >= options_.memtable_max_bytes) {
    FABRICPP_RETURN_IF_ERROR(Flush());
  }
  return MaybeCompact();
}

Status Db::MaybeCompact() {
  // L0 is bounded by file count (every L0 file widens every read), deeper
  // levels by a geometric byte budget.
  while (levels_[0].size() >= options_.compaction_trigger) {
    FABRICPP_RETURN_IF_ERROR(CompactLevel(0));
  }
  const size_t ratio = std::max<size_t>(1, options_.level_size_ratio);
  uint64_t max_bytes = options_.level_base_bytes;
  for (size_t level = 1; level < levels_.size(); ++level) {
    while (level < levels_.size() && level_bytes(level) > max_bytes) {
      FABRICPP_RETURN_IF_ERROR(CompactLevel(level));
    }
    if (max_bytes > (uint64_t{1} << 60) / ratio) break;  // No deeper budget.
    max_bytes *= ratio;
  }
  return Status::OK();
}

Status Db::WriteCheckpoint(uint64_t height) {
  if (options_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "checkpoint_dir not configured (DbOptions::checkpoint_dir)");
  }
  // Flush first: afterwards the WAL is empty, so every WAL record written
  // later is exactly the post-checkpoint tail recovery must replay.
  FABRICPP_RETURN_IF_ERROR(Flush());
  std::error_code ec;
  fs::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint dir: " +
                            options_.checkpoint_dir);
  }
  const std::string final_dir =
      CheckpointDirName(options_.checkpoint_dir, height);
  const std::string tmp_dir = final_dir + ".tmp";
  fs::remove_all(tmp_dir, ec);
  ec.clear();
  fs::create_directories(tmp_dir, ec);
  if (ec) return Status::Internal("cannot create checkpoint tmp dir");

  // One streaming ascending-key pass over the live state (tombstones and
  // shadowed versions drop out) into size-bounded chunks.
  CheckpointManifest manifest;
  manifest.height = height;
  SstableBuilder builder(options_.bloom_bits_per_key);
  uint32_t chunk_index = 0;
  size_t chunk_bytes = 0;
  const auto finish_chunk = [&]() -> Status {
    if (builder.num_entries() == 0) return Status::OK();
    CheckpointChunk chunk;
    chunk.file = StrFormat("chunk-%06u.sst", chunk_index++);
    chunk.num_entries = builder.num_entries();
    const std::string path = tmp_dir + "/" + chunk.file;
    FABRICPP_RETURN_IF_ERROR(builder.Finish(path));
    std::error_code size_ec;
    chunk.bytes = fs::file_size(path, size_ec);
    if (size_ec) return Status::Internal("checkpoint chunk stat failed");
    manifest.chunks.push_back(std::move(chunk));
    chunk_bytes = 0;
    return Status::OK();
  };
  for (auto it = NewIterator(); it.Valid(); it.Next()) {
    builder.Add(it.key(), EntryType::kPut, it.value());
    chunk_bytes += it.key().size() + it.value().size() + 8;
    if (chunk_bytes >= options_.target_file_bytes) {
      FABRICPP_RETURN_IF_ERROR(finish_chunk());
    }
  }
  FABRICPP_RETURN_IF_ERROR(finish_chunk());
  FABRICPP_RETURN_IF_ERROR(WriteCheckpointManifest(tmp_dir, manifest));

  // Atomic publish: the directory rename makes the checkpoint
  // complete-or-absent; a crash anywhere above leaves only a .tmp dir that
  // PruneCheckpoints reclaims.
  fs::remove_all(final_dir, ec);
  ec.clear();
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) return Status::Internal("checkpoint rename failed");
  ++stats_.checkpoints_written;
  PruneCheckpoints(options_.checkpoint_dir, options_.checkpoint_retain);
  return Status::OK();
}

void Db::ForEach(const std::function<void(const std::string&,
                                          const std::string&)>& fn) const {
  // Streaming k-way merge — same visit order as before (ascending keys,
  // live entries only) without materializing the database in a std::map.
  for (auto it = NewIterator(); it.Valid(); it.Next()) {
    fn(it.key(), it.value());
  }
}

// ---------------------------------------------------------------------------
// Db::Iterator — lazy k-way merge.
// ---------------------------------------------------------------------------

struct Db::Iterator::Source {
  /// Higher priority = newer data (memtable > L0 newest..oldest > L1 > ...).
  int priority = 0;
  std::optional<SkipList<MemEntry>::Iterator> mem;
  std::optional<Sstable::Iterator> table;

  bool Valid() const {
    return mem.has_value() ? mem->Valid() : table->Valid();
  }
  const std::string& key() const {
    return mem.has_value() ? mem->key() : table->entry().key;
  }
  EntryType type() const {
    return mem.has_value() ? mem->value().type : table->entry().type;
  }
  const std::string& value() const {
    return mem.has_value() ? mem->value().value : table->entry().value;
  }
  void Next() {
    if (mem.has_value()) {
      mem->Next();
    } else {
      table->Next();
    }
  }
};

Db::Iterator::Iterator(const Db* db) {
  // Priorities ascend from the deepest (oldest) level up through L0 to the
  // memtable. Files within a level >= 1 never overlap, so their relative
  // priority is irrelevant; L0 is oldest-first, so later files rank higher.
  int priority = 0;
  const auto add_table = [&](const Sstable& table) {
    auto source = std::make_shared<Source>();
    source->priority = priority++;
    source->table.emplace(table.NewIterator());
    sources_.push_back(std::move(source));
  };
  for (size_t level = db->levels_.size(); level-- > 1;) {
    for (const LevelFile& f : db->levels_[level]) add_table(f.table);
  }
  for (const LevelFile& f : db->levels_[0]) add_table(f.table);
  auto mem_source = std::make_shared<Source>();
  mem_source->priority = priority;
  mem_source->mem.emplace(db->memtable_->NewIterator());
  sources_.push_back(std::move(mem_source));
  Advance();
}

void Db::Iterator::Next() { Advance(); }

void Db::Iterator::Advance() {
  while (true) {
    // Smallest key among valid sources; newest source wins ties.
    Source* winner = nullptr;
    for (const auto& source : sources_) {
      if (!source->Valid()) continue;
      if (winner == nullptr || source->key() < winner->key() ||
          (source->key() == winner->key() &&
           source->priority > winner->priority)) {
        winner = source.get();
      }
    }
    if (winner == nullptr) {
      valid_ = false;
      return;
    }
    const std::string key = winner->key();
    const EntryType type = winner->type();
    const std::string value = winner->value();
    // Consume this key from every source that carries it.
    for (const auto& source : sources_) {
      while (source->Valid() && source->key() == key) source->Next();
    }
    if (type == EntryType::kDelete) continue;  // Shadowed by tombstone.
    key_ = key;
    value_ = value;
    valid_ = true;
    return;
  }
}

}  // namespace fabricpp::storage
