#ifndef FABRICPP_STORAGE_DB_H_
#define FABRICPP_STORAGE_DB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace fabricpp::storage {

/// Tuning knobs of the storage engine.
struct DbOptions {
  /// Memtable size that triggers a flush to an SSTable.
  size_t memtable_max_bytes = 4 << 20;
  uint32_t bloom_bits_per_key = 10;
  /// Number of live SSTables that triggers a full merge compaction.
  size_t compaction_trigger = 8;
  /// WAL durability (see WalSyncMode): when to fsync appends. kBlock is
  /// the group-commit sweet spot — one fsync per ApplyBatch, none for
  /// individual writes.
  WalSyncMode sync_mode = WalSyncMode::kNone;
};

/// A small LSM-tree key-value store — the persistent substrate standing in
/// for the LevelDB instance behind Fabric's state database (paper §6.1:
/// "Fabric is set up to use LevelDB as the current state database").
///
/// Architecture: WAL -> memtable (skip list) -> immutable SSTables with
/// sparse indexes and Bloom filters -> full-merge compaction. Writes are
/// logged before being applied; recovery replays the WAL and reloads the
/// manifest. Single-threaded by design (the simulation substrate is
/// single-threaded; see DESIGN.md §5).
class Db {
 public:
  /// Opens (or creates) a database in `dir`, replaying any WAL left behind.
  static Result<std::unique_ptr<Db>> Open(const std::string& dir,
                                          DbOptions options = {});

  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Applies all writes of `batch` atomically: the whole batch is one
  /// framed WAL record — a single Append, at most one fsync (group
  /// commit) — and recovery replays it all-or-nothing, so a crash can
  /// never surface a prefix of the batch. Entries land in the memtable in
  /// batch order (later writes to a key win).
  Status ApplyBatch(const WriteBatch& batch);

  /// Point lookup: memtable first, then SSTables newest-to-oldest.
  Result<std::string> Get(std::string_view key) const;

  /// Forces the memtable into an SSTable (also rotates the WAL).
  Status Flush();

  /// Merges every live SSTable into one, dropping shadowed values and
  /// tombstones.
  Status CompactAll();

  /// Visits all live (non-deleted) entries in ascending key order.
  void ForEach(const std::function<void(const std::string&,
                                        const std::string&)>& fn) const;

  /// Streaming merged iterator over all live entries, ascending by key —
  /// a lazy k-way merge of the memtable and every SSTable, newest source
  /// winning per key, tombstones skipped. O(log sources) per step; unlike
  /// ForEach it does not materialize the key space.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    void Next();

   private:
    friend class Db;
    struct Source;
    explicit Iterator(const Db* db);
    void Advance();

    std::vector<std::shared_ptr<Source>> sources_;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };
  /// The iterator is a point-in-time view; mutating the Db while iterating
  /// is undefined.
  Iterator NewIterator() const { return Iterator(this); }

  // --- Introspection (tests, benches) ---
  size_t num_sstables() const { return tables_.size(); }
  size_t memtable_entries() const { return memtable_->size(); }
  size_t memtable_bytes() const { return memtable_bytes_; }
  uint64_t wal_records_replayed() const { return wal_records_replayed_; }
  /// Lifetime WAL traffic of this Db instance — what group commit is
  /// measured by: a block-sized ApplyBatch bumps each counter once where
  /// the per-key path bumps them O(keys) times.
  uint64_t wal_appends() const { return wal_appends_; }
  uint64_t wal_syncs() const { return wal_syncs_; }

 private:
  struct MemEntry {
    EntryType type = EntryType::kPut;
    std::string value;
  };

  explicit Db(std::string dir, DbOptions options);

  Status Write(EntryType type, std::string_view key, std::string_view value);
  Status AppendToWal(const Bytes& record, bool sync);
  void InsertMem(std::string_view key, EntryType type, std::string value);
  Status MaybeFlushAndCompact();
  Status LoadManifest();
  Status WriteManifest();
  std::string TableFileName(uint64_t number) const;
  std::string WalFileName() const;
  std::string ManifestFileName() const;

  std::string dir_;
  DbOptions options_;
  std::unique_ptr<SkipList<MemEntry>> memtable_;
  size_t memtable_bytes_ = 0;
  WalWriter wal_;
  std::vector<Sstable> tables_;  // Oldest first.
  std::vector<uint64_t> table_numbers_;
  uint64_t next_file_number_ = 1;
  uint64_t wal_records_replayed_ = 0;
  uint64_t wal_appends_ = 0;
  uint64_t wal_syncs_ = 0;
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_DB_H_
