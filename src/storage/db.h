#ifndef FABRICPP_STORAGE_DB_H_
#define FABRICPP_STORAGE_DB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/block_cache.h"
#include "storage/checkpoint.h"
#include "storage/skiplist.h"
#include "storage/sstable.h"
#include "storage/wal.h"
#include "storage/write_batch.h"

namespace fabricpp::storage {

/// Tuning knobs of the storage engine.
struct DbOptions {
  /// Memtable size that triggers a flush to an L0 SSTable.
  size_t memtable_max_bytes = 4 << 20;
  uint32_t bloom_bits_per_key = 10;
  /// Number of L0 flush files that triggers an L0 -> L1 merge (L0 files
  /// overlap each other, so every L0 file joins the merge).
  size_t compaction_trigger = 8;
  /// Target total data bytes of L1; level n may hold
  /// level_base_bytes * level_size_ratio^(n-1) before it spills into n+1.
  size_t level_base_bytes = 8 << 20;
  size_t level_size_ratio = 8;
  /// Compaction and checkpoint outputs are chunked into files of roughly
  /// this many data bytes, so one merge never rewrites a whole level.
  size_t target_file_bytes = 2 << 20;
  /// WAL durability (see WalSyncMode): when to fsync appends. kBlock is
  /// the group-commit sweet spot — one fsync per ApplyBatch, none for
  /// individual writes.
  WalSyncMode sync_mode = WalSyncMode::kNone;
  /// Capacity of the sstable data-block cache (sharded LRU); 0 disables
  /// caching and every point read goes to disk.
  size_t block_cache_bytes = 4 << 20;
  /// Directory holding state checkpoints. Empty = checkpoints disabled:
  /// WriteCheckpoint fails and Open never looks for snapshots.
  std::string checkpoint_dir;
  /// Consumed by PersistentStateDb: write a checkpoint every N committed
  /// blocks (0 = never). Validated by FabricConfig.
  uint64_t checkpoint_interval_blocks = 0;
  /// Complete checkpoints retained after a new one is written.
  uint32_t checkpoint_retain = 2;
};

/// Lifetime counters of one Db instance (not persisted).
struct DbStats {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  /// Bytes written by compaction outputs (write amplification numerator).
  uint64_t compaction_bytes_written = 0;
  /// Unreferenced .sst files reclaimed at Open (crash between a table write
  /// and the manifest update, or between the manifest update and the old
  /// file removes).
  uint64_t orphaned_tables_removed = 0;
  uint64_t checkpoints_written = 0;
  /// Height of the checkpoint recovery restored from; 0 when recovery used
  /// the live manifest (or found nothing).
  uint64_t recovered_checkpoint_height = 0;
};

/// A small LSM-tree key-value store — the persistent substrate standing in
/// for the LevelDB instance behind Fabric's state database (paper §6.1:
/// "Fabric is set up to use LevelDB as the current state database").
///
/// Architecture: WAL -> memtable (skip list) -> leveled SSTables with
/// sparse indexes, Bloom filters and a shared block cache. L0 holds raw
/// memtable flushes (files may overlap); levels >= 1 are sorted runs of
/// non-overlapping files. Compaction merges all of L0 (or one file of a
/// deeper level) into the overlapping files one level down, triggered by
/// L0 file count and per-level size budgets. Writes are logged before
/// being applied; recovery loads the manifest — or, when the manifest is
/// gone but a checkpoint exists, the newest valid checkpoint — and replays
/// the WAL tail. See DESIGN.md §14.
class Db {
 public:
  /// Opens (or creates) a database in `dir`, replaying any WAL left behind.
  /// When no manifest exists but `options.checkpoint_dir` holds a complete
  /// checkpoint, the newest valid one is installed first (stats() reports
  /// its height) and the WAL replays on top. Unreferenced table files from
  /// crashed flush/compaction windows are garbage-collected.
  static Result<std::unique_ptr<Db>> Open(const std::string& dir,
                                          DbOptions options = {});

  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Applies all writes of `batch` atomically: the whole batch is one
  /// framed WAL record — a single Append, at most one fsync (group
  /// commit) — and recovery replays it all-or-nothing, so a crash can
  /// never surface a prefix of the batch. Entries land in the memtable in
  /// batch order (later writes to a key win).
  Status ApplyBatch(const WriteBatch& batch);

  /// Point lookup: memtable, then L0 newest-to-oldest, then one candidate
  /// file per deeper level (levels >= 1 are non-overlapping).
  Result<std::string> Get(std::string_view key) const;

  /// Forces the memtable into an L0 SSTable (also rotates the WAL).
  Status Flush();

  /// Merges every live SSTable into one L1 run, dropping shadowed values
  /// and tombstones. Kept for tests/tools; the online path compacts
  /// incrementally (MaybeFlushAndCompact).
  Status CompactAll();

  /// Snapshots the whole live key space at block `height` into
  /// `options.checkpoint_dir` via a streaming iterator pass: flushes the
  /// memtable (so the WAL that follows is exactly the post-checkpoint
  /// tail), then writes sorted chunk files plus a CRC'd CHECKPOINT manifest
  /// into a tmp directory renamed into place (complete-or-absent). Older
  /// checkpoints beyond `checkpoint_retain` are pruned.
  Status WriteCheckpoint(uint64_t height);

  /// Visits all live (non-deleted) entries in ascending key order.
  void ForEach(const std::function<void(const std::string&,
                                        const std::string&)>& fn) const;

  /// Streaming merged iterator over all live entries, ascending by key —
  /// a lazy k-way merge of the memtable and every SSTable, newest source
  /// winning per key, tombstones skipped. O(log sources) per step; unlike
  /// ForEach it does not materialize the key space.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    void Next();

   private:
    friend class Db;
    struct Source;
    explicit Iterator(const Db* db);
    void Advance();

    std::vector<std::shared_ptr<Source>> sources_;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };
  /// The iterator is a point-in-time view; mutating the Db while iterating
  /// is undefined.
  Iterator NewIterator() const { return Iterator(this); }

  // --- Introspection (tests, benches) ---
  size_t num_sstables() const;
  size_t num_levels() const { return levels_.size(); }
  size_t level_num_sstables(size_t level) const {
    return level < levels_.size() ? levels_[level].size() : 0;
  }
  uint64_t level_bytes(size_t level) const;
  size_t memtable_entries() const { return memtable_->size(); }
  size_t memtable_bytes() const { return memtable_bytes_; }
  uint64_t wal_records_replayed() const { return wal_records_replayed_; }
  /// Lifetime WAL traffic of this Db instance — what group commit is
  /// measured by: a block-sized ApplyBatch bumps each counter once where
  /// the per-key path bumps them O(keys) times.
  uint64_t wal_appends() const { return wal_appends_; }
  uint64_t wal_syncs() const { return wal_syncs_; }
  const DbStats& stats() const { return stats_; }
  const DbOptions& options() const { return options_; }
  uint64_t block_cache_hits() const { return cache_ ? cache_->hits() : 0; }
  uint64_t block_cache_misses() const {
    return cache_ ? cache_->misses() : 0;
  }
  const std::shared_ptr<BlockCache>& block_cache() const { return cache_; }

 private:
  struct MemEntry {
    EntryType type = EntryType::kPut;
    std::string value;
  };
  /// One live table: its file number and the open Sstable.
  struct LevelFile {
    uint64_t number = 0;
    Sstable table;
  };

  explicit Db(std::string dir, DbOptions options);

  Status Write(EntryType type, std::string_view key, std::string_view value);
  Status AppendToWal(const Bytes& record, bool sync);
  void InsertMem(std::string_view key, EntryType type, std::string value);
  Status MaybeFlushAndCompact();
  Status MaybeCompact();
  /// Merges level's input set (all of L0, or the oldest-numbered file of a
  /// deeper level) with the overlapping files of level+1.
  Status CompactLevel(size_t level);
  /// K-way merge of `inputs` (oldest first; later index wins ties) into
  /// chunked output files appended to `outputs`.
  Status MergeTables(const std::vector<const Sstable*>& inputs,
                     bool drop_tombstones, size_t max_output_bytes,
                     std::vector<LevelFile>* outputs);
  /// True when any file of `levels_[level..]` overlaps [min_key, max_key] —
  /// then tombstones in a compaction ending above `level` must survive.
  bool AnyOverlapAtOrBelow(size_t level, const std::string& min_key,
                           const std::string& max_key) const;
  void EnsureLevel(size_t level);
  void DropEmptyDeepLevels();
  /// Loads MANIFEST; sets *found=false on a fresh database.
  Status LoadManifest(bool* found);
  Status WriteManifest();
  /// Installs the newest valid checkpoint as the initial L1 (copying chunk
  /// files into the live dir); tried oldest-last, corrupt ones skipped.
  Status TryRecoverFromCheckpoint();
  /// Deletes .sst files in dir_ that no manifest entry references.
  void RemoveOrphanTables();
  std::string TableFileName(uint64_t number) const;
  std::string WalFileName() const;
  std::string ManifestFileName() const;

  std::string dir_;
  DbOptions options_;
  std::unique_ptr<SkipList<MemEntry>> memtable_;
  size_t memtable_bytes_ = 0;
  WalWriter wal_;
  std::shared_ptr<BlockCache> cache_;
  /// levels_[0]: L0 flush files, oldest first (newest shadows). levels_[n>=1]:
  /// sorted runs, files ordered by smallest_key, pairwise non-overlapping.
  std::vector<std::vector<LevelFile>> levels_;
  uint64_t next_file_number_ = 1;
  uint64_t wal_records_replayed_ = 0;
  uint64_t wal_appends_ = 0;
  uint64_t wal_syncs_ = 0;
  DbStats stats_;
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_DB_H_
