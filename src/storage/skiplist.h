#ifndef FABRICPP_STORAGE_SKIPLIST_H_
#define FABRICPP_STORAGE_SKIPLIST_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace fabricpp::storage {

/// A probabilistic skip list mapping string keys to values of type V —
/// the memtable's core index (the same structure LevelDB/RocksDB use).
///
/// Keys are unique: Insert overwrites in place. Heights are drawn from a
/// deterministic PRNG so a given insertion sequence always builds the same
/// tower structure (keeps tests and the DES reproducible).
template <typename V>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0x5e1f1157ULL), head_(MakeNode("", V{}, kMaxHeight)) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool Insert(std::string_view key, V value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      node->value = std::move(value);
      return false;
    }
    const int height = RandomHeight();
    Node* fresh = MakeNode(key, std::move(value), height);
    for (int level = 0; level < height; ++level) {
      fresh->next[level] = prev[level]->next[level];
      prev[level]->next[level] = fresh;
    }
    ++size_;
    return true;
  }

  /// Looks a key up; nullptr when absent.
  const V* Find(std::string_view key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) return &node->value;
    return nullptr;
  }
  V* FindMutable(std::string_view key) {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) return &node->value;
    return nullptr;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iterator over (key, value) in key order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list)
        : node_(list->head_->next[0]) {}

    bool Valid() const { return node_ != nullptr; }
    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }
    const std::string& key() const { return node_->key; }
    const V& value() const { return node_->value; }

   private:
    const typename SkipList::Node* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  struct Node {
    std::string key;
    V value;
    std::vector<Node*> next;  // One forward pointer per level.
  };

  Node* MakeNode(std::string_view key, V value, int height) {
    auto node = std::make_unique<Node>();
    node->key = std::string(key);
    node->value = std::move(value);
    node->next.assign(height, nullptr);
    Node* raw = node.get();
    arena_.push_back(std::move(node));
    return raw;
  }

  int RandomHeight() {
    // Geometric with p = 1/4, as in LevelDB.
    int height = 1;
    while (height < kMaxHeight && (rng_.Next() & 3) == 0) ++height;
    return height;
  }

  /// Returns the first node with key >= target (nullptr if none). When
  /// `prev` is non-null it receives the predecessor tower for insertion.
  Node* FindGreaterOrEqual(std::string_view target, Node** prev) const {
    Node* node = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (node->next[level] != nullptr &&
             node->next[level]->key < target) {
        node = node->next[level];
      }
      if (prev != nullptr) prev[level] = node;
    }
    return node->next[0];
  }

  Rng rng_;
  std::vector<std::unique_ptr<Node>> arena_;
  Node* head_;
  size_t size_ = 0;
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_SKIPLIST_H_
