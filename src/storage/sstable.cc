#include "storage/sstable.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/crc32.h"

namespace fabricpp::storage {

namespace {

constexpr uint64_t kMagic = 0xfab81c557ab1e001ULL;
constexpr size_t kIndexInterval = 16;
constexpr size_t kFooterSize = 8 + 8 + 8 + 4 + 8;  // offsets, count, crc, magic.

}  // namespace

/// Shared POSIX file handle: pread() keeps per-call offsets, so concurrent
/// readers (Get from worker pools, iterators) never race on a seek pointer.
class Sstable::File {
 public:
  static Result<std::shared_ptr<File>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::NotFound("sstable missing: " + path + ": " +
                              std::strerror(errno));
    }
    auto file = std::make_shared<File>();
    file->fd_ = fd;
    file->path_ = path;
    return file;
  }

  ~File() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, uint8_t* out) const {
    size_t done = 0;
    while (done < n) {
      const ssize_t got = ::pread(fd_, out + done, n - done,
                                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::Internal("sstable pread failed: " + path_ + ": " +
                                std::strerror(errno));
      }
      if (got == 0) {
        return Status::Internal("sstable short read: " + path_);
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

 private:
  int fd_ = -1;
  std::string path_;
};

void SstableBuilder::Add(std::string_view key, EntryType type,
                         std::string_view value) {
  assert(entries_.empty() || entries_.back().key < key);
  entries_.push_back(
      TableEntry{std::string(key), type, std::string(value)});
}

Status SstableBuilder::Finish(const std::string& path) {
  Bytes out;
  ByteWriter writer(&out);

  BloomFilter bloom(entries_.size(), bloom_bits_per_key_);
  std::vector<std::pair<std::string, uint64_t>> index;

  for (size_t i = 0; i < entries_.size(); ++i) {
    const TableEntry& entry = entries_[i];
    if (i % kIndexInterval == 0) {
      index.emplace_back(entry.key, out.size());
    }
    bloom.Add(entry.key);
    writer.PutString(entry.key);
    writer.PutU8(static_cast<uint8_t>(entry.type));
    writer.PutString(entry.value);
  }

  const uint64_t index_offset = out.size();
  writer.PutVarint(index.size());
  for (const auto& [key, offset] : index) {
    writer.PutString(key);
    writer.PutU64(offset);
  }

  const uint64_t bloom_offset = out.size();
  writer.PutBytes(bloom.Serialize());

  // Footer (fixed size): index_offset, bloom_offset, num_entries, crc(data
  // up to footer), magic.
  const uint32_t crc = Crc32(out.data(), out.size());
  writer.PutU64(index_offset);
  writer.PutU64(bloom_offset);
  writer.PutU64(entries_.size());
  writer.PutU32(crc);
  writer.PutU64(kMagic);

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create sstable " + path + ": " +
                            std::strerror(errno));
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  std::fclose(file);
  if (!ok) return Status::Internal("sstable write failed: " + path);
  entries_.clear();
  return Status::OK();
}

Result<Sstable> Sstable::Open(const std::string& path,
                              std::shared_ptr<BlockCache> cache) {
  // Validation pass: read the whole file once to check the footer and CRC.
  // Afterwards only the index/bloom/bounds stay in memory; entry blocks are
  // re-read on demand through the retained descriptor.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("sstable missing: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  Bytes data(static_cast<size_t>(size));
  const bool ok =
      std::fread(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  if (!ok) return Status::Internal("sstable read failed: " + path);
  if (data.size() < kFooterSize) {
    return Status::Internal("sstable truncated: " + path);
  }

  ByteReader footer(data.data() + data.size() - kFooterSize, kFooterSize);
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t index_offset, footer.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t bloom_offset, footer.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_entries, footer.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint32_t crc, footer.GetU32());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t magic, footer.GetU64());
  if (magic != kMagic) {
    return Status::Internal("sstable bad magic: " + path);
  }
  if (bloom_offset > data.size() || index_offset > bloom_offset) {
    return Status::Internal("sstable bad offsets: " + path);
  }
  if (Crc32(data.data(), data.size() - kFooterSize) != crc) {
    return Status::Internal("sstable crc mismatch: " + path);
  }

  Sstable table;
  table.path_ = path;
  table.cache_ = std::move(cache);
  table.cache_id_ = BlockCache::NextTableId();
  table.file_size_ = data.size();
  table.index_offset_ = index_offset;
  table.num_entries_ = num_entries;

  // Index block.
  {
    ByteReader reader(data.data() + index_offset, bloom_offset - index_offset);
    FABRICPP_ASSIGN_OR_RETURN(const uint64_t count, reader.GetVarint());
    table.index_.reserve(count);
    uint64_t prev_offset = 0;
    for (uint64_t i = 0; i < count; ++i) {
      FABRICPP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
      FABRICPP_ASSIGN_OR_RETURN(const uint64_t offset, reader.GetU64());
      if (offset > index_offset || (i > 0 && offset <= prev_offset)) {
        return Status::Internal("sstable bad index offsets: " + path);
      }
      prev_offset = offset;
      table.index_.emplace_back(std::move(key), offset);
    }
  }
  // Bloom block.
  {
    ByteReader reader(data.data() + bloom_offset,
                      data.size() - kFooterSize - bloom_offset);
    FABRICPP_ASSIGN_OR_RETURN(const Bytes bloom_bytes, reader.GetBytes());
    table.bloom_ = BloomFilter::Deserialize(bloom_bytes);
  }
  // Key bounds, decoded from the validated in-memory copy before it is
  // dropped: smallest = first entry, largest = last entry of the last block.
  if (num_entries > 0) {
    if (table.index_.empty()) {
      return Status::Internal("sstable entries without index: " + path);
    }
    ByteReader first(data.data(), index_offset);
    FABRICPP_ASSIGN_OR_RETURN(const TableEntry first_entry,
                              DecodeEntry(&first));
    table.smallest_key_ = first_entry.key;
    const uint64_t last_block = table.index_.back().second;
    ByteReader scan(data.data() + last_block, index_offset - last_block);
    std::string largest;
    while (!scan.AtEnd()) {
      FABRICPP_ASSIGN_OR_RETURN(const TableEntry entry, DecodeEntry(&scan));
      largest = entry.key;
    }
    table.largest_key_ = largest;
  }
  FABRICPP_ASSIGN_OR_RETURN(table.file_, File::Open(path));
  return table;
}

Result<TableEntry> Sstable::DecodeEntry(ByteReader* reader) {
  TableEntry entry;
  FABRICPP_ASSIGN_OR_RETURN(entry.key, reader->GetString());
  FABRICPP_ASSIGN_OR_RETURN(const uint8_t type, reader->GetU8());
  entry.type = static_cast<EntryType>(type);
  FABRICPP_ASSIGN_OR_RETURN(entry.value, reader->GetString());
  return entry;
}

Result<BlockCache::Handle> Sstable::ReadBlock(size_t block,
                                              bool fill_cache) const {
  const bool use_cache = fill_cache && cache_ != nullptr;
  if (use_cache) {
    if (BlockCache::Handle handle =
            cache_->Lookup(cache_id_, static_cast<uint32_t>(block))) {
      return handle;
    }
  }
  const uint64_t offset = BlockOffset(block);
  Bytes buf(static_cast<size_t>(BlockEnd(block) - offset));
  FABRICPP_RETURN_IF_ERROR(file_->Read(offset, buf.size(), buf.data()));
  if (use_cache) {
    return cache_->Insert(cache_id_, static_cast<uint32_t>(block),
                          std::move(buf));
  }
  return std::make_shared<const Bytes>(std::move(buf));
}

std::optional<TableEntry> Sstable::Get(std::string_view key) const {
  if (num_entries_ == 0 || !bloom_.MayContain(key)) return std::nullopt;
  if (key < smallest_key_ || key > largest_key_) return std::nullopt;

  // Greatest index point with index_key <= key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (index_[mid].first <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return std::nullopt;  // key < first entry.

  // The match, if any, lies inside block lo-1: its first key is <= key and
  // the next block's first key is > key.
  const auto block = ReadBlock(lo - 1, /*fill_cache=*/true);
  if (!block.ok()) return std::nullopt;
  ByteReader reader((*block)->data(), (*block)->size());
  while (!reader.AtEnd()) {
    const auto entry = DecodeEntry(&reader);
    if (!entry.ok()) return std::nullopt;
    if (entry->key == key) return *entry;
    if (entry->key > key) return std::nullopt;
  }
  return std::nullopt;
}

void Sstable::Iterator::Advance() {
  while (true) {
    if (data_ != nullptr && pos_ < data_->size()) {
      ByteReader reader(data_->data() + pos_, data_->size() - pos_);
      const auto entry = DecodeEntry(&reader);
      if (!entry.ok()) {
        valid_ = false;
        return;
      }
      pos_ = data_->size() - reader.remaining();
      entry_ = *entry;
      valid_ = true;
      return;
    }
    if (block_ >= table_->num_blocks()) {
      valid_ = false;
      return;
    }
    // Sequential scan: blocks are read directly, not through the cache.
    const auto block = table_->ReadBlock(block_, /*fill_cache=*/false);
    if (!block.ok()) {
      valid_ = false;
      return;
    }
    data_ = *block;
    pos_ = 0;
    ++block_;
  }
}

void Sstable::ForEach(
    const std::function<void(const TableEntry&)>& fn) const {
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    fn(it.entry());
  }
}

}  // namespace fabricpp::storage
