#include "storage/sstable.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/crc32.h"

namespace fabricpp::storage {

namespace {

constexpr uint64_t kMagic = 0xfab81c557ab1e001ULL;
constexpr size_t kIndexInterval = 16;
constexpr size_t kFooterSize = 8 + 8 + 8 + 4 + 8;  // offsets, count, crc, magic.

}  // namespace

void SstableBuilder::Add(std::string_view key, EntryType type,
                         std::string_view value) {
  assert(entries_.empty() || entries_.back().key < key);
  entries_.push_back(
      TableEntry{std::string(key), type, std::string(value)});
}

Status SstableBuilder::Finish(const std::string& path) {
  Bytes out;
  ByteWriter writer(&out);

  BloomFilter bloom(entries_.size(), bloom_bits_per_key_);
  std::vector<std::pair<std::string, uint64_t>> index;

  for (size_t i = 0; i < entries_.size(); ++i) {
    const TableEntry& entry = entries_[i];
    if (i % kIndexInterval == 0) {
      index.emplace_back(entry.key, out.size());
    }
    bloom.Add(entry.key);
    writer.PutString(entry.key);
    writer.PutU8(static_cast<uint8_t>(entry.type));
    writer.PutString(entry.value);
  }

  const uint64_t index_offset = out.size();
  writer.PutVarint(index.size());
  for (const auto& [key, offset] : index) {
    writer.PutString(key);
    writer.PutU64(offset);
  }

  const uint64_t bloom_offset = out.size();
  writer.PutBytes(bloom.Serialize());

  // Footer (fixed size): index_offset, bloom_offset, num_entries, crc(data
  // up to footer), magic.
  const uint32_t crc = Crc32(out.data(), out.size());
  writer.PutU64(index_offset);
  writer.PutU64(bloom_offset);
  writer.PutU64(entries_.size());
  writer.PutU32(crc);
  writer.PutU64(kMagic);

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create sstable " + path + ": " +
                            std::strerror(errno));
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  std::fclose(file);
  if (!ok) return Status::Internal("sstable write failed: " + path);
  entries_.clear();
  return Status::OK();
}

Result<Sstable> Sstable::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("sstable missing: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  Bytes data(static_cast<size_t>(size));
  const bool ok =
      std::fread(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  if (!ok) return Status::Internal("sstable read failed: " + path);
  if (data.size() < kFooterSize) {
    return Status::Internal("sstable truncated: " + path);
  }

  ByteReader footer(data.data() + data.size() - kFooterSize, kFooterSize);
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t index_offset, footer.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t bloom_offset, footer.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t num_entries, footer.GetU64());
  FABRICPP_ASSIGN_OR_RETURN(const uint32_t crc, footer.GetU32());
  FABRICPP_ASSIGN_OR_RETURN(const uint64_t magic, footer.GetU64());
  if (magic != kMagic) {
    return Status::Internal("sstable bad magic: " + path);
  }
  if (bloom_offset > data.size() || index_offset > bloom_offset) {
    return Status::Internal("sstable bad offsets: " + path);
  }
  if (Crc32(data.data(), data.size() - kFooterSize) != crc) {
    return Status::Internal("sstable crc mismatch: " + path);
  }

  Sstable table;
  table.path_ = path;
  table.data_ = std::move(data);
  table.index_offset_ = index_offset;
  table.num_entries_ = num_entries;

  // Index block.
  {
    ByteReader reader(table.data_.data() + index_offset,
                      bloom_offset - index_offset);
    FABRICPP_ASSIGN_OR_RETURN(const uint64_t count, reader.GetVarint());
    table.index_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      FABRICPP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
      FABRICPP_ASSIGN_OR_RETURN(const uint64_t offset, reader.GetU64());
      table.index_.emplace_back(std::move(key), offset);
    }
  }
  // Bloom block.
  {
    ByteReader reader(table.data_.data() + bloom_offset,
                      table.data_.size() - kFooterSize - bloom_offset);
    FABRICPP_ASSIGN_OR_RETURN(const Bytes bloom_bytes, reader.GetBytes());
    table.bloom_ = BloomFilter::Deserialize(bloom_bytes);
  }
  if (num_entries > 0) {
    size_t pos = 0;
    FABRICPP_ASSIGN_OR_RETURN(const TableEntry first,
                              table.DecodeEntryAt(&pos));
    table.smallest_key_ = first.key;
    // Largest key: last index point, then scan to the end.
    size_t scan = table.index_.empty()
                      ? 0
                      : static_cast<size_t>(table.index_.back().second);
    std::string largest;
    while (scan < table.index_offset_) {
      FABRICPP_ASSIGN_OR_RETURN(const TableEntry entry,
                                table.DecodeEntryAt(&scan));
      largest = entry.key;
    }
    table.largest_key_ = largest;
  }
  return table;
}

Result<TableEntry> Sstable::DecodeEntryAt(size_t* pos) const {
  ByteReader reader(data_.data() + *pos, index_offset_ - *pos);
  TableEntry entry;
  FABRICPP_ASSIGN_OR_RETURN(entry.key, reader.GetString());
  FABRICPP_ASSIGN_OR_RETURN(const uint8_t type, reader.GetU8());
  entry.type = static_cast<EntryType>(type);
  FABRICPP_ASSIGN_OR_RETURN(entry.value, reader.GetString());
  *pos = index_offset_ - reader.remaining();
  return entry;
}

std::optional<TableEntry> Sstable::Get(std::string_view key) const {
  if (num_entries_ == 0 || !bloom_.MayContain(key)) return std::nullopt;
  if (key < smallest_key_ || key > largest_key_) return std::nullopt;

  // Greatest index point with index_key <= key.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (index_[mid].first <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return std::nullopt;  // key < first entry.
  size_t pos = static_cast<size_t>(index_[lo - 1].second);

  // Linear scan within the index interval.
  while (pos < index_offset_) {
    const auto entry = DecodeEntryAt(&pos);
    if (!entry.ok()) return std::nullopt;
    if (entry->key == key) return *entry;
    if (entry->key > key) return std::nullopt;
  }
  return std::nullopt;
}

void Sstable::Iterator::Advance() {
  if (pos_ >= table_->index_offset_) {
    valid_ = false;
    return;
  }
  const auto entry = table_->DecodeEntryAt(&pos_);
  if (!entry.ok()) {
    valid_ = false;
    return;
  }
  entry_ = *entry;
  valid_ = true;
}

void Sstable::ForEach(
    const std::function<void(const TableEntry&)>& fn) const {
  size_t pos = 0;
  while (pos < index_offset_) {
    const auto entry = DecodeEntryAt(&pos);
    if (!entry.ok()) return;
    fn(*entry);
  }
}

}  // namespace fabricpp::storage
