#ifndef FABRICPP_STORAGE_SSTABLE_H_
#define FABRICPP_STORAGE_SSTABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/bloom.h"

namespace fabricpp::storage {

/// Kind of a stored entry. Tombstones persist until compaction so that
/// older tables' values stay shadowed.
enum class EntryType : uint8_t { kPut = 0, kDelete = 1 };

/// One key-value entry as stored in an SSTable.
struct TableEntry {
  std::string key;
  EntryType type = EntryType::kPut;
  std::string value;
};

/// Writes a sorted run of entries into an immutable table file.
///
/// File layout:
///   [entries...] [sparse index] [bloom filter] [footer]
/// The sparse index holds every 16th key with its file offset; the footer
/// carries section offsets, the entry count, a CRC and a magic number.
class SstableBuilder {
 public:
  explicit SstableBuilder(uint32_t bloom_bits_per_key = 10)
      : bloom_bits_per_key_(bloom_bits_per_key) {}

  /// Adds an entry; keys must arrive in strictly increasing order.
  void Add(std::string_view key, EntryType type, std::string_view value);

  /// Writes the table to `path`. The builder is spent afterwards.
  Status Finish(const std::string& path);

  size_t num_entries() const { return entries_.size(); }

 private:
  uint32_t bloom_bits_per_key_;
  std::vector<TableEntry> entries_;
};

/// An open, immutable table. The file content is held in memory (tables
/// are bounded by the memtable flush threshold).
class Sstable {
 public:
  /// Opens and validates the footer/CRC.
  static Result<Sstable> Open(const std::string& path);

  /// Point lookup. Returns nullopt when the key is absent from this table
  /// (a found tombstone IS returned — callers must stop searching older
  /// tables and report not-found).
  std::optional<TableEntry> Get(std::string_view key) const;

  /// In-order scan of all entries (compaction, iterators).
  void ForEach(const std::function<void(const TableEntry&)>& fn) const;

  /// Positional in-order iterator over the table's entries.
  class Iterator {
   public:
    explicit Iterator(const Sstable* table) : table_(table) { Advance(); }
    bool Valid() const { return valid_; }
    const TableEntry& entry() const { return entry_; }
    void Next() { Advance(); }

   private:
    void Advance();
    const Sstable* table_;
    size_t pos_ = 0;
    bool valid_ = false;
    TableEntry entry_;
  };
  Iterator NewIterator() const { return Iterator(this); }

  size_t num_entries() const { return num_entries_; }
  const std::string& path() const { return path_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }

 private:
  Sstable() : bloom_(0, 10) {}

  Result<TableEntry> DecodeEntryAt(size_t* pos) const;

  std::string path_;
  Bytes data_;
  size_t index_offset_ = 0;
  size_t num_entries_ = 0;
  BloomFilter bloom_;
  /// Sparse index: (key, entry offset), ascending.
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::string smallest_key_;
  std::string largest_key_;
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_SSTABLE_H_
