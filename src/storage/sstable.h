#ifndef FABRICPP_STORAGE_SSTABLE_H_
#define FABRICPP_STORAGE_SSTABLE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/block_cache.h"
#include "storage/bloom.h"

namespace fabricpp::storage {

/// Kind of a stored entry. Tombstones persist until compaction so that
/// older tables' values stay shadowed.
enum class EntryType : uint8_t { kPut = 0, kDelete = 1 };

/// One key-value entry as stored in an SSTable.
struct TableEntry {
  std::string key;
  EntryType type = EntryType::kPut;
  std::string value;
};

/// Writes a sorted run of entries into an immutable table file.
///
/// File layout:
///   [entries...] [sparse index] [bloom filter] [footer]
/// The sparse index holds every 16th key with its file offset; the footer
/// carries section offsets, the entry count, a CRC and a magic number.
class SstableBuilder {
 public:
  explicit SstableBuilder(uint32_t bloom_bits_per_key = 10)
      : bloom_bits_per_key_(bloom_bits_per_key) {}

  /// Adds an entry; keys must arrive in strictly increasing order.
  void Add(std::string_view key, EntryType type, std::string_view value);

  /// Writes the table to `path`. The builder is spent afterwards.
  Status Finish(const std::string& path);

  size_t num_entries() const { return entries_.size(); }

 private:
  uint32_t bloom_bits_per_key_;
  std::vector<TableEntry> entries_;
};

/// An open, immutable table.
///
/// Open() reads and CRC-validates the whole file once, then retains only
/// the sparse index, the Bloom filter and the key bounds in memory; entry
/// data is re-read from disk on demand in *blocks* — the spans between two
/// consecutive sparse-index points (~16 entries). Point lookups go through
/// the optional shared BlockCache; sequential scans (compaction, iterators)
/// read blocks directly so they cannot wipe the cache's hot set.
class Sstable {
 public:
  /// Opens and validates the footer/CRC. `cache` (may be null) is consulted
  /// and filled by point lookups.
  static Result<Sstable> Open(const std::string& path,
                              std::shared_ptr<BlockCache> cache = nullptr);

  /// Point lookup. Returns nullopt when the key is absent from this table
  /// (a found tombstone IS returned — callers must stop searching older
  /// tables and report not-found).
  std::optional<TableEntry> Get(std::string_view key) const;

  /// In-order scan of all entries (compaction, iterators).
  void ForEach(const std::function<void(const TableEntry&)>& fn) const;

  /// Positional in-order iterator over the table's entries. Reads blocks
  /// sequentially, bypassing the cache (scan resistance). The table must
  /// outlive the iterator.
  class Iterator {
   public:
    explicit Iterator(const Sstable* table) : table_(table) { Advance(); }
    bool Valid() const { return valid_; }
    const TableEntry& entry() const { return entry_; }
    void Next() { Advance(); }

   private:
    void Advance();
    const Sstable* table_;
    size_t block_ = 0;           // Next block to load.
    BlockCache::Handle data_;    // Current block's bytes.
    size_t pos_ = 0;             // Decode position within data_.
    bool valid_ = false;
    TableEntry entry_;
  };
  Iterator NewIterator() const { return Iterator(this); }

  size_t num_entries() const { return num_entries_; }
  const std::string& path() const { return path_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }
  /// Size of the entry region (what compaction rewrites) — the level-sizing
  /// metric.
  uint64_t data_bytes() const { return index_offset_; }
  /// Whole file size on disk.
  uint64_t file_bytes() const { return file_size_; }
  /// Process-unique id keying this table's blocks in the BlockCache.
  uint64_t cache_id() const { return cache_id_; }

 private:
  /// Shared pread-able file handle; Sstable is copy/movable, iterators and
  /// copies share the descriptor (pread carries its own offset, so reads
  /// are thread-safe).
  class File;

  friend class Iterator;

  Sstable() : bloom_(0, 10) {}

  size_t num_blocks() const { return index_.size(); }
  uint64_t BlockOffset(size_t block) const { return index_[block].second; }
  uint64_t BlockEnd(size_t block) const {
    return block + 1 < index_.size() ? index_[block + 1].second
                                     : index_offset_;
  }
  /// Reads block `block`, via the cache (fill_cache) or straight from disk.
  Result<BlockCache::Handle> ReadBlock(size_t block, bool fill_cache) const;
  static Result<TableEntry> DecodeEntry(ByteReader* reader);

  std::string path_;
  std::shared_ptr<File> file_;
  std::shared_ptr<BlockCache> cache_;
  uint64_t cache_id_ = 0;
  uint64_t file_size_ = 0;
  uint64_t index_offset_ = 0;
  size_t num_entries_ = 0;
  BloomFilter bloom_;
  /// Sparse index: (key, entry offset), ascending — one entry per block.
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::string smallest_key_;
  std::string largest_key_;
};

}  // namespace fabricpp::storage

#endif  // FABRICPP_STORAGE_SSTABLE_H_
