#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#include "storage/crc32.h"

namespace fabricpp::storage {

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open wal " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status WalWriter::Append(const Bytes& payload, bool sync) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  uint8_t header[8];
  const uint32_t crc = Crc32(payload.data(), payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(crc >> (8 * i));
    header[4 + i] = static_cast<uint8_t>(length >> (8 * i));
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("wal write failed");
  }
  if (sync) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (std::fflush(file_) != 0) return Status::Internal("wal flush failed");
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<size_t> ReplayWal(const std::string& path,
                         const std::function<void(const Bytes&)>& fn) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return size_t{0};  // Fresh database.
  size_t records = 0;
  while (true) {
    uint8_t header[8];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    uint32_t crc = 0;
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      crc |= static_cast<uint32_t>(header[i]) << (8 * i);
      length |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    }
    if (length > (64u << 20)) break;  // Corrupt length; stop replay.
    Bytes payload(length);
    if (std::fread(payload.data(), 1, length, file) != length) break;
    if (Crc32(payload.data(), payload.size()) != crc) break;  // Torn tail.
    fn(payload);
    ++records;
  }
  std::fclose(file);
  return records;
}

}  // namespace fabricpp::storage
