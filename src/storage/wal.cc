#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#include "storage/crc32.h"

namespace fabricpp::storage {

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open wal " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status WalWriter::Append(const Bytes& payload, bool sync) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  uint8_t header[8];
  const uint32_t crc = Crc32(payload.data(), payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(crc >> (8 * i));
    header[4 + i] = static_cast<uint8_t>(length >> (8 * i));
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("wal write failed");
  }
  if (sync) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (std::fflush(file_) != 0) return Status::Internal("wal flush failed");
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<size_t> ReplayWal(const std::string& path,
                         const std::function<Status(const Bytes&)>& fn) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return size_t{0};  // Fresh database.
  std::fseek(file, 0, SEEK_END);
  const long end = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  const size_t file_size = end < 0 ? 0 : static_cast<size_t>(end);

  size_t records = 0;
  size_t offset = 0;
  while (offset < file_size) {
    const size_t remaining = file_size - offset;
    // A crash mid-append truncates the file; it cannot corrupt earlier
    // bytes. Everything short of the claimed record therefore classifies
    // as a torn tail (tolerated); everything else is data loss.
    if (remaining < 8) break;  // Partial header at the tail.
    uint8_t header[8];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    uint32_t crc = 0;
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      crc |= static_cast<uint32_t>(header[i]) << (8 * i);
      length |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    }
    if (length > (64u << 20) && length <= remaining - 8) {
      // The full record is present yet its length is implausible — a tear
      // can truncate, never rewrite; this is corruption.
      std::fclose(file);
      return Status::DataLoss(
          "wal record at offset " + std::to_string(offset) +
          " has implausible length " + std::to_string(length));
    }
    if (remaining - 8 < length) break;  // Truncated payload at the tail.
    Bytes payload(length);
    if (std::fread(payload.data(), 1, length, file) != length) break;
    if (Crc32(payload.data(), payload.size()) != crc) {
      if (offset + 8 + length == file_size) break;  // Corrupt final record.
      std::fclose(file);
      return Status::DataLoss(
          "wal record at offset " + std::to_string(offset) +
          " fails its crc with " +
          std::to_string(file_size - offset - 8 - length) +
          " bytes following — mid-log corruption, not a torn tail");
    }
    const Status applied = fn(payload);
    if (!applied.ok()) {
      std::fclose(file);
      return applied;
    }
    ++records;
    offset += 8 + length;
  }
  std::fclose(file);
  return records;
}

}  // namespace fabricpp::storage
